//! End-to-end tests on the non-array topologies: the §4.5 hypercube and
//! butterfly studies, the §6 torus (including its unlayerability), and the
//! Lemma 3 destination process on the full mesh simulator.

use meshbound::routing::dest::{BernoulliDest, ButterflyOutput, Lemma3Dest, UniformDest};
use meshbound::routing::{ButterflyRouter, DimOrder, GreedyXY, ObliviousRouter, TorusGreedy};
use meshbound::sim::network::{NetConfig, NetworkSim};
use meshbound::topology::layering::find_layering;
use meshbound::topology::{Butterfly, Hypercube, Mesh2D, Topology, Torus2D};

fn cfg(lambda: f64, seed: u64) -> NetConfig {
    NetConfig {
        lambda,
        horizon: 10_000.0,
        warmup: 1_000.0,
        seed,
        ..NetConfig::default()
    }
}

#[test]
fn torus_greedy_is_not_layerable_but_array_is() {
    // §6: "any network containing a ring of directed edges cannot be
    // layered". Discover this computationally from the actual route sets.
    let n = 4;

    let torus = Torus2D::new(n);
    let mut torus_paths = Vec::new();
    for a in torus.nodes() {
        for b in torus.nodes() {
            let paths = TorusGreedy.paths(&torus, a, b);
            torus_paths.extend(paths.into_iter().map(|(_, p)| p));
        }
    }
    assert!(
        find_layering(torus.num_edges(), &torus_paths).is_none(),
        "torus greedy routes must not admit a layering"
    );

    let mesh = Mesh2D::square(n);
    let mut mesh_paths = Vec::new();
    for a in mesh.nodes() {
        for b in mesh.nodes() {
            let paths = GreedyXY.paths(&mesh, a, b);
            mesh_paths.extend(paths.into_iter().map(|(_, p)| p));
        }
    }
    assert!(
        find_layering(mesh.num_edges(), &mesh_paths).is_some(),
        "array greedy routes must admit a layering (Lemma 2)"
    );
}

#[test]
fn hypercube_simulation_matches_upper_bound_shape() {
    // d = 5, p = 0.5, utilization 0.5: sim between Thm 12 lower and
    // product-form upper.
    let d = 5;
    let p = 0.5;
    let lambda = 1.0; // λp = 0.5
    let sim = NetworkSim::new(
        Hypercube::new(d),
        DimOrder,
        BernoulliDest::new(p),
        cfg(lambda, 3),
    )
    .run();
    let upper = meshbound::queueing::bounds::hypercube::upper_bound_delay(d, lambda, p);
    let lower = meshbound::queueing::bounds::hypercube::thm12_lower(d, lambda, p);
    assert!(
        lower <= sim.avg_delay * 1.05,
        "lower {lower} vs sim {}",
        sim.avg_delay
    );
    assert!(
        sim.avg_delay <= upper * 1.05,
        "sim {} vs upper {upper}",
        sim.avg_delay
    );
    // Mean route length = dp = 2.5 at vanishing queueing.
    assert!(sim.avg_delay >= d as f64 * p);
}

#[test]
fn hypercube_edge_throughput_is_lambda_p() {
    let d = 4;
    let p = 0.3;
    let lambda = 0.8;
    let h = Hypercube::new(d);
    let sim = NetworkSim::new(h.clone(), DimOrder, BernoulliDest::new(p), cfg(lambda, 5)).run();
    let expect = lambda * p;
    for e in h.edges() {
        let got = sim.edge_throughput[e.index()];
        assert!(
            (got - expect).abs() < 0.1 * expect + 0.02,
            "edge {e}: {got} vs {expect}"
        );
    }
}

#[test]
fn butterfly_delay_at_least_d_and_within_bounds() {
    let d = 4;
    let util: f64 = 0.6;
    let lambda = 2.0 * util;
    let b = Butterfly::new(d);
    let sources: Vec<_> = (0..b.rows()).map(|w| b.node(0, w)).collect();
    let sim = NetworkSim::new(b, ButterflyRouter, ButterflyOutput, cfg(lambda, 7))
        .with_sources(sources)
        .run();
    assert!(sim.avg_delay >= d as f64, "every packet crosses d edges");
    let upper = meshbound::queueing::bounds::butterfly::upper_bound_delay(d, lambda);
    assert!(
        sim.avg_delay <= upper * 1.05,
        "sim {} vs upper {upper}",
        sim.avg_delay
    );
}

#[test]
fn lemma3_destinations_reproduce_uniform_simulation() {
    // Running the full simulator with destinations drawn via the Lemma 3
    // chain must match the uniform-destination run statistically: same
    // delay within noise (Corollary 4 made executable end-to-end).
    let mesh = Mesh2D::square(5);
    let uniform = NetworkSim::new(mesh.clone(), GreedyXY, UniformDest, cfg(0.3, 11)).run();
    let lemma3 = NetworkSim::new(mesh, GreedyXY, Lemma3Dest, cfg(0.3, 11)).run();
    let rel = (uniform.avg_delay - lemma3.avg_delay).abs() / uniform.avg_delay;
    assert!(
        rel < 0.05,
        "uniform {} vs Lemma 3 chain {}",
        uniform.avg_delay,
        lemma3.avg_delay
    );
}

#[test]
fn torus_outperforms_array_near_array_capacity() {
    // At λ just under the array's threshold, the torus (double capacity,
    // shorter routes) has far lower delay.
    let n = 6;
    let lambda = 0.6; // array threshold 4/6 ≈ 0.667
    let array = NetworkSim::new(Mesh2D::square(n), GreedyXY, UniformDest, cfg(lambda, 13)).run();
    let torus = NetworkSim::new(Torus2D::new(n), TorusGreedy, UniformDest, cfg(lambda, 13)).run();
    assert!(
        torus.avg_delay < 0.6 * array.avg_delay,
        "torus {} vs array {}",
        torus.avg_delay,
        array.avg_delay
    );
}
