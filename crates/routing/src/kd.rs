//! Axis-order greedy routing on `k`-dimensional meshes (§5.2).

use crate::router::{ObliviousRouter, Router};
use meshbound_topology::{EdgeId, MeshKD, NodeId};
use rand::rngs::SmallRng;

/// Greedy routing on a `k`-dimensional mesh: axes are corrected in
/// increasing order (axis 0 first), the direct generalization of the 2-D
/// column-first scheme. The same layering argument applies axis by axis, so
/// the Theorem 1 upper bound extends to higher dimensions as the paper
/// observes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KdGreedy;

impl Router<MeshKD> for KdGreedy {
    type State = ();

    #[inline]
    fn init_state(&self, _: &MeshKD, _: NodeId, _: NodeId, _: &mut SmallRng) {}

    #[inline]
    fn is_route_deterministic(&self) -> bool {
        true
    }

    #[inline]
    fn next_edge(&self, topo: &MeshKD, cur: NodeId, dst: NodeId, _: ()) -> Option<EdgeId> {
        topo.step_toward(cur, dst)
    }

    #[inline]
    fn remaining_hops(&self, topo: &MeshKD, cur: NodeId, dst: NodeId, _: ()) -> usize {
        topo.distance(cur, dst)
    }
}

impl ObliviousRouter<MeshKD> for KdGreedy {
    fn paths(&self, topo: &MeshKD, src: NodeId, dst: NodeId) -> Vec<(f64, Vec<EdgeId>)> {
        vec![(1.0, self.route(topo, src, dst, ()))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshbound_topology::Topology;

    #[test]
    fn reduces_to_2d_greedy_on_2d_mesh() {
        // On dims [cols, rows] with axis 0 = column, KdGreedy corrects the
        // column first, matching GreedyXY's phase structure.
        let kd = MeshKD::new(&[4, 4]);
        let src = kd.node(&[0, 3]);
        let dst = kd.node(&[2, 1]);
        let route = KdGreedy.route(&kd, src, dst, ());
        assert_eq!(route.len(), 4);
        // First two hops change axis 0 only.
        let mut cur = src;
        for (k, &e) in route.iter().enumerate() {
            let nxt = kd.edge_target(e);
            let axis_changed = (0..2)
                .find(|&a| kd.coord_along(cur, a) != kd.coord_along(nxt, a))
                .unwrap();
            if k < 2 {
                assert_eq!(axis_changed, 0);
            } else {
                assert_eq!(axis_changed, 1);
            }
            cur = nxt;
        }
    }

    #[test]
    fn three_d_routes_complete() {
        let kd = MeshKD::new(&[3, 3, 3]);
        for a in kd.nodes() {
            for b in kd.nodes() {
                let route = KdGreedy.route(&kd, a, b, ());
                assert_eq!(route.len(), kd.distance(a, b));
            }
        }
    }
}
