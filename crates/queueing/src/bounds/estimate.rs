//! The §4.2 M/D/1 independence approximation (Table I's "Est." column).
//!
//! Assume every edge queue is an independent M/D/1 queue with Theorem 6's
//! arrival rates (Kleinrock's independence assumption). Two variants are
//! provided:
//!
//! * [`estimate_paper`] — the formula exactly as printed in the paper,
//!
//!   ```text
//!   T ≈ (4/(λn)) Σ_{i=1}^{n−1} u_i·[(n−u_i)² + n²] / (2n²(n−u_i)),   u_i = λ·i(n−i),
//!   ```
//!
//!   which per edge amounts to `N_e = λ_e + λ_e³/(2(1−λ_e))`. This
//!   reproduces the printed Table I estimates to all published digits
//!   (e.g. 6.711 at n=10, ρ=0.2; 103.312 at n=15, ρ=0.99).
//!
//! * [`estimate_md1`] — the textbook M/D/1 value
//!   `N_e = λ_e + λ_e²/(2(1−λ_e))`.
//!
//! The printed formula equals the textbook one **minus the residual-service
//! term `λ_e²/2`** — i.e. it computes the waiting time as (mean queue
//! length) × (service time) and omits the partially served packet's
//! residual. We implement both so the reproduction can show the printed
//! numbers *and* the analytically standard ones; the simulation falls
//! between them (see EXPERIMENTS.md).

use crate::little::mesh_total_arrival;
use crate::single::md1_mean_number;
use meshbound_routing::rates::mesh_class_rate;

/// Per-edge mean number used by the paper's printed estimate:
/// `λ(1 + λ²/(2(1−λ))) = λ·[(1−λ)² + 1]/(2(1−λ))`.
#[must_use]
pub fn paper_queue_number(lambda: f64) -> f64 {
    if lambda >= 1.0 {
        f64::INFINITY
    } else {
        lambda * (1.0 + lambda * lambda / (2.0 * (1.0 - lambda)))
    }
}

/// The paper's printed Table I estimate for the mean delay of the `n × n`
/// array at per-node rate `lambda`.
#[must_use]
pub fn estimate_paper(n: usize, lambda: f64) -> f64 {
    sum_over_classes(n, lambda, paper_queue_number)
}

/// The textbook M/D/1 independence estimate (`N_e = λ_e + λ_e²/(2(1−λ_e))`).
#[must_use]
pub fn estimate_md1(n: usize, lambda: f64) -> f64 {
    sum_over_classes(n, lambda, md1_mean_number)
}

/// Generic estimate from explicit edge rates: `Σ_e N(λ_e) / γ` with `N` the
/// per-queue mean-number function.
#[must_use]
pub fn estimate_from_rates<F: Fn(f64) -> f64>(rates: &[f64], total_arrival: f64, n_of: F) -> f64 {
    rates.iter().map(|&l| n_of(l)).sum::<f64>() / total_arrival
}

fn sum_over_classes<F: Fn(f64) -> f64>(n: usize, lambda: f64, n_of: F) -> f64 {
    let mut sum = 0.0;
    for i in 1..n {
        sum += n_of(mesh_class_rate(n, lambda, i));
    }
    4.0 * n as f64 * sum / mesh_total_arrival(n, lambda)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::upper::upper_bound_delay;

    /// The paper's Table I "Est." column (n, ρ, printed value), with
    /// λ = 4ρ/n.
    const TABLE1_EST: &[(usize, f64, f64)] = &[
        (5, 0.2, 3.256),
        (5, 0.5, 3.722),
        (5, 0.8, 5.984),
        (5, 0.9, 8.970),
        (5, 0.95, 12.877),
        (5, 0.99, 21.384),
        (10, 0.2, 6.711),
        (10, 0.5, 7.641),
        (10, 0.8, 12.183),
        (10, 0.9, 18.444),
        (10, 0.95, 28.014),
        (10, 0.99, 77.309),
        (15, 0.2, 10.123),
        (15, 0.5, 11.518),
        (15, 0.8, 18.329),
        (15, 0.9, 27.718),
        (15, 0.95, 41.990),
        (15, 0.99, 103.312),
        (20, 0.2, 13.523),
        (20, 0.5, 15.383),
        (20, 0.8, 24.465),
        (20, 0.9, 36.983),
        (20, 0.95, 56.015),
        (20, 0.99, 141.127),
    ];

    #[test]
    fn reproduces_printed_table1_estimates() {
        for &(n, rho, printed) in TABLE1_EST {
            let lambda = 4.0 * rho / n as f64;
            let est = estimate_paper(n, lambda);
            let rel = (est - printed).abs() / printed;
            assert!(
                rel < 2e-3,
                "n={n}, ρ={rho}: computed {est:.3}, printed {printed}"
            );
        }
    }

    #[test]
    fn md1_estimate_exceeds_paper_estimate() {
        // Textbook = printed + Σ λ_e²/2 ≥ printed.
        for &(n, rho, _) in TABLE1_EST {
            let lambda = 4.0 * rho / n as f64;
            assert!(estimate_md1(n, lambda) > estimate_paper(n, lambda));
        }
    }

    #[test]
    fn residual_term_identity() {
        // estimate_md1 − estimate_paper = Σ_e λ_e²/2 / (λn²) exactly.
        let n = 10;
        let lambda = 0.3;
        let mut extra = 0.0;
        for i in 1..n {
            let le = meshbound_routing::rates::mesh_class_rate(n, lambda, i);
            extra += le * le / 2.0;
        }
        extra *= 4.0 * n as f64 / (lambda * (n * n) as f64);
        let diff = estimate_md1(n, lambda) - estimate_paper(n, lambda);
        assert!((diff - extra).abs() < 1e-12);
    }

    #[test]
    fn estimates_below_upper_bound() {
        // Lemma 9's direction: the product-form (M/M/1) value dominates the
        // M/D/1 independence value at every rate.
        for &(n, rho, _) in TABLE1_EST {
            let lambda = 4.0 * rho / n as f64;
            let ub = upper_bound_delay(n, lambda);
            assert!(estimate_md1(n, lambda) <= ub + 1e-12, "n={n}, ρ={rho}");
            assert!(estimate_paper(n, lambda) <= ub + 1e-12);
        }
    }

    #[test]
    fn generic_form_matches_closed_form() {
        use meshbound_routing::rates::mesh_thm6_rates;
        use meshbound_topology::Mesh2D;
        let n = 7;
        let lambda = 0.25;
        let rates = mesh_thm6_rates(&Mesh2D::square(n), lambda);
        let generic = estimate_from_rates(
            &rates,
            crate::little::mesh_total_arrival(n, lambda),
            crate::single::md1_mean_number,
        );
        assert!((generic - estimate_md1(n, lambda)).abs() < 1e-9);
    }

    #[test]
    fn light_load_approaches_mean_distance() {
        let n = 10;
        let lambda = 1e-7;
        let nbar = (2.0 / 3.0) * (n as f64 - 1.0 / n as f64);
        assert!((estimate_paper(n, lambda) - nbar).abs() < 1e-4);
        assert!((estimate_md1(n, lambda) - nbar).abs() < 1e-4);
    }
}
