//! Integration tests for the sweep subsystem: grammar round-trips, grid
//! expansion, bit-determinism under parallelism, bit-identity of the
//! re-expressed paper tables, and the JSON report contract.

use meshbound::experiments::{table1, table2, table3, Scale};
use meshbound::sweep::{run_cells, run_sweep, Jobs, SCHEMA};
use meshbound::{Scenario, SweepError, SweepSpec};

/// A reduced scale so the table grids finish quickly in debug-mode tests;
/// structurally identical to `Scale::quick`.
fn tiny_scale() -> Scale {
    Scale {
        horizon_base: 150.0,
        horizon_cap: 600.0,
        reps: 1,
        seed: 0x6d65_7368,
    }
}

#[test]
fn grammar_round_trips_and_expands() {
    let spec = SweepSpec::parse(
        "topo=mesh:5|mesh:3x7|torus:6|hypercube:4|butterfly:3|kd:3x3x3 \
         load=rho:0.2|util:0.7|lambda:0.05 reps=2 seed=11 horizon=auto:500:4000",
    )
    .unwrap();
    assert_eq!(spec.num_cells(), 18);
    assert_eq!(SweepSpec::parse(&spec.spec_string()).unwrap(), spec);
    let cells = spec.expand().unwrap();
    assert_eq!(cells.len(), 18);
    // Each cell's spec string round-trips through the Scenario parser.
    for cell in &cells {
        assert_eq!(Scenario::parse(&cell.spec_string()).unwrap(), *cell);
    }
}

#[test]
fn expansion_rejects_empty_axes_and_duplicates() {
    assert!(matches!(
        SweepSpec::new().expand(),
        Err(SweepError::EmptyAxis(_))
    ));
    let dup = SweepSpec::parse("topo=mesh:4|mesh:4 load=rho:0.5").unwrap();
    assert!(matches!(dup.expand(), Err(SweepError::DuplicateCell(_))));
    let invalid = SweepSpec::parse("topo=torus:4 load=rho:0.5 router=randomized").unwrap();
    assert!(matches!(invalid.expand(), Err(SweepError::InvalidCell(_))));
}

#[test]
fn parallel_sweep_is_bit_identical_to_sequential() {
    let spec = SweepSpec::parse(
        "topo=mesh:4|torus:4|hypercube:3 load=rho:0.2|rho:0.6 reps=2 \
         horizon=400 warmup=40",
    )
    .unwrap();
    let seq = run_sweep(&spec, Jobs::Sequential).unwrap();
    let par = run_sweep(&spec, Jobs::Parallel).unwrap();
    assert_eq!(seq.num_cells, 6);
    // The deterministic projections must agree to the last bit — same
    // JSON, same delay bit patterns, same packet counts.
    assert_eq!(
        seq.without_timings().to_json(),
        par.without_timings().to_json()
    );
    for (a, b) in seq.cells.iter().zip(&par.cells) {
        assert_eq!(a.delay_mean.to_bits(), b.delay_mean.to_bits(), "{}", a.spec);
        assert_eq!(a.r_ratio.to_bits(), b.r_ratio.to_bits(), "{}", a.spec);
        assert_eq!((a.generated, a.completed), (b.generated, b.completed));
    }
}

#[test]
fn sweep_engine_reproduces_table_cells_bit_identically() {
    // The tables now ride the sweep engine; their cells must match the
    // direct Scenario path (the pre-sweep implementation) bit for bit.
    let scale = tiny_scale();
    let t1 = table1::run(&scale);
    for (row, sc) in t1.iter().zip(table1::cells(&scale)) {
        let direct = sc.run_replicated(scale.reps);
        assert_eq!(
            row.t_sim.to_bits(),
            direct.delay.mean().to_bits(),
            "table1 n={} rho={}",
            row.n,
            row.rho
        );
    }
    let t2 = table2::run(&scale);
    for (row, sc) in t2.iter().zip(table2::cells(&scale)) {
        let direct = sc.run_replicated(scale.reps);
        assert_eq!(
            row.r_sim.to_bits(),
            direct.r_ratio.mean().to_bits(),
            "table2 n={} rho={}",
            row.n,
            row.rho
        );
    }
    let t3 = table3::run(&scale);
    for (row, sc) in t3.iter().zip(table3::cells(&scale)) {
        let direct = sc.run_replicated(scale.reps);
        assert_eq!(
            row.rs_sim.to_bits(),
            direct.rs_ratio.mean().to_bits(),
            "table3 n={}",
            row.n
        );
    }
}

#[test]
fn table_grids_run_through_the_engine_with_verdicts() {
    let scale = tiny_scale();
    let report = run_cells("table3", table3::cells(&scale), scale.reps, Jobs::Parallel);
    assert_eq!(report.schema, SCHEMA);
    assert_eq!(report.num_cells, 5);
    assert_eq!(report.spec, "table3");
    // ρ = 0.99 cells: the Theorem 7 upper bound is still finite below
    // saturation, and the short-horizon simulation must stay bracketed.
    for cell in &report.cells {
        assert!(cell.upper_bound_finite, "{}", cell.spec);
        assert!(cell.scenario.track_saturated);
    }
}

#[test]
fn json_report_contract() {
    let spec = SweepSpec::parse("topo=mesh:4|torus:4 load=rho:0.2 horizon=400 warmup=40").unwrap();
    let report = run_sweep(&spec, Jobs::Parallel).unwrap();
    assert!(report.all_within_bounds, "{}", report.to_text());
    let json = report.to_json();
    assert!(json.starts_with(&format!("{{\"schema\":\"{SCHEMA}\"")));
    for key in [
        "\"spec\":",
        "\"cells\":[",
        "\"within_bounds\":true",
        "\"delay_mean\":",
        "\"bounds\":{",
        "\"lower_best\":",
        "\"wall_s\":",
        "\"speedup\":",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
    // The torus's open upper bound must be null (valid JSON), never `inf`.
    assert!(json.contains("\"upper\":null"));
    let pretty = report.to_json_pretty();
    assert!(pretty.contains("\n  \"schema\": \"meshbound.sweep/v7\""));
    // v4: the cell wall clock is split into setup and hot-loop time.
    for key in ["\"setup_s\":", "\"sim_s\":"] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
}

#[test]
fn rate_cache_hits_are_bit_identical_to_the_cold_path() {
    // `Scenario::edge_rates` memoizes the unit-rate vector per
    // (topology, router, pattern); cells that differ only in load share
    // one cache entry. A warm hit must reproduce the cold computation bit
    // for bit, and so must whole sweeps run back to back (first run cold,
    // second run entirely warm).
    let sc = Scenario::parse("mesh:6,traffic=transpose,rho=0.3").unwrap();
    let cold = sc.edge_rates();
    let warm = sc.edge_rates();
    assert_eq!(cold.len(), warm.len());
    for (i, (a, b)) in cold.iter().zip(&warm).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "edge_rates[{i}] differs on a hit");
    }
    // A different load over the same (topology, router, pattern) rides the
    // same unit-rate entry — scaling must stay exact: rates are
    // unit_rates · λ, so the ratio of the two vectors is the λ ratio.
    let spec = SweepSpec::parse(
        "topo=mesh:6 traffic=transpose load=rho:0.2|rho:0.6 horizon=300 warmup=30",
    )
    .unwrap();
    let first = run_sweep(&spec, Jobs::Sequential).unwrap();
    let second = run_sweep(&spec, Jobs::Sequential).unwrap();
    assert_eq!(
        first.without_timings().to_json(),
        second.without_timings().to_json(),
        "a warm rate cache changed sweep results"
    );
}

#[test]
fn repro_sweep_cli_writes_checked_json() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    // Unique per process: concurrent checkouts share the temp dir.
    let out = std::env::temp_dir().join(format!(
        "meshbound_sweep_cli_test_{}.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&out);
    let output = std::process::Command::new(&cargo)
        .args([
            "run",
            "--release",
            "-p",
            "meshbound_bench",
            "--bin",
            "repro",
            "--",
            "sweep",
            "topo=mesh:4|torus:4 load=rho:0.2|rho:0.5 reps=2 horizon=400 warmup=40",
            "--jobs",
            "2",
            "--check",
            "--out",
        ])
        .arg(&out)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("spawn cargo run repro");
    assert!(
        output.status.success(),
        "repro sweep failed\nstdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    let json = std::fs::read_to_string(&out).expect("JSON written");
    assert!(json.contains("\"schema\": \"meshbound.sweep/v7\""));
    assert!(json.contains("\"all_within_bounds\": true"));
    let _ = std::fs::remove_file(&out);
    // A bad grammar and a bounds-violating check path must exit nonzero.
    let bad = std::process::Command::new(&cargo)
        .args([
            "run",
            "--release",
            "-p",
            "meshbound_bench",
            "--bin",
            "repro",
            "--",
            "sweep",
            "topo=mesh:4 load=warp:0.5",
        ])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("spawn cargo run repro");
    assert!(!bad.status.success());
}
