//! Traffic equations: the §2.2 "system of equations" route to edge rates.
//!
//! The paper notes the per-queue arrival rates can be found "either by
//! solving a system of equations \[6\], or by using the techniques of \[1\]".
//! [`crate::rates::edge_rates_enumerated`] is the combinatorial technique
//! of \[1\]; this module implements the other route: describe routing as a
//! Markov chain **on edges** (Corollary 4 guarantees this is possible for
//! greedy routing with uniform destinations) and solve the traffic
//! equations
//!
//! ```text
//! λ_e = γ_e + Σ_{e'} λ_{e'} · P(e' → e)
//! ```
//!
//! by fixed-point iteration, which converges geometrically because routing
//! is absorbing (spectral radius of `P` below 1).
//!
//! [`mesh_markov_routing`] constructs the chain for the array — the
//! edge-level form of the Lemma 3 stopping process — and
//! [`hypercube_markov_routing`] the one for §4.5's hypercube. Their fixed
//! points reproduce Theorem 6's closed form and the uniform `λp` rate,
//! respectively, which is verified in tests.

use meshbound_topology::{EdgeId, Hypercube, Mesh2D, Topology};

/// A Markov routing description over the edges of a network.
#[derive(Debug, Clone)]
pub struct MarkovRouting {
    /// External (newly generated) arrival rate onto each edge.
    pub external: Vec<f64>,
    /// Transition probabilities `P(e → e')`; rows may sum to less than 1,
    /// the deficit being the exit probability.
    pub transitions: Vec<Vec<(EdgeId, f64)>>,
}

impl MarkovRouting {
    /// Checks structural sanity: probabilities in `[0, 1]`, rows ≤ 1.
    ///
    /// # Panics
    ///
    /// Panics on violation; call in tests and debug assertions.
    pub fn validate(&self) {
        assert_eq!(self.external.len(), self.transitions.len());
        for (e, row) in self.transitions.iter().enumerate() {
            let mut total = 0.0;
            for &(_, p) in row {
                assert!((0.0..=1.0 + 1e-12).contains(&p), "edge {e}: p = {p}");
                total += p;
            }
            assert!(total <= 1.0 + 1e-9, "edge {e}: row sum {total} > 1");
        }
    }
}

/// Fixed-point iteration ran out of sweeps before reaching tolerance.
///
/// Returned by [`try_traffic_fixed_point`]; carries enough state to decide
/// whether to retry with a larger budget (small `residual`, nearly there) or
/// to diagnose a genuinely non-contracting chain (`residual` stuck or
/// growing, as for a routing loop with no exit probability).
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficConvergenceError {
    /// Number of sweeps performed (equals the `max_iter` budget).
    pub iterations: usize,
    /// Max-norm change of the rate vector over the final sweep.
    pub residual: f64,
    /// The tolerance that was requested.
    pub tol: f64,
}

impl std::fmt::Display for TrafficConvergenceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "traffic equations failed to converge in {} iterations (residual {:e}, tolerance {:e})",
            self.iterations, self.residual, self.tol
        )
    }
}

impl std::error::Error for TrafficConvergenceError {}

/// Solves the traffic equations by fixed-point iteration to absolute
/// tolerance `tol` (at most `max_iter` sweeps).
///
/// # Errors
///
/// Returns [`TrafficConvergenceError`] — with the final residual — if the
/// budget runs out first. For substochastic routing with exit probability
/// bounded away from zero convergence is geometric and this cannot happen
/// with any reasonable budget; a chain with a closed cycle (row sum 1 along
/// a loop) never converges and always lands here.
pub fn try_traffic_fixed_point(
    routing: &MarkovRouting,
    tol: f64,
    max_iter: usize,
) -> Result<Vec<f64>, TrafficConvergenceError> {
    let n = routing.external.len();
    let mut lambda = routing.external.clone();
    let mut next = vec![0.0; n];
    let mut residual = f64::INFINITY;
    for _ in 0..max_iter {
        next.copy_from_slice(&routing.external);
        for (e, row) in routing.transitions.iter().enumerate() {
            let flow = lambda[e];
            if flow == 0.0 {
                continue;
            }
            for &(to, p) in row {
                next[to.index()] += flow * p;
            }
        }
        residual = lambda
            .iter()
            .zip(&next)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        std::mem::swap(&mut lambda, &mut next);
        if residual < tol {
            return Ok(lambda);
        }
    }
    Err(TrafficConvergenceError {
        iterations: max_iter,
        residual,
        tol,
    })
}

/// Panicking convenience wrapper around [`try_traffic_fixed_point`].
///
/// # Panics
///
/// Panics if iteration fails to converge — which cannot happen for
/// substochastic routing with exit probability bounded away from zero.
#[must_use]
#[deprecated(
    since = "0.8.0",
    note = "panics on non-convergence; use `try_traffic_fixed_point` and \
            surface the `TrafficConvergenceError`"
)]
pub fn traffic_fixed_point(routing: &MarkovRouting, tol: f64, max_iter: usize) -> Vec<f64> {
    try_traffic_fixed_point(routing, tol, max_iter).unwrap_or_else(|e| panic!("{e}"))
}

/// Steady-state per-edge arrival rates for a
/// [`SplitRouting`](crate::SplitRouting) router — the
/// rate computation for routers **without enumerable paths**.
///
/// For each destination `d` the router's branching model induces an
/// absorbing Markov chain on edges: external flow enters at every source
/// `s` with rate `rate_s · weight(s, d)` split over
/// `splits(topo, None, s, d)`, and flow on edge `e` continues over
/// `splits(topo, Some(e), target(e), d)`. Each per-destination chain is
/// solved by [`try_traffic_fixed_point`] and the rates are summed over all
/// destinations. Minimal routers yield nilpotent chains, so each solve
/// converges exactly within a diameter's worth of sweeps.
///
/// For oblivious routers whose `SplitRouting` model is exact (greedy,
/// torus greedy, randomized greedy) this reproduces the path-enumeration
/// rates of [`crate::rates::edge_rates_weighted`] to well below `1e-9`;
/// for adaptive routers it is the conventional equal-split steady-state
/// model.
///
/// # Errors
///
/// Returns the [`TrafficConvergenceError`] of the first per-destination
/// chain that fails to converge (possible only for a non-minimal model
/// with a closed cycle).
pub fn adaptive_edge_rates<T, R, D>(
    topo: &T,
    router: &R,
    dest: &D,
    rates_per_source: &[f64],
    sources: &[meshbound_topology::NodeId],
    tol: f64,
    max_iter: usize,
) -> Result<Vec<f64>, TrafficConvergenceError>
where
    T: Topology,
    R: crate::policy::SplitRouting<T> + ?Sized,
    D: crate::dest::DestSampler<T> + ?Sized,
{
    let num_edges = topo.num_edges();
    let mut rates = vec![0.0; num_edges];
    let mut external = vec![0.0; num_edges];
    for d in topo.nodes() {
        external.iter_mut().for_each(|x| *x = 0.0);
        let mut any = false;
        for (&s, &rate) in sources.iter().zip(rates_per_source) {
            if rate == 0.0 || s == d {
                continue;
            }
            let w = dest.weight(topo, s, d);
            if w == 0.0 {
                continue;
            }
            for (e, p) in router.splits(topo, None, s, d) {
                external[e.index()] += rate * w * p;
                any = true;
            }
        }
        if !any {
            continue;
        }
        let transitions: Vec<Vec<(EdgeId, f64)>> = topo
            .edges()
            .map(|e| router.splits(topo, Some(e), topo.edge_target(e), d))
            .collect();
        let routing = MarkovRouting {
            external: external.clone(),
            transitions,
        };
        let solved = try_traffic_fixed_point(&routing, tol, max_iter)?;
        for (acc, x) in rates.iter_mut().zip(&solved) {
            *acc += x;
        }
    }
    Ok(rates)
}

/// The edge-level Markov chain of greedy routing with uniform destinations
/// on a square mesh (the executable content of Corollary 4).
///
/// A packet on a row edge entering column `c` stops there with probability
/// `1/(columns remaining ahead, inclusive)` — the Lemma 3 stopping rule —
/// and on stopping splits into the column phase (down/up/exit by the
/// uniform row distribution). Column edges stop analogously.
///
/// # Panics
///
/// Panics if the mesh is not square.
#[must_use]
pub fn mesh_markov_routing(mesh: &Mesh2D, lambda: f64) -> MarkovRouting {
    let n = mesh.side();
    let nf = n as f64;
    let mut external = vec![0.0; mesh.num_edges()];
    let mut transitions: Vec<Vec<(EdgeId, f64)>> = vec![Vec::new(); mesh.num_edges()];

    // Probability split of the column phase starting at (r, c): the
    // destination row is uniform over all n rows.
    let vertical = |r: usize, c: usize| -> Vec<(EdgeId, f64)> {
        let mut out = Vec::with_capacity(2);
        if r + 1 < n {
            out.push((mesh.down_edge(r, c), (nf - 1.0 - r as f64) / nf));
        }
        if r > 0 {
            out.push((mesh.up_edge(r - 1, c), r as f64 / nf));
        }
        out
    };

    for r in 0..n {
        for c in 0..n {
            // External arrivals: dest column picked uniformly.
            if c + 1 < n {
                external[mesh.right_edge(r, c).index()] += lambda * (nf - 1.0 - c as f64) / nf;
            }
            if c > 0 {
                external[mesh.left_edge(r, c - 1).index()] += lambda * c as f64 / nf;
            }
            // Dest column = source column (probability 1/n): enter the
            // column phase immediately.
            for (e, p) in vertical(r, c) {
                external[e.index()] += lambda / nf * p;
            }
        }
    }

    for e in mesh.edges() {
        let ((r1, _c1), (r2, c2)) = mesh.edge_coords(e);
        use meshbound_topology::Direction;
        match mesh.direction(e) {
            Direction::Right => {
                // Arrived at column c2; destinations uniform over c2..n−1.
                let remaining = (n - c2) as f64;
                let row = &mut transitions[e.index()];
                if c2 + 1 < n {
                    row.push((mesh.right_edge(r1, c2), (remaining - 1.0) / remaining));
                }
                for (v, p) in vertical(r1, c2) {
                    row.push((v, p / remaining));
                }
            }
            Direction::Left => {
                // Arrived at column c2; destinations uniform over 0..=c2.
                let remaining = (c2 + 1) as f64;
                let row = &mut transitions[e.index()];
                if c2 > 0 {
                    row.push((mesh.left_edge(r1, c2 - 1), (remaining - 1.0) / remaining));
                }
                for (v, p) in vertical(r1, c2) {
                    row.push((v, p / remaining));
                }
            }
            Direction::Down => {
                // Destinations uniform over rows r2..n−1.
                let remaining = (n - r2) as f64;
                if r2 + 1 < n {
                    transitions[e.index()]
                        .push((mesh.down_edge(r2, c2), (remaining - 1.0) / remaining));
                }
            }
            Direction::Up => {
                // Destinations uniform over rows 0..=r2.
                let remaining = (r2 + 1) as f64;
                if r2 > 0 {
                    transitions[e.index()]
                        .push((mesh.up_edge(r2 - 1, c2), (remaining - 1.0) / remaining));
                }
            }
        }
    }

    MarkovRouting {
        external,
        transitions,
    }
}

/// The edge-level Markov chain of dimension-order routing on the hypercube
/// with Bernoulli-`p` destinations (§4.5): from a dimension-`i` edge the
/// packet next crosses dimension `j > i` with probability `p(1−p)^{j−i−1}`.
#[must_use]
pub fn hypercube_markov_routing(cube: &Hypercube, lambda: f64, p: f64) -> MarkovRouting {
    let d = cube.dim();
    let mut external = vec![0.0; cube.num_edges()];
    let mut transitions: Vec<Vec<(EdgeId, f64)>> = vec![Vec::new(); cube.num_edges()];
    let q = 1.0 - p;
    for u in cube.nodes() {
        for i in 0..d {
            // External: dims 0..i unchanged, dim i flipped.
            let e = cube.edge_across(u, i);
            external[e.index()] += lambda * q.powi(i as i32) * p;
            // Transitions out of e: next flip at dimension j > i.
            let v = cube.edge_target(e);
            let row = &mut transitions[e.index()];
            for j in i + 1..d {
                row.push((cube.edge_across(v, j), p * q.powi((j - i - 1) as i32)));
            }
        }
    }
    MarkovRouting {
        external,
        transitions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rates::{hypercube_rate, mesh_thm6_rates};

    #[test]
    fn mesh_fixed_point_reproduces_theorem6() {
        for n in [3usize, 5, 8] {
            let mesh = Mesh2D::square(n);
            let lambda = 0.37;
            let routing = mesh_markov_routing(&mesh, lambda);
            routing.validate();
            let solved = try_traffic_fixed_point(&routing, 1e-13, 10_000).unwrap();
            let closed = mesh_thm6_rates(&mesh, lambda);
            for e in mesh.edges() {
                assert!(
                    (solved[e.index()] - closed[e.index()]).abs() < 1e-9,
                    "n={n}, {e}: {} vs {}",
                    solved[e.index()],
                    closed[e.index()]
                );
            }
        }
    }

    #[test]
    fn mesh_external_rates_conserve_packets() {
        // Total external edge-entry rate = λn²·P(dest ≠ source) = λ(n²−1)/n²·n².
        let n = 6;
        let mesh = Mesh2D::square(n);
        let lambda = 0.5;
        let routing = mesh_markov_routing(&mesh, lambda);
        let total: f64 = routing.external.iter().sum();
        let expect = lambda * ((n * n) as f64 - 1.0);
        assert!((total - expect).abs() < 1e-9, "{total} vs {expect}");
    }

    #[test]
    fn hypercube_fixed_point_reproduces_lambda_p() {
        let d = 5;
        let cube = Hypercube::new(d);
        for p in [0.25, 0.5, 0.8] {
            let lambda = 0.6;
            let routing = hypercube_markov_routing(&cube, lambda, p);
            routing.validate();
            let solved = try_traffic_fixed_point(&routing, 1e-13, 10_000).unwrap();
            for e in cube.edges() {
                assert!(
                    (solved[e.index()] - hypercube_rate(lambda, p)).abs() < 1e-9,
                    "p={p}, {e}: {}",
                    solved[e.index()]
                );
            }
        }
    }

    #[test]
    fn fixed_point_matches_enumeration_for_nearby_walk() {
        // The solver is not limited to uniform destinations: compare the
        // chain built from first principles against enumeration? The nearby
        // walk has no chain constructor here, so instead check the solver on
        // a hand-built two-edge tandem: γ = [1, 0], P(0→1) = 0.5.
        let routing = MarkovRouting {
            external: vec![1.0, 0.0],
            transitions: vec![vec![(EdgeId(1), 0.5)], vec![]],
        };
        routing.validate();
        let solved = try_traffic_fixed_point(&routing, 1e-14, 100).unwrap();
        assert!((solved[0] - 1.0).abs() < 1e-12);
        assert!((solved[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn non_convergence_is_a_structured_error() {
        // A closed 2-cycle with total row mass 1 circulates flow forever;
        // the iterates oscillate and never meet any tolerance.
        let loopy = MarkovRouting {
            external: vec![1.0, 0.0],
            transitions: vec![vec![(EdgeId(1), 1.0)], vec![(EdgeId(0), 1.0)]],
        };
        loopy.validate();
        let err = try_traffic_fixed_point(&loopy, 1e-9, 50).unwrap_err();
        assert_eq!(err.iterations, 50);
        assert!(err.residual > err.tol, "residual {} stuck", err.residual);
        let msg = err.to_string();
        assert!(msg.contains("failed to converge in 50 iterations"), "{msg}");
    }

    #[test]
    #[allow(deprecated)]
    fn try_fixed_point_agrees_with_deprecated_wrapper() {
        let mesh = Mesh2D::square(4);
        let routing = mesh_markov_routing(&mesh, 0.5);
        let a = traffic_fixed_point(&routing, 1e-13, 10_000);
        let b = try_traffic_fixed_point(&routing, 1e-13, 10_000).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn adaptive_solver_matches_path_enumeration_for_oblivious_routers() {
        // The fixed-point solver and the path-enumeration rates must agree
        // to ≤ 1e-9 wherever both apply: greedy (single path), randomized
        // greedy (genuine two-way splits), torus greedy (wrap frame), and
        // a non-uniform destination distribution.
        use crate::dest::{NearbyWalk, UniformDest};
        use crate::greedy::GreedyXY;
        use crate::randomized::RandomizedGreedy;
        use crate::rates::{all_nodes, edge_rates_weighted};
        use crate::torus::TorusGreedy;
        use meshbound_topology::Torus2D;

        fn check(label: &str, solved: &[f64], enumerated: &[f64]) {
            assert_eq!(solved.len(), enumerated.len());
            for (i, (a, b)) in solved.iter().zip(enumerated).enumerate() {
                assert!((a - b).abs() <= 1e-9, "{label} edge {i}: {a} vs {b}");
            }
        }

        let mesh = Mesh2D::square(5);
        let sources = all_nodes(&mesh);
        let per = vec![0.3; sources.len()];
        check(
            "greedy/uniform",
            &adaptive_edge_rates(
                &mesh,
                &GreedyXY,
                &UniformDest,
                &per,
                &sources,
                1e-13,
                10_000,
            )
            .unwrap(),
            &edge_rates_weighted(&mesh, &GreedyXY, &UniformDest, &per, &sources),
        );
        let nearby = NearbyWalk::new(0.5);
        check(
            "greedy/nearby",
            &adaptive_edge_rates(&mesh, &GreedyXY, &nearby, &per, &sources, 1e-13, 10_000).unwrap(),
            &edge_rates_weighted(&mesh, &GreedyXY, &nearby, &per, &sources),
        );
        check(
            "randomized/uniform",
            &adaptive_edge_rates(
                &mesh,
                &RandomizedGreedy,
                &UniformDest,
                &per,
                &sources,
                1e-13,
                10_000,
            )
            .unwrap(),
            &edge_rates_weighted(&mesh, &RandomizedGreedy, &UniformDest, &per, &sources),
        );
        let torus = Torus2D::new(5);
        let tsources = all_nodes(&torus);
        let tper = vec![0.2; tsources.len()];
        check(
            "torus/uniform",
            &adaptive_edge_rates(
                &torus,
                &TorusGreedy,
                &UniformDest,
                &tper,
                &tsources,
                1e-13,
                10_000,
            )
            .unwrap(),
            &edge_rates_weighted(&torus, &TorusGreedy, &UniformDest, &tper, &tsources),
        );
    }

    #[test]
    fn adaptive_solver_conserves_flow_for_turn_models() {
        // Equal-split models for west-first and odd-even: total external
        // injection must equal λ · Σ_{s,d} weight(s,d) worth of first hops,
        // and every edge rate must be nonnegative and finite.
        use crate::dest::UniformDest;
        use crate::oddeven::OddEven;
        use crate::rates::{all_nodes, total_rate};
        use crate::westfirst::WestFirst;

        let mesh = Mesh2D::square(6);
        let sources = all_nodes(&mesh);
        let per = vec![0.4; sources.len()];
        let wf = adaptive_edge_rates(
            &mesh,
            &WestFirst,
            &UniformDest,
            &per,
            &sources,
            1e-13,
            10_000,
        )
        .unwrap();
        let oe = adaptive_edge_rates(&mesh, &OddEven, &UniformDest, &per, &sources, 1e-13, 10_000)
            .unwrap();
        // Both are minimal routers over the same demand, so the *total*
        // edge-crossing rate (λ × mean distance × sources) is identical.
        assert!((total_rate(&wf) - total_rate(&oe)).abs() < 1e-9);
        for rates in [&wf, &oe] {
            assert!(rates.iter().all(|r| r.is_finite() && *r >= 0.0));
        }
    }

    #[test]
    #[should_panic(expected = "row sum")]
    fn validate_rejects_superstochastic_rows() {
        let bad = MarkovRouting {
            external: vec![1.0, 0.0],
            transitions: vec![vec![(EdgeId(1), 0.7), (EdgeId(1), 0.7)], vec![]],
        };
        bad.validate();
    }
}
