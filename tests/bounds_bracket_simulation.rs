//! End-to-end check: on a grid of array sizes and loads, the simulated
//! delay is bracketed by the paper's lower and upper bounds, and tracks the
//! M/D/1 estimate.

use meshbound::{BoundsReport, Load, Scenario};

fn simulate(n: usize, rho: f64, seed: u64) -> f64 {
    Scenario::mesh(n)
        .load(Load::TableRho(rho))
        .horizon((2_000.0 / (1.0 - rho)).min(20_000.0))
        .warmup((400.0 / (1.0 - rho)).min(4_000.0))
        .seed(seed)
        .run()
        .avg_delay
}

#[test]
fn bounds_bracket_simulation_across_grid() {
    for &n in &[4usize, 5, 8, 9] {
        for &rho in &[0.3, 0.6, 0.85] {
            let report = BoundsReport::compute(n, Load::TableRho(rho));
            let t = simulate(n, rho, 1000 + n as u64);
            assert!(
                report.lower_best <= t * 1.05,
                "n={n}, ρ={rho}: lower {} vs sim {t}",
                report.lower_best
            );
            assert!(
                t <= report.upper * 1.05,
                "n={n}, ρ={rho}: sim {t} vs upper {}",
                report.upper
            );
        }
    }
}

#[test]
fn simulation_between_the_two_estimate_forms_at_moderate_load() {
    // §4.2: the paper's printed estimate (no residual term) undershoots,
    // the textbook independence estimate overshoots, at loads where the
    // independence assumption is decent.
    for &(n, rho) in &[(5usize, 0.5), (10, 0.5)] {
        let report = BoundsReport::compute(n, Load::TableRho(rho));
        let t = simulate(n, rho, 77);
        assert!(
            report.est_paper <= t * 1.08,
            "n={n}: paper est {} vs sim {t}",
            report.est_paper
        );
        assert!(
            t <= report.est_md1 * 1.08,
            "n={n}: sim {t} vs textbook est {}",
            report.est_md1
        );
    }
}

#[test]
fn dependence_helps_at_heavy_load() {
    // §4.2's observation: "in heavily loaded networks assuming independence
    // overestimates T" — the simulation falls clearly below both estimate
    // forms at ρ = 0.9 for n ≥ 10.
    let report = BoundsReport::compute(10, Load::TableRho(0.9));
    let t = simulate(10, 0.9, 4242);
    assert!(
        t < report.est_paper,
        "sim {t} should undershoot estimate {}",
        report.est_paper
    );
}

#[test]
fn delay_grows_monotonically_with_load() {
    let mut prev = 0.0;
    for &rho in &[0.2, 0.5, 0.8, 0.9] {
        let t = simulate(8, rho, 5);
        assert!(t > prev, "ρ={rho}: {t} ≤ {prev}");
        prev = t;
    }
}
