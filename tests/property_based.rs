//! Workspace-level property tests tying the crates together.

use meshbound::queueing::remaining::remaining_saturated_count;
use meshbound::queueing::thm14_lower;
use meshbound::routing::{GreedyXY, RandomizedGreedy, Router};
use meshbound::topology::layering::{greedy_path, lemma2_label};
use meshbound::topology::{Mesh2D, NodeId};
use meshbound::{BoundsReport, Load};
use proptest::prelude::*;

proptest! {
    #[test]
    fn bounds_ordering_holds_everywhere(n in 3usize..20, rho_milli in 10u32..990) {
        let rho = f64::from(rho_milli) / 1000.0;
        let r = BoundsReport::compute(n, Load::TableRho(rho));
        prop_assert!(r.lower_best <= r.upper);
        prop_assert!(r.est_paper <= r.est_md1 + 1e-12);
        prop_assert!(r.est_md1 <= r.upper + 1e-12);
        prop_assert!(r.lower_trivial <= r.lower_best);
        prop_assert!(r.lower_thm10 <= r.lower_thm12 + 1e-12);
    }

    #[test]
    fn greedy_routes_are_layered(n in 2usize..10, a in 0u32..100, b in 0u32..100) {
        let mesh = Mesh2D::square(n);
        let nn = (n * n) as u32;
        let src = NodeId(a % nn);
        let dst = NodeId(b % nn);
        let path = greedy_path(&mesh, mesh.coords(src), mesh.coords(dst));
        for w in path.windows(2) {
            prop_assert!(lemma2_label(&mesh, w[1]) > lemma2_label(&mesh, w[0]));
        }
    }

    #[test]
    fn saturated_count_never_exceeds_parity_cap(n in 2usize..12, a in 0u32..200, b in 0u32..200) {
        let mesh = Mesh2D::square(n);
        let nn = (n * n) as u32;
        let cap = if n % 2 == 0 { 2 } else { 4 };
        let count = remaining_saturated_count(&mesh, NodeId(a % nn), NodeId(b % nn));
        prop_assert!(count <= cap, "count {count} exceeds parity cap {cap}");
    }

    #[test]
    fn saturated_count_capped_and_thm14_monotone_in_rho(
        n in 2usize..12,
        a in 0u32..200,
        b in 0u32..200,
        rho_a_milli in 10u32..970,
        rho_b_milli in 10u32..970,
    ) {
        let mesh = Mesh2D::square(n);
        let nn = (n * n) as u32;

        // The per-route saturated count is trivially bounded by the node
        // count n² (the tight parity cap 2/4 is checked separately above).
        let count = remaining_saturated_count(&mesh, NodeId(a % nn), NodeId(b % nn));
        prop_assert!(count <= n * n, "count {count} exceeds n² = {}", n * n);

        // `remaining_saturated_count` itself is load-free; the ρ-dependent
        // quantity built on it is Theorem 14's saturated-edge lower bound,
        // which must be monotone non-decreasing in ρ (each saturated queue
        // only grows with load while the copy factor s̄ is fixed).
        let (lo, hi) = if rho_a_milli <= rho_b_milli {
            (rho_a_milli, rho_b_milli)
        } else {
            (rho_b_milli, rho_a_milli)
        };
        let t_lo = thm14_lower(n, Load::TableRho(f64::from(lo) / 1000.0).lambda(n));
        let t_hi = thm14_lower(n, Load::TableRho(f64::from(hi) / 1000.0).lambda(n));
        prop_assert!(
            t_lo <= t_hi + 1e-9,
            "thm14 not monotone: ρ={} gives {t_lo}, ρ={} gives {t_hi}", lo, hi,
        );
    }

    #[test]
    fn randomized_routes_same_length_as_greedy(n in 2usize..9, a in 0u32..80, b in 0u32..80) {
        use meshbound::routing::Order;
        let mesh = Mesh2D::square(n);
        let nn = (n * n) as u32;
        let src = NodeId(a % nn);
        let dst = NodeId(b % nn);
        let g = GreedyXY.route(&mesh, src, dst, ());
        for order in [Order::ColumnFirst, Order::RowFirst] {
            let r = RandomizedGreedy.route(&mesh, src, dst, order);
            prop_assert_eq!(r.len(), g.len());
        }
    }

    #[test]
    fn gap_at_capacity_obeys_parity_constants(n in 4usize..24) {
        // Theorem 14 is a fixed-n, ρ → 1 limit: drive utilization close
        // enough that the finite-size correction (which grows with n) is
        // negligible, then check the limiting constants 2s̄ = 3 (even) or
        // 2s̄ < 6 (odd).
        let r = BoundsReport::compute(n, Load::Utilization(0.999_999));
        let cap = if n % 2 == 0 { 3.01 } else { 6.0 };
        prop_assert!(r.gap() <= cap, "n={n}: gap {} vs cap {cap}", r.gap());
        prop_assert!((r.gap() - 2.0 * r.sbar).abs() < 0.05,
            "n={n}: gap {} should approach 2s̄ = {}", r.gap(), 2.0 * r.sbar);
    }
}
