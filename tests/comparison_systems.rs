//! Integration tests for the comparison-network machinery: the PS/Jackson
//! dominance of Theorem 5 and the copy-system inequalities of Theorems 10
//! and 12, checked across sizes and loads.

use meshbound::queueing::remaining::dbar_closed;
use meshbound::queueing::single::md1_mean_number;
use meshbound::routing::dest::UniformDest;
use meshbound::routing::rates::mesh_thm6_rates;
use meshbound::routing::GreedyXY;
use meshbound::sim::copysys::CopySystemSim;
use meshbound::sim::network::{NetConfig, NetworkSim};
use meshbound::sim::ps::PsNetworkSim;
use meshbound::sim::ServiceKind;
use meshbound::topology::Mesh2D;

fn cfg(lambda: f64, seed: u64) -> NetConfig {
    NetConfig {
        lambda,
        horizon: 15_000.0,
        warmup: 1_500.0,
        seed,
        ..NetConfig::default()
    }
}

#[test]
fn theorem5_ps_dominates_fifo_across_loads() {
    for &(n, rho) in &[(4usize, 0.5), (5, 0.7), (6, 0.85)] {
        let lambda = 4.0 * rho / n as f64;
        let mesh = Mesh2D::square(n);
        let fifo = NetworkSim::new(mesh.clone(), GreedyXY, UniformDest, cfg(lambda, 11)).run();
        let ps = PsNetworkSim::new(mesh, GreedyXY, UniformDest, cfg(lambda, 11)).run();
        assert!(
            fifo.time_avg_n <= ps.time_avg_n * 1.02,
            "n={n}, ρ={rho}: FIFO {} vs PS {}",
            fifo.time_avg_n,
            ps.time_avg_n
        );
    }
}

#[test]
fn jackson_simulation_matches_product_form() {
    let n = 5;
    let lambda = 0.4;
    let mesh = Mesh2D::square(n);
    let mut c = cfg(lambda, 13);
    c.service = ServiceKind::Exponential;
    c.horizon = 30_000.0;
    let sim = NetworkSim::new(mesh.clone(), GreedyXY, UniformDest, c).run();
    let expect: f64 = mesh_thm6_rates(&mesh, lambda)
        .iter()
        .map(|&l| l / (1.0 - l))
        .sum();
    let rel = (sim.time_avg_n - expect).abs() / expect;
    assert!(
        rel < 0.08,
        "Jackson sim {} vs product form {expect}",
        sim.time_avg_n
    );
}

#[test]
fn copy_system_obeys_thm10_and_thm12() {
    for &(n, rho) in &[(4usize, 0.6), (5, 0.8)] {
        let lambda = 4.0 * rho / n as f64;
        let mesh = Mesh2D::square(n);
        let fifo = NetworkSim::new(mesh.clone(), GreedyXY, UniformDest, cfg(lambda, 17)).run();
        let copies = CopySystemSim::new(mesh.clone(), GreedyXY, UniformDest, cfg(lambda, 17)).run();
        let d = 2.0 * (n as f64 - 1.0);
        let dbar = dbar_closed(n);
        assert!(
            copies.time_avg_copies <= d * fifo.time_avg_n,
            "Thm 10 violated at n={n}, ρ={rho}"
        );
        assert!(
            copies.time_avg_copies <= dbar * fifo.time_avg_n,
            "Thm 12 violated at n={n}, ρ={rho}"
        );
        // And the copy population matches the analytic Σ M/D/1.
        let expect: f64 = mesh_thm6_rates(&mesh, lambda)
            .iter()
            .map(|&l| md1_mean_number(l))
            .sum();
        let rel = (copies.time_avg_copies - expect).abs() / expect;
        assert!(
            rel < 0.08,
            "n={n}: copies {} vs Σ M/D/1 {expect}",
            copies.time_avg_copies
        );
    }
}

#[test]
fn service_variance_ordering() {
    // Deterministic service beats exponential service at equal rates
    // (the factor behind Lemma 9), visible directly in simulation.
    let n = 5;
    let lambda = 0.5;
    let mesh = Mesh2D::square(n);
    let det = NetworkSim::new(mesh.clone(), GreedyXY, UniformDest, cfg(lambda, 19)).run();
    let mut c = cfg(lambda, 19);
    c.service = ServiceKind::Exponential;
    let exp = NetworkSim::new(mesh, GreedyXY, UniformDest, c).run();
    assert!(
        det.avg_delay < exp.avg_delay,
        "det {} vs exp {}",
        det.avg_delay,
        exp.avg_delay
    );
}
