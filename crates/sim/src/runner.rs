//! High-level drivers: mesh convenience configuration and parallel
//! replications.
//!
//! The replication driver fans independent seeds out over Rayon (each
//! replication is a self-contained deterministic simulation) and aggregates
//! per-metric [`Summary`] statistics with Student-t confidence intervals.

use crate::network::{NetConfig, NetworkSim, SimResult};
use crate::rng::splitmix64;
use crate::service::ServiceKind;
use meshbound_queueing::remaining::saturated_edges;
use meshbound_routing::dest::{DestDist, NearbyWalk, UniformDest};
use meshbound_routing::{GreedyXY, RandomizedGreedy};
use meshbound_stats::Summary;
use meshbound_topology::Mesh2D;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Which mesh router to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MeshRouterKind {
    /// Standard greedy (column first, then row).
    Greedy,
    /// §6's randomized order variant.
    Randomized,
}

/// Configuration of a square-mesh simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MeshSimConfig {
    /// Mesh side `n`.
    pub n: usize,
    /// Per-node arrival rate λ (use `Load` from the queueing crate to
    /// convert Table-ρ).
    pub lambda: f64,
    /// Simulated end time.
    pub horizon: f64,
    /// Warmup discarded from statistics.
    pub warmup: f64,
    /// Master seed.
    pub seed: u64,
    /// Transmission-time distribution (deterministic = standard model,
    /// exponential = Jackson model).
    pub service: ServiceKind,
    /// Router choice.
    pub router: MeshRouterKind,
    /// Destination distribution.
    pub dest: DestDist,
    /// Count source-=-destination packets (delay 0) in the average.
    pub include_self_packets: bool,
    /// Track the remaining-saturated-services integral (Table III).
    pub track_saturated: bool,
    /// Optional per-edge service rates (§5.1).
    pub service_rates: Option<Vec<f64>>,
    /// Slotted-time width τ (§5.2); `None` = continuous time.
    pub slot: Option<f64>,
    /// Optional `N(t)` sampling interval.
    pub sample_every: Option<f64>,
    /// Track delay quantiles (median / p95 / p99) via reservoir sampling.
    pub delay_quantiles: bool,
    /// Track per-edge time-averaged queue lengths.
    pub track_edge_queues: bool,
}

impl Default for MeshSimConfig {
    fn default() -> Self {
        Self {
            n: 5,
            lambda: 0.1,
            horizon: 2_000.0,
            warmup: 200.0,
            seed: 1,
            service: ServiceKind::Deterministic,
            router: MeshRouterKind::Greedy,
            dest: DestDist::Uniform,
            include_self_packets: true,
            track_saturated: true,
            service_rates: None,
            slot: None,
            sample_every: None,
            delay_quantiles: false,
            track_edge_queues: false,
        }
    }
}

impl MeshSimConfig {
    fn net_config(&self) -> NetConfig {
        NetConfig {
            lambda: self.lambda,
            horizon: self.horizon,
            warmup: self.warmup,
            seed: self.seed,
            service: self.service,
            include_self_packets: self.include_self_packets,
            slot: self.slot,
            sample_every: self.sample_every,
            delay_quantiles: self.delay_quantiles,
            track_edge_queues: self.track_edge_queues,
        }
    }
}

/// Runs one mesh simulation described by `cfg`.
#[must_use]
pub fn simulate_mesh(cfg: &MeshSimConfig) -> SimResult {
    let mesh = Mesh2D::square(cfg.n);
    let sat = if cfg.track_saturated {
        saturated_edges(&mesh)
    } else {
        Vec::new()
    };
    macro_rules! run {
        ($router:expr, $dest:expr) => {{
            let mut sim = NetworkSim::new(mesh.clone(), $router, $dest, cfg.net_config())
                .with_saturated_edges(&sat);
            if let Some(rates) = &cfg.service_rates {
                sim = sim.with_service_rates(rates.clone());
            }
            sim.run()
        }};
    }
    match (cfg.router, cfg.dest) {
        (MeshRouterKind::Greedy, DestDist::Uniform) => run!(GreedyXY, UniformDest),
        (MeshRouterKind::Greedy, DestDist::Nearby { stop }) => {
            run!(GreedyXY, NearbyWalk::new(stop))
        }
        (MeshRouterKind::Randomized, DestDist::Uniform) => run!(RandomizedGreedy, UniformDest),
        (MeshRouterKind::Randomized, DestDist::Nearby { stop }) => {
            run!(RandomizedGreedy, NearbyWalk::new(stop))
        }
    }
}

/// Aggregated replication statistics for a mesh experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplicatedResult {
    /// Per-replication raw results.
    pub runs: Vec<SimResult>,
    /// Mean delay across replications.
    pub delay: Summary,
    /// Time-average `N` across replications.
    pub n: Summary,
    /// `r = E[R]/E[N]` across replications.
    pub r_ratio: Summary,
    /// `r_s = E[R_s]/E[N]` across replications.
    pub rs_ratio: Summary,
}

/// Runs `reps` independent replications of `cfg` in parallel (one derived
/// seed per replication) and aggregates the headline metrics.
#[must_use]
pub fn simulate_mesh_replicated(cfg: &MeshSimConfig, reps: usize) -> ReplicatedResult {
    assert!(reps >= 1);
    let runs: Vec<SimResult> = (0..reps)
        .into_par_iter()
        .map(|i| {
            let mut c = cfg.clone();
            c.seed = splitmix64(cfg.seed ^ (i as u64).wrapping_mul(0x9E37_79B9));
            simulate_mesh(&c)
        })
        .collect();
    let mut delay = Summary::new();
    let mut n = Summary::new();
    let mut r_ratio = Summary::new();
    let mut rs_ratio = Summary::new();
    for r in &runs {
        delay.push(r.avg_delay);
        n.push(r.time_avg_n);
        r_ratio.push(r.r_ratio);
        rs_ratio.push(r.rs_ratio);
    }
    ReplicatedResult {
        runs,
        delay,
        n,
        r_ratio,
        rs_ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replications_have_distinct_seeds_and_tight_summary() {
        let cfg = MeshSimConfig {
            n: 4,
            lambda: 0.1,
            horizon: 3_000.0,
            warmup: 300.0,
            ..MeshSimConfig::default()
        };
        let rep = simulate_mesh_replicated(&cfg, 4);
        assert_eq!(rep.runs.len(), 4);
        // Distinct seeds → distinct results.
        assert!(rep.runs.windows(2).any(|w| w[0].avg_delay != w[1].avg_delay));
        // The summary mean lies within the per-run envelope.
        let lo = rep.runs.iter().map(|r| r.avg_delay).fold(f64::INFINITY, f64::min);
        let hi = rep
            .runs
            .iter()
            .map(|r| r.avg_delay)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(rep.delay.mean() >= lo && rep.delay.mean() <= hi);
    }

    #[test]
    fn randomized_router_runs() {
        let cfg = MeshSimConfig {
            n: 4,
            lambda: 0.15,
            horizon: 2_000.0,
            warmup: 200.0,
            router: MeshRouterKind::Randomized,
            ..MeshSimConfig::default()
        };
        let res = simulate_mesh(&cfg);
        assert!(res.avg_delay > 0.0);
        assert!(res.completed > 0);
    }

    #[test]
    fn nearby_dest_shortens_delay() {
        let base = MeshSimConfig {
            n: 6,
            lambda: 0.1,
            horizon: 6_000.0,
            warmup: 500.0,
            ..MeshSimConfig::default()
        };
        let uniform = simulate_mesh(&base);
        let nearby = simulate_mesh(&MeshSimConfig {
            dest: DestDist::Nearby { stop: 0.5 },
            ..base
        });
        assert!(
            nearby.avg_delay < uniform.avg_delay,
            "nearby {} vs uniform {}",
            nearby.avg_delay,
            uniform.avg_delay
        );
    }
}
