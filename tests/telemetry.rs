//! Telemetry contract tests: probes observe, never perturb.
//!
//! The hard guarantee of the telemetry subsystem is that a probed run is
//! bit-identical to an unprobed one on every engine — probe events read
//! state and schedule their successor, nothing else. These tests pin that
//! across topologies and engines, exercise the `probes=` grammar (whose
//! value is itself comma-joined, stressing the spec parser's
//! comma-continuation rule), and observe the paper's stability boundary
//! dynamically: N(t) diverges past the threshold and flattens below it.

use meshbound::sim::SimResult;
use meshbound::{EngineSpec, ProbeSpec, Scenario, TELEMETRY_SCHEMA};

/// Bitwise comparison of every deterministic `SimResult` field shared by
/// probed and unprobed runs (`events_per_sec` is wall clock; `telemetry`
/// is the probed run's extra output).
fn assert_unperturbed(label: &str, off: &SimResult, on: &SimResult) {
    let f = f64::to_bits;
    assert_eq!(f(off.avg_delay), f(on.avg_delay), "{label}: avg_delay");
    assert_eq!(
        f(off.delay_std_err),
        f(on.delay_std_err),
        "{label}: std_err"
    );
    assert_eq!(off.generated, on.generated, "{label}: generated");
    assert_eq!(off.completed, on.completed, "{label}: completed");
    assert_eq!(off.dropped, on.dropped, "{label}: dropped");
    assert_eq!(f(off.time_avg_n), f(on.time_avg_n), "{label}: time_avg_n");
    assert_eq!(f(off.time_avg_r), f(on.time_avg_r), "{label}: time_avg_r");
    assert_eq!(
        f(off.time_avg_rs),
        f(on.time_avg_rs),
        "{label}: time_avg_rs"
    );
    assert_eq!(f(off.r_ratio), f(on.r_ratio), "{label}: r_ratio");
    assert_eq!(f(off.rs_ratio), f(on.rs_ratio), "{label}: rs_ratio");
    assert_eq!(f(off.little_delay), f(on.little_delay), "{label}: little");
    assert_eq!(
        f(off.max_edge_utilization),
        f(on.max_edge_utilization),
        "{label}: max_edge_utilization"
    );
    assert_eq!(f(off.final_n), f(on.final_n), "{label}: final_n");
    assert_eq!(f(off.peak_n), f(on.peak_n), "{label}: peak_n");
    assert_eq!(
        off.events_processed, on.events_processed,
        "{label}: events_processed (probe ticks must not leak into the count)"
    );
    assert_eq!(off.n_samples, on.n_samples, "{label}: n_samples");
    for (i, (x, y)) in off
        .edge_throughput
        .iter()
        .zip(&on.edge_throughput)
        .enumerate()
    {
        assert_eq!(f(*x), f(*y), "{label}: edge_throughput[{i}]");
    }
    assert!(
        off.telemetry.is_none(),
        "{label}: unprobed run has telemetry"
    );
    assert!(on.telemetry.is_some(), "{label}: probed run lost telemetry");
}

#[test]
fn probes_do_not_perturb_any_engine() {
    // Three topology families × (calendar, sharded:2); sharded runs need
    // deterministic service, which is the default.
    for base in ["mesh:4", "torus:4", "hypercube:3"] {
        let spec = format!("{base},util=0.6,horizon=300,warmup=30,sample=5");
        for engine in [EngineSpec::Calendar, EngineSpec::Sharded { shards: 2 }] {
            let sc = Scenario::parse(&spec).unwrap().engine(engine);
            let off = sc.clone().run();
            let on = sc
                .clone()
                .probes(ProbeSpec::parse_token("all").unwrap().unwrap())
                .run();
            let label = format!("{spec} [{engine}]");
            assert_unperturbed(&label, &off, &on);
            let report = on.telemetry.unwrap();
            assert_eq!(report.schema, TELEMETRY_SCHEMA);
            let names: Vec<&str> = report.series.iter().map(|s| s.name.as_str()).collect();
            assert!(names.contains(&"nsys"), "{label}: {names:?}");
            assert!(names.contains(&"maxq"), "{label}: {names:?}");
            assert!(names.contains(&"shard0:events"), "{label}: {names:?}");
            if matches!(engine, EngineSpec::Sharded { .. }) {
                // Per-shard load-balance series, one triple per shard.
                assert!(names.contains(&"shard1:events"), "{label}: {names:?}");
                assert!(names.contains(&"shard1:cut"), "{label}: {names:?}");
            }
            // Every series sampled on the common tick schedule.
            let ticks = report.series[0].samples.len();
            assert!(ticks > 0, "{label}: no samples");
            for s in &report.series {
                assert_eq!(s.samples.len(), ticks, "{label}: {} off-tick", s.name);
            }
        }
    }
}

#[test]
fn probe_clause_survives_comma_continuation_and_round_trips() {
    // The `probes=` value is itself comma-joined, so in the comma-separated
    // scenario form `maxq` lands in its own part and must be folded back.
    let sc = Scenario::parse("mesh:4,probes=nsys,maxq@5,util=0.5").unwrap();
    let probes = sc.probes.expect("probes parsed");
    assert!(probes.nsys && probes.maxq);
    assert!(!(probes.drops || probes.delivered || probes.shards));
    assert_eq!(probes.every, Some(5.0));
    // Canonical spec string round-trips through the parser.
    let again = Scenario::parse(&sc.spec_string()).unwrap();
    assert_eq!(again, sc);
    assert!(sc.spec_string().contains("probes=nsys,maxq@5"));
    // Whitespace form and `probes=none` (explicit off) both round-trip.
    let ws = Scenario::parse("mesh:4 probes=drops,delivered util=0.5").unwrap();
    assert!(ws.probes.unwrap().drops);
    let off = Scenario::parse("mesh:4,probes=none,util=0.5").unwrap();
    assert_eq!(off.probes, None);
    assert!(!off.spec_string().contains("probes"));
}

#[test]
fn nsys_series_sees_the_stability_boundary() {
    // The paper's instability signature, observed dynamically: transpose
    // traffic on an 8×8 mesh diverges at table-ρ 0.9 (utilization > 1)
    // while ρ = 0.2 (utilization 0.75) settles. Compare the retained
    // N(t) sample nearest the warmup boundary with the final one.
    let ratio = |rho: f64| {
        let sc = Scenario::parse(&format!(
            "mesh:8 traffic=transpose load=rho:{rho} horizon=800 warmup=80 probes=nsys"
        ))
        .unwrap();
        let report = sc.run().telemetry.unwrap();
        let nsys = &report.series[0];
        let at_warmup = nsys
            .samples
            .iter()
            .find(|(t, _)| *t >= 80.0)
            .expect("sample past warmup")
            .1;
        let final_v = nsys.samples.last().unwrap().1;
        final_v / at_warmup.max(1.0)
    };
    let diverging = ratio(0.9);
    let settled = ratio(0.2);
    assert!(diverging > 5.0, "overloaded N(t) ratio {diverging} not > 5");
    assert!(settled < 2.0, "stable N(t) ratio {settled} not < 2");
}

#[test]
fn telemetry_cli_writes_report_and_renders_timeline() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let out = std::env::temp_dir().join(format!(
        "meshbound_telemetry_cli_test_{}.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&out);
    let output = std::process::Command::new(&cargo)
        .args([
            "run",
            "--release",
            "-p",
            "meshbound_bench",
            "--bin",
            "repro",
            "--",
            "--progress",
            "scenario",
            "mesh:4,util=0.5,horizon=200,warmup=20,probes=nsys,maxq",
            "--telemetry",
        ])
        .arg(&out)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("spawn cargo run repro");
    assert!(
        output.status.success(),
        "repro scenario --telemetry failed\nstdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    // `--progress` auto-disables when stderr is a pipe: no carriage
    // returns may pollute captured logs.
    assert!(
        !String::from_utf8_lossy(&output.stderr).contains('\r'),
        "progress line leaked to a non-TTY stderr"
    );
    let json = std::fs::read_to_string(&out).expect("telemetry JSON written");
    assert!(json.contains("\"schema\": \"meshbound.telemetry/v1\""));
    assert!(json.contains("\"name\": \"nsys\""));
    let _ = std::fs::remove_file(&out);

    let timeline = std::process::Command::new(&cargo)
        .args([
            "run",
            "--release",
            "-p",
            "meshbound_bench",
            "--bin",
            "repro",
            "--",
            "timeline",
            "mesh:4,util=0.5,horizon=200,warmup=20",
        ])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("spawn cargo run repro timeline");
    assert!(timeline.status.success());
    let text = String::from_utf8_lossy(&timeline.stdout);
    assert!(text.contains("telemetry meshbound.telemetry/v1"));
    assert!(text.contains("nsys") && text.contains("shard0:events"));
}
