//! Offline stand-in for `serde_derive`.
//!
//! `#[derive(Serialize)]` expands to a real implementation of the vendored
//! `serde::Serialize` trait (JSON output). The expansion is produced by a
//! small hand-rolled token parser — the container has no `syn`/`quote` — so
//! it supports exactly the shapes this workspace uses:
//!
//! * structs with named fields → JSON objects in declaration order;
//! * tuple structs: newtypes serialize transparently, wider tuples as
//!   arrays; unit structs as `null`;
//! * enums, externally tagged like real serde: unit variants as `"Name"`,
//!   one-field tuple variants as `{"Name": value}`, wider tuple variants as
//!   `{"Name": [..]}`, struct variants as `{"Name": {..}}`.
//!
//! Generic types, unions and attribute-driven customization
//! (`#[serde(...)]`) are unsupported and panic at expansion time with a
//! clear message. `#[derive(Deserialize)]` remains a no-op marker — nothing
//! in-tree parses JSON back.
//!
//! When the real `serde` becomes available, delete `vendor/` and point the
//! workspace dependency back at crates.io — derive call sites need no
//! source change.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// How a struct or enum variant stores its fields.
enum Fields {
    /// No fields (`struct Marker;` or a unit variant).
    Unit,
    /// Parenthesized fields; the payload is the field count.
    Tuple(usize),
    /// Braced fields, by name, in declaration order.
    Named(Vec<String>),
}

/// The parsed derive input.
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

/// Expands `#[derive(Serialize)]` into a `serde::Serialize` impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct { name, fields } => struct_impl(&name, &fields),
        Item::Enum { name, variants } => enum_impl(&name, &variants),
    };
    code.parse()
        .expect("serde_derive generated invalid Rust; this is a bug in the vendored derive")
}

/// No-op marker replacement for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

// ----------------------------------------------------------------------
// Parsing.
// ----------------------------------------------------------------------

/// Consumes leading `#[...]` attributes, panicking on `#[serde(...)]`:
/// customization the stand-in cannot honor must fail loudly rather than
/// silently diverge from real serde.
fn skip_attributes<I: Iterator<Item = TokenTree>>(tokens: &mut std::iter::Peekable<I>) {
    while let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() != '#' {
            break;
        }
        tokens.next();
        if let Some(TokenTree::Group(g)) = tokens.next() {
            if let Some(TokenTree::Ident(id)) = g.stream().into_iter().next() {
                if id.to_string() == "serde" {
                    panic!(
                        "serde_derive: #[serde(...)] attributes are not supported by the \
                         offline stand-in"
                    );
                }
            }
        }
    }
}

/// Consumes an optional `pub` / `pub(...)` visibility prefix.
fn skip_visibility<I: Iterator<Item = TokenTree>>(tokens: &mut std::iter::Peekable<I>) {
    if let Some(TokenTree::Ident(id)) = tokens.peek() {
        if id.to_string() == "pub" {
            tokens.next();
            if let Some(TokenTree::Group(g)) = tokens.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    tokens.next();
                }
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    // Outer attributes (doc comments included) and visibility precede the
    // item keyword.
    skip_attributes(&mut tokens);
    skip_visibility(&mut tokens);
    let keyword = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive: generic type `{name}` is not supported by the offline stand-in");
        }
    }
    match keyword.as_str() {
        "struct" => {
            let fields = match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde_derive: unsupported struct body for `{name}`: {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive: expected enum body for `{name}`, found {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde_derive: `{other}` items are not supported"),
    }
}

/// Field names of a braced field list, skipping attributes, visibility and
/// type tokens. Commas inside angle brackets or delimiter groups do not
/// split fields.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut names = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        skip_attributes(&mut tokens);
        skip_visibility(&mut tokens);
        let Some(TokenTree::Ident(field)) = tokens.next() else {
            break;
        };
        names.push(field.to_string());
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field `{field}`, found {other:?}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut angle = 0i32;
        loop {
            match tokens.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => angle -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle == 0 => break,
                Some(_) => {}
                None => return names,
            }
        }
    }
    names
}

/// Number of fields in a parenthesized field list (top-level commas only).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_token = false;
    let mut angle = 0i32;
    for tt in stream {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                count += 1;
                saw_token = false;
                continue;
            }
            _ => {}
        }
        saw_token = true;
    }
    if saw_token {
        count += 1;
    }
    count
}

/// Variant list of an enum body.
fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        skip_attributes(&mut tokens);
        let Some(TokenTree::Ident(variant)) = tokens.next() else {
            break;
        };
        let name = variant.to_string();
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream()));
                tokens.next();
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                tokens.next();
                f
            }
            _ => Fields::Unit,
        };
        variants.push((name, fields));
        // Skip an explicit discriminant, then the trailing comma.
        loop {
            match tokens.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                Some(_) => {}
                None => return variants,
            }
        }
    }
    variants
}

// ----------------------------------------------------------------------
// Code generation.
// ----------------------------------------------------------------------

/// Shared impl header; `allow(deprecated)` keeps derives on deprecated
/// types warning-free under `-D warnings`.
fn impl_header(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         #[allow(deprecated, clippy::all)]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self, w: &mut ::serde::json::Writer) {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}

fn struct_impl(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Unit => "w.null();".to_string(),
        Fields::Tuple(1) => "self.0.serialize(w);".to_string(),
        Fields::Tuple(n) => {
            let mut b = String::from("w.begin_array();\n");
            for i in 0..*n {
                b.push_str(&format!("self.{i}.serialize(w);\n"));
            }
            b.push_str("w.end_array();");
            b
        }
        Fields::Named(names) => {
            let mut b = String::from("w.begin_object();\n");
            for f in names {
                b.push_str(&format!("w.field(\"{f}\", &self.{f});\n"));
            }
            b.push_str("w.end_object();");
            b
        }
    };
    impl_header(name, &body)
}

fn enum_impl(name: &str, variants: &[(String, Fields)]) -> String {
    let mut arms = String::new();
    for (variant, fields) in variants {
        match fields {
            Fields::Unit => {
                arms.push_str(&format!("{name}::{variant} => w.string(\"{variant}\"),\n"));
            }
            Fields::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                let mut body = format!("w.begin_object();\nw.key(\"{variant}\");\n");
                if *n == 1 {
                    body.push_str("__f0.serialize(w);\n");
                } else {
                    body.push_str("w.begin_array();\n");
                    for b in &binds {
                        body.push_str(&format!("{b}.serialize(w);\n"));
                    }
                    body.push_str("w.end_array();\n");
                }
                body.push_str("w.end_object();");
                arms.push_str(&format!(
                    "{name}::{variant}({}) => {{ {body} }}\n",
                    binds.join(", ")
                ));
            }
            Fields::Named(names) => {
                // Bind fields under `__f_`-prefixed names so a field that
                // happens to be called `w` cannot shadow the writer.
                let mut body =
                    format!("w.begin_object();\nw.key(\"{variant}\");\nw.begin_object();\n");
                for f in names {
                    body.push_str(&format!("w.field(\"{f}\", __f_{f});\n"));
                }
                body.push_str("w.end_object();\nw.end_object();");
                let binds: Vec<String> = names.iter().map(|f| format!("{f}: __f_{f}")).collect();
                arms.push_str(&format!(
                    "{name}::{variant} {{ {} }} => {{ {body} }}\n",
                    binds.join(", ")
                ));
            }
        }
    }
    impl_header(name, &format!("match self {{\n{arms}}}"))
}
