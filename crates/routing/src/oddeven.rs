//! Odd-even minimal-adaptive routing on the 2-D grid.
//!
//! Chiu's odd-even turn model forbids East→North and East→South turns at
//! nodes in **even** columns, and North→West and South→West turns at nodes
//! in **odd** columns. Unlike west-first, the restriction is spread evenly
//! over the grid, so the adaptivity left to a packet does not collapse for
//! whole classes of source/destination pairs — which is why odd-even is
//! the standard baseline for adaptive mesh routing.
//!
//! The minimal-adaptive candidate set at `(r, c)` for a packet from source
//! column `c_s` headed to `(r_d, c_d)` follows from the two rules:
//!
//! * **eastbound** (`Δc > 0`): a vertical move is permitted iff `c` is odd
//!   or `c = c_s` (in an even non-source column the packet must have
//!   entered horizontally, so its first vertical move would be a forbidden
//!   EN/ES turn); East is permitted iff `c_d` is odd or `Δc ≠ 1` (landing
//!   in an even destination column with rows left to correct would force a
//!   forbidden turn there);
//! * **westbound** (`Δc < 0`): West is always permitted; a vertical move
//!   is permitted iff `c` is even (the later NW/SW turn back West happens
//!   in this column);
//! * `Δc = 0`: the vertical move toward the destination.
//!
//! On the mesh the eastbound candidate set is never empty (both rules
//! failing would need `c` and `c_d = c + 1` both even). On the torus —
//! where the model runs in the shortest-wrap displacement frame — an odd
//! side length breaks the column-parity alternation at the wrap seam, and
//! that corner case *can* empty the set; the router then falls back to the
//! minimal East hop. As with west-first, the torus variant is a
//! congestion-avoidance heuristic, not a finite-buffer deadlock-freedom
//! proof.

use crate::grid::{vertical_toward, HopSet, TurnGrid};
use crate::policy::{LocalView, SplitRouting};
use crate::router::Router;
use meshbound_topology::{Direction, EdgeId, Mesh2D, NodeId, Torus2D};
use rand::rngs::SmallRng;

/// Odd-even minimal-adaptive routing (Chiu's turn model).
///
/// Per-packet state is the source column (the rules treat the source
/// column specially); [`Router::init_state`] records it without drawing
/// from the RNG, so adding this router never perturbs a scenario's random
/// streams. At each hop the packet takes the permitted productive out-edge
/// with the shortest local queue ([`LocalView`]), ties preferring the
/// horizontal move.
///
/// # Examples
///
/// ```
/// use meshbound_topology::{Mesh2D, Topology};
/// use meshbound_routing::{OddEven, Router};
/// let mesh = Mesh2D::square(6);
/// let route = OddEven.route(&mesh, mesh.node(0, 0), mesh.node(4, 3), 0);
/// assert_eq!(route.len(), 7); // minimal
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OddEven;

impl OddEven {
    /// The permitted productive hops at `cur` (see the module docs for the
    /// derivation), horizontal candidate first.
    pub(crate) fn candidates<G: TurnGrid>(
        topo: &G,
        cur: NodeId,
        dst: NodeId,
        src_col: usize,
    ) -> HopSet {
        let (dr, dc) = topo.deltas(cur, dst);
        let col = topo.col_of(cur);
        let dst_col = topo.col_of(dst);
        let mut out = HopSet::default();
        if dc > 0 {
            if dr == 0 || dst_col % 2 == 1 || dc != 1 {
                out.push_dir(topo, cur, Direction::Right);
            }
            if dr != 0 && (col % 2 == 1 || col == src_col) {
                out.push_dir(topo, cur, vertical_toward(dr));
            }
            if out.first().is_none() {
                // Torus-only corner case: the wrap seam of an odd-sided
                // torus can make both `col` and the adjacent destination
                // column even. Fall back to the minimal East hop rather
                // than stall.
                out.push_dir(topo, cur, Direction::Right);
            }
        } else if dc < 0 {
            out.push_dir(topo, cur, Direction::Left);
            if dr != 0 && col.is_multiple_of(2) {
                out.push_dir(topo, cur, vertical_toward(dr));
            }
        } else if dr != 0 {
            out.push_dir(topo, cur, vertical_toward(dr));
        }
        out
    }

    /// Source column for the solver's branching model, inferred from the
    /// arrival edge: at the source (`prev = None`) it is the current
    /// column; after a horizontal hop the current column cannot be the
    /// source column (column movement is monotone); after a vertical hop
    /// the packet has never left its column *if* that column is even (in
    /// an odd column the rules never consult the source column, so the
    /// value is immaterial).
    fn inferred_src_col<G: TurnGrid>(topo: &G, prev: Option<EdgeId>, here: NodeId) -> usize {
        match prev {
            None => topo.col_of(here),
            Some(e) => match topo.edge_dir(e) {
                Direction::Right | Direction::Left => usize::MAX,
                Direction::Down | Direction::Up => topo.col_of(here),
            },
        }
    }
}

macro_rules! impl_odd_even {
    ($topo:ty) => {
        impl Router<$topo> for OddEven {
            /// The packet's source column.
            type State = u32;

            #[inline]
            fn init_state(&self, topo: &$topo, src: NodeId, _: NodeId, _: &mut SmallRng) -> u32 {
                topo.col_of(src) as u32
            }

            #[inline]
            fn next_edge(
                &self,
                topo: &$topo,
                cur: NodeId,
                dst: NodeId,
                src_col: u32,
            ) -> Option<EdgeId> {
                Self::candidates(topo, cur, dst, src_col as usize).first()
            }

            #[inline]
            fn next_hop(
                &self,
                topo: &$topo,
                here: NodeId,
                dst: NodeId,
                src_col: u32,
                local: &dyn LocalView,
            ) -> Option<EdgeId> {
                Self::candidates(topo, here, dst, src_col as usize).least_occupied(local)
            }

            #[inline]
            fn remaining_hops(&self, topo: &$topo, cur: NodeId, dst: NodeId, _: u32) -> usize {
                topo.hop_distance(cur, dst)
            }
        }

        impl SplitRouting<$topo> for OddEven {
            fn splits(
                &self,
                topo: &$topo,
                prev: Option<EdgeId>,
                here: NodeId,
                dst: NodeId,
            ) -> Vec<(EdgeId, f64)> {
                let src_col = Self::inferred_src_col(topo, prev, here);
                Self::candidates(topo, here, dst, src_col).equal_splits()
            }
        }
    };
}

impl_odd_even!(Mesh2D);
impl_odd_even!(Torus2D);

#[cfg(test)]
mod tests {
    use super::*;
    use meshbound_topology::Topology;

    struct QueueMap(Vec<u32>);

    impl LocalView for QueueMap {
        fn queue_len(&self, e: EdgeId) -> u32 {
            self.0[e.index()]
        }
    }

    /// Walks the canonical route and checks every consecutive hop pair
    /// against the two odd-even rules.
    fn assert_no_forbidden_turn(m: &Mesh2D, src: NodeId, dst: NodeId) {
        let route = OddEven.route(m, src, dst, m.coords(src).1 as u32);
        assert_eq!(route.len(), m.manhattan(src, dst), "{src}->{dst} minimal");
        for pair in route.windows(2) {
            let from = m.direction(pair[0]);
            let to = m.direction(pair[1]);
            let col = m.coords(m.edge_source(pair[1])).1;
            let east_to_vertical = from == Direction::Right && !to.is_row();
            let vertical_to_west = !from.is_row() && to == Direction::Left;
            assert!(
                !(east_to_vertical && col.is_multiple_of(2)),
                "EN/ES turn at even column {col} on {src}->{dst}"
            );
            assert!(
                !(vertical_to_west && col % 2 == 1),
                "NW/SW turn at odd column {col} on {src}->{dst}"
            );
        }
    }

    #[test]
    fn canonical_routes_respect_both_rules() {
        for n in [4usize, 5, 6] {
            let m = Mesh2D::square(n);
            for a in m.nodes() {
                for b in m.nodes() {
                    assert_no_forbidden_turn(&m, a, b);
                }
            }
        }
    }

    #[test]
    fn torus_routes_are_minimal_despite_the_seam_fallback() {
        for n in [4usize, 5] {
            let t = Torus2D::new(n);
            for a in t.nodes() {
                for b in t.nodes() {
                    let route = OddEven.route(&t, a, b, t.coords(a).1 as u32);
                    assert_eq!(route.len(), t.distance(a, b), "n={n} {a}->{b}");
                }
            }
        }
    }

    #[test]
    fn vertical_moves_forbidden_in_even_transit_columns() {
        // Eastbound packet at an even column it did not start in: the only
        // permitted move is East.
        let m = Mesh2D::square(6);
        let cands = OddEven::candidates(&m, m.node(1, 2), m.node(4, 5), 0);
        assert_eq!(cands.as_slice().len(), 1);
        assert_eq!(m.direction(cands.first().unwrap()), Direction::Right);
        // Same node as the source column: vertical reopens.
        let cands = OddEven::candidates(&m, m.node(1, 2), m.node(4, 5), 2);
        assert_eq!(cands.as_slice().len(), 2);
    }

    #[test]
    fn adaptive_pick_diverts_around_congestion() {
        let m = Mesh2D::square(6);
        let cur = m.node(1, 1); // odd column: both candidates open
        let dst = m.node(4, 4);
        let canonical = OddEven.next_edge(&m, cur, dst, 1).unwrap();
        assert_eq!(m.direction(canonical), Direction::Right);
        let mut queues = vec![0u32; m.num_edges()];
        queues[canonical.index()] = 3;
        let picked = OddEven
            .next_hop(&m, cur, dst, 1, &QueueMap(queues))
            .unwrap();
        assert_eq!(m.direction(picked), Direction::Down);
    }

    #[test]
    fn split_source_inference_matches_explicit_state() {
        // Wherever the chain model can reach a node, its inferred source
        // column must reproduce the explicit-state candidate set.
        let m = Mesh2D::square(5);
        for src in m.nodes() {
            for dst in m.nodes() {
                let src_col = m.coords(src).1 as u32;
                let mut cur = src;
                let mut prev = None;
                while let Some(e) = OddEven.next_edge(&m, cur, dst, src_col) {
                    let explicit = OddEven::candidates(&m, cur, dst, src_col as usize);
                    let inferred = OddEven.splits(&m, prev, cur, dst);
                    assert_eq!(
                        explicit.as_slice().len(),
                        inferred.len(),
                        "{src}->{dst} at {cur}"
                    );
                    for (a, (b, _)) in explicit.as_slice().iter().zip(&inferred) {
                        assert_eq!(a, b, "{src}->{dst} at {cur}");
                    }
                    prev = Some(e);
                    cur = m.edge_target(e);
                }
            }
        }
    }
}
