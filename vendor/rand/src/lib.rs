//! Offline stand-in for the `rand` crate (0.8-compatible surface).
//!
//! The container image has no registry access, so this crate provides the
//! subset of `rand` the workspace actually uses: `rngs::SmallRng`,
//! `SeedableRng::seed_from_u64`, and the `Rng` extension methods `gen`,
//! `gen_range` and `gen_bool`. `SmallRng` is xoshiro256++ (the same family
//! the real `rand` uses for its 64-bit `SmallRng`), seeded through
//! SplitMix64 exactly as `rand` does, so statistical quality matches the
//! real crate even though exact streams differ. Determinism contract: a
//! given seed always produces the same stream on every platform.

/// A random number generator core producing 64-bit outputs.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their whole domain (the `Standard`
/// distribution in real `rand`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types usable as `gen_range` bounds.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[low, high)`. Callers guarantee `low < high`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as u64).wrapping_sub(low as u64);
                // Debiased modular reduction: reject the partial block at the
                // top of the u64 range.
                let zone = u64::MAX - (u64::MAX - span + 1) % span;
                loop {
                    let v = rng.next_u64();
                    if v <= zone {
                        return low.wrapping_add((v % span) as $t);
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        low + (high - low) * f64::sample_standard(rng)
    }
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value from the standard (full-domain / unit-interval)
    /// distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws uniformly from a half-open range `low..high`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "gen_range called with empty range");
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool called with p = {p}");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete small, fast RNGs.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — small-state, high-quality, non-cryptographic.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state is the one invalid state; SplitMix64 cannot
            // produce four consecutive zeros, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn reproducible_streams() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(SmallRng::seed_from_u64(7).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..100_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 100_000.0 - 0.5).abs() < 0.005);
    }

    #[test]
    fn ranges_hit_all_values() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01);
    }
}
