//! Hot-path engine selection for [`NetworkSim::run`](crate::NetworkSim::run).
//!
//! Every engine produces **bit-identical** [`SimResult`](crate::SimResult)s
//! for the same scenario and seed — the engine choice moves wall-clock
//! time, never a single reported number. The cross-engine equivalence
//! suite (`tests/engine_equivalence.rs`) pins that guarantee across all
//! topologies and both time modes.

use serde::{Deserialize, Serialize};

/// Node-count gate above which [`EngineSpec::Auto`] skips the precomputed
/// route tables. A table stores one packed `u32` per `(node, destination)`
/// pair, so the gate caps table memory at 512² × 4 B = 1 MiB — sized to
/// stay L2-resident on current hardware; beyond that a cache-missing
/// lookup costs more than the coordinate arithmetic it replaces, so the
/// on-the-fly router walk is kept. (Measured on the Table-I mesh workload,
/// where the 20×20 mesh's 640 KiB table is still a clear win.)
pub const ROUTE_TABLE_MAX_NODES: usize = 512;

/// Node-count gate above which `Scenario::edge_rates` tries the
/// sparse-support fast path
/// ([`edge_rates_sparse`](meshbound_routing::rates::edge_rates_sparse))
/// before falling back to the O(N² · route) all-destinations scan. Below
/// the gate enumeration is already sub-millisecond and stays the single
/// code path that every ≤512-node published number was produced by; above
/// it, permutation and hotspot workloads get O(N · diameter) rate vectors
/// that remain exact to enumeration (pinned by `tests/scale.rs`).
pub const SPARSE_RATES_MIN_NODES: usize = ROUTE_TABLE_MAX_NODES;

/// Edge-count gate above which [`SimResult`](crate::SimResult) stops
/// materializing full per-edge vectors (`edge_throughput`) and reports only
/// the streaming Welford summary (`edge_throughput_stats`). At
/// `hypercube:20` there are `20 · 2²⁰ ≈ 2.1 × 10⁷` directed edges; a
/// per-edge `f64` vector per replication is ~168 MiB of copying that no
/// caller inspects edge-by-edge at that scale. Every topology that fits a
/// route table (≤ 512 nodes ⇒ ≤ 5120 edges) sits far below this gate, so
/// published small-scale results are untouched bit-for-bit.
pub const STREAMING_STATS_MAX_EDGES: usize = 1 << 16;

/// Which engine drives the simulator's hot loop.
///
/// * [`EngineSpec::Auto`] (the default) — calendar-queue future-event list
///   plus precomputed route tables when the topology fits under
///   [`ROUTE_TABLE_MAX_NODES`] and the router is deterministic (randomized
///   routers carry per-packet state, so they keep the on-the-fly path).
/// * [`EngineSpec::Heap`] — the binary-heap future-event list with
///   on-the-fly routing: the pre-overhaul baseline, kept as the reference
///   implementation and the benchmark yardstick.
/// * [`EngineSpec::Calendar`] — calendar queue with on-the-fly routing
///   (isolates the event-queue contribution in ablations).
///
/// # Examples
///
/// Selecting an engine on a scenario spec and via the builder:
///
/// ```
/// use meshbound_sim::{EngineSpec, Load, Scenario};
///
/// let fast = Scenario::mesh(5).load(Load::TableRho(0.5)).seed(3);
/// let slow = fast.clone().engine(EngineSpec::Heap);
/// let a = fast.run();
/// let b = slow.run();
/// // Different engines, bit-identical physics:
/// assert_eq!(a.avg_delay.to_bits(), b.avg_delay.to_bits());
/// assert_eq!(a.events_processed, b.events_processed);
///
/// // Spec strings round-trip the engine choice:
/// let sc = Scenario::parse("mesh:5,rho=0.5,engine=calendar").unwrap();
/// assert_eq!(sc.engine, EngineSpec::Calendar);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EngineSpec {
    /// Calendar queue + route tables where eligible (the default).
    Auto,
    /// Binary-heap event list, on-the-fly routing (the baseline).
    Heap,
    /// Calendar queue, on-the-fly routing.
    Calendar,
}

// Not `#[derive(Default)]`: the offline serde_derive stub parses the enum
// body and does not understand variant-level `#[default]` attributes.
#[allow(clippy::derivable_impls)]
impl Default for EngineSpec {
    fn default() -> Self {
        EngineSpec::Auto
    }
}

impl EngineSpec {
    /// All engines, in the order benchmarks and sweeps enumerate them.
    pub const ALL: [EngineSpec; 3] = [EngineSpec::Auto, EngineSpec::Heap, EngineSpec::Calendar];

    /// The spec-string name (`"auto"`, `"heap"`, `"calendar"`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            EngineSpec::Auto => "auto",
            EngineSpec::Heap => "heap",
            EngineSpec::Calendar => "calendar",
        }
    }

    /// Parses a spec-string name.
    ///
    /// # Errors
    ///
    /// Returns the offending name when it is not one of
    /// `auto|heap|calendar`.
    pub fn parse_str(s: &str) -> Result<Self, String> {
        match s {
            "auto" => Ok(EngineSpec::Auto),
            "heap" => Ok(EngineSpec::Heap),
            "calendar" => Ok(EngineSpec::Calendar),
            other => Err(format!(
                "unknown engine `{other}` (expected auto, heap or calendar)"
            )),
        }
    }
}

impl std::fmt::Display for EngineSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for e in EngineSpec::ALL {
            assert_eq!(EngineSpec::parse_str(e.as_str()), Ok(e));
            assert_eq!(format!("{e}"), e.as_str());
        }
        assert!(EngineSpec::parse_str("quantum").is_err());
    }

    #[test]
    fn default_is_auto() {
        assert_eq!(EngineSpec::default(), EngineSpec::Auto);
    }
}
