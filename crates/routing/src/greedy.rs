//! Standard greedy routing on the array: column first, then row.

use crate::policy::SplitRouting;
use crate::router::{ObliviousRouter, Router};
use meshbound_topology::{layering, EdgeId, Mesh2D, NodeId};
use rand::rngs::SmallRng;

/// The paper's greedy routing discipline on a 2-D array.
///
/// A packet at `(r, c)` headed for `(r*, c*)` first corrects its column
/// (crossing `Right`/`Left` row edges) and then its row (`Down`/`Up` column
/// edges). The route is the unique monotone L-shaped path; its length is the
/// Manhattan distance.
///
/// # Examples
///
/// ```
/// use meshbound_topology::{Mesh2D, Topology};
/// use meshbound_routing::{GreedyXY, Router};
/// let mesh = Mesh2D::square(4);
/// let r = GreedyXY;
/// let route = r.route(&mesh, mesh.node(3, 0), mesh.node(0, 2), ());
/// assert_eq!(route.len(), 5);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GreedyXY;

impl Router<Mesh2D> for GreedyXY {
    type State = ();

    #[inline]
    fn init_state(&self, _: &Mesh2D, _: NodeId, _: NodeId, _: &mut SmallRng) {}

    #[inline]
    fn is_route_deterministic(&self) -> bool {
        true
    }

    #[inline]
    fn next_edge(&self, topo: &Mesh2D, cur: NodeId, dst: NodeId, _: ()) -> Option<EdgeId> {
        let (r, c) = topo.coords(cur);
        let (rd, cd) = topo.coords(dst);
        if c < cd {
            Some(topo.right_edge(r, c))
        } else if c > cd {
            Some(topo.left_edge(r, c - 1))
        } else if r < rd {
            Some(topo.down_edge(r, c))
        } else if r > rd {
            Some(topo.up_edge(r - 1, c))
        } else {
            None
        }
    }

    #[inline]
    fn remaining_hops(&self, topo: &Mesh2D, cur: NodeId, dst: NodeId, _: ()) -> usize {
        topo.manhattan(cur, dst)
    }
}

impl SplitRouting<Mesh2D> for GreedyXY {
    fn splits(
        &self,
        topo: &Mesh2D,
        _prev: Option<EdgeId>,
        here: NodeId,
        dst: NodeId,
    ) -> Vec<(EdgeId, f64)> {
        self.next_edge(topo, here, dst, ())
            .map(|e| vec![(e, 1.0)])
            .unwrap_or_default()
    }
}

impl ObliviousRouter<Mesh2D> for GreedyXY {
    fn paths(&self, topo: &Mesh2D, src: NodeId, dst: NodeId) -> Vec<(f64, Vec<EdgeId>)> {
        vec![(
            1.0,
            layering::greedy_path(topo, topo.coords(src), topo.coords(dst)),
        )]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshbound_topology::Topology;
    use proptest::prelude::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn route_is_column_first() {
        let m = Mesh2D::square(5);
        let route = GreedyXY.route(&m, m.node(2, 4), m.node(4, 1), ());
        assert_eq!(route.len(), 5);
        for e in &route[..3] {
            assert!(m.direction(*e).is_row(), "first phase must use row edges");
        }
        for e in &route[3..] {
            assert!(!m.direction(*e).is_row());
        }
    }

    #[test]
    fn self_route_is_empty() {
        let m = Mesh2D::square(3);
        assert!(GreedyXY
            .route(&m, m.node(1, 1), m.node(1, 1), ())
            .is_empty());
        assert_eq!(
            GreedyXY.remaining_hops(&m, m.node(1, 1), m.node(1, 1), ()),
            0
        );
    }

    #[test]
    fn matches_reference_path_enumeration() {
        let m = Mesh2D::square(4);
        let mut rng = rng();
        for a in m.nodes() {
            for b in m.nodes() {
                GreedyXY.init_state(&m, a, b, &mut rng);
                let incremental = GreedyXY.route(&m, a, b, ());
                let reference = &GreedyXY.paths(&m, a, b)[0].1;
                assert_eq!(&incremental, reference);
            }
        }
    }

    proptest! {
        #[test]
        fn prop_route_length_is_manhattan(n in 2usize..8, a in 0u32..64, b in 0u32..64) {
            let m = Mesh2D::square(n);
            let a = NodeId(a % (n * n) as u32);
            let b = NodeId(b % (n * n) as u32);
            let route = GreedyXY.route(&m, a, b, ());
            prop_assert_eq!(route.len(), m.manhattan(a, b));
            // Remaining hops decreases by exactly one per crossing.
            let mut cur = a;
            let mut rem = GreedyXY.remaining_hops(&m, cur, b, ());
            for &e in &route {
                cur = m.edge_target(e);
                let next_rem = GreedyXY.remaining_hops(&m, cur, b, ());
                prop_assert_eq!(next_rem + 1, rem);
                rem = next_rem;
            }
            prop_assert_eq!(cur, b);
        }
    }
}
