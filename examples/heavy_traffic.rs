//! Heavy-traffic behaviour: the paper's headline constant-factor gap.
//!
//! ```text
//! cargo run --release --example heavy_traffic
//! ```
//!
//! As ρ → 1 the Theorem 12 bound leaves a Θ(n) gap to the upper bound; the
//! saturated-edge refinement (Theorem 14) closes it to a constant — 3 for
//! even `n`, at most 6 for odd `n`. This example sweeps ρ upward and prints
//! the gap of each bound, showing the crossover where Theorem 14 takes over
//! from Theorem 8, and the even/odd contrast.

use meshbound::{BoundsReport, Load};
use meshbound_repro::banner;

fn main() {
    for n in [10usize, 11] {
        banner(&format!(
            "n = {n} ({}): upper/lower gap as utilization → 1",
            if n % 2 == 0 { "even" } else { "odd" }
        ));
        println!(
            "{:>8} {:>12} {:>12} {:>12} {:>12} {:>10}",
            "util", "gap Thm8", "gap Thm10", "gap Thm12", "gap Thm14", "best"
        );
        for util in [0.5, 0.8, 0.9, 0.99, 0.999, 0.9999] {
            let r = BoundsReport::compute(n, Load::Utilization(util));
            let gap = |lower: f64| {
                if lower > 0.0 {
                    format!("{:.2}", r.upper / lower)
                } else {
                    "-".into()
                }
            };
            println!(
                "{:>8} {:>12} {:>12} {:>12} {:>12} {:>10.2}",
                util,
                gap(r.lower_thm8_oblivious),
                gap(r.lower_thm10),
                gap(r.lower_thm12),
                gap(r.lower_thm14),
                r.gap()
            );
        }
        let r = BoundsReport::compute(n, Load::Utilization(0.9999));
        println!(
            "limit check: 2·s̄ = {:.3} — the paper's factor {} for {} n",
            2.0 * r.sbar,
            if n % 2 == 0 { "3" } else { "≤ 6" },
            if n % 2 == 0 { "even" } else { "odd" },
        );
    }

    banner("Hypercube (§4.5): new gap 2(dp+1−p) vs previous 2d");
    let d = 10;
    println!("{:>6} {:>12} {:>12}", "p", "new gap", "old gap");
    for p in [0.05, 0.1, 0.25, 0.5, 0.75, 1.0_f64] {
        println!(
            "{:>6} {:>12.2} {:>12.2}",
            p,
            meshbound::queueing::bounds::hypercube::new_gap(d, p),
            meshbound::queueing::bounds::hypercube::previous_gap(d),
        );
    }
    println!("p = O(1/d) keeps the gap constant; p = 1/2 gives d+1 (§4.5).");
}
