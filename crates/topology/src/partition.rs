//! Node partitioning for the sharded parallel-DES engine.
//!
//! A [`Partition`] splits a topology's nodes into `k` contiguous,
//! balanced blocks (shards) and precomputes everything a conservative
//! parallel simulator needs: the owning shard of every node and edge
//! (an edge belongs to the shard of its **source** node, so enqueues
//! are always shard-local), compact per-shard edge indices for dense
//! per-shard state arrays, and the list of *cut edges* — edges whose
//! target lives in a different shard, which are the only places
//! cross-shard communication happens.
//!
//! The block assignment `shard(i) = i·k / n` is a pure function of
//! `(num_nodes, k)`: the same topology partitioned twice yields the
//! same partition, which the sharded engine's determinism contract
//! relies on.

use crate::ids::{EdgeId, NodeId};
use crate::traits::Topology;

/// A contiguous balanced node partition with edge ownership and
/// cut-edge data precomputed.
#[derive(Debug, Clone)]
pub struct Partition {
    shards: usize,
    node_shard: Vec<u32>,
    edge_shard: Vec<u32>,
    /// Dense per-shard edge index: `edge_local[e]` is `e`'s position
    /// among the edges owned by `edge_shard[e]`, in global edge order.
    edge_local: Vec<u32>,
    shard_edge_counts: Vec<usize>,
    shard_nodes: Vec<Vec<NodeId>>,
    cut_edges: Vec<EdgeId>,
}

impl Partition {
    /// Partitions `topo` into (at most) `shards` contiguous node
    /// blocks. The effective shard count is clamped to
    /// `[1, num_nodes]`; block sizes differ by at most one node.
    #[must_use]
    pub fn contiguous<T: Topology + ?Sized>(topo: &T, shards: usize) -> Self {
        let n = topo.num_nodes();
        let k = shards.clamp(1, n.max(1));
        let node_shard: Vec<u32> = (0..n).map(|i| ((i * k) / n.max(1)) as u32).collect();
        let mut edge_shard = vec![0u32; topo.num_edges()];
        let mut edge_local = vec![0u32; topo.num_edges()];
        let mut shard_edge_counts = vec![0usize; k];
        let mut cut_edges = Vec::new();
        for e in topo.edges() {
            let s = node_shard[topo.edge_source(e).index()];
            edge_shard[e.index()] = s;
            edge_local[e.index()] = shard_edge_counts[s as usize] as u32;
            shard_edge_counts[s as usize] += 1;
            if node_shard[topo.edge_target(e).index()] != s {
                cut_edges.push(e);
            }
        }
        let mut shard_nodes = vec![Vec::new(); k];
        for v in topo.nodes() {
            shard_nodes[node_shard[v.index()] as usize].push(v);
        }
        Partition {
            shards: k,
            node_shard,
            edge_shard,
            edge_local,
            shard_edge_counts,
            shard_nodes,
            cut_edges,
        }
    }

    /// Effective shard count (after clamping).
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning node `v`.
    #[inline]
    #[must_use]
    pub fn node_shard(&self, v: NodeId) -> usize {
        self.node_shard[v.index()] as usize
    }

    /// The shard owning edge `e` (the shard of its source node).
    #[inline]
    #[must_use]
    pub fn edge_shard(&self, e: EdgeId) -> usize {
        self.edge_shard[e.index()] as usize
    }

    /// `e`'s dense index among the edges of its owning shard.
    #[inline]
    #[must_use]
    pub fn edge_local(&self, e: EdgeId) -> usize {
        self.edge_local[e.index()] as usize
    }

    /// Number of edges owned by shard `s`.
    #[must_use]
    pub fn shard_edge_count(&self, s: usize) -> usize {
        self.shard_edge_counts[s]
    }

    /// Nodes of shard `s`, in ascending id order.
    #[must_use]
    pub fn shard_nodes(&self, s: usize) -> &[NodeId] {
        &self.shard_nodes[s]
    }

    /// Edges whose target lives in a different shard than their source,
    /// in ascending edge order. Empty iff `shards() == 1`.
    #[must_use]
    pub fn cut_edges(&self) -> &[EdgeId] {
        &self.cut_edges
    }

    /// True iff `e` crosses a shard boundary.
    #[inline]
    #[must_use]
    pub fn is_cut(&self, e: EdgeId) -> bool {
        self.cut_edges.binary_search(&e).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypercube::Hypercube;
    use crate::mesh::Mesh2D;

    #[test]
    fn blocks_are_contiguous_and_balanced() {
        let topo = Mesh2D::square(5); // 25 nodes
        for k in [1, 2, 3, 4, 7, 25] {
            let p = Partition::contiguous(&topo, k);
            assert_eq!(p.shards(), k);
            let mut sizes = vec![0usize; k];
            let mut last = 0usize;
            for v in topo.nodes() {
                let s = p.node_shard(v);
                assert!(s >= last, "shard ids must be nondecreasing in node order");
                last = s;
                sizes[s] += 1;
            }
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "k={k}: sizes {sizes:?}");
            assert_eq!(sizes.iter().sum::<usize>(), 25);
        }
    }

    #[test]
    fn shard_count_is_clamped() {
        let topo = Mesh2D::square(2); // 4 nodes
        assert_eq!(Partition::contiguous(&topo, 0).shards(), 1);
        assert_eq!(Partition::contiguous(&topo, 100).shards(), 4);
    }

    #[test]
    fn edges_belong_to_their_source_shard_with_dense_local_indices() {
        let topo = Hypercube::new(4);
        let p = Partition::contiguous(&topo, 3);
        let mut next_local = [0usize; 3];
        for e in topo.edges() {
            let s = p.edge_shard(e);
            assert_eq!(s, p.node_shard(topo.edge_source(e)));
            assert_eq!(p.edge_local(e), next_local[s]);
            next_local[s] += 1;
        }
        for (s, &count) in next_local.iter().enumerate() {
            assert_eq!(p.shard_edge_count(s), count);
        }
        assert_eq!(
            next_local.iter().sum::<usize>(),
            topo.num_edges(),
            "every edge is owned by exactly one shard"
        );
    }

    #[test]
    fn cut_edges_are_exactly_the_boundary_crossings() {
        let topo = Mesh2D::square(4);
        let p = Partition::contiguous(&topo, 4);
        for e in topo.edges() {
            let crosses = p.node_shard(topo.edge_source(e)) != p.node_shard(topo.edge_target(e));
            assert_eq!(p.is_cut(e), crosses, "{e}");
        }
        assert!(!p.cut_edges().is_empty());
        let single = Partition::contiguous(&topo, 1);
        assert!(single.cut_edges().is_empty());
    }

    #[test]
    fn shard_nodes_cover_all_nodes_once() {
        let topo = Hypercube::new(5);
        let p = Partition::contiguous(&topo, 4);
        let mut seen = vec![false; topo.num_nodes()];
        for s in 0..p.shards() {
            for &v in p.shard_nodes(s) {
                assert_eq!(p.node_shard(v), s);
                assert!(!seen[v.index()]);
                seen[v.index()] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }
}
