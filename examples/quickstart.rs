//! Quickstart: analytic bounds and a simulation for one array.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Computes every bound the paper derives for a 10×10 array at 80% load,
//! runs the packet-level simulator at the same operating point, and prints
//! the comparison — the simulated delay must land between the best lower
//! bound and the Theorem 7 upper bound, near the M/D/1 estimate.

use meshbound::{BoundsReport, Load, Scenario};
use meshbound_repro::banner;

fn main() {
    let n = 10;
    let load = Load::TableRho(0.8);

    banner("Analytic bounds (Theorems 7, 8, 10, 12, 14 + §4.2 estimate)");
    let report = BoundsReport::compute(n, load);
    print!("{}", report.to_text());

    banner("Packet-level simulation (standard model)");
    let res = Scenario::mesh(n)
        .load(load)
        .horizon(30_000.0)
        .warmup(3_000.0)
        .seed(2024)
        .track_saturated(true)
        .run();
    println!(
        "simulated delay T = {:.3}  (completed {} packets; Little cross-check {:.3})",
        res.avg_delay, res.completed, res.little_delay
    );
    println!(
        "r = E[R]/E[N] = {:.3}   r_s = {:.3}   peak edge utilization {:.3}",
        res.r_ratio, res.rs_ratio, res.max_edge_utilization
    );

    banner("Verdict");
    println!(
        "lower {:.3} ≤ sim {:.3} ≤ upper {:.3}: {}",
        report.lower_best,
        res.avg_delay,
        report.upper,
        if report.lower_best <= res.avg_delay && res.avg_delay <= report.upper {
            "bounds hold"
        } else {
            "BOUNDS VIOLATED — investigate!"
        }
    );
    println!(
        "estimate (paper form) {:.3}; simulation within {:.1}%",
        report.est_paper,
        100.0 * (res.avg_delay - report.est_paper).abs() / report.est_paper
    );
}
