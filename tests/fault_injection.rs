//! Fault-injection determinism: a materialized `FaultPlan` is a pure
//! function of `(seed, FaultSpec, topology)`, `faults=none` reproduces
//! the pre-fault golden fingerprints bit for bit on every topology
//! family, and the calendar and sharded engines agree on what a faulted
//! network delivers.

use meshbound::sim::{FaultPlan, SimResult};
use meshbound::topology::{Butterfly, Hypercube, Mesh2D, MeshKD, Topology, Torus2D};
use meshbound::{EngineSpec, FaultSpec, Scenario};
use proptest::prelude::*;

/// Materializes `spec` on one of the five topology families, returning
/// the plan and the family's directed edge count.
fn plan_for(topo: usize, spec: &FaultSpec, seed: u64) -> (FaultPlan, usize) {
    match topo {
        0 => {
            let t = Mesh2D::square(5);
            (FaultPlan::materialize(spec, seed, &t), t.num_edges())
        }
        1 => {
            let t = Torus2D::new(4);
            (FaultPlan::materialize(spec, seed, &t), t.num_edges())
        }
        2 => {
            let t = Hypercube::new(4);
            (FaultPlan::materialize(spec, seed, &t), t.num_edges())
        }
        3 => {
            let t = Butterfly::new(3);
            (FaultPlan::materialize(spec, seed, &t), t.num_edges())
        }
        _ => {
            let t = MeshKD::new(&[3, 3, 3]);
            (FaultPlan::materialize(spec, seed, &t), t.num_edges())
        }
    }
}

proptest! {
    /// Same `(seed, spec, topology)` → the identical plan, with every
    /// structural invariant the engines rely on: a sorted, in-range,
    /// duplicate-free dead set, one fail event per dead edge at `at`,
    /// and one repair event per dead edge iff the spec repairs.
    #[test]
    fn fault_plans_are_pure_and_well_formed(
        topo in 0usize..5,
        link_rate in 0.0f64..0.5,
        node_rate in 0.0f64..0.25,
        at in 0.0f64..500.0,
        repairs in any::<bool>(),
        repair_dt in 1.0f64..400.0,
        seed in 1u64..100_000,
    ) {
        let repair = repairs.then_some(repair_dt);
        let mut spec = FaultSpec::links(link_rate).at(at);
        spec.node_rate = node_rate;
        spec.repair = repair;
        let (plan, num_edges) = plan_for(topo, &spec, seed);
        let (again, _) = plan_for(topo, &spec, seed);
        prop_assert_eq!(&plan, &again);
        prop_assert!(plan.down_edges.windows(2).all(|w| w[0] < w[1]),
            "dead set not strictly ascending");
        prop_assert!(plan.down_edges.iter().all(|e| e.index() < num_edges),
            "dead edge out of range");
        let per_edge = if repair.is_some() { 2 } else { 1 };
        prop_assert_eq!(plan.events.len(), plan.down_edges.len() * per_edge);
        for ev in &plan.events {
            if ev.up {
                prop_assert_eq!(ev.time, at + repair.unwrap());
            } else {
                prop_assert_eq!(ev.time, at);
            }
        }
    }
}

#[test]
fn the_seed_selects_the_dead_set() {
    let spec = FaultSpec::links(0.1);
    let (a, _) = plan_for(0, &spec, 1);
    let (b, _) = plan_for(0, &spec, 2);
    assert_eq!(
        a.down_edges.len(),
        b.down_edges.len(),
        "same rate, same count"
    );
    assert_ne!(a.down_edges, b.down_edges, "different seeds, same dead set");
    // Explicit ids bypass the draw entirely and survive any seed.
    let pinned = FaultSpec {
        links: vec![3, 7],
        ..FaultSpec::default()
    };
    let (p1, _) = plan_for(0, &pinned, 1);
    let (p2, _) = plan_for(0, &pinned, 999);
    assert_eq!(p1, p2);
    assert_eq!(
        p1.down_edges.iter().map(|e| e.index()).collect::<Vec<_>>(),
        vec![3, 7]
    );
}

/// Bitwise comparison of the deterministic `SimResult` fields this suite
/// cares about, plus the fault accounting.
fn assert_bit_identical(label: &str, a: &SimResult, b: &SimResult) {
    let f = f64::to_bits;
    assert_eq!(f(a.avg_delay), f(b.avg_delay), "{label}: avg_delay");
    assert_eq!(a.generated, b.generated, "{label}: generated");
    assert_eq!(a.completed, b.completed, "{label}: completed");
    assert_eq!(f(a.time_avg_n), f(b.time_avg_n), "{label}: time_avg_n");
    assert_eq!(
        a.events_processed, b.events_processed,
        "{label}: events_processed"
    );
    assert_eq!(a.dropped, b.dropped, "{label}: dropped");
    assert_eq!(
        f(a.delivered_fraction),
        f(b.delivered_fraction),
        "{label}: delivered_fraction"
    );
}

#[test]
fn faults_none_reproduces_the_pre_fault_fingerprints() {
    // These pins predate the fault layer (see engine_equivalence.rs): a
    // spec that *names* the fault grammar but injects nothing must not
    // move a single bit on any topology family — the healthy hot path
    // carries no fault overhead.
    struct Pin {
        spec: &'static str,
        events: u64,
        delay_bits: u64,
        completed: u64,
    }
    let pins = [
        Pin {
            spec: "mesh:4,lambda=0.08",
            events: 1765,
            delay_bits: 0x40034e42a2b5e7f1,
            completed: 461,
        },
        Pin {
            spec: "torus:4,lambda=0.08",
            events: 1542,
            delay_bits: 0x3fff6cfb98aa1384,
            completed: 463,
        },
        Pin {
            spec: "hypercube:4,lambda=0.2",
            events: 3856,
            delay_bits: 0x40009025f0b3aae9,
            completed: 1132,
        },
        Pin {
            spec: "butterfly:3,lambda=0.3",
            events: 3952,
            delay_bits: 0x40098a857354d1bd,
            completed: 863,
        },
        Pin {
            spec: "kd:3x3x3,lambda=0.06",
            events: 2380,
            delay_bits: 0x4005c289c7b2432a,
            completed: 576,
        },
    ];
    for pin in &pins {
        let spec = format!("{},horizon=400,warmup=40,seed=17,faults=none", pin.spec);
        let sc = Scenario::parse(&spec).expect("faults=none parses");
        assert!(sc.faults.is_none(), "{spec}: `none` must stay None");
        let res = sc.run();
        assert_eq!(res.events_processed, pin.events, "{spec}: events drifted");
        assert_eq!(
            res.avg_delay.to_bits(),
            pin.delay_bits,
            "{spec}: avg_delay drifted"
        );
        assert_eq!(res.completed, pin.completed, "{spec}: completed drifted");
        assert_eq!(
            res.dropped.total(),
            0,
            "{spec}: healthy run dropped packets"
        );
    }
}

#[test]
fn calendar_and_sharded_agree_on_faulted_delivery_statistically() {
    // Shards >= 2 re-stream the RNG, so faulted results differ bitwise
    // from the calendar oracle — but both replay the *same* fault plan,
    // so the delivered fraction and the drop mass must agree within
    // sampling noise.
    let sc = Scenario::parse(
        "mesh:8,lambda=0.12,faults=links:0.1+at:100,horizon=1200,warmup=120,seed=13",
    )
    .unwrap();
    let oracle = sc.clone().engine(EngineSpec::Calendar).run();
    assert!(oracle.dropped.total() > 0, "oracle saw no drops");
    assert!(oracle.delivered_fraction < 1.0);
    let sharded = sc.engine(EngineSpec::Sharded { shards: 2 }).run();
    let rel_delivered =
        (sharded.delivered_fraction - oracle.delivered_fraction).abs() / oracle.delivered_fraction;
    assert!(
        rel_delivered < 0.10,
        "delivered {} vs oracle {} (rel {rel_delivered:.3})",
        sharded.delivered_fraction,
        oracle.delivered_fraction
    );
    let (d, o) = (
        sharded.dropped.total() as f64,
        oracle.dropped.total() as f64,
    );
    let rel_dropped = (d - o).abs() / o;
    assert!(
        rel_dropped < 0.35,
        "dropped {d} vs oracle {o} (rel {rel_dropped:.3})"
    );
}

#[test]
fn acceptance_scenario_is_degraded_and_rerun_stable_on_both_engines() {
    // The PR acceptance gate: the 16×16 transpose mesh at ρ = 0.5 with 5%
    // of links down completes (no abort), reports a delivered fraction
    // below 1 with cause-tallied drops, and reruns bit-identically for a
    // fixed seed on the calendar and two-shard engines alike.
    let base = Scenario::parse(
        "mesh:16 traffic=transpose load=rho:0.5 faults=links:0.05 \
         horizon=400 warmup=40 seed=11",
    )
    .unwrap();
    for engine in [EngineSpec::Calendar, EngineSpec::Sharded { shards: 2 }] {
        let sc = base.clone().engine(engine);
        let label = sc.spec_string();
        let a = sc.clone().try_run().expect("faulted run must not abort");
        let b = sc.try_run().unwrap();
        assert_bit_identical(&format!("{label} rerun"), &a, &b);
        assert!(
            a.delivered_fraction > 0.0 && a.delivered_fraction < 1.0,
            "{label}: delivered_fraction {}",
            a.delivered_fraction
        );
        assert!(a.dropped.total() > 0, "{label}: no drops accounted");
        assert!(
            a.completed + a.dropped.total() <= a.generated,
            "{label}: accounting identity violated"
        );
    }
}
