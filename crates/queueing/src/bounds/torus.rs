//! Torus bounds (§6).
//!
//! The torus is the paper's open problem: any network containing a ring of
//! directed edges cannot be layered, and greedy routing on the torus is not
//! Markovian in the paper's sense, so **no Theorem 1/5 upper bound is
//! available** — that is exactly the open question §6 poses. The Theorem 10
//! lower bound, however, needs neither layering nor the Markov property, so
//! it applies: with per-direction edge rates from
//! [`meshbound_routing::rates::torus_row_rates`] and the maximum route
//! length `d = 2⌊n/2⌋`,
//!
//! ```text
//! T ≥ Σ_e N_{M/D/1}(λ_e) / (d · λn²).
//! ```

use crate::single::md1_mean_number;
use meshbound_routing::rates::torus_row_rates;

/// Maximum greedy route length on an `n × n` torus: `2⌊n/2⌋`.
#[must_use]
pub fn max_distance(n: usize) -> usize {
    2 * (n / 2)
}

/// Mean greedy route length over uniform pairs (self-pairs included).
#[must_use]
pub fn mean_distance(n: usize) -> f64 {
    let nf = n as f64;
    if n.is_multiple_of(2) {
        nf / 2.0
    } else {
        (nf * nf - 1.0) / (2.0 * nf)
    }
}

/// Sum of independent-M/D/1 mean numbers over all `4n²` torus edges.
#[must_use]
pub fn reference_system_number(n: usize, lambda: f64) -> f64 {
    let (pos, neg) = torus_row_rates(n, lambda);
    // 2n² edges per axis-direction pair; row and column phases symmetric.
    2.0 * (n * n) as f64 * (md1_mean_number(pos) + md1_mean_number(neg))
}

/// Theorem 10's lower bound for the torus (valid despite the torus being
/// unlayerable and non-Markovian — the copy argument needs neither).
#[must_use]
pub fn thm10_lower(n: usize, lambda: f64) -> f64 {
    reference_system_number(n, lambda) / (max_distance(n) as f64 * lambda * (n * n) as f64)
}

/// The trivial bound `T ≥ n̄_torus`.
#[must_use]
pub fn trivial_lower(n: usize) -> f64 {
    mean_distance(n)
}

/// Best available torus lower bound.
#[must_use]
pub fn best_lower_bound(n: usize, lambda: f64) -> f64 {
    thm10_lower(n, lambda).max(trivial_lower(n))
}

/// Stability threshold of the torus under greedy routing: the loaded
/// direction saturates at `λ·E[Δ⁺] = 1`.
#[must_use]
pub fn stability_threshold(n: usize) -> f64 {
    let (pos, _) = torus_row_rates(n, 1.0);
    1.0 / pos
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshbound_topology::{Topology, Torus2D};

    #[test]
    fn mean_distance_matches_topology_enumeration() {
        for n in [3usize, 4, 5, 8] {
            let t = Torus2D::new(n);
            assert!(
                (mean_distance(n) - t.mean_distance()).abs() < 1e-12,
                "n={n}"
            );
        }
    }

    #[test]
    fn max_distance_matches_enumeration() {
        for n in [3usize, 4, 5, 6] {
            let t = Torus2D::new(n);
            let mut best = 0;
            for a in t.nodes() {
                for b in t.nodes() {
                    best = best.max(t.distance(a, b));
                }
            }
            assert_eq!(best, max_distance(n), "n={n}");
        }
    }

    #[test]
    fn reference_number_matches_rate_sum() {
        use meshbound_routing::dest::UniformDest;
        use meshbound_routing::rates::{all_nodes, edge_rates_enumerated};
        use meshbound_routing::TorusGreedy;
        let n = 5;
        let lambda = 0.2;
        let t = Torus2D::new(n);
        let rates = edge_rates_enumerated(&t, &TorusGreedy, &UniformDest, lambda, &all_nodes(&t));
        let direct: f64 = rates.iter().map(|&l| md1_mean_number(l)).sum();
        assert!((reference_system_number(n, lambda) - direct).abs() < 1e-9);
    }

    #[test]
    fn torus_more_stable_than_array() {
        // Wraparound doubles cut capacity and halves distances: the torus
        // threshold approaches 2× the array's as n grows (odd n reaches the
        // full factor 2; even n gets 2n/(n+2) because of the tie-break
        // asymmetry in the positive direction).
        for n in [4usize, 5, 8, 9, 16] {
            let array = crate::load::mesh_stability_threshold(n);
            let torus = stability_threshold(n);
            assert!(torus > 1.3 * array, "n={n}: torus {torus} vs array {array}");
        }
        assert!(
            (stability_threshold(9) - 2.0 * crate::load::mesh_stability_threshold(9)).abs() < 1e-9
        );
    }

    #[test]
    fn lower_bound_grows_near_capacity() {
        let n = 6;
        let thr = stability_threshold(n);
        let near = thm10_lower(n, 0.999 * thr);
        let far = thm10_lower(n, 0.5 * thr);
        assert!(near > 10.0 * far, "near {near}, far {far}");
    }

    #[test]
    fn trivial_bound_dominates_at_light_load() {
        let n = 8;
        assert_eq!(best_lower_bound(n, 1e-6), trivial_lower(n));
    }
}
