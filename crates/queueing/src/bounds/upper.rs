//! The Theorem 5/7 upper bound.
//!
//! Theorem 1 (Stamoulis–Tsitsiklis) shows that for a layered network with
//! Markovian routing and Poisson externals, the processor-sharing version
//! stochastically dominates the FIFO version in total packet count. The
//! array is layered under greedy routing (Lemma 2) and greedy routing with
//! uniform destinations is Markovian (Corollary 4), so the product-form PS
//! quantities bound the FIFO ones from above (Theorem 5). Evaluating the
//! product form with Theorem 6's rates gives Theorem 7:
//!
//! ```text
//! T ≤ (1/(λn²)) · Σ_e λ_e/(1−λ_e)
//!   = (4/(λn)) · Σ_{i=1}^{n−1} 1/(n/(λ·i(n−i)) − 1).
//! ```

use crate::jackson;
use crate::little::mesh_total_arrival;
use meshbound_routing::rates::mesh_class_rate;

/// Theorem 7's upper bound on the mean delay of the `n × n` array at
/// per-node arrival rate `lambda`. Returns `∞` when some edge is saturated.
#[must_use]
pub fn upper_bound_delay(n: usize, lambda: f64) -> f64 {
    let mut sum = 0.0;
    for i in 1..n {
        let le = mesh_class_rate(n, lambda, i);
        if le >= 1.0 {
            return f64::INFINITY;
        }
        sum += le / (1.0 - le);
    }
    // 4n edges per crossing-index class.
    4.0 * n as f64 * sum / mesh_total_arrival(n, lambda)
}

/// Upper bound on the expected number of packets in the array (Theorem 5
/// with the product form): `Σ_e λ_e/(1−λ_e)`.
#[must_use]
pub fn upper_bound_number(n: usize, lambda: f64) -> f64 {
    upper_bound_delay(n, lambda) * mesh_total_arrival(n, lambda)
}

/// Generic form of the bound for any layered Markovian network with unit
/// service times: mean delay ≤ product-form mean number / total arrival
/// rate.
#[must_use]
pub fn upper_bound_from_rates(rates: &[f64], total_arrival: f64) -> f64 {
    jackson::mean_number_unit(rates) / total_arrival
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshbound_routing::rates::mesh_thm6_rates;
    use meshbound_topology::Mesh2D;

    #[test]
    fn closed_form_matches_generic_form() {
        for n in [4usize, 5, 9] {
            let lambda = 0.5 * 4.0 / n as f64;
            let mesh = Mesh2D::square(n);
            let rates = mesh_thm6_rates(&mesh, lambda);
            let generic = upper_bound_from_rates(&rates, mesh_total_arrival(n, lambda));
            let closed = upper_bound_delay(n, lambda);
            assert!((generic - closed).abs() < 1e-9, "n={n}");
        }
    }

    #[test]
    fn saturation_gives_infinity() {
        // λ = 4/n saturates the central cut for even n.
        assert!(upper_bound_delay(10, 0.4).is_infinite());
        assert!(upper_bound_delay(10, 0.399).is_finite());
    }

    #[test]
    fn odd_n_finite_at_lambda_4_over_n() {
        // For odd n the peak utilization at λ = 4/n is 1 − 1/n² < 1.
        assert!(upper_bound_delay(5, 0.8).is_finite());
        assert!(upper_bound_delay(5, 5.0 / 6.0).is_infinite());
    }

    #[test]
    fn upper_bound_exceeds_mean_distance() {
        // The bound must exceed the trivial lower bound n̄ whenever stable.
        for n in [5usize, 10, 20] {
            for rho in [0.2, 0.5, 0.9] {
                let lambda = 4.0 * rho / n as f64;
                let t = upper_bound_delay(n, lambda);
                let nbar = Mesh2D::square(n).mean_distance();
                assert!(t > nbar, "n={n}, ρ={rho}: {t} ≤ {nbar}");
            }
        }
    }

    #[test]
    fn bound_increases_with_load() {
        let n = 8;
        let mut prev = 0.0;
        for rho in [0.1, 0.3, 0.5, 0.7, 0.9, 0.97] {
            let t = upper_bound_delay(n, 4.0 * rho / n as f64);
            assert!(t > prev);
            prev = t;
        }
    }
}
