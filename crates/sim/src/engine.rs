//! Hot-path engine selection for [`NetworkSim::run`](crate::NetworkSim::run).
//!
//! Every single-core engine produces **bit-identical**
//! [`SimResult`](crate::SimResult)s for the same scenario and seed — the
//! engine choice moves wall-clock time, never a single reported number.
//! The cross-engine equivalence suite (`tests/engine_equivalence.rs`) pins
//! that guarantee across all topologies and both time modes.
//!
//! The parallel engine ([`EngineSpec::Sharded`]) has a weaker but still
//! hard contract: for a fixed `(seed, shard_count)` it is bit-identical
//! across reruns and thread schedules, and the single-core engines remain
//! its statistical oracle (delay, throughput and conservation-law ratios
//! agree within replication noise; see `crate::shard`).

use serde::{Deserialize, Serialize};

/// Node-count gate above which [`EngineSpec::Auto`] skips the precomputed
/// route tables. A table stores one packed `u32` per `(node, destination)`
/// pair, so the gate caps table memory at 512² × 4 B = 1 MiB — sized to
/// stay L2-resident on current hardware; beyond that a cache-missing
/// lookup costs more than the coordinate arithmetic it replaces, so the
/// on-the-fly router walk is kept. (Measured on the Table-I mesh workload,
/// where the 20×20 mesh's 640 KiB table is still a clear win.)
pub const ROUTE_TABLE_MAX_NODES: usize = 512;

/// Node-count gate above which `Scenario::edge_rates` tries the
/// sparse-support fast path
/// ([`edge_rates_sparse`](meshbound_routing::rates::edge_rates_sparse))
/// before falling back to the O(N² · route) all-destinations scan. Below
/// the gate enumeration is already sub-millisecond and stays the single
/// code path that every ≤512-node published number was produced by; above
/// it, permutation and hotspot workloads get O(N · diameter) rate vectors
/// that remain exact to enumeration (pinned by `tests/scale.rs`).
pub const SPARSE_RATES_MIN_NODES: usize = ROUTE_TABLE_MAX_NODES;

/// Edge-count gate above which [`SimResult`](crate::SimResult) stops
/// materializing full per-edge vectors (`edge_throughput`) and reports only
/// the streaming Welford summary (`edge_throughput_stats`). At
/// `hypercube:20` there are `20 · 2²⁰ ≈ 2.1 × 10⁷` directed edges; a
/// per-edge `f64` vector per replication is ~168 MiB of copying that no
/// caller inspects edge-by-edge at that scale. Every topology that fits a
/// route table (≤ 512 nodes ⇒ ≤ 5120 edges) sits far below this gate, so
/// published small-scale results are untouched bit-for-bit.
pub const STREAMING_STATS_MAX_EDGES: usize = 1 << 16;

/// Which engine drives the simulator's hot loop.
///
/// * [`EngineSpec::Auto`] (the default) — calendar-queue future-event list
///   plus precomputed route tables when the topology fits under
///   [`ROUTE_TABLE_MAX_NODES`] and the router is deterministic (randomized
///   routers carry per-packet state, so they keep the on-the-fly path).
/// * [`EngineSpec::Heap`] — the binary-heap future-event list with
///   on-the-fly routing: the pre-overhaul baseline, kept as the reference
///   implementation and the benchmark yardstick.
/// * [`EngineSpec::Calendar`] — calendar queue with on-the-fly routing
///   (isolates the event-queue contribution in ablations).
/// * [`EngineSpec::Sharded`] — conservative parallel DES: the topology is
///   partitioned into `shards` node blocks, each runs its own calendar
///   queue on its own thread, and cross-shard packets are exchanged at
///   epoch boundaries (see `crate::shard`). Requires deterministic
///   service times (the lookahead is the minimum cut-edge service time).
///
/// # Examples
///
/// Selecting an engine on a scenario spec and via the builder:
///
/// ```
/// use meshbound_sim::{EngineSpec, Load, Scenario};
///
/// let fast = Scenario::mesh(5).load(Load::TableRho(0.5)).seed(3);
/// let slow = fast.clone().engine(EngineSpec::Heap);
/// let a = fast.run();
/// let b = slow.run();
/// // Different engines, bit-identical physics:
/// assert_eq!(a.avg_delay.to_bits(), b.avg_delay.to_bits());
/// assert_eq!(a.events_processed, b.events_processed);
///
/// // Spec strings round-trip the engine choice:
/// let sc = Scenario::parse("mesh:5,rho=0.5,engine=calendar").unwrap();
/// assert_eq!(sc.engine, EngineSpec::Calendar);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EngineSpec {
    /// Calendar queue + route tables where eligible (the default).
    Auto,
    /// Binary-heap event list, on-the-fly routing (the baseline).
    Heap,
    /// Calendar queue, on-the-fly routing.
    Calendar,
    /// Conservative parallel DES over `shards` node shards, one thread
    /// per shard (spec form `sharded:<N>`, or the `shards=<N>` key).
    Sharded {
        /// Requested shard count (clamped to `[1, num_nodes]` at run
        /// time; determinism depends on the requested count, not the
        /// host's core count).
        shards: usize,
    },
}

// Not `#[derive(Default)]`: the offline serde_derive stub parses the enum
// body and does not understand variant-level `#[default]` attributes.
#[allow(clippy::derivable_impls)]
impl Default for EngineSpec {
    fn default() -> Self {
        EngineSpec::Auto
    }
}

impl EngineSpec {
    /// The single-core engines, in the order benchmarks and sweeps
    /// enumerate them. These are the bit-identical family; the sharded
    /// engine is excluded because its contract is per-(seed, shards)
    /// determinism, not cross-engine bit-identity.
    pub const ALL: [EngineSpec; 3] = [EngineSpec::Auto, EngineSpec::Heap, EngineSpec::Calendar];

    /// The spec-string family name (`"auto"`, `"heap"`, `"calendar"`,
    /// `"sharded"` — the shard count is carried by [`std::fmt::Display`]
    /// and the `shards=` spec key).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            EngineSpec::Auto => "auto",
            EngineSpec::Heap => "heap",
            EngineSpec::Calendar => "calendar",
            EngineSpec::Sharded { .. } => "sharded",
        }
    }

    /// Parses a spec-string name: `auto`, `heap`, `calendar` or
    /// `sharded:<N>` (N ≥ 1).
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending input when it is not one of
    /// the forms above.
    pub fn parse_str(s: &str) -> Result<Self, String> {
        match s {
            "auto" => Ok(EngineSpec::Auto),
            "heap" => Ok(EngineSpec::Heap),
            "calendar" => Ok(EngineSpec::Calendar),
            other => {
                if let Some(count) = other.strip_prefix("sharded:") {
                    return match count.parse::<usize>() {
                        Ok(shards) if shards >= 1 => Ok(EngineSpec::Sharded { shards }),
                        _ => Err(format!(
                            "engine `sharded:` needs a shard count >= 1, got `{count}`"
                        )),
                    };
                }
                Err(format!(
                    "unknown engine `{other}` (expected auto, heap, calendar or sharded:<N>)"
                ))
            }
        }
    }
}

impl std::fmt::Display for EngineSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineSpec::Sharded { shards } => write!(f, "sharded:{shards}"),
            other => f.write_str(other.as_str()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for e in EngineSpec::ALL {
            assert_eq!(EngineSpec::parse_str(e.as_str()), Ok(e));
            assert_eq!(format!("{e}"), e.as_str());
        }
        assert!(EngineSpec::parse_str("quantum").is_err());
    }

    #[test]
    fn sharded_round_trips_with_its_count() {
        let e = EngineSpec::parse_str("sharded:4").unwrap();
        assert_eq!(e, EngineSpec::Sharded { shards: 4 });
        assert_eq!(e.as_str(), "sharded");
        assert_eq!(format!("{e}"), "sharded:4");
        assert_eq!(EngineSpec::parse_str(&format!("{e}")), Ok(e));
        for bad in ["sharded", "sharded:", "sharded:0", "sharded:x"] {
            assert!(EngineSpec::parse_str(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn default_is_auto() {
        assert_eq!(EngineSpec::default(), EngineSpec::Auto);
    }
}
