//! Bounded time-series storage with flight-recorder decimation.
//!
//! Long simulations want trajectories — `N(t)`, queue mass, drop counts —
//! but an unbounded `Vec<(t, v)>` grows linearly with the horizon. A
//! [`DecimatingSeries`] keeps at most `capacity` samples at any horizon:
//! when the buffer fills it discards every other retained sample in place
//! and doubles its stride, so the surviving samples always sit at
//! contiguous multiples of `stride × Δ` for the caller's base interval Δ.
//! Memory is `O(capacity)` forever; resolution degrades gracefully (by
//! powers of two) instead of storage growing without bound.
//!
//! Decimation is a pure function of the number of samples pushed — never
//! of the sample *values* or of wall-clock time — so two series fed the
//! same number of ticks always agree on which ticks they retained. The
//! sharded simulation engine relies on this to merge per-shard series
//! sample-by-sample.

/// A fixed-capacity time series that halves its resolution instead of
/// growing.
///
/// Two feeding modes cover the two call sites in the simulator:
///
/// * [`DecimatingSeries::record`] stores every call. Use it when the
///   caller can reschedule its sampling clock at the widened
///   [`DecimatingSeries::stride`] after an overflow (the telemetry
///   probes do this, so no work is wasted on samples that would be
///   discarded).
/// * [`DecimatingSeries::offer`] counts every call but stores only each
///   `stride`-th one. Use it when the sampling clock is fixed and cannot
///   be rescheduled (the observer's `N(t)` sampler fires at a
///   user-chosen interval that other consumers depend on).
///
/// Both modes retain identical tick sets for identical call counts.
///
/// # Examples
///
/// ```
/// use meshbound_stats::DecimatingSeries;
/// let mut s = DecimatingSeries::new(4);
/// for k in 1..=32 {
///     s.offer(k as f64, (k * k) as f64);
/// }
/// assert!(s.len() <= 4);
/// assert_eq!(s.stride(), 16);
/// // The newest sample always survives decimation.
/// assert_eq!(s.samples().last().unwrap().0, 32.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DecimatingSeries {
    capacity: usize,
    stride: u64,
    offered: u64,
    samples: Vec<(f64, f64)>,
}

impl DecimatingSeries {
    /// Creates an empty series holding at most `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity < 2` or `capacity` is odd (decimation halves
    /// the buffer in place, which needs an even capacity to keep the
    /// newest sample).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(
            capacity >= 2 && capacity.is_multiple_of(2),
            "DecimatingSeries capacity must be an even number >= 2, got {capacity}"
        );
        Self {
            capacity,
            stride: 1,
            offered: 0,
            samples: Vec::new(),
        }
    }

    /// Stores `(t, v)` unconditionally, decimating if the buffer is now
    /// full. Callers in this mode should re-read [`DecimatingSeries::stride`]
    /// after each call and schedule their next sample `stride × Δ` ahead.
    pub fn record(&mut self, t: f64, v: f64) {
        self.offered += self.stride;
        self.samples.push((t, v));
        self.maybe_decimate();
    }

    /// Counts a sample taken at a fixed base interval, storing only every
    /// `stride`-th one. Returns `true` when the sample was stored.
    pub fn offer(&mut self, t: f64, v: f64) -> bool {
        self.offered += 1;
        if !self.offered.is_multiple_of(self.stride) {
            return false;
        }
        self.samples.push((t, v));
        self.maybe_decimate();
        true
    }

    /// Drops the 0-based even-index samples and doubles the stride once
    /// the buffer is full. With samples at ticks `k·s` for `k = 1..=cap`,
    /// the survivors sit at ticks `2s, 4s, …, cap·s` — contiguous
    /// multiples of the doubled stride, newest sample included.
    fn maybe_decimate(&mut self) {
        if self.samples.len() < self.capacity {
            return;
        }
        let mut keep = 0;
        for i in (1..self.samples.len()).step_by(2) {
            self.samples[keep] = self.samples[i];
            keep += 1;
        }
        self.samples.truncate(keep);
        self.stride *= 2;
    }

    /// Current stride: the retained samples sit `stride` base intervals
    /// apart. Always a power of two; 1 until the first decimation.
    #[must_use]
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// Maximum number of samples the series will hold.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total samples offered or recorded over the series' lifetime (in
    /// base-interval ticks), independent of how many were retained.
    #[must_use]
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Number of retained samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The retained `(time, value)` samples, oldest first.
    #[must_use]
    pub fn samples(&self) -> &[(f64, f64)] {
        &self.samples
    }

    /// Combines this series' values with another series sampled on the
    /// identical tick schedule: each retained value becomes
    /// `f(self, other)` at the same tick. The parallel-merge step for
    /// series tracked independently per shard (sum for counts, max for
    /// peaks).
    ///
    /// # Panics
    ///
    /// Panics if the two series retain different sample counts (they were
    /// not fed the same tick schedule); debug-asserts the retained tick
    /// times agree bit-for-bit.
    pub fn combine_values(&mut self, other: &Self, f: impl Fn(f64, f64) -> f64) {
        assert_eq!(
            self.samples.len(),
            other.samples.len(),
            "combine_values needs series on the same tick schedule"
        );
        for (a, b) in self.samples.iter_mut().zip(&other.samples) {
            debug_assert_eq!(a.0.to_bits(), b.0.to_bits(), "sample ticks disagree");
            a.1 = f(a.1, b.1);
        }
    }

    /// Consumes the series, returning the retained samples.
    #[must_use]
    pub fn into_samples(self) -> Vec<(f64, f64)> {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    #[should_panic(expected = "even number")]
    fn odd_capacity_rejected() {
        let _ = DecimatingSeries::new(3);
    }

    #[test]
    fn below_capacity_keeps_everything() {
        let mut s = DecimatingSeries::new(8);
        for k in 1..=7u64 {
            assert!(s.offer(k as f64, k as f64));
        }
        assert_eq!(s.len(), 7);
        assert_eq!(s.stride(), 1);
        let times: Vec<f64> = s.samples().iter().map(|p| p.0).collect();
        assert_eq!(times, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn first_decimation_keeps_even_ticks() {
        let mut s = DecimatingSeries::new(8);
        for k in 1..=8u64 {
            s.offer(k as f64, k as f64);
        }
        assert_eq!(s.stride(), 2);
        let times: Vec<f64> = s.samples().iter().map(|p| p.0).collect();
        assert_eq!(times, vec![2.0, 4.0, 6.0, 8.0]);
        // The next stored offer is tick 10; tick 9 is skipped.
        assert!(!s.offer(9.0, 9.0));
        assert!(s.offer(10.0, 10.0));
    }

    #[test]
    fn record_mode_matches_offer_mode_tick_sets() {
        // Offer mode at base interval 1 vs record mode rescheduling at
        // the widened stride must retain identical tick sets.
        let mut offered = DecimatingSeries::new(8);
        for k in 1..=64u64 {
            offered.offer(k as f64, 0.0);
        }
        let mut recorded = DecimatingSeries::new(8);
        let mut t = 0u64;
        while t < 64 {
            t += recorded.stride();
            if t <= 64 {
                recorded.record(t as f64, 0.0);
            }
        }
        let a: Vec<f64> = offered.samples().iter().map(|p| p.0).collect();
        let b: Vec<f64> = recorded.samples().iter().map(|p| p.0).collect();
        assert_eq!(a, b);
        assert_eq!(offered.stride(), recorded.stride());
    }

    #[test]
    fn million_offers_stay_bounded() {
        let mut s = DecimatingSeries::new(64);
        for k in 1..=1_000_000u64 {
            s.offer(k as f64, k as f64);
        }
        assert!(s.len() <= 64);
        assert!(s.stride().is_power_of_two());
        assert_eq!(s.offered(), 1_000_000);
    }

    proptest! {
        #[test]
        fn prop_flight_recorder_invariants(
            ticks in 1u64..5000,
            half_cap in 1usize..32,
        ) {
            let capacity = 2 * half_cap;
            let mut s = DecimatingSeries::new(capacity);
            for k in 1..=ticks {
                s.offer(k as f64, (k as f64).sin());
            }
            // Bounded memory.
            prop_assert!(s.len() <= capacity);
            // Stride is a power of two.
            prop_assert!(s.stride().is_power_of_two());
            // Retained ticks are contiguous multiples of the stride,
            // ending at the newest stored tick.
            let stride = s.stride();
            let times: Vec<u64> = s.samples().iter().map(|p| p.0 as u64).collect();
            let last_stored = (ticks / stride) * stride;
            for (i, &t) in times.iter().rev().enumerate() {
                prop_assert_eq!(t, last_stored - i as u64 * stride);
            }
            // Once at least `stride` ticks have elapsed, something is
            // retained and the newest retained tick is within one
            // stride of the latest offer.
            if ticks >= stride {
                prop_assert!(!s.is_empty());
                prop_assert!(ticks - last_stored < stride);
            }
        }
    }
}
