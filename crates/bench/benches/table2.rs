//! Regenerates Table II (the ratio r = E[R]/E[N]) and times one cell.

use criterion::{criterion_group, criterion_main, Criterion};
use meshbound::experiments::table2;
use meshbound::{Load, Scenario};

fn bench(c: &mut Criterion) {
    let scale = meshbound_bench::bench_scale();
    let rows = table2::run(&scale);
    println!("\n{}", table2::render(&rows));

    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    group.bench_function("cell_n10_rho0.5_with_R_tracking", |b| {
        b.iter(|| {
            Scenario::mesh(10)
                .load(Load::TableRho(0.5))
                .horizon(2_000.0)
                .warmup(400.0)
                .seed(7)
                .run()
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
