//! The packet-level FIFO network simulator (the paper's standard model and
//! its Jackson variant).
//!
//! Each directed edge is a server with its own FIFO queue and service rate.
//! Packets are generated at source nodes by Poisson processes (or in batch
//! at slot boundaries in slotted mode, §5.2), routed incrementally by a
//! [`Router`], and leave the system on reaching their destination.
//!
//! The hot loop allocates nothing per event and is driven by a selectable
//! engine ([`EngineSpec`] on [`NetConfig`]):
//!
//! * the **future-event list** is either the reference binary heap or the
//!   O(1)-amortized calendar queue (the default);
//! * **routing** calls [`Router::next_hop`] at every dequeue with a live
//!   [`LocalView`] of the switch's output queues (`QueueView`) — the
//!   per-hop `RoutingPolicy` surface under which oblivious routers recompute
//!   their Markovian next edge (Corollary 4) and adaptive turn-model routers
//!   steer around congestion — or, for deterministic routers on gated sizes,
//!   reads hops from a precomputed [`RouteTable`] together with route
//!   lengths and saturated-hop counts;
//! * **edge queues** are intrusive linked lists threaded through one shared
//!   slab (`next[pid]`), so an edge's state is two `u32` cursors and the
//!   whole network's queue storage is a single allocation;
//! * packet records live in a free-list slab.
//!
//! Engines are bit-identical by construction: every event pops in the same
//! `(time, seq)` order and every random draw happens in the same sequence,
//! so `SimResult` is invariant under the engine choice (pinned by
//! `tests/engine_equivalence.rs`).

use crate::engine::{EngineSpec, ROUTE_TABLE_MAX_NODES, STREAMING_STATS_MAX_EDGES};
use crate::events::{CalendarQueue, EventQueue, HeapQueue};
use crate::fault::{ttl_budget, DropCause, DropCounts, FaultPlan};
use crate::observer::Observer;
use crate::rng::{derive_rng, exp_sample, poisson_sample};
use crate::service::ServiceKind;
use crate::telemetry::{ProbeSample, ProbeSpec, Recorder, TelemetryReport};
use meshbound_routing::dest::DestSampler;
use meshbound_routing::{LocalView, RouteOutcome, RouteTable, Router, ZeroView};
use meshbound_topology::{EdgeId, NodeId, Topology};
use rand::rngs::SmallRng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Tuning parameters common to all topologies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetConfig {
    /// Per-source Poisson arrival rate λ.
    pub lambda: f64,
    /// Simulated end time.
    pub horizon: f64,
    /// Warmup time; statistics start here.
    pub warmup: f64,
    /// Master RNG seed.
    pub seed: u64,
    /// Transmission-time distribution.
    pub service: ServiceKind,
    /// Whether packets with `source == destination` count (delay 0). The
    /// paper's model allows them; Table I averages include them.
    pub include_self_packets: bool,
    /// Slotted-time mode: packets arrive in Poisson batches of mean `λ·τ`
    /// at multiples of `τ` (§5.2).
    pub slot: Option<f64>,
    /// Sample `N(t)` every this many time units (stability diagnostics).
    pub sample_every: Option<f64>,
    /// Track delay quantiles with a bounded reservoir sample.
    pub delay_quantiles: bool,
    /// Track per-edge time-averaged queue lengths (the §4.4 "middle queues
    /// are larger" diagnostic). Adds one integrator update per enqueue and
    /// dequeue.
    pub track_edge_queues: bool,
    /// Telemetry probes: which time series to sample at deterministic
    /// sim-clock ticks. `None` (the default) schedules no probe events
    /// and leaves every result field bit-identical to a pre-telemetry
    /// build; `Some` attaches a [`TelemetryReport`] without perturbing
    /// any other field — probes read engine state but never mutate it.
    pub probes: Option<ProbeSpec>,
    /// Hot-path engine selection (event queue + routing tables). All
    /// engines produce bit-identical results.
    pub engine: EngineSpec,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            lambda: 0.1,
            horizon: 1_000.0,
            warmup: 100.0,
            seed: 1,
            service: ServiceKind::Deterministic,
            include_self_packets: true,
            slot: None,
            sample_every: None,
            delay_quantiles: false,
            track_edge_queues: false,
            probes: None,
            engine: EngineSpec::Auto,
        }
    }
}

/// Aggregated output of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimResult {
    /// Mean packet delay `T` (generation → delivery), zero-distance packets
    /// included when configured.
    pub avg_delay: f64,
    /// Standard error of the delay mean (per-packet, correlated — use
    /// replications for honest intervals).
    pub delay_std_err: f64,
    /// Packets generated after warmup.
    pub generated: u64,
    /// Packets delivered that were generated after warmup.
    pub completed: u64,
    /// Packets dropped by the fault machinery, tallied by cause. All-zero
    /// on a healthy run — nothing drops without a fault plan.
    pub dropped: DropCounts,
    /// `completed / generated`: the fraction of the measured offered load
    /// that was delivered (the rest dropped or was still in flight at the
    /// horizon). Zero when nothing was generated.
    pub delivered_fraction: f64,
    /// Time-averaged number in system `E[N]`.
    pub time_avg_n: f64,
    /// Time-averaged remaining services `E[R]` (Table II numerator).
    pub time_avg_r: f64,
    /// Time-averaged remaining saturated services `E[R_s]` (Table III).
    pub time_avg_rs: f64,
    /// `r = E[R]/E[N]`.
    pub r_ratio: f64,
    /// `r_s = E[R_s]/E[N]`.
    pub rs_ratio: f64,
    /// Little's-law delay `E[N] / throughput` — should agree with
    /// `avg_delay` when the run is long enough.
    pub little_delay: f64,
    /// Highest per-edge busy fraction observed.
    pub max_edge_utilization: f64,
    /// Per-edge empirical service throughput (completions per unit time).
    /// Materialized only up to [`STREAMING_STATS_MAX_EDGES`] edges; above
    /// that scale the vector is empty and [`SimResult::edge_throughput_stats`]
    /// carries the streaming summary instead.
    pub edge_throughput: Vec<f64>,
    /// Streaming (Welford) summary of the per-edge service throughput —
    /// always present, and the only per-edge throughput view at scales
    /// where the full vector is not materialized.
    pub edge_throughput_stats: EdgeThroughputStats,
    /// `N(t)` at the horizon (large values flag instability).
    pub final_n: f64,
    /// Peak `N(t)` observed.
    pub peak_n: f64,
    /// Sampled `N(t)` trajectory, if requested.
    pub n_samples: Vec<(f64, f64)>,
    /// Measurement window length (horizon − warmup).
    pub measure_time: f64,
    /// Future-event-list events processed over the whole run (arrivals,
    /// departures, slot/sample/warmup ticks). Deterministic given the
    /// seed, so the single-core engines must agree on it bit for bit.
    /// The sharded engine replicates its per-shard ticks and adds one
    /// handoff event per cross-shard packet transfer, so its count is
    /// comparable only across runs of the same `(seed, shards)` pair.
    pub events_processed: u64,
    /// Events processed per wall-clock second — the run's throughput. The
    /// **only** nondeterministic field; zero it before comparing results.
    pub events_per_sec: f64,
    /// Median delay, when `delay_quantiles` was enabled.
    pub delay_p50: Option<f64>,
    /// 95th-percentile delay, when `delay_quantiles` was enabled.
    pub delay_p95: Option<f64>,
    /// 99th-percentile delay, when `delay_quantiles` was enabled.
    pub delay_p99: Option<f64>,
    /// Per-edge time-averaged queue length (including the packet in
    /// service), when `track_edge_queues` was enabled.
    pub edge_mean_queue: Option<Vec<f64>>,
    /// Flight-recorder telemetry, when [`NetConfig::probes`] was set.
    /// Purely additive: every other field is bit-identical to the same
    /// run with probes off.
    pub telemetry: Option<TelemetryReport>,
}

/// Streaming cross-edge summary of per-edge service throughput, computed
/// with a single Welford pass so it costs O(1) memory however many edges
/// the topology has. Deterministic given the seed (it reduces the same
/// service counts every engine must agree on bit for bit).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdgeThroughputStats {
    /// Number of edges summarized.
    pub edges: usize,
    /// Mean per-edge throughput (completions per unit time).
    pub mean: f64,
    /// Largest per-edge throughput.
    pub max: f64,
    /// Sample standard deviation across edges (0 with fewer than 2 edges).
    pub std_dev: f64,
}

/// A structural failure inside a simulation run.
///
/// A router stall is always a router/topology contract violation on a
/// *healthy* topology (greedy routers are total; under a fault plan an
/// unroutable packet becomes an accounted drop instead), so
/// [`NetworkSim::run`] panics on it; [`NetworkSim::try_run`] surfaces it
/// as a value for callers that prefer to handle it. An unsupported
/// configuration means the requested engine cannot honor the run's
/// parameters at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The router produced no next edge at `node` for a packet destined
    /// for `dst` on a healthy topology.
    RouterStalled {
        /// Node the packet was stranded at.
        node: NodeId,
        /// The packet's destination.
        dst: NodeId,
        /// Type name of the offending router.
        router: &'static str,
    },
    /// The selected engine cannot honor the run's configuration (e.g. the
    /// sharded engine's lookahead contract).
    UnsupportedConfig {
        /// What the engine cannot do, and why.
        reason: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::RouterStalled { node, dst, router } => write!(
                f,
                "router {router} stalled at {node} before reaching destination {dst}"
            ),
            SimError::UnsupportedConfig { reason } => {
                write!(f, "unsupported configuration: {reason}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// The short type name of a router (the last path segment), for
/// [`SimError::RouterStalled`].
pub(crate) fn router_name<R: ?Sized>() -> &'static str {
    let full = std::any::type_name::<R>();
    full.rsplit("::").next().unwrap_or(full)
}

/// The one [`SimError::RouterStalled`] construction site shared by every
/// engine: a packet stuck at `node` heading for `dst` under router `R`.
pub(crate) fn stall<R: ?Sized>(node: NodeId, dst: NodeId) -> SimError {
    SimError::RouterStalled {
        node,
        dst,
        router: router_name::<R>(),
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Ev {
    /// Next external arrival at `sources[idx]`.
    Arrival(u32),
    /// Service completion at edge.
    Departure(u32),
    /// Slot boundary (slotted mode).
    Slot,
    /// Warmup boundary.
    Warmup,
    /// `N(t)` sampling tick.
    Sample,
    /// Liveness transition `k` of the run's fault plan. Scheduled only
    /// when a plan is installed, so fault-free runs process the exact
    /// pre-fault event sequence.
    Fault(u32),
    /// Telemetry probe tick. Scheduled only when probes are configured;
    /// the handler reads engine state, draws no randomness and mutates
    /// nothing, and its event count is subtracted at result assembly, so
    /// probed runs stay bit-identical to unprobed ones.
    Probe,
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct Packet<S> {
    pub(crate) dst: NodeId,
    pub(crate) state: S,
    pub(crate) gen_time: f64,
    /// Remaining misroute budget ([`ttl_budget`] of the route length),
    /// decremented per hop; consulted only when a fault plan is active.
    pub(crate) ttl: u32,
}

/// Sentinel for "no packet" in the intrusive edge-queue lists.
pub(crate) const NIL: u32 = u32::MAX;

/// One directed edge's server state — the hot 24 bytes touched on every
/// enqueue/departure. The FIFO queue is an intrusive linked list threaded
/// through the shared `qnext` slab (indexed by packet id), so an edge owns
/// no heap allocation — just head/tail cursors. The optional
/// queue-length-integral tracking lives in a separate cold array
/// ([`QTrack`]) so the default configuration keeps the edge array compact.
#[derive(Debug)]
pub(crate) struct EdgeState {
    /// Packet in service (when busy) and head of the waiting line.
    pub(crate) head: u32,
    /// Last packet in the line (`NIL` when empty).
    pub(crate) tail: u32,
    /// Queue length including the packet in service.
    pub(crate) qlen: u32,
    pub(crate) busy: bool,
    pub(crate) service_start: f64,
}

impl Default for EdgeState {
    fn default() -> Self {
        Self {
            head: NIL,
            tail: NIL,
            qlen: 0,
            busy: false,
            service_start: 0.0,
        }
    }
}

/// The engine's live [`LocalView`]: per-output-port queue occupancy read
/// straight off the edge-state slab. Handed to [`Router::next_hop`] at
/// every dequeue, so adaptive policies see the congestion of the instant
/// they decide in — including the effect of earlier decisions at the same
/// switch.
pub(crate) struct QueueView<'a> {
    pub(crate) edges: &'a [EdgeState],
    /// Per-edge liveness under the run's fault plan; the empty slice means
    /// "no plan" and reports every edge live at zero cost.
    pub(crate) live: &'a [bool],
}

impl LocalView for QueueView<'_> {
    #[inline]
    fn queue_len(&self, e: EdgeId) -> u32 {
        self.edges[e.index()].qlen
    }

    #[inline]
    fn is_live(&self, e: EdgeId) -> bool {
        self.live.is_empty() || self.live[e.index()]
    }
}

/// Cold per-edge tracking state: time-weighted queue-length integral and
/// its last update time (allocated only under `track_edge_queues`).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct QTrack {
    pub(crate) integral: f64,
    pub(crate) last: f64,
}

/// Accumulates an edge's queue-length integral up to `now` (post-warmup
/// clipping happens at extraction time via the warmup reset).
#[inline]
pub(crate) fn qtick(t: &mut QTrack, qlen: u32, now: f64) {
    t.integral += f64::from(qlen) * (now - t.last);
    t.last = now;
}

/// Appends `pid` to an edge's intrusive FIFO (`qnext` is the shared slab).
#[inline]
pub(crate) fn q_push(edge: &mut EdgeState, qnext: &mut Vec<u32>, pid: u32) {
    let i = pid as usize;
    if qnext.len() <= i {
        qnext.resize(i + 1, NIL);
    }
    qnext[i] = NIL;
    if edge.tail == NIL {
        edge.head = pid;
    } else {
        qnext[edge.tail as usize] = pid;
    }
    edge.tail = pid;
    edge.qlen += 1;
}

/// Removes and returns the head-of-line packet of an edge's FIFO.
#[inline]
pub(crate) fn q_pop(edge: &mut EdgeState, qnext: &[u32]) -> u32 {
    debug_assert!(edge.head != NIL, "departure from empty edge");
    let pid = edge.head;
    edge.head = qnext[pid as usize];
    if edge.head == NIL {
        edge.tail = NIL;
    }
    edge.qlen -= 1;
    pid
}

/// Precomputed fast-path data the `Auto` engine attaches to a run. Each
/// piece is independent: route tables are size-gated, service times only
/// exist for the deterministic distribution.
struct EngineTables {
    /// Next hop, distance and edge targets for the (deterministic)
    /// router, when the topology passes the size gate.
    routes: Option<RouteTable>,
    /// Saturated hops per `(src, dst)` pair, when `R_s` is tracked and a
    /// route table exists.
    sat_counts: Option<Vec<u32>>,
    /// Per-edge service times, when the service distribution is
    /// deterministic (saves a division per service start).
    det_service: Option<Vec<f64>>,
}

/// The deterministic service time of edge `ei`, when precomputed.
#[inline]
fn det_of(det: Option<&[f64]>, ei: usize) -> Option<f64> {
    det.map(|d| d[ei])
}

/// The generic FIFO network simulator.
///
/// Construct with [`NetworkSim::new`], optionally adjust sources, service
/// rates or the saturated-edge set, then call [`NetworkSim::run`].
pub struct NetworkSim<T, R, D>
where
    T: Topology,
    R: Router<T>,
    D: DestSampler<T>,
{
    pub(crate) topo: T,
    pub(crate) router: R,
    pub(crate) dest: D,
    pub(crate) cfg: NetConfig,
    pub(crate) sources: Vec<NodeId>,
    /// Per-source Poisson rates (`None` = every source at `cfg.lambda`,
    /// the historical scalar path — kept as `None` so the uniform case
    /// stays on the exact same code path, bit for bit).
    pub(crate) source_rates: Option<Vec<f64>>,
    pub(crate) service_rates: Vec<f64>,
    pub(crate) sat_edge: Vec<bool>,
    pub(crate) track_saturated: bool,
    /// Materialized failure timeline ([`FaultPlan::is_empty`] = healthy
    /// run on the exact pre-fault code path).
    pub(crate) fault_plan: FaultPlan,
}

impl<T, R, D> NetworkSim<T, R, D>
where
    // `Sync` lets the sharded engine borrow the simulator from its worker
    // threads; every concrete topology/router/sampler is plain data.
    T: Topology + Sync,
    R: Router<T> + Sync,
    D: DestSampler<T> + Sync,
{
    /// Creates a simulator over `topo` where every node is a source and all
    /// edges have unit service rate.
    pub fn new(topo: T, router: R, dest: D, cfg: NetConfig) -> Self {
        let sources = topo.nodes().collect();
        let num_edges = topo.num_edges();
        Self {
            topo,
            router,
            dest,
            cfg,
            sources,
            source_rates: None,
            service_rates: vec![1.0; num_edges],
            sat_edge: vec![false; num_edges],
            track_saturated: false,
            fault_plan: FaultPlan::default(),
        }
    }

    /// Installs a materialized fault plan (see [`FaultPlan::materialize`]).
    /// The engines replay its timeline: failed edges stop accepting
    /// packets, waiting packets drop where they stand, and unroutable
    /// packets become accounted drops instead of [`SimError`]s.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Restricts packet generation to the given sources (e.g. butterfly
    /// level-0 nodes). Call before [`NetworkSim::with_source_rates`] —
    /// rates are positional, so installing them against the wrong source
    /// list would silently misassign them.
    ///
    /// # Panics
    ///
    /// Panics if per-source rates were already installed, or `sources` is
    /// empty.
    #[must_use]
    pub fn with_sources(mut self, sources: Vec<NodeId>) -> Self {
        assert!(
            self.source_rates.is_none(),
            "set the source list before the per-source rates (rates are positional)"
        );
        assert!(!sources.is_empty());
        self.sources = sources;
        self
    }

    /// Sets **per-source** Poisson rates, one per entry of the source
    /// list, generalizing the scalar `NetConfig::lambda`. Zero-rate
    /// sources generate nothing (their arrival events are never
    /// scheduled).
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the source count, any rate is
    /// negative or non-finite, or all rates are zero.
    #[must_use]
    pub fn with_source_rates(mut self, rates: Vec<f64>) -> Self {
        assert_eq!(rates.len(), self.sources.len(), "one rate per source");
        assert!(rates.iter().all(|&r| r >= 0.0 && r.is_finite()));
        assert!(rates.iter().any(|&r| r > 0.0), "all source rates are zero");
        self.source_rates = Some(rates);
        self
    }

    /// Sets per-edge service rates (the §5.1 variable-transmission-rate
    /// model).
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the edge count or any rate is not
    /// positive.
    #[must_use]
    pub fn with_service_rates(mut self, rates: Vec<f64>) -> Self {
        assert_eq!(rates.len(), self.topo.num_edges());
        assert!(rates.iter().all(|&r| r > 0.0));
        self.service_rates = rates;
        self
    }

    /// Marks the saturated edges so `R_s(t)` is tracked (Table III).
    #[must_use]
    pub fn with_saturated_edges(mut self, edges: &[EdgeId]) -> Self {
        for &e in edges {
            self.sat_edge[e.index()] = true;
        }
        self.track_saturated = !edges.is_empty();
        self
    }

    /// Builds the `Auto` engine's precomputed tables. Route tables require
    /// a deterministic router and a topology under the size gate; the
    /// deterministic-service precompute applies regardless.
    fn build_tables(&self) -> EngineTables {
        // Route tables are blind to liveness, so fault runs stay on the
        // on-the-fly routing path.
        let routes = (self.fault_plan.is_empty()
            && self.router.is_route_deterministic()
            && self.topo.num_nodes() <= ROUTE_TABLE_MAX_NODES
            && RouteTable::fits(&self.topo))
        .then(|| RouteTable::build(&self.topo, &self.router));
        let sat_counts = match (&routes, self.track_saturated) {
            (Some(r), true) => Some(r.saturated_counts(&self.sat_edge)),
            _ => None,
        };
        let det_service = (self.cfg.service == ServiceKind::Deterministic)
            .then(|| self.service_rates.iter().map(|r| 1.0 / r).collect());
        EngineTables {
            routes,
            sat_counts,
            det_service,
        }
    }

    /// Runs the simulation to the horizon and returns aggregate statistics.
    ///
    /// The single-core engines named by [`NetConfig::engine`] only move
    /// wall-clock time; their returned statistics are bit-identical. The
    /// sharded engine is bit-identical per `(seed, shards)` pair and
    /// statistically equivalent to the single-core engines (see
    /// `crate::shard`).
    ///
    /// # Panics
    ///
    /// Panics with the [`SimError`] message if the router stalls (a
    /// router/topology contract violation); use [`NetworkSim::try_run`]
    /// to handle it as a value.
    #[must_use]
    pub fn run(self) -> SimResult {
        self.try_run().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Runs the simulation, surfacing structural failures as a value.
    ///
    /// # Errors
    ///
    /// [`SimError::RouterStalled`] if the router returns no next edge for
    /// an undelivered packet, naming the stuck `(node, dst, router)`
    /// triple.
    pub fn try_run(self) -> Result<SimResult, SimError> {
        // The throughput clock starts before any engine setup, so
        // `events_per_sec` charges the Auto engine for its table builds —
        // ev/s and wall-clock comparisons across engines stay consistent.
        let wall = Instant::now();
        let cap = 4 * self.sources.len();
        match self.cfg.engine {
            EngineSpec::Heap => self.run_with(wall, HeapQueue::with_capacity(cap), None),
            EngineSpec::Calendar => self.run_with(wall, CalendarQueue::for_simulation(cap), None),
            EngineSpec::Auto => {
                let tables = self.build_tables();
                self.run_with(wall, CalendarQueue::for_simulation(cap), Some(tables))
            }
            EngineSpec::Sharded { shards } => crate::shard::run_sharded(self, wall, shards),
        }
    }

    /// The Poisson rate of source `i` (by position in the source list).
    #[inline]
    pub(crate) fn source_rate(&self, i: usize) -> f64 {
        match &self.source_rates {
            Some(r) => r[i],
            None => self.cfg.lambda,
        }
    }

    /// The engine-generic hot loop.
    fn run_with<Q: EventQueue<Ev>>(
        self,
        wall: Instant,
        mut queue: Q,
        tables: Option<EngineTables>,
    ) -> Result<SimResult, SimError> {
        // Hoist the table views out of the loop: one flat Option each.
        let routes: Option<&RouteTable> = tables.as_ref().and_then(|t| t.routes.as_ref());
        let sat_counts: Option<&[u32]> = tables.as_ref().and_then(|t| t.sat_counts.as_deref());
        let det: Option<&[f64]> = tables.as_ref().and_then(|t| t.det_service.as_deref());
        let cfg = self.cfg.clone();
        let num_edges = self.topo.num_edges();
        let mut rng = derive_rng(cfg.seed, 0);
        let mut obs = Observer::new(num_edges, cfg.warmup);
        if cfg.delay_quantiles {
            obs.enable_delay_quantiles(1 << 16, cfg.seed ^ 0x5EED);
        }
        let mut edges: Vec<EdgeState> = (0..num_edges).map(|_| EdgeState::default()).collect();
        let mut qtrack: Vec<QTrack> = if cfg.track_edge_queues {
            vec![QTrack::default(); num_edges]
        } else {
            Vec::new()
        };
        let mut packets: Vec<Packet<R::State>> = Vec::with_capacity(1024);
        let mut qnext: Vec<u32> = Vec::with_capacity(1024);
        let mut free: Vec<u32> = Vec::new();
        // Liveness mask under the fault plan. Kept empty on healthy runs
        // so `QueueView::is_live` short-circuits and the hot loop stays
        // on the exact pre-fault path.
        let fault_active = !self.fault_plan.is_empty();
        let mut live: Vec<bool> = if fault_active {
            vec![true; num_edges]
        } else {
            Vec::new()
        };

        // Prime the event list. Zero-rate sources never get an arrival
        // event; every positive-rate source draws in list order, so the
        // uniform case consumes the RNG stream exactly as before.
        match cfg.slot {
            None => {
                for i in 0..self.sources.len() {
                    let rate = self.source_rate(i);
                    if rate > 0.0 {
                        let dt = exp_sample(&mut rng, rate);
                        queue.schedule(dt, Ev::Arrival(i as u32));
                    }
                }
            }
            Some(tau) => {
                assert!(tau > 0.0, "slot width must be positive");
                queue.schedule(tau, Ev::Slot);
            }
        }
        if cfg.warmup > 0.0 {
            queue.schedule(cfg.warmup, Ev::Warmup);
        }
        if let Some(dt) = cfg.sample_every {
            assert!(dt > 0.0);
            queue.schedule(dt, Ev::Sample);
        }
        for (k, fe) in self.fault_plan.events.iter().enumerate() {
            if fe.time <= cfg.horizon {
                queue.schedule(fe.time, Ev::Fault(k as u32));
            }
        }
        // Probe priming comes last so `probes=None` leaves the schedule
        // call sequence — and hence every event sequence number — exactly
        // as a pre-telemetry build produced it.
        let mut recorder = cfg.probes.as_ref().map(|spec| {
            let rec = Recorder::new(spec, cfg.horizon);
            queue.schedule(rec.base(), Ev::Probe);
            rec
        });

        let mut events_processed: u64 = 0;
        let mut now;
        while let Some((t, ev)) = queue.next() {
            if t > cfg.horizon {
                break;
            }
            events_processed += 1;
            now = t;
            match ev {
                Ev::Warmup => {
                    obs.reset_at_warmup();
                    if cfg.track_edge_queues {
                        for (edge, t) in edges.iter().zip(qtrack.iter_mut()) {
                            qtick(t, edge.qlen, cfg.warmup);
                            t.integral = 0.0;
                        }
                    }
                }
                Ev::Sample => {
                    obs.sample_n(now);
                    queue.schedule(now + cfg.sample_every.unwrap(), Ev::Sample);
                }
                Ev::Arrival(i) => {
                    let src = self.sources[i as usize];
                    self.inject(
                        now,
                        src,
                        &mut rng,
                        &mut obs,
                        &mut edges,
                        &live,
                        &mut qtrack,
                        &mut qnext,
                        &mut packets,
                        &mut free,
                        &mut queue,
                        routes,
                        sat_counts,
                        det,
                    )?;
                    let dt = exp_sample(&mut rng, self.source_rate(i as usize));
                    queue.schedule(now + dt, Ev::Arrival(i));
                }
                Ev::Slot => {
                    let tau = cfg.slot.unwrap();
                    for i in 0..self.sources.len() {
                        let mean = self.source_rate(i) * tau;
                        let k = poisson_sample(&mut rng, mean);
                        let src = self.sources[i];
                        for _ in 0..k {
                            self.inject(
                                now,
                                src,
                                &mut rng,
                                &mut obs,
                                &mut edges,
                                &live,
                                &mut qtrack,
                                &mut qnext,
                                &mut packets,
                                &mut free,
                                &mut queue,
                                routes,
                                sat_counts,
                                det,
                            )?;
                        }
                    }
                    queue.schedule(now + tau, Ev::Slot);
                }
                Ev::Departure(e) => {
                    let ei = e as usize;
                    if cfg.track_edge_queues {
                        qtick(&mut qtrack[ei], edges[ei].qlen, now);
                    }
                    let edge = &mut edges[ei];
                    let pid = q_pop(edge, &qnext);
                    let duration = now - edge.service_start;
                    obs.service_done(now, ei, duration, self.sat_edge[ei]);
                    edge.busy = false;
                    if edge.qlen > 0 && (live.is_empty() || live[ei]) {
                        Self::start_service(
                            edge,
                            ei,
                            now,
                            cfg.service,
                            self.service_rates[ei],
                            det_of(det, ei),
                            &mut rng,
                            &mut queue,
                        );
                    }
                    // Move the packet onward.
                    let cur = match routes {
                        Some(r) => r.edge_target(EdgeId(e)),
                        None => self.topo.edge_target(EdgeId(e)),
                    };
                    let pk = packets[pid as usize];
                    if cur == pk.dst {
                        obs.packet_exits(now, pk.gen_time, true);
                        free.push(pid);
                    } else if fault_active {
                        // Fault-aware forwarding: unroutable packets and
                        // exhausted misroute budgets become accounted
                        // drops, never run-aborting errors.
                        let decision = if pk.ttl == 0 {
                            Err(DropCause::TtlExceeded)
                        } else {
                            let view = QueueView {
                                edges: &edges,
                                live: &live,
                            };
                            match self
                                .router
                                .route_outcome(&self.topo, cur, pk.dst, pk.state, &view)
                            {
                                RouteOutcome::Forward(next) => Ok(next),
                                RouteOutcome::DeadEnd => Err(DropCause::DeadEnd),
                                RouteOutcome::LocalMinimum => Err(DropCause::LocalMinimum),
                            }
                        };
                        match decision {
                            Ok(next) => {
                                packets[pid as usize].ttl -= 1;
                                let ni = next.index();
                                Self::enqueue(
                                    &mut edges[ni],
                                    ni,
                                    pid,
                                    now,
                                    cfg.service,
                                    self.service_rates[ni],
                                    det_of(det, ni),
                                    &mut rng,
                                    &mut queue,
                                    cfg.track_edge_queues.then(|| &mut qtrack[ni]),
                                    &mut qnext,
                                );
                            }
                            Err(cause) => {
                                let remaining = self
                                    .router
                                    .remaining_hops(&self.topo, cur, pk.dst, pk.state);
                                let sat = if self.track_saturated {
                                    self.count_saturated_on_route(cur, pk.dst, pk.state)
                                } else {
                                    0
                                };
                                obs.packet_dropped(
                                    now,
                                    remaining as f64,
                                    sat as f64,
                                    pk.gen_time,
                                    cause,
                                );
                                free.push(pid);
                            }
                        }
                    } else {
                        let next = match routes {
                            Some(r) => r.next_edge(cur, pk.dst),
                            None => {
                                let view = QueueView {
                                    edges: &edges,
                                    live: &live,
                                };
                                match self
                                    .router
                                    .next_hop(&self.topo, cur, pk.dst, pk.state, &view)
                                {
                                    Some(e) => e,
                                    None => return Err(stall::<R>(cur, pk.dst)),
                                }
                            }
                        };
                        let ni = next.index();
                        Self::enqueue(
                            &mut edges[ni],
                            ni,
                            pid,
                            now,
                            cfg.service,
                            self.service_rates[ni],
                            det_of(det, ni),
                            &mut rng,
                            &mut queue,
                            cfg.track_edge_queues.then(|| &mut qtrack[ni]),
                            &mut qnext,
                        );
                    }
                }
                Ev::Fault(k) => {
                    let fe = self.fault_plan.events[k as usize];
                    let ei = fe.edge.index();
                    if fe.up {
                        live[ei] = true;
                        // Defensive: the flush below leaves at most the
                        // in-flight head queued on a dead edge, but if a
                        // packet is waiting, service must restart.
                        if edges[ei].qlen > 0 && !edges[ei].busy {
                            Self::start_service(
                                &mut edges[ei],
                                ei,
                                now,
                                cfg.service,
                                self.service_rates[ei],
                                det_of(det, ei),
                                &mut rng,
                                &mut queue,
                            );
                        }
                    } else {
                        live[ei] = false;
                        if cfg.track_edge_queues {
                            qtick(&mut qtrack[ei], edges[ei].qlen, now);
                        }
                        // The in-flight transmission (if any) finishes;
                        // everything waiting behind it drops on the spot.
                        let edge = &mut edges[ei];
                        let mut pid = if edge.busy {
                            let waiting = qnext[edge.head as usize];
                            qnext[edge.head as usize] = NIL;
                            edge.tail = edge.head;
                            edge.qlen = 1;
                            waiting
                        } else {
                            let waiting = edge.head;
                            edge.head = NIL;
                            edge.tail = NIL;
                            edge.qlen = 0;
                            waiting
                        };
                        let at = self.topo.edge_source(fe.edge);
                        while pid != NIL {
                            let next_waiting = qnext[pid as usize];
                            let pk = packets[pid as usize];
                            let remaining =
                                self.router.remaining_hops(&self.topo, at, pk.dst, pk.state);
                            let sat = if self.track_saturated {
                                self.count_saturated_on_route(at, pk.dst, pk.state)
                            } else {
                                0
                            };
                            obs.packet_dropped(
                                now,
                                remaining as f64,
                                sat as f64,
                                pk.gen_time,
                                DropCause::LinkDown,
                            );
                            free.push(pid);
                            pid = next_waiting;
                        }
                    }
                }
                Ev::Probe => {
                    let rec = recorder.as_mut().expect("probe event without recorder");
                    let spec = *rec.spec();
                    let mut sample = ProbeSample {
                        nsys: obs.n_sys.value(),
                        drops: obs.dropped.total() as f64,
                        delivered: obs.completed as f64,
                        // Engine events excluding probe ticks: this event
                        // is already counted and `rec.ticks()` holds the
                        // prior ones, so the series matches what a
                        // probes-off run would have counted at `now`.
                        events: (events_processed - rec.ticks() - 1) as f64,
                        ..ProbeSample::default()
                    };
                    if spec.maxq || spec.shards {
                        let mut maxq = 0u32;
                        let mut qmass = 0u64;
                        for e in &edges {
                            maxq = maxq.max(e.qlen);
                            qmass += u64::from(e.qlen);
                        }
                        sample.maxq = f64::from(maxq);
                        sample.qmass = qmass as f64;
                    }
                    rec.record(now, &sample);
                    crate::telemetry::emit_progress(now, cfg.horizon, sample.events as u64);
                    queue.schedule(now + rec.interval(), Ev::Probe);
                }
            }
        }

        // Close the integrals at the horizon. Probe ticks ride the event
        // list but are not engine work: subtracting them keeps
        // `events_processed` bit-identical to a probes-off run.
        if let Some(rec) = &recorder {
            events_processed -= rec.ticks();
        }
        let measure_time = (cfg.horizon - cfg.warmup).max(f64::MIN_POSITIVE);
        let time_avg_n = obs.n_sys.integral(cfg.horizon) / measure_time;
        let time_avg_r = obs.r_total.integral(cfg.horizon) / measure_time;
        let time_avg_rs = obs.rs_total.integral(cfg.horizon) / measure_time;
        let throughput = obs.completed as f64 / measure_time;
        let max_util = obs.edge_busy.iter().cloned().fold(0.0f64, f64::max) / measure_time;
        Ok(SimResult {
            avg_delay: obs.delay.mean(),
            delay_std_err: obs.delay.standard_error(),
            generated: obs.generated,
            completed: obs.completed,
            dropped: obs.dropped,
            delivered_fraction: if obs.generated > 0 {
                obs.completed as f64 / obs.generated as f64
            } else {
                0.0
            },
            time_avg_n,
            time_avg_r,
            time_avg_rs,
            r_ratio: if time_avg_n > 0.0 {
                time_avg_r / time_avg_n
            } else {
                0.0
            },
            rs_ratio: if time_avg_n > 0.0 {
                time_avg_rs / time_avg_n
            } else {
                0.0
            },
            little_delay: if throughput > 0.0 {
                time_avg_n / throughput
            } else {
                0.0
            },
            max_edge_utilization: max_util,
            edge_throughput: if obs.edge_services.len() <= STREAMING_STATS_MAX_EDGES {
                obs.edge_services
                    .iter()
                    .map(|&c| c as f64 / measure_time)
                    .collect()
            } else {
                Vec::new()
            },
            edge_throughput_stats: {
                let mut w = meshbound_stats::Welford::new();
                for &c in &obs.edge_services {
                    w.push(c as f64 / measure_time);
                }
                EdgeThroughputStats {
                    edges: obs.edge_services.len(),
                    mean: w.mean(),
                    max: w.max(),
                    std_dev: w.sample_variance().sqrt(),
                }
            },
            final_n: obs.n_sys.value(),
            peak_n: obs.n_sys.peak(),
            measure_time,
            events_processed,
            events_per_sec: events_processed as f64 / wall.elapsed().as_secs_f64().max(1e-9),
            delay_p50: obs.delay_sample.as_ref().and_then(|r| r.quantile(0.5)),
            delay_p95: obs.delay_sample.as_ref().and_then(|r| r.quantile(0.95)),
            delay_p99: obs.delay_sample.as_ref().and_then(|r| r.quantile(0.99)),
            edge_mean_queue: cfg.track_edge_queues.then(|| {
                edges
                    .iter()
                    .zip(qtrack.iter_mut())
                    .map(|(e, t)| {
                        qtick(t, e.qlen, cfg.horizon);
                        t.integral / measure_time
                    })
                    .collect()
            }),
            n_samples: obs.n_samples.into_samples(),
            telemetry: recorder.map(Recorder::into_report),
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn inject<Q: EventQueue<Ev>>(
        &self,
        now: f64,
        src: NodeId,
        rng: &mut SmallRng,
        obs: &mut Observer,
        edges: &mut [EdgeState],
        live: &[bool],
        qtrack: &mut [QTrack],
        qnext: &mut Vec<u32>,
        packets: &mut Vec<Packet<R::State>>,
        free: &mut Vec<u32>,
        queue: &mut Q,
        routes: Option<&RouteTable>,
        sat_counts: Option<&[u32]>,
        det: Option<&[f64]>,
    ) -> Result<(), SimError> {
        let dst = self.dest.sample(&self.topo, src, rng);
        if src == dst {
            if self.cfg.include_self_packets {
                obs.zero_distance_packet(now);
            }
            return Ok(());
        }
        obs.packet_generated(now);
        // Deterministic routers draw nothing here (the
        // `is_route_deterministic` contract), so the RNG stream is the
        // same with and without tables.
        let state = self.router.init_state(&self.topo, src, dst, rng);
        let (first, hops, sat) = match routes {
            Some(r) => {
                let (first, hops) = r.next_and_dist(src, dst);
                let sat = sat_counts.map_or(0, |sc| {
                    sc[src.index() * r.num_nodes() + dst.index()] as usize
                });
                (Some(first), hops, sat)
            }
            None => (
                None,
                self.router.route_len(&self.topo, src, dst, state),
                if self.track_saturated {
                    self.count_saturated_on_route(src, dst, state)
                } else {
                    0
                },
            ),
        };
        obs.packet_enters(now, hops, sat);
        let ttl = ttl_budget(hops);
        let pid = match free.pop() {
            Some(id) => {
                packets[id as usize] = Packet {
                    dst,
                    state,
                    gen_time: now,
                    ttl,
                };
                id
            }
            None => {
                packets.push(Packet {
                    dst,
                    state,
                    gen_time: now,
                    ttl,
                });
                (packets.len() - 1) as u32
            }
        };
        let first = match first {
            Some(e) => e,
            None if live.is_empty() => {
                let view = QueueView {
                    edges: &*edges,
                    live,
                };
                match self.router.next_hop(&self.topo, src, dst, state, &view) {
                    Some(e) => e,
                    None => return Err(stall::<R>(src, dst)),
                }
            }
            None => {
                // Fault-aware first hop: a source walled in by dead links
                // drops its fresh packet instead of aborting the run.
                let view = QueueView {
                    edges: &*edges,
                    live,
                };
                match self
                    .router
                    .route_outcome(&self.topo, src, dst, state, &view)
                {
                    RouteOutcome::Forward(e) => {
                        packets[pid as usize].ttl -= 1;
                        e
                    }
                    outcome => {
                        let cause = if outcome == RouteOutcome::DeadEnd {
                            DropCause::DeadEnd
                        } else {
                            DropCause::LocalMinimum
                        };
                        obs.packet_dropped(now, hops as f64, sat as f64, now, cause);
                        free.push(pid);
                        return Ok(());
                    }
                }
            }
        };
        let fi = first.index();
        Self::enqueue(
            &mut edges[fi],
            fi,
            pid,
            now,
            self.cfg.service,
            self.service_rates[fi],
            det_of(det, fi),
            rng,
            queue,
            self.cfg.track_edge_queues.then(|| &mut qtrack[fi]),
            qnext,
        );
        Ok(())
    }

    /// Saturated hops along the *canonical* (empty-network) route — the
    /// zero-view walk, which coincides with the actual route for oblivious
    /// routers and is the conventional reference path for adaptive ones.
    pub(crate) fn count_saturated_on_route(
        &self,
        src: NodeId,
        dst: NodeId,
        state: R::State,
    ) -> usize {
        let mut count = 0;
        let mut cur = src;
        while let Some(e) = self.router.next_hop(&self.topo, cur, dst, state, &ZeroView) {
            if self.sat_edge[e.index()] {
                count += 1;
            }
            cur = self.topo.edge_target(e);
        }
        count
    }

    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn enqueue<Q: EventQueue<Ev>>(
        edge: &mut EdgeState,
        edge_idx: usize,
        pid: u32,
        now: f64,
        service: ServiceKind,
        rate: f64,
        det: Option<f64>,
        rng: &mut SmallRng,
        queue: &mut Q,
        qt: Option<&mut QTrack>,
        qnext: &mut Vec<u32>,
    ) {
        if let Some(t) = qt {
            qtick(t, edge.qlen, now);
        }
        q_push(edge, qnext, pid);
        if !edge.busy {
            Self::start_service(edge, edge_idx, now, service, rate, det, rng, queue);
        }
    }

    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn start_service<Q: EventQueue<Ev>>(
        edge: &mut EdgeState,
        edge_idx: usize,
        now: f64,
        service: ServiceKind,
        rate: f64,
        det: Option<f64>,
        rng: &mut SmallRng,
        queue: &mut Q,
    ) {
        debug_assert!(!edge.busy && edge.qlen > 0);
        edge.busy = true;
        edge.service_start = now;
        let dur = match det {
            Some(d) => d,
            None => service.sample(rate, rng),
        };
        queue.schedule(now + dur, Ev::Departure(edge_idx as u32));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshbound_routing::dest::UniformDest;
    use meshbound_routing::GreedyXY;
    use meshbound_topology::Mesh2D;

    fn tiny_cfg() -> NetConfig {
        NetConfig {
            lambda: 0.05,
            horizon: 500.0,
            warmup: 50.0,
            seed: 3,
            ..NetConfig::default()
        }
    }

    #[test]
    fn light_load_delay_near_mean_distance() {
        let mesh = Mesh2D::square(5);
        let cfg = NetConfig {
            lambda: 0.001,
            horizon: 40_000.0,
            warmup: 100.0,
            ..tiny_cfg()
        };
        let res = NetworkSim::new(mesh.clone(), GreedyXY, UniformDest, cfg).run();
        // At vanishing load every hop costs exactly 1: T → n̄ = 3.2.
        assert!(
            (res.avg_delay - mesh.mean_distance()).abs() < 0.15,
            "delay {}",
            res.avg_delay
        );
    }

    #[test]
    fn littles_law_holds_in_simulation() {
        let mesh = Mesh2D::square(5);
        let cfg = NetConfig {
            lambda: 0.1,
            horizon: 20_000.0,
            warmup: 1_000.0,
            ..tiny_cfg()
        };
        let res = NetworkSim::new(mesh, GreedyXY, UniformDest, cfg).run();
        // With self-packets included on both sides, Little's law gives
        // avg_delay = E[N] / (total throughput incl. zero-distance packets):
        // zero-distance packets contribute 0 to both the N-integral and the
        // delay sum while inflating the throughput denominator equally.
        assert!(
            (res.avg_delay - res.little_delay).abs() < 0.12,
            "delay {} vs little {}",
            res.avg_delay,
            res.little_delay
        );
    }

    #[test]
    fn zero_distance_packets_counted_when_enabled() {
        let mesh = Mesh2D::square(3);
        let cfg = NetConfig {
            lambda: 0.02,
            horizon: 5_000.0,
            warmup: 0.0,
            ..tiny_cfg()
        };
        let with = NetworkSim::new(mesh.clone(), GreedyXY, UniformDest, cfg.clone()).run();
        let cfg_no = NetConfig {
            include_self_packets: false,
            ..cfg
        };
        let without = NetworkSim::new(mesh, GreedyXY, UniformDest, cfg_no).run();
        // Excluding zero-delay packets raises the average delay.
        assert!(without.avg_delay > with.avg_delay);
    }

    #[test]
    fn edge_throughput_matches_thm6_rates() {
        let n = 4;
        let mesh = Mesh2D::square(n);
        let lambda = 0.2;
        let cfg = NetConfig {
            lambda,
            horizon: 50_000.0,
            warmup: 1_000.0,
            seed: 11,
            ..NetConfig::default()
        };
        let res = NetworkSim::new(mesh.clone(), GreedyXY, UniformDest, cfg).run();
        let expect = meshbound_routing::rates::mesh_thm6_rates(&mesh, lambda);
        for e in mesh.edges() {
            let got = res.edge_throughput[e.index()];
            let want = expect[e.index()];
            assert!(
                (got - want).abs() < 0.05 * want.max(0.05),
                "edge {e}: throughput {got} vs Theorem 6 rate {want}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "before the per-source rates")]
    fn sources_cannot_change_under_installed_rates() {
        // Rates are positional; swapping the source list afterwards would
        // silently misassign them, so the builder refuses.
        let mesh = Mesh2D::square(3);
        let _ = NetworkSim::new(mesh.clone(), GreedyXY, UniformDest, tiny_cfg())
            .with_source_rates(vec![0.1; 9])
            .with_sources(vec![meshbound_topology::NodeId(0)]);
    }

    #[test]
    fn deterministic_given_seed() {
        let mesh = Mesh2D::square(4);
        let a = NetworkSim::new(mesh.clone(), GreedyXY, UniformDest, tiny_cfg()).run();
        let b = NetworkSim::new(mesh, GreedyXY, UniformDest, tiny_cfg()).run();
        assert_eq!(a.avg_delay, b.avg_delay);
        assert_eq!(a.generated, b.generated);
        assert_eq!(a.time_avg_n, b.time_avg_n);
        assert_eq!(a.events_processed, b.events_processed);
    }

    #[test]
    fn different_seeds_differ() {
        let mesh = Mesh2D::square(4);
        let a = NetworkSim::new(mesh.clone(), GreedyXY, UniformDest, tiny_cfg()).run();
        let mut cfg = tiny_cfg();
        cfg.seed = 999;
        let b = NetworkSim::new(mesh, GreedyXY, UniformDest, cfg).run();
        assert_ne!(a.avg_delay, b.avg_delay);
    }

    /// The heart of the engine contract: heap, calendar and table engines
    /// agree bit for bit — on the plain workload and with every expensive
    /// tracking option turned on at once.
    #[test]
    fn engines_are_bit_identical() {
        let mesh = Mesh2D::square(4);
        let saturated: Vec<_> = mesh
            .edges()
            .filter(|&e| mesh.crossing_index(e) == 2)
            .collect();
        for fancy in [false, true] {
            let base = NetConfig {
                lambda: 0.2,
                horizon: 2_000.0,
                warmup: 200.0,
                seed: 21,
                track_edge_queues: fancy,
                delay_quantiles: fancy,
                sample_every: fancy.then_some(50.0),
                service: if fancy {
                    ServiceKind::Exponential
                } else {
                    ServiceKind::Deterministic
                },
                ..NetConfig::default()
            };
            let run = |engine: EngineSpec| {
                let cfg = NetConfig {
                    engine,
                    ..base.clone()
                };
                let mut sim = NetworkSim::new(mesh.clone(), GreedyXY, UniformDest, cfg)
                    .with_service_rates(vec![1.25; mesh.num_edges()]);
                if fancy {
                    sim = sim.with_saturated_edges(&saturated);
                }
                sim.run()
            };
            let heap = run(EngineSpec::Heap);
            let cal = run(EngineSpec::Calendar);
            let auto = run(EngineSpec::Auto);
            for other in [&cal, &auto] {
                assert_eq!(heap.avg_delay.to_bits(), other.avg_delay.to_bits());
                assert_eq!(heap.generated, other.generated);
                assert_eq!(heap.completed, other.completed);
                assert_eq!(heap.time_avg_n.to_bits(), other.time_avg_n.to_bits());
                assert_eq!(heap.time_avg_rs.to_bits(), other.time_avg_rs.to_bits());
                assert_eq!(heap.events_processed, other.events_processed);
                assert_eq!(heap.delay_p99, other.delay_p99);
                assert_eq!(heap.edge_mean_queue, other.edge_mean_queue);
            }
            assert!(heap.events_processed > 0);
            assert!(heap.events_per_sec > 0.0);
        }
    }

    #[test]
    fn slotted_mode_close_to_continuous() {
        let mesh = Mesh2D::square(5);
        let lambda = 0.1;
        let base = NetConfig {
            lambda,
            horizon: 30_000.0,
            warmup: 1_000.0,
            seed: 5,
            ..NetConfig::default()
        };
        let cont = NetworkSim::new(mesh.clone(), GreedyXY, UniformDest, base.clone()).run();
        let slotted_cfg = NetConfig {
            slot: Some(1.0),
            ..base
        };
        let slot = NetworkSim::new(mesh, GreedyXY, UniformDest, slotted_cfg).run();
        // §5.2: the slotted average is within τ of the continuous one
        // (plus simulation noise).
        assert!(
            (slot.avg_delay - cont.avg_delay).abs() < 1.0 + 0.3,
            "slotted {} vs continuous {}",
            slot.avg_delay,
            cont.avg_delay
        );
    }

    #[test]
    fn saturated_tracking_counts_central_edges() {
        let n = 4;
        let mesh = Mesh2D::square(n);
        let classes: Vec<_> = {
            // crossing index n/2 = 2
            mesh.edges()
                .filter(|&e| mesh.crossing_index(e) == 2)
                .collect()
        };
        let cfg = NetConfig {
            lambda: 0.2,
            horizon: 10_000.0,
            warmup: 500.0,
            seed: 4,
            ..NetConfig::default()
        };
        let res = NetworkSim::new(mesh, GreedyXY, UniformDest, cfg)
            .with_saturated_edges(&classes)
            .run();
        assert!(res.time_avg_rs > 0.0);
        assert!(res.rs_ratio > 0.0 && res.rs_ratio < res.r_ratio);
    }

    #[test]
    fn variable_service_rates_speed_up_network() {
        let mesh = Mesh2D::square(4);
        let cfg = NetConfig {
            lambda: 0.15,
            horizon: 20_000.0,
            warmup: 1_000.0,
            seed: 6,
            ..NetConfig::default()
        };
        let slow = NetworkSim::new(mesh.clone(), GreedyXY, UniformDest, cfg.clone()).run();
        let fast = NetworkSim::new(mesh.clone(), GreedyXY, UniformDest, cfg)
            .with_service_rates(vec![2.0; mesh.num_edges()])
            .run();
        assert!(
            fast.avg_delay < slow.avg_delay * 0.7,
            "fast {} vs slow {}",
            fast.avg_delay,
            slow.avg_delay
        );
    }

    /// The structured stall error: a router that refuses to route
    /// surfaces the stuck (node, dst, router) triple as a `SimError`
    /// value from `try_run`, and `run` panics with the same message.
    #[test]
    fn router_stall_reports_the_stuck_triple() {
        use meshbound_topology::{EdgeId, NodeId};

        /// A router that always stalls.
        struct Stuck;
        impl<T: Topology> Router<T> for Stuck {
            type State = ();
            fn init_state(&self, _: &T, _: NodeId, _: NodeId, _: &mut SmallRng) {}
            fn next_edge(&self, _: &T, _: NodeId, _: NodeId, (): ()) -> Option<EdgeId> {
                None
            }
            fn remaining_hops(&self, _: &T, _: NodeId, _: NodeId, (): ()) -> usize {
                1
            }
        }

        let make = || {
            NetworkSim::new(
                Mesh2D::square(3),
                Stuck,
                UniformDest,
                NetConfig {
                    lambda: 0.5,
                    horizon: 100.0,
                    warmup: 0.0,
                    ..NetConfig::default()
                },
            )
        };
        let err = make().try_run().unwrap_err();
        match &err {
            SimError::RouterStalled { node, dst, router } => {
                assert_ne!(node, dst);
                assert_eq!(*router, "Stuck");
            }
            other => panic!("expected a stall, got {other}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("Stuck") && msg.contains("stalled"), "{msg}");
        // `run()` panics with the same structured message.
        let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| make().run()))
            .expect_err("run() must panic on a stall");
        let text = panic.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(text.contains("stalled"), "{text}");
    }

    /// A fault plan turns unroutable packets into accounted drops — the
    /// run completes, attributes every loss to a cause, and stays
    /// bit-identical across the single-core engines.
    #[test]
    fn fault_plan_drops_packets_instead_of_stalling() {
        use crate::fault::{FaultPlan, FaultSpec};
        let mesh = Mesh2D::square(4);
        let plan = FaultPlan::materialize(&FaultSpec::links(0.2), 9, &mesh);
        let run = |engine: EngineSpec| {
            let cfg = NetConfig {
                lambda: 0.2,
                horizon: 2_000.0,
                warmup: 100.0,
                seed: 9,
                engine,
                ..NetConfig::default()
            };
            NetworkSim::new(mesh.clone(), GreedyXY, UniformDest, cfg)
                .with_fault_plan(plan.clone())
                .run()
        };
        let cal = run(EngineSpec::Calendar);
        assert!(cal.dropped.total() > 0, "{:?}", cal.dropped);
        assert!(cal.delivered_fraction < 1.0);
        assert!(cal.completed > 0, "some pairs must survive 20% link loss");
        for other in [run(EngineSpec::Heap), run(EngineSpec::Auto)] {
            assert_eq!(cal.avg_delay.to_bits(), other.avg_delay.to_bits());
            assert_eq!(cal.dropped, other.dropped);
            assert_eq!(cal.completed, other.completed);
            assert_eq!(cal.events_processed, other.events_processed);
        }
    }

    /// A repaired network resumes delivering: with failures confined to
    /// `[50, 250)`, more packets complete than under permanent failures.
    #[test]
    fn repairs_restore_delivery() {
        use crate::fault::{FaultPlan, FaultSpec};
        let mesh = Mesh2D::square(4);
        let cfg = NetConfig {
            lambda: 0.15,
            horizon: 4_000.0,
            warmup: 0.0,
            seed: 12,
            ..NetConfig::default()
        };
        let forever = FaultPlan::materialize(&FaultSpec::links(0.25).at(50.0), 12, &mesh);
        let transient =
            FaultPlan::materialize(&FaultSpec::links(0.25).at(50.0).repair(200.0), 12, &mesh);
        let broken = NetworkSim::new(mesh.clone(), GreedyXY, UniformDest, cfg.clone())
            .with_fault_plan(forever)
            .run();
        let healed = NetworkSim::new(mesh, GreedyXY, UniformDest, cfg)
            .with_fault_plan(transient)
            .run();
        assert!(
            healed.delivered_fraction > broken.delivered_fraction,
            "healed {} vs broken {}",
            healed.delivered_fraction,
            broken.delivered_fraction
        );
        assert!(healed.dropped.total() < broken.dropped.total());
    }

    #[test]
    fn n_sampling_produces_trajectory() {
        let mesh = Mesh2D::square(4);
        let cfg = NetConfig {
            lambda: 0.1,
            horizon: 100.0,
            warmup: 0.0,
            sample_every: Some(10.0),
            ..NetConfig::default()
        };
        let res = NetworkSim::new(mesh, GreedyXY, UniformDest, cfg).run();
        assert!(res.n_samples.len() >= 9);
        for w in res.n_samples.windows(2) {
            assert!(w[1].0 > w[0].0);
        }
    }
}

#[cfg(test)]
mod quantile_tests {
    use super::*;
    use meshbound_routing::dest::UniformDest;
    use meshbound_routing::GreedyXY;
    use meshbound_topology::Mesh2D;

    #[test]
    fn delay_quantiles_tracked_when_enabled() {
        let mesh = Mesh2D::square(5);
        let cfg = NetConfig {
            lambda: 0.3,
            horizon: 5_000.0,
            warmup: 500.0,
            seed: 8,
            delay_quantiles: true,
            ..NetConfig::default()
        };
        let res = NetworkSim::new(mesh, GreedyXY, UniformDest, cfg).run();
        let p50 = res.delay_p50.expect("median tracked");
        let p95 = res.delay_p95.expect("p95 tracked");
        let p99 = res.delay_p99.expect("p99 tracked");
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        // Mean between median and p99 for this right-skewed distribution.
        assert!(res.avg_delay >= p50 * 0.8);
        assert!(res.avg_delay <= p99);
        // Max route on a 5-mesh is 8 hops, so p50 below 8 + some queueing.
        assert!(p50 <= 12.0);
    }

    #[test]
    fn quantiles_absent_when_disabled() {
        let mesh = Mesh2D::square(4);
        let cfg = NetConfig {
            lambda: 0.1,
            horizon: 500.0,
            warmup: 0.0,
            ..NetConfig::default()
        };
        let res = NetworkSim::new(mesh, GreedyXY, UniformDest, cfg).run();
        assert!(res.delay_p50.is_none());
    }
}
