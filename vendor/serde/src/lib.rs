//! Offline stand-in for `serde`, grown from a no-op into a real (if
//! deliberately small) serialization facility.
//!
//! The workspace derives `Serialize`/`Deserialize` on its configuration and
//! report types and — since the sweep engine landed — serializes reports to
//! JSON. The build container has no registry access, so this crate supplies
//! the minimum honestly: a [`Serialize`] trait driven by a streaming JSON
//! writer ([`json::Writer`]), implementations for the primitive and
//! container types the workspace uses, and `#[derive(Serialize)]` support
//! via the sibling `serde_derive` stand-in.
//!
//! Differences from real serde, by design:
//!
//! * There is no `Serializer` abstraction: JSON is the only output format,
//!   so [`Serialize::serialize`] writes straight into [`json::Writer`].
//!   Consumers call [`json::to_string`] / [`json::to_string_pretty`]
//!   (the stand-ins for `serde_json`).
//! * `Deserialize` remains a no-op marker derive — nothing in-tree parses
//!   JSON back into these types.
//! * Non-finite floats serialize as `null`, matching `serde_json`.
//!
//! To use the real crates, delete `vendor/`, point the workspace
//! dependencies at crates.io, and replace `serde::json::*` call sites with
//! `serde_json::*`.

pub use serde_derive::{Deserialize, Serialize};

/// A type that can write itself as JSON.
///
/// Implemented for the primitives and containers the workspace uses, and
/// derivable for structs and enums via `#[derive(Serialize)]`:
///
/// ```
/// use serde::Serialize;
///
/// #[derive(Serialize)]
/// struct Point {
///     x: f64,
///     y: f64,
/// }
///
/// let p = Point { x: 1.0, y: -2.5 };
/// assert_eq!(serde::json::to_string(&p), r#"{"x":1.0,"y":-2.5}"#);
/// ```
pub trait Serialize {
    /// Writes `self` into `w` as one JSON value.
    fn serialize(&self, w: &mut json::Writer);
}

/// Streaming JSON output (the stand-in for `serde_json`).
pub mod json {
    use super::Serialize;

    /// Renders `value` as compact JSON (no whitespace).
    ///
    /// The output is deterministic: struct fields appear in declaration
    /// order and floats use Rust's shortest round-trip formatting.
    pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
        let mut w = Writer::compact();
        value.serialize(&mut w);
        w.finish()
    }

    /// Renders `value` as human-readable JSON (two-space indent).
    pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> String {
        let mut w = Writer::pretty();
        value.serialize(&mut w);
        w.finish()
    }

    /// A streaming JSON writer with the small structural API the
    /// `Serialize` derive targets.
    ///
    /// The writer tracks nesting itself, so implementations only announce
    /// structure (`begin_object` / `key` / `end_object`, `begin_array` /
    /// `end_array`) and emit scalars; commas, colons and indentation are
    /// inserted automatically.
    #[derive(Debug)]
    pub struct Writer {
        out: String,
        pretty: bool,
        depth: usize,
        /// Whether the current nesting level has already emitted a value
        /// (i.e. the next one needs a comma). Index 0 is the top level.
        has_item: Vec<bool>,
        /// Set by [`Writer::key`]: the next value lands right after the
        /// colon, with no comma or indentation of its own.
        pending_value: bool,
    }

    impl Writer {
        /// A writer producing compact JSON.
        #[must_use]
        pub fn compact() -> Self {
            Self {
                out: String::new(),
                pretty: false,
                depth: 0,
                has_item: vec![false],
                pending_value: false,
            }
        }

        /// A writer producing two-space-indented JSON.
        #[must_use]
        pub fn pretty() -> Self {
            Self {
                out: String::new(),
                pretty: true,
                depth: 0,
                has_item: vec![false],
                pending_value: false,
            }
        }

        /// Consumes the writer and returns the rendered JSON.
        #[must_use]
        pub fn finish(self) -> String {
            self.out
        }

        /// Comma/newline bookkeeping before a value or key at the current
        /// level. A value announced by [`Writer::key`] is already in
        /// position and skips it.
        fn prepare_slot(&mut self) {
            if self.pending_value {
                self.pending_value = false;
                return;
            }
            if let Some(has) = self.has_item.last_mut() {
                if *has {
                    self.out.push(',');
                }
                *has = true;
            }
            if self.pretty && self.depth > 0 {
                self.out.push('\n');
                for _ in 0..self.depth {
                    self.out.push_str("  ");
                }
            }
        }

        /// Newline/indent before a closing bracket.
        fn prepare_close(&mut self, was_empty: bool) {
            if self.pretty && !was_empty {
                self.out.push('\n');
                for _ in 0..self.depth {
                    self.out.push_str("  ");
                }
            }
        }

        /// Opens a JSON object (`{`).
        pub fn begin_object(&mut self) {
            self.prepare_slot();
            self.out.push('{');
            self.depth += 1;
            self.has_item.push(false);
        }

        /// Closes the innermost object (`}`).
        pub fn end_object(&mut self) {
            let was_empty = !self.has_item.pop().unwrap_or(false);
            self.depth -= 1;
            self.prepare_close(was_empty);
            self.out.push('}');
        }

        /// Opens a JSON array (`[`).
        pub fn begin_array(&mut self) {
            self.prepare_slot();
            self.out.push('[');
            self.depth += 1;
            self.has_item.push(false);
        }

        /// Closes the innermost array (`]`).
        pub fn end_array(&mut self) {
            let was_empty = !self.has_item.pop().unwrap_or(false);
            self.depth -= 1;
            self.prepare_close(was_empty);
            self.out.push(']');
        }

        /// Writes an object key; the next write supplies its value.
        pub fn key(&mut self, name: &str) {
            self.prepare_slot();
            write_escaped(&mut self.out, name);
            self.out.push(':');
            if self.pretty {
                self.out.push(' ');
            }
            self.pending_value = true;
        }

        /// Writes one `key: value` pair of the current object.
        pub fn field<T: Serialize + ?Sized>(&mut self, name: &str, value: &T) {
            self.key(name);
            value.serialize(self);
        }

        /// Writes a raw already-valid JSON scalar token.
        fn scalar(&mut self, token: &str) {
            self.prepare_slot();
            self.out.push_str(token);
        }

        /// Writes a JSON string value.
        pub fn string(&mut self, s: &str) {
            self.prepare_slot();
            write_escaped(&mut self.out, s);
        }

        /// Writes a boolean.
        pub fn bool(&mut self, b: bool) {
            self.scalar(if b { "true" } else { "false" });
        }

        /// Writes `null`.
        pub fn null(&mut self) {
            self.scalar("null");
        }

        /// Writes an unsigned integer.
        pub fn u64(&mut self, v: u64) {
            let s = v.to_string();
            self.scalar(&s);
        }

        /// Writes a signed integer.
        pub fn i64(&mut self, v: i64) {
            let s = v.to_string();
            self.scalar(&s);
        }

        /// Writes a float: shortest round-trip formatting, always with a
        /// decimal point or exponent so the token reads back as a float;
        /// non-finite values become `null` (as in `serde_json`).
        pub fn f64(&mut self, v: f64) {
            if !v.is_finite() {
                self.null();
                return;
            }
            let mut s = format!("{v}");
            if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                s.push_str(".0");
            }
            self.scalar(&s);
        }
    }

    /// Appends `s` as a quoted, escaped JSON string.
    fn write_escaped(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, w: &mut json::Writer) {
                w.u64(u64::from(*self));
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, w: &mut json::Writer) {
                w.i64(i64::from(*self));
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64);
impl_signed!(i8, i16, i32, i64);

impl Serialize for usize {
    fn serialize(&self, w: &mut json::Writer) {
        w.u64(*self as u64);
    }
}

impl Serialize for isize {
    fn serialize(&self, w: &mut json::Writer) {
        w.i64(*self as i64);
    }
}

impl Serialize for f64 {
    fn serialize(&self, w: &mut json::Writer) {
        w.f64(*self);
    }
}

impl Serialize for f32 {
    fn serialize(&self, w: &mut json::Writer) {
        w.f64(f64::from(*self));
    }
}

impl Serialize for bool {
    fn serialize(&self, w: &mut json::Writer) {
        w.bool(*self);
    }
}

impl Serialize for str {
    fn serialize(&self, w: &mut json::Writer) {
        w.string(self);
    }
}

impl Serialize for String {
    fn serialize(&self, w: &mut json::Writer) {
        w.string(self);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self, w: &mut json::Writer) {
        (*self).serialize(w);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, w: &mut json::Writer) {
        match self {
            Some(v) => v.serialize(w),
            None => w.null(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self, w: &mut json::Writer) {
        w.begin_array();
        for v in self {
            v.serialize(w);
        }
        w.end_array();
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, w: &mut json::Writer) {
        self.as_slice().serialize(w);
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self, w: &mut json::Writer) {
        w.begin_array();
        self.0.serialize(w);
        self.1.serialize(w);
        w.end_array();
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self, w: &mut json::Writer) {
        w.begin_array();
        self.0.serialize(w);
        self.1.serialize(w);
        self.2.serialize(w);
        w.end_array();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render_like_serde_json() {
        assert_eq!(json::to_string(&1.5f64), "1.5");
        assert_eq!(json::to_string(&1.0f64), "1.0");
        assert_eq!(json::to_string(&f64::INFINITY), "null");
        assert_eq!(json::to_string(&f64::NAN), "null");
        assert_eq!(json::to_string(&42u64), "42");
        assert_eq!(json::to_string(&-7i32), "-7");
        assert_eq!(json::to_string(&true), "true");
        assert_eq!(json::to_string("a \"b\"\n"), r#""a \"b\"\n""#);
        assert_eq!(json::to_string(&Option::<u32>::None), "null");
        assert_eq!(json::to_string(&Some(3u32)), "3");
    }

    #[test]
    fn containers_nest() {
        let v = vec![(1.0f64, 2.0f64), (3.5, 4.25)];
        assert_eq!(json::to_string(&v), "[[1.0,2.0],[3.5,4.25]]");
        let empty: Vec<f64> = Vec::new();
        assert_eq!(json::to_string(&empty), "[]");
    }

    #[test]
    fn writer_objects_and_arrays() {
        let mut w = json::Writer::compact();
        w.begin_object();
        w.field("a", &1u32);
        w.key("b");
        w.begin_array();
        w.string("x");
        w.null();
        w.end_array();
        w.end_object();
        assert_eq!(w.finish(), r#"{"a":1,"b":["x",null]}"#);
    }

    #[test]
    fn pretty_output_is_indented_and_reparses_compactly() {
        let mut w = json::Writer::pretty();
        w.begin_object();
        w.field("x", &1.5f64);
        w.field("y", &vec![1u32, 2]);
        w.end_object();
        let pretty = w.finish();
        assert!(pretty.contains("\n  \"x\": 1.5"));
        assert!(pretty.ends_with('}'));
    }

    #[test]
    fn float_formatting_round_trips() {
        for v in [0.1f64, 1.0 / 3.0, 1e-9, 123456789.123456] {
            let s = json::to_string(&v);
            let back: f64 = s.parse().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{s}");
        }
    }
}
