//! Randomized greedy routing (§6): flip a coin between column-first and
//! row-first order.
//!
//! The paper notes that the Theorem 1 upper-bound argument fails for this
//! scheme (the network is no longer layered under the mixture of orders)
//! while the approximation and the lower bounds still apply, and reports
//! that in simulation randomized greedy performs *slightly worse* than the
//! standard scheme — a finding reproduced by this crate's experiment
//! harness.

use crate::policy::SplitRouting;
use crate::router::{ObliviousRouter, Router};
use meshbound_topology::{EdgeId, Mesh2D, NodeId, Topology};
use rand::rngs::SmallRng;
use rand::Rng;

/// Phase order chosen per packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Order {
    /// Correct the column first (row edges), then the row — the standard
    /// greedy order.
    ColumnFirst,
    /// Correct the row first (column edges), then the column.
    RowFirst,
}

/// Greedy routing that picks [`Order`] uniformly at random per packet.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RandomizedGreedy;

impl RandomizedGreedy {
    fn step(topo: &Mesh2D, cur: NodeId, dst: NodeId, order: Order) -> Option<EdgeId> {
        let (r, c) = topo.coords(cur);
        let (rd, cd) = topo.coords(dst);
        let row_move = |topo: &Mesh2D| {
            if c < cd {
                Some(topo.right_edge(r, c))
            } else if c > cd {
                Some(topo.left_edge(r, c - 1))
            } else {
                None
            }
        };
        let col_move = |topo: &Mesh2D| {
            if r < rd {
                Some(topo.down_edge(r, c))
            } else if r > rd {
                Some(topo.up_edge(r - 1, c))
            } else {
                None
            }
        };
        match order {
            Order::ColumnFirst => row_move(topo).or_else(|| col_move(topo)),
            Order::RowFirst => col_move(topo).or_else(|| row_move(topo)),
        }
    }
}

impl Router<Mesh2D> for RandomizedGreedy {
    type State = Order;

    #[inline]
    fn init_state(&self, _: &Mesh2D, _: NodeId, _: NodeId, rng: &mut SmallRng) -> Order {
        if rng.gen_bool(0.5) {
            Order::ColumnFirst
        } else {
            Order::RowFirst
        }
    }

    #[inline]
    fn next_edge(&self, topo: &Mesh2D, cur: NodeId, dst: NodeId, order: Order) -> Option<EdgeId> {
        Self::step(topo, cur, dst, order)
    }

    #[inline]
    fn remaining_hops(&self, topo: &Mesh2D, cur: NodeId, dst: NodeId, _: Order) -> usize {
        topo.manhattan(cur, dst)
    }
}

impl SplitRouting<Mesh2D> for RandomizedGreedy {
    /// Exact branching model: the order coin splits the flow only at the
    /// source (`prev = None`, both corrections pending); afterwards the
    /// arrival direction determines the continuation — a packet that just
    /// moved horizontally behaves like [`Order::ColumnFirst`] and one that
    /// just moved vertically like [`Order::RowFirst`], in *both* orders.
    fn splits(
        &self,
        topo: &Mesh2D,
        prev: Option<EdgeId>,
        here: NodeId,
        dst: NodeId,
    ) -> Vec<(EdgeId, f64)> {
        match prev {
            None => {
                let col = Self::step(topo, here, dst, Order::ColumnFirst);
                let row = Self::step(topo, here, dst, Order::RowFirst);
                match (col, row) {
                    (Some(a), Some(b)) if a != b => vec![(a, 0.5), (b, 0.5)],
                    (Some(a), _) => vec![(a, 1.0)],
                    (None, Some(b)) => vec![(b, 1.0)],
                    (None, None) => Vec::new(),
                }
            }
            Some(e) => {
                let order = if topo.direction(e).is_row() {
                    Order::ColumnFirst
                } else {
                    Order::RowFirst
                };
                Self::step(topo, here, dst, order)
                    .map(|x| vec![(x, 1.0)])
                    .unwrap_or_default()
            }
        }
    }
}

impl ObliviousRouter<Mesh2D> for RandomizedGreedy {
    fn paths(&self, topo: &Mesh2D, src: NodeId, dst: NodeId) -> Vec<(f64, Vec<EdgeId>)> {
        let mut out = Vec::with_capacity(2);
        for order in [Order::ColumnFirst, Order::RowFirst] {
            let mut path = Vec::new();
            let mut cur = src;
            while let Some(e) = Self::step(topo, cur, dst, order) {
                path.push(e);
                cur = topo.edge_target(e);
            }
            out.push((0.5, path));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_orders_reach_destination() {
        let m = Mesh2D::square(5);
        for order in [Order::ColumnFirst, Order::RowFirst] {
            let route = RandomizedGreedy.route(&m, m.node(0, 0), m.node(3, 2), order);
            assert_eq!(route.len(), 5);
            let last = *route.last().unwrap();
            assert_eq!(m.edge_target(last), m.node(3, 2));
        }
    }

    #[test]
    fn row_first_uses_column_edges_first() {
        let m = Mesh2D::square(5);
        let route = RandomizedGreedy.route(&m, m.node(0, 0), m.node(2, 2), Order::RowFirst);
        assert!(!m.direction(route[0]).is_row());
        assert!(!m.direction(route[1]).is_row());
        assert!(m.direction(route[2]).is_row());
    }

    #[test]
    fn column_first_matches_standard_greedy() {
        use crate::greedy::GreedyXY;
        let m = Mesh2D::square(4);
        for a in m.nodes() {
            for b in m.nodes() {
                let std_route = GreedyXY.route(&m, a, b, ());
                let rnd = RandomizedGreedy.route(&m, a, b, Order::ColumnFirst);
                assert_eq!(std_route, rnd);
            }
        }
    }

    #[test]
    fn path_probabilities_sum_to_one() {
        let m = Mesh2D::square(3);
        let paths = RandomizedGreedy.paths(&m, m.node(0, 0), m.node(2, 2));
        let total: f64 = paths.iter().map(|(p, _)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(paths.len(), 2);
        assert_ne!(paths[0].1, paths[1].1);
    }

    #[test]
    fn degenerate_pairs_share_one_path() {
        // Same row: both orders give the identical path.
        let m = Mesh2D::square(3);
        let paths = RandomizedGreedy.paths(&m, m.node(1, 0), m.node(1, 2));
        assert_eq!(paths[0].1, paths[1].1);
    }
}
