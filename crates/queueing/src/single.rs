//! Single-queue mean-value formulas.
//!
//! All formulas return [`f64::INFINITY`] for unstable parameters (utilization
//! at or above 1), which lets parameter sweeps cross the stability boundary
//! without panicking.

/// Utilization `λ·E[S]` of a queue with arrival rate `lambda` and service
/// rate `mu`.
#[must_use]
pub fn utilization(lambda: f64, mu: f64) -> f64 {
    lambda / mu
}

/// Mean number in an M/M/1 queue with arrival rate `lambda` and service rate
/// `mu`: `ρ/(1−ρ)`.
#[must_use]
pub fn mm1_mean_number(lambda: f64, mu: f64) -> f64 {
    let rho = lambda / mu;
    if rho >= 1.0 {
        f64::INFINITY
    } else {
        rho / (1.0 - rho)
    }
}

/// Mean sojourn time (waiting + service) in an M/M/1 queue: `1/(μ−λ)`.
#[must_use]
pub fn mm1_mean_sojourn(lambda: f64, mu: f64) -> f64 {
    if lambda >= mu {
        f64::INFINITY
    } else {
        1.0 / (mu - lambda)
    }
}

/// Mean number in an M/D/1 queue with arrival rate `lambda` and unit service
/// time: `λ + λ²/(2(1−λ))` (Pollaczek–Khinchine with `Var[S] = 0`).
#[must_use]
pub fn md1_mean_number(lambda: f64) -> f64 {
    if lambda >= 1.0 {
        f64::INFINITY
    } else {
        lambda + lambda * lambda / (2.0 * (1.0 - lambda))
    }
}

/// Mean sojourn time in an M/D/1 queue with unit service:
/// `1 + λ/(2(1−λ))`.
#[must_use]
pub fn md1_mean_sojourn(lambda: f64) -> f64 {
    if lambda >= 1.0 {
        f64::INFINITY
    } else {
        1.0 + lambda / (2.0 * (1.0 - lambda))
    }
}

/// Pollaczek–Khinchine mean number in an M/G/1 queue:
/// `N = λE[S] + λ²E[S²] / (2(1 − λE[S]))`.
///
/// This is the formula the paper quotes in §4.2 (there written with
/// `E[S] = 1` and `E[S²] = 1 + Var[S]`).
#[must_use]
pub fn mg1_mean_number(lambda: f64, es: f64, es2: f64) -> f64 {
    let rho = lambda * es;
    if rho >= 1.0 {
        f64::INFINITY
    } else {
        rho + lambda * lambda * es2 / (2.0 * (1.0 - rho))
    }
}

/// Mean sojourn time in an M/G/1 queue:
/// `T = E[S] + λE[S²] / (2(1 − λE[S]))`.
#[must_use]
pub fn mg1_mean_sojourn(lambda: f64, es: f64, es2: f64) -> f64 {
    let rho = lambda * es;
    if rho >= 1.0 {
        f64::INFINITY
    } else {
        es + lambda * es2 / (2.0 * (1.0 - rho))
    }
}

/// Poisson probability mass `e^{-m} m^k / k!`, computed in log space for
/// numerical stability.
#[must_use]
pub fn poisson_pmf(mean: f64, k: usize) -> f64 {
    if mean == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    let kf = k as f64;
    let mut log_fact = 0.0;
    for i in 1..=k {
        log_fact += (i as f64).ln();
    }
    (kf * mean.ln() - mean - log_fact).exp()
}

/// Stationary queue-length distribution of the M/D/1 queue with unit
/// service and arrival rate `lambda`, truncated to `0..=kmax`.
///
/// Solved by power iteration on the embedded departure-epoch chain
/// (`j = max(i−1, 0) + Poisson(λ)`), whose stationary law equals the
/// time-stationary law for M/G/1 queues. Returns probabilities summing to
/// at most 1 (the tail mass beyond `kmax` is dropped; choose `kmax` large
/// enough that `p_{kmax}` is negligible).
///
/// # Panics
///
/// Panics if `lambda` is not in `(0, 1)`.
#[must_use]
pub fn md1_queue_distribution(lambda: f64, kmax: usize) -> Vec<f64> {
    assert!(lambda > 0.0 && lambda < 1.0, "need 0 < λ < 1 for stability");
    let a: Vec<f64> = (0..=kmax).map(|k| poisson_pmf(lambda, k)).collect();
    let mut pi = vec![0.0; kmax + 1];
    pi[0] = 1.0;
    let mut next = vec![0.0; kmax + 1];
    for _ in 0..20_000 {
        for x in next.iter_mut() {
            *x = 0.0;
        }
        for (i, &w) in pi.iter().enumerate() {
            if w == 0.0 {
                continue;
            }
            let base = i.saturating_sub(1);
            for (k, &ak) in a.iter().enumerate() {
                let j = base + k;
                if j > kmax {
                    break;
                }
                next[j] += w * ak;
            }
        }
        // Renormalize to counter truncation leakage.
        let total: f64 = next.iter().sum();
        for x in next.iter_mut() {
            *x /= total;
        }
        let diff: f64 = pi.iter().zip(&next).map(|(p, q)| (p - q).abs()).sum();
        std::mem::swap(&mut pi, &mut next);
        if diff < 1e-14 {
            break;
        }
    }
    pi
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn md1_is_mg1_with_deterministic_service() {
        for lambda in [0.1, 0.5, 0.9, 0.99] {
            assert!((md1_mean_number(lambda) - mg1_mean_number(lambda, 1.0, 1.0)).abs() < 1e-12);
            assert!((md1_mean_sojourn(lambda) - mg1_mean_sojourn(lambda, 1.0, 1.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn mm1_is_mg1_with_exponential_service() {
        // Exponential unit-mean service: E[S²] = 2.
        for lambda in [0.2, 0.6, 0.95] {
            assert!(
                (mm1_mean_number(lambda, 1.0) - mg1_mean_number(lambda, 1.0, 2.0)).abs() < 1e-12
            );
        }
    }

    #[test]
    fn lemma9_factor_of_two() {
        // Lemma 9: the M/M/1 mean number is at most twice the M/D/1 mean
        // number at the same arrival rate (and approaches 2× as ρ → 1).
        for lambda in [0.05, 0.3, 0.7, 0.9, 0.99, 0.999] {
            let mm1 = mm1_mean_number(lambda, 1.0);
            let md1 = md1_mean_number(lambda);
            assert!(mm1 <= 2.0 * md1 + 1e-12, "λ={lambda}");
            assert!(mm1 >= md1, "λ={lambda}");
        }
        let ratio = mm1_mean_number(0.9999, 1.0) / md1_mean_number(0.9999);
        assert!((ratio - 2.0).abs() < 1e-3);
    }

    #[test]
    fn littles_law_consistency() {
        for lambda in [0.25, 0.5, 0.75] {
            assert!((md1_mean_number(lambda) - lambda * md1_mean_sojourn(lambda)).abs() < 1e-12);
            assert!(
                (mm1_mean_number(lambda, 1.0) - lambda * mm1_mean_sojourn(lambda, 1.0)).abs()
                    < 1e-12
            );
        }
    }

    #[test]
    fn unstable_is_infinite() {
        assert!(md1_mean_number(1.0).is_infinite());
        assert!(mm1_mean_number(2.0, 1.0).is_infinite());
        assert!(mg1_mean_sojourn(1.5, 1.0, 1.0).is_infinite());
    }

    #[test]
    fn md1_distribution_mass_and_p0() {
        for lambda in [0.2, 0.5, 0.8] {
            let dist = md1_queue_distribution(lambda, 200);
            let total: f64 = dist.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "λ={lambda}: mass {total}");
            // P(empty) = 1 − ρ for any M/G/1 queue.
            assert!(
                (dist[0] - (1.0 - lambda)).abs() < 1e-6,
                "λ={lambda}: p0 {}",
                dist[0]
            );
        }
    }

    #[test]
    fn md1_distribution_mean_matches_pollaczek_khinchine() {
        for lambda in [0.3, 0.6, 0.9] {
            let dist = md1_queue_distribution(lambda, 400);
            let mean: f64 = dist.iter().enumerate().map(|(k, &p)| k as f64 * p).sum();
            let expect = md1_mean_number(lambda);
            assert!(
                (mean - expect).abs() < 1e-4,
                "λ={lambda}: mean {mean} vs P-K {expect}"
            );
        }
    }

    #[test]
    fn md1_distribution_thinner_tail_than_geometric() {
        // Deterministic service truncates the tail relative to M/M/1's
        // geometric distribution at equal load (the Lemma 9 effect seen at
        // the distribution level).
        let lambda: f64 = 0.7;
        let dist = md1_queue_distribution(lambda, 200);
        let md1_tail: f64 = dist[20..].iter().sum();
        let geo_tail = lambda.powi(20); // P(N ≥ 20) for M/M/1
        assert!(md1_tail < geo_tail / 4.0, "{md1_tail} vs {geo_tail}");
    }

    #[test]
    fn poisson_pmf_sums_to_one() {
        for mean in [0.1, 1.0, 5.0] {
            let total: f64 = (0..100).map(|k| poisson_pmf(mean, k)).sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
        assert_eq!(poisson_pmf(0.0, 0), 1.0);
        assert_eq!(poisson_pmf(0.0, 3), 0.0);
    }

    #[test]
    fn light_load_limits() {
        // As λ → 0 the mean number tends to λ (just the in-service packet).
        let lambda = 1e-6;
        assert!((md1_mean_number(lambda) / lambda - 1.0).abs() < 1e-3);
        assert!((md1_mean_sojourn(lambda) - 1.0).abs() < 1e-3);
    }
}
