//! Comparing interconnect topologies at matched edge utilization.
//!
//! ```text
//! cargo run --release --example topology_comparison
//! ```
//!
//! The paper's machinery covers the array (its subject), the torus (§6),
//! the hypercube and the butterfly (§4.5). This example simulates all four
//! with every edge at 70% utilization and reports delay next to the mean
//! route length — the kind of apples-to-apples comparison an interconnect
//! designer would run.

use meshbound::queueing::bounds::{butterfly as bf_bounds, hypercube as hc_bounds};
use meshbound::routing::dest::{BernoulliDest, ButterflyOutput, UniformDest};
use meshbound::routing::rates::torus_row_rates;
use meshbound::routing::{ButterflyRouter, DimOrder, GreedyXY, TorusGreedy};
use meshbound::sim::network::{NetConfig, NetworkSim};
use meshbound::topology::{Butterfly, Hypercube, Mesh2D, Topology, Torus2D};
use meshbound::{BoundsReport, Load};
use meshbound_repro::banner;

fn main() {
    let util = 0.7;
    let horizon = 20_000.0;
    let warmup = 2_000.0;
    let cfg = |lambda: f64, seed: u64| NetConfig {
        lambda,
        horizon,
        warmup,
        seed,
        ..NetConfig::default()
    };

    banner(&format!("All topologies at peak edge utilization {util}"));
    println!(
        "{:<22} {:>8} {:>10} {:>10} {:>10}",
        "topology", "nodes", "mean dist", "T (sim)", "T upper"
    );

    // 8×8 array.
    {
        let n = 8;
        let mesh = Mesh2D::square(n);
        let report = BoundsReport::compute(n, Load::Utilization(util));
        let res = NetworkSim::new(mesh.clone(), GreedyXY, UniformDest, cfg(report.lambda, 1)).run();
        println!(
            "{:<22} {:>8} {:>10.3} {:>10.3} {:>10.3}",
            mesh.label(),
            mesh.num_nodes(),
            mesh.mean_distance(),
            res.avg_delay,
            report.upper
        );
    }

    // 8×8 torus: peak edge rate is the Right/Down class.
    {
        let n = 8;
        let torus = Torus2D::new(n);
        // Solve (right rate) = util for λ.
        let unit = torus_row_rates(n, 1.0).0;
        let lambda = util / unit;
        let res = NetworkSim::new(torus.clone(), TorusGreedy, UniformDest, cfg(lambda, 2)).run();
        println!(
            "{:<22} {:>8} {:>10.3} {:>10.3} {:>10}",
            torus.label(),
            torus.num_nodes(),
            torus.mean_distance(),
            res.avg_delay,
            "open (§6)"
        );
    }

    // Hypercube d = 6 with uniform destinations (p = 1/2).
    {
        let d = 6;
        let p = 0.5;
        let h = Hypercube::new(d);
        let lambda = util / p;
        let res =
            NetworkSim::new(h.clone(), DimOrder, BernoulliDest::new(p), cfg(lambda, 3)).run();
        println!(
            "{:<22} {:>8} {:>10.3} {:>10.3} {:>10.3}",
            h.label(),
            h.num_nodes(),
            hc_bounds::mean_distance(d, p),
            res.avg_delay,
            hc_bounds::upper_bound_delay(d, lambda, p)
        );
    }

    // Butterfly d = 6.
    {
        let d = 6;
        let b = Butterfly::new(d);
        let lambda = 2.0 * util;
        let sources: Vec<_> = (0..b.rows()).map(|w| b.node(0, w)).collect();
        let res = NetworkSim::new(b.clone(), ButterflyRouter, ButterflyOutput, cfg(lambda, 4))
            .with_sources(sources)
            .run();
        println!(
            "{:<22} {:>8} {:>10.3} {:>10.3} {:>10.3}",
            b.label(),
            b.num_nodes(),
            d as f64,
            res.avg_delay,
            bf_bounds::upper_bound_delay(d, lambda)
        );
    }

    banner("Reading");
    println!("The array pays for its asymmetry: central cuts saturate first (Figure 2),");
    println!("so at matched peak utilization its delay exceeds the torus's, whose wraparound");
    println!("halves distances and spreads load evenly. The hypercube and butterfly are");
    println!("perfectly symmetric — every edge is saturated simultaneously (§4.6 note).");
}
