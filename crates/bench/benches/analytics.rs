//! Times the closed-form analytics: the full BoundsReport, exact rate
//! enumeration, and the remaining-distance combinatorics.

use criterion::{criterion_group, criterion_main, Criterion};
use meshbound::queueing::remaining::{light_load_rs, max_expected_remaining_saturated};
use meshbound::routing::dest::UniformDest;
use meshbound::routing::rates::{all_nodes, edge_rates_enumerated};
use meshbound::routing::GreedyXY;
use meshbound::topology::Mesh2D;
use meshbound::{BoundsReport, Load};

fn bench(c: &mut Criterion) {
    c.bench_function("bounds_report_n100", |b| {
        b.iter(|| BoundsReport::compute(100, Load::TableRho(0.95)));
    });

    let mut group = c.benchmark_group("rate_enumeration");
    for n in [8usize, 16] {
        group.bench_function(format!("mesh_n{n}"), |b| {
            let mesh = Mesh2D::square(n);
            let sources = all_nodes(&mesh);
            b.iter(|| edge_rates_enumerated(&mesh, &GreedyXY, &UniformDest, 0.1, &sources));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("remaining_combinatorics");
    for n in [9usize, 15] {
        group.bench_function(format!("sbar_n{n}"), |b| {
            let mesh = Mesh2D::square(n);
            b.iter(|| max_expected_remaining_saturated(&mesh));
        });
        group.bench_function(format!("light_load_rs_n{n}"), |b| {
            let mesh = Mesh2D::square(n);
            b.iter(|| light_load_rs(&mesh));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
