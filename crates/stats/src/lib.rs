//! Streaming statistics for discrete-event simulation.
//!
//! This crate provides the statistical machinery used by the `meshbound`
//! simulator: numerically stable running moments ([`Welford`]), time-weighted
//! averages of piecewise-constant signals ([`TimeWeighted`]), batch-means
//! variance estimation for correlated series ([`BatchMeans`]), Student-t
//! confidence intervals ([`ci`]), simple fixed-width histograms
//! ([`Histogram`]), and bounded flight-recorder time series that decimate
//! instead of growing ([`DecimatingSeries`]).
//!
//! All accumulators are `O(1)` per observation and allocation-free on the hot
//! path, following the performance guidance for simulation inner loops.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod autocorr;
pub mod batch;
pub mod ci;
pub mod flight;
pub mod hist;
pub mod reservoir;
pub mod summary;
pub mod timeavg;
pub mod welford;

pub use autocorr::Autocorrelation;
pub use batch::BatchMeans;
pub use ci::{normal_quantile, t_quantile, ConfidenceInterval};
pub use flight::DecimatingSeries;
pub use hist::Histogram;
pub use reservoir::Reservoir;
pub use summary::Summary;
pub use timeavg::TimeWeighted;
pub use welford::Welford;
