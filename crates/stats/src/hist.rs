//! Fixed-width histograms for delay and queue-length distributions.

use serde::{Deserialize, Serialize};

/// A fixed-bin-width histogram over `[lo, hi)` with overflow/underflow bins.
///
/// # Examples
///
/// ```
/// use meshbound_stats::Histogram;
/// let mut h = Histogram::new(0.0, 10.0, 10);
/// h.record(0.5);
/// h.record(9.5);
/// h.record(42.0); // overflow
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.bin_count(0), 1);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `nbins` equal-width bins.
    ///
    /// # Panics
    ///
    /// Panics if `hi <= lo` or `nbins == 0`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(hi > lo, "histogram range must be non-empty");
        assert!(nbins > 0, "histogram needs at least one bin");
        Self {
            lo,
            hi,
            bins: vec![0; nbins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total observations recorded (including under/overflow).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Number of bins.
    #[must_use]
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// `[lo, hi)` boundaries of bin `i`.
    #[must_use]
    pub fn bin_bounds(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// Observations below the range.
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper bound.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Approximate quantile by linear scan of the in-range bins
    /// (under/overflow are counted at the extremes).
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.count == 0 {
            return f64::NAN;
        }
        let target = (q * self.count as f64).ceil() as u64;
        let mut cum = self.underflow;
        if cum >= target {
            return self.lo;
        }
        for (i, &c) in self.bins.iter().enumerate() {
            cum += c;
            if cum >= target {
                return self.bin_bounds(i).1;
            }
        }
        self.hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_partition_range() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        for &x in &[0.0, 0.24, 0.25, 0.5, 0.75, 0.99] {
            h.record(x);
        }
        assert_eq!(h.bin_count(0), 2);
        assert_eq!(h.bin_count(1), 1);
        assert_eq!(h.bin_count(2), 1);
        assert_eq!(h.bin_count(3), 2);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn quantiles_monotone() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        let q50 = h.quantile(0.5);
        let q90 = h.quantile(0.9);
        let q99 = h.quantile(0.99);
        assert!(q50 <= q90 && q90 <= q99);
        assert!((q50 - 50.0).abs() <= 1.0);
        assert!((q90 - 90.0).abs() <= 1.0);
    }

    #[test]
    fn overflow_underflow_counted() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.record(-5.0);
        h.record(2.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn empty_quantile_is_nan() {
        let h = Histogram::new(0.0, 1.0, 2);
        assert!(h.quantile(0.5).is_nan());
    }
}
