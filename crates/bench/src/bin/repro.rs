//! `repro` — regenerate every table and figure of the paper, or run any
//! scenario named on the command line.
//!
//! ```text
//! repro [--quick] [table1|table2|table3|fig1|fig2|bounds|stability|
//!        capacity|hypercube|butterfly|randomized|torus|kd|slotted|
//!        nonuniform|dominance|report|all]
//! repro [--engine auto|heap|calendar|sharded:<N>] scenario <spec> [<spec>…]
//! repro [--shards N] scenario <spec> [<spec>…]
//! repro [--quick] [--engine E] sweep <spec> [--out FILE] [--jobs N] [--check]
//! ```
//!
//! Without `--quick` the publication-scale sweeps run (several minutes for
//! the heavy ρ = 0.99 cells); with it, a reduced but structurally identical
//! pass finishes in seconds per artifact.
//!
//! `repro scenario torus:8,util=0.9,horizon=5000` simulates any
//! [`Scenario`] spec (see `Scenario::parse`) and prints the analytic
//! [`BoundsReport`] next to the simulated result. Unknown artifact names
//! and unknown flags exit nonzero with a usage message.
//!
//! `--engine` forces a hot-path engine (`EngineSpec`) on every scenario or
//! sweep cell named on the command line — results are bit-identical across
//! the single-core engines, so the flag is a wall-clock ablation knob.
//! `--shards N` is shorthand for `--engine sharded:N`: the conservative
//! parallel engine partitions the topology across `N` threads (requires
//! deterministic service times when `N >= 2`; deterministic per
//! `(seed, shards)` pair).
//!
//! `repro sweep` runs a whole scenario grid in parallel and emits the
//! machine-readable JSON report (`meshbound::sweep`). The spec is either a
//! sweep-grammar string such as
//! `"topo=mesh:5|torus:8 load=rho:0.2|rho:0.8 reps=2"` or one of the
//! predefined paper grids `table1`/`table2`/`table3` (honoring `--quick`).
//! `--out` writes the JSON report, `--jobs 1` forces sequential cell
//! execution (`--jobs N` caps the Rayon pool), and `--check` exits
//! nonzero unless every cell's simulated delay lies within its analytic
//! bounds.

use meshbound::experiments::{extensions, fig1, fig2, table1, table2, table3, Scale};
use meshbound::queueing::load::{mesh_stability_threshold, optimal_stability_threshold};
use meshbound::sweep::{run_cells, run_sweep, Jobs};
use meshbound::{
    set_progress_sink, BoundsReport, EngineSpec, Load, ProbeSpec, Scenario, SweepSpec,
};
use std::io::IsTerminal;
use std::process::ExitCode;

const ARTIFACTS: &[&str] = &[
    "table1",
    "table2",
    "table3",
    "fig1",
    "fig2",
    "bounds",
    "stability",
    "capacity",
    "hypercube",
    "butterfly",
    "randomized",
    "torus",
    "kd",
    "slotted",
    "nonuniform",
    "dominance",
    "report",
    "all",
];

fn usage() -> String {
    format!(
        "usage: repro [--quick] [{}]\n\
         \x20      repro [--quick] [--engine auto|heap|calendar|sharded:<N>] scenario <spec> [<spec>…]\n\
         \x20      repro [--quick] [--shards N] scenario <spec> [<spec>…]\n\
         \x20      repro [--progress] [--telemetry FILE] scenario <spec>\n\
         \x20      repro [--progress] timeline <spec> [<spec>…]\n\
         \x20      repro [--quick] [--engine E] [--progress] sweep <spec> [--out FILE] [--jobs N] [--check]\n\
         \n\
         scenario specs look like `torus:8,util=0.9,horizon=5000`,\n\
         `mesh:8,traffic=transpose,util=0.5` or (quoted, whitespace and\n\
         commas both separate) `\"hypercube:20 traffic=shuffle\n\
         load=rho:0.5\"` — topology head (mesh:N, mesh:RxC, torus:N,\n\
         hypercube:D, butterfly:K, kd:AxBxC) followed by key=value\n\
         options (router=greedy|randomized|westfirst|oddeven, traffic,\n\
         src, lambda/rho/util or\n\
         load=<convention>:<value>, horizon, warmup, seed, service, slot,\n\
         sample, self, saturated, quantiles, queues, engine, faults).\n\
         \n\
         faults= injects a deterministic failure schedule: none,\n\
         links:<rate>, nodes:<rate>, link:<id>, node:<id>, joined with\n\
         `+` and optionally extended with at:<t> and repair:<dt>, e.g.\n\
         faults=links:0.05+at:100+repair:400. Unroutable packets become\n\
         accounted drops and the output reports the delivered fraction.\n\
         \n\
         traffic= names the workload: uniform, nearby:<stop>,\n\
         bernoulli:<p>, transpose, bitrev, bitcomp, shuffle or\n\
         hotspot:<frac>[:<node>] (dest= is the legacy alias); src= names\n\
         the source model: uniform or hotspot:<weight>[:<node>].\n\
         \n\
         --engine overrides the hot-path engine of every scenario or sweep\n\
         cell (bit-identical results across the single-core engines,\n\
         different wall clock); --shards N is shorthand for\n\
         --engine sharded:N, the conservative parallel engine (N >= 2\n\
         needs service=det).\n\
         \n\
         probes=<series>[@<dt>] turns on telemetry: deterministic\n\
         sim-clock sampling of nsys, maxq, drops, delivered and/or\n\
         shards (or all; none = off, the default) onto a bounded\n\
         flight-recorder buffer. `repro timeline <spec>` runs a spec\n\
         (defaulting probes=all) and prints each series as an ASCII\n\
         trajectory; `--telemetry FILE` writes the probed scenario's\n\
         meshbound.telemetry/v1 JSON report; `--progress` streams a\n\
         probe-tick progress line to stderr (TTY only).\n\
         \n\
         sweep specs are either table1|table2|table3 (the paper grids at\n\
         the current scale) or an axis grammar like\n\
         `topo=mesh:5|torus:8 load=rho:0.2|rho:0.8\n\
         traffic=uniform|transpose reps=2 seed=7 horizon=auto:1500:12000`\n\
         (axes: topo, load, router, traffic, faults, engine; shared\n\
         knobs: src, service, reps, seed, horizon, warmup, saturated,\n\
         probes).",
        ARTIFACTS.join("|")
    )
}

/// Prints a sweep-usage error and returns the CLI error exit code.
fn sweep_fail(msg: &str) -> ExitCode {
    eprintln!("repro: {msg}\n{}", usage());
    ExitCode::from(2)
}

/// Extracts a leading-or-anywhere `--engine <name>` flag from `args`,
/// returning the engine (if any) or a usage error message.
fn extract_engine(args: &mut Vec<String>) -> Result<Option<EngineSpec>, String> {
    let Some(pos) = args.iter().position(|a| a == "--engine") else {
        return Ok(None);
    };
    let Some(name) = args.get(pos + 1) else {
        return Err("`--engine` needs a value (auto, heap or calendar)".into());
    };
    let engine = EngineSpec::parse_str(name)?;
    args.drain(pos..=pos + 1);
    if args.iter().any(|a| a == "--engine") {
        return Err("`--engine` given twice".into());
    }
    Ok(Some(engine))
}

/// Extracts a `--shards <N>` flag from `args` — shorthand for
/// `--engine sharded:<N>`.
fn extract_shards(args: &mut Vec<String>) -> Result<Option<EngineSpec>, String> {
    let Some(pos) = args.iter().position(|a| a == "--shards") else {
        return Ok(None);
    };
    let shards = match args.get(pos + 1).and_then(|v| v.parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        _ => return Err("`--shards` needs a shard count >= 1".into()),
    };
    args.drain(pos..=pos + 1);
    if args.iter().any(|a| a == "--shards") {
        return Err("`--shards` given twice".into());
    }
    Ok(Some(EngineSpec::Sharded { shards }))
}

/// Extracts a `--telemetry <path>` flag from `args` — the output file for
/// the probed scenario's `meshbound.telemetry/v1` JSON report.
fn extract_telemetry(args: &mut Vec<String>) -> Result<Option<String>, String> {
    let Some(pos) = args.iter().position(|a| a == "--telemetry") else {
        return Ok(None);
    };
    let Some(path) = args.get(pos + 1).cloned() else {
        return Err("`--telemetry` needs a file path".into());
    };
    args.drain(pos..=pos + 1);
    if args.iter().any(|a| a == "--telemetry") {
        return Err("`--telemetry` given twice".into());
    }
    Ok(Some(path))
}

/// Extracts a boolean `--progress` flag from `args`.
fn extract_progress(args: &mut Vec<String>) -> bool {
    let before = args.len();
    args.retain(|a| a != "--progress");
    args.len() != before
}

/// Installs a stderr progress line fed by the telemetry probe ticks of the
/// next run: percentage of the sim horizon, events processed, and events
/// per wall-clock second. No-op (returns false) when stderr is not a TTY —
/// redirected logs never fill with carriage returns.
fn install_progress() -> bool {
    if !std::io::stderr().is_terminal() {
        return false;
    }
    let start = std::time::Instant::now();
    set_progress_sink(Some(std::sync::Arc::new(move |now, horizon, events| {
        let pct = (100.0 * now / horizon).min(100.0);
        let secs = start.elapsed().as_secs_f64();
        let rate = if secs > 0.0 {
            events as f64 / secs
        } else {
            0.0
        };
        eprint!(
            "\r  {pct:5.1}%  t={now:.0}/{horizon:.0}  {events} events  {:.0}k ev/s   ",
            rate / 1e3
        );
    })));
    true
}

/// Clears the progress sink and wipes the stderr line it was drawing.
fn clear_progress() {
    set_progress_sink(None);
    eprint!("\r{:78}\r", "");
}

/// The `repro sweep` subcommand.
fn sweep_command(
    args: &[String],
    mut quick: bool,
    engine: Option<EngineSpec>,
    progress: bool,
) -> ExitCode {
    let mut spec: Option<&str> = None;
    let mut out: Option<&str> = None;
    let mut jobs: usize = 0; // 0 = the full Rayon pool
    let mut check = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--check" => check = true,
            "--out" => match it.next() {
                Some(path) => out = Some(path),
                None => return sweep_fail("`--out` needs a file path"),
            },
            "--jobs" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => jobs = n,
                _ => return sweep_fail("`--jobs` needs a positive integer"),
            },
            flag if flag.starts_with("--") => {
                return sweep_fail(&format!("unknown sweep flag `{flag}`"))
            }
            s if spec.is_none() => spec = Some(s),
            s => return sweep_fail(&format!("unexpected extra sweep spec `{s}`")),
        }
    }
    let Some(spec) = spec else {
        return sweep_fail("`sweep` needs a spec (table1|table2|table3 or an axis grammar)");
    };
    if jobs >= 1 {
        // Cap the whole Rayon pool — with `--jobs 1` this also keeps each
        // cell's replication fan-out on one thread. One-shot global
        // install; a second `repro sweep` in the same process cannot
        // happen, so a prior-init error is moot.
        let _ = rayon::ThreadPoolBuilder::new()
            .num_threads(jobs)
            .build_global();
    }
    let jobs_mode = if jobs == 1 {
        Jobs::Sequential
    } else {
        Jobs::Parallel
    };
    let scale = if quick { Scale::quick() } else { Scale::full() };
    // An engine override re-engines every cell; seeds and results are
    // unchanged (engines are bit-identical), only the wall clock moves.
    let re_engine = |cells: Vec<Scenario>| -> Vec<Scenario> {
        match engine {
            Some(e) => cells.into_iter().map(|c| c.engine(e)).collect(),
            None => cells,
        }
    };
    // Live progress rides the telemetry probe ticks of probed cells — a
    // sweep without a `probes=` clause has no ticks and stays silent.
    let live = progress && install_progress();
    let report = match spec {
        "table1" => run_cells(
            "table1",
            re_engine(table1::cells(&scale)),
            scale.reps,
            jobs_mode,
        ),
        "table2" => run_cells(
            "table2",
            re_engine(table2::cells(&scale)),
            scale.reps,
            jobs_mode,
        ),
        "table3" => run_cells(
            "table3",
            re_engine(table3::cells(&scale)),
            scale.reps,
            jobs_mode,
        ),
        grammar => {
            let parsed = SweepSpec::parse(grammar).map(|sw| match engine {
                Some(e) => sw.engines(vec![e]),
                None => sw,
            });
            match parsed.and_then(|sw| run_sweep(&sw, jobs_mode)) {
                Ok(report) => report,
                Err(e) => return sweep_fail(&e.to_string()),
            }
        }
    };
    if live {
        clear_progress();
    }
    print!("{}", report.to_text());
    if let Some(path) = out {
        if let Err(e) = std::fs::write(path, report.to_json_pretty()) {
            eprintln!("repro: cannot write `{path}`: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    if check && !report.all_within_bounds {
        eprintln!("repro: sweep has cells outside their analytic bounds");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let engine = match (extract_engine(&mut args), extract_shards(&mut args)) {
        (Err(msg), _) | (_, Err(msg)) => {
            eprintln!("repro: {msg}\n{}", usage());
            return ExitCode::from(2);
        }
        (Ok(Some(_)), Ok(Some(_))) => {
            eprintln!(
                "repro: `--engine` and `--shards` conflict — pick one\n{}",
                usage()
            );
            return ExitCode::from(2);
        }
        (Ok(engine), Ok(shards)) => engine.or(shards),
    };
    let progress = extract_progress(&mut args);
    let telemetry_out = match extract_telemetry(&mut args) {
        Ok(t) => t,
        Err(msg) => {
            eprintln!("repro: {msg}\n{}", usage());
            return ExitCode::from(2);
        }
    };
    // The sweep subcommand has its own flags (`--out`, `--jobs`, `--check`)
    // and is handled separately; only `--quick` may precede it.
    if let Some(pos) = args.iter().position(|a| a == "sweep") {
        if args[..pos].iter().all(|a| a == "--quick") {
            if telemetry_out.is_some() {
                eprintln!(
                    "repro: `--telemetry` applies to the scenario and timeline \
                     commands — `sweep` writes its report with `--out`\n{}",
                    usage()
                );
                return ExitCode::from(2);
            }
            // The guard admits only `--quick` prefixes, so any prefix at
            // all means quick mode.
            return sweep_command(&args[pos + 1..], pos > 0, engine, progress);
        }
    }
    let mut quick = false;
    let mut timeline = false;
    let mut what: Vec<&str> = Vec::new();
    let mut specs: Vec<&str> = Vec::new();
    let mut expecting_specs = false;
    for arg in &args {
        match arg.as_str() {
            "--quick" => quick = true,
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with("--") => {
                eprintln!("repro: unknown flag `{flag}`\n{}", usage());
                return ExitCode::from(2);
            }
            "scenario" if !expecting_specs => expecting_specs = true,
            "timeline" if !expecting_specs => {
                expecting_specs = true;
                timeline = true;
            }
            name if expecting_specs => specs.push(name),
            name if ARTIFACTS.contains(&name) => what.push(name),
            name => {
                eprintln!("repro: unknown artifact `{name}`\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }
    if expecting_specs && specs.is_empty() {
        eprintln!(
            "repro: `{}` needs at least one spec\n{}",
            if timeline { "timeline" } else { "scenario" },
            usage()
        );
        return ExitCode::from(2);
    }

    let scale = if quick { Scale::quick() } else { Scale::full() };

    if engine.is_some() && !expecting_specs {
        eprintln!(
            "repro: `--engine`/`--shards` apply to the scenario and sweep commands\n{}",
            usage()
        );
        return ExitCode::from(2);
    }
    if (telemetry_out.is_some() || progress) && !expecting_specs {
        eprintln!(
            "repro: `--telemetry`/`--progress` apply to the scenario, timeline \
             and sweep commands\n{}",
            usage()
        );
        return ExitCode::from(2);
    }
    if telemetry_out.is_some() && specs.len() != 1 {
        eprintln!(
            "repro: `--telemetry` writes one report — give exactly one spec\n{}",
            usage()
        );
        return ExitCode::from(2);
    }

    // Parse every spec before running any, so a typo in the last spec
    // cannot waste the minutes the first ones take.
    let mut scenarios = Vec::new();
    for spec in specs {
        match Scenario::parse(spec) {
            Ok(sc) => {
                let mut sc = match engine {
                    Some(e) => sc.engine(e),
                    None => sc,
                };
                // `timeline` and `--telemetry` need series to report;
                // `--progress` needs ticks to fire. A spec that already
                // says `probes=` keeps its own selection.
                if sc.probes.is_none() {
                    if timeline || telemetry_out.is_some() {
                        sc = sc.probes(ProbeSpec::parse_token("all").unwrap().unwrap());
                    } else if progress {
                        sc = sc.probes(ProbeSpec::parse_token("nsys").unwrap().unwrap());
                    }
                }
                scenarios.push(sc);
            }
            Err(e) => {
                eprintln!("repro: {e}\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }
    for sc in &scenarios {
        let live = progress && install_progress();
        let ran = run_scenario(sc);
        if live {
            clear_progress();
        }
        let res = match ran {
            Ok(res) => res,
            Err(code) => return code,
        };
        if timeline {
            match &res.telemetry {
                Some(tel) => print!("{}", tel.render_timeline()),
                None => println!("  (no telemetry: spec says probes=none)"),
            }
        }
        if let Some(path) = &telemetry_out {
            let Some(tel) = &res.telemetry else {
                eprintln!("repro: `--telemetry` needs probes — spec says probes=none");
                return ExitCode::from(2);
            };
            if let Err(e) = std::fs::write(path, tel.to_json_pretty()) {
                eprintln!("repro: cannot write `{path}`: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {path}");
        }
    }

    if what.is_empty() && !expecting_specs {
        what.push("all");
    }
    let wants = |name: &str| what.contains(&name) || what.contains(&"all");

    if wants("fig1") {
        println!("{}", fig1::render(&fig1::run(5)));
    }
    if wants("fig2") {
        let (even, odd) = fig2::run(4, 5);
        println!("{}", fig2::render(&even, &odd));
    }
    if wants("table1") {
        println!("Table I — simulation vs M/D/1 estimate (λ = 4ρ/n)");
        println!("{}", table1::render(&table1::run(&scale)));
    }
    if wants("table2") {
        println!("Table II — r = E[R]/E[N]");
        println!("{}", table2::render(&table2::run(&scale)));
    }
    if wants("table3") {
        println!("Table III — r_s at ρ = 0.99");
        println!("{}", table3::render(&table3::run(&scale)));
    }
    if wants("bounds") {
        let rhos = [0.2, 0.5, 0.8, 0.9, 0.95, 0.99];
        for n in [8usize, 9] {
            let rows = extensions::bounds_curve(n, &rhos, &scale);
            println!("{}", extensions::render_bounds_curve(n, &rows));
        }
    }
    if wants("stability") {
        for n in [6usize, 7] {
            let thr = mesh_stability_threshold(n);
            let lambdas = [0.8 * thr, 0.95 * thr, 1.05 * thr, 1.2 * thr];
            let rows = extensions::stability_sweep(n, &lambdas, false, &scale);
            println!("{}", extensions::render_stability(n, &rows));
        }
        // Optimal allocation: stable between 4/n and 6/(n+1).
        let n = 6;
        let mid = 0.5 * (mesh_stability_threshold(n) + optimal_stability_threshold(n));
        let rows = extensions::stability_sweep(n, &[mid], true, &scale);
        println!("{}", extensions::render_stability(n, &rows));
    }
    if wants("capacity") {
        let n = 8;
        let lambdas = [0.1, 0.2, 0.3, 0.4];
        let rows = extensions::capacity_comparison(n, &lambdas, &scale);
        println!("{}", extensions::render_capacity(n, &rows));
    }
    if wants("hypercube") {
        let rows = extensions::hypercube_study(8, &[0.1, 0.25, 0.5, 0.75, 0.9], 0.9, &scale);
        println!("{}", extensions::render_hypercube(8, &rows));
    }
    if wants("butterfly") {
        let rows = extensions::butterfly_study(&[2, 3, 4, 5, 6], 0.9, &scale);
        println!("{}", extensions::render_butterfly(&rows));
    }
    if wants("randomized") {
        let rows = extensions::randomized_study(10, &[0.2, 0.5, 0.8, 0.9], &scale);
        println!("{}", extensions::render_randomized(10, &rows));
    }
    if wants("torus") {
        let n = 8;
        let lambdas = [0.1, 0.2, 0.3, 0.4];
        let rows = extensions::torus_study(n, &lambdas, &scale);
        println!("{}", extensions::render_torus(n, &rows));
    }
    if wants("kd") {
        let rows = extensions::kd_study(
            &[vec![4, 4], vec![3, 3, 3], vec![4, 4, 4], vec![3, 3, 3, 3]],
            0.1,
            &scale,
        );
        println!("{}", extensions::render_kd(&rows));
    }
    if wants("slotted") {
        let rows = extensions::slotted_study(8, 0.7, &[0.25, 0.5, 1.0, 2.0], &scale);
        println!("{}", extensions::render_slotted(8, 0.7, &rows));
    }
    if wants("nonuniform") {
        let rows = extensions::nearby_study(8, &[0.25, 0.5, 0.75], 0.4, &scale);
        println!("{}", extensions::render_nearby(8, 0.4, &rows));
    }
    if wants("dominance") {
        let rows = extensions::dominance_study(8, &[0.2, 0.5, 0.8, 0.9], &scale);
        println!("{}", extensions::render_dominance(8, &rows));
    }
    if wants("report") {
        for n in [5usize, 10, 20] {
            println!(
                "{}",
                BoundsReport::compute(n, Load::TableRho(0.9)).to_text()
            );
        }
    }
    ExitCode::SUCCESS
}

/// Simulates one parsed scenario and prints the analytic report next to
/// the measured delay, returning the full result (the `timeline` and
/// `--telemetry` paths read its telemetry). A mid-simulation failure is a
/// structured single-line error on stderr and a nonzero exit — never a
/// panic backtrace.
fn run_scenario(sc: &Scenario) -> Result<meshbound::sim::SimResult, ExitCode> {
    println!("scenario: {}", sc.spec_string());
    print!("{}", BoundsReport::compute_for(sc).to_text());
    let res = match sc.try_run() {
        Ok(res) => res,
        Err(e) => {
            eprintln!("repro: {e}");
            return Err(ExitCode::FAILURE);
        }
    };
    println!(
        "  simulated: T = {:.3} (completed {} packets, E[N] = {:.2}, \
         Little cross-check {:.3}, peak edge utilization {:.3})",
        res.avg_delay, res.completed, res.time_avg_n, res.little_delay, res.max_edge_utilization
    );
    if sc.faults.is_some() {
        println!(
            "  degraded: delivered {:.4} of generated; drops: dead-end {}, \
             local-min {}, ttl {}, link-down {}",
            res.delivered_fraction,
            res.dropped.dead_end,
            res.dropped.local_minimum,
            res.dropped.ttl_exceeded,
            res.dropped.link_down
        );
    }
    println!(
        "  engine {}: {} events at {:.0}k events/s\n",
        sc.engine,
        res.events_processed,
        res.events_per_sec / 1e3
    );
    Ok(res)
}
