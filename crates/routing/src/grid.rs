//! Internal 2-D grid adapter shared by the turn-model routers.
//!
//! [`WestFirst`](crate::WestFirst) and [`OddEven`](crate::OddEven) are
//! defined over an abstract row/column grid so one implementation serves
//! both [`Mesh2D`] and [`Torus2D`]. On the torus the displacement frame is
//! the shortest-wrap delta, recomputed at every hop: deltas shrink
//! monotonically toward zero and never flip sign, so the routes stay
//! minimal.

use crate::policy::LocalView;
use meshbound_topology::{Direction, EdgeId, Mesh2D, NodeId, Topology, Torus2D};

/// A topology that looks like a 2-D grid to a turn-model router.
pub(crate) trait TurnGrid: Topology {
    /// Column index of a node.
    fn col_of(&self, v: NodeId) -> usize;

    /// Signed `(row, col)` displacement from `cur` to `dst` in the routing
    /// frame: plain coordinate differences on the mesh, shortest-wrap
    /// deltas on the torus.
    fn deltas(&self, cur: NodeId, dst: NodeId) -> (isize, isize);

    /// The out-edge of `v` in `dir`, if the grid has one. Minimal moves
    /// (toward a nonzero delta component) always do.
    fn dir_edge(&self, v: NodeId, dir: Direction) -> Option<EdgeId>;

    /// Minimal route length between two nodes.
    fn hop_distance(&self, a: NodeId, b: NodeId) -> usize;

    /// Direction of an edge.
    fn edge_dir(&self, e: EdgeId) -> Direction;
}

impl TurnGrid for Mesh2D {
    #[inline]
    fn col_of(&self, v: NodeId) -> usize {
        self.coords(v).1
    }

    #[inline]
    fn deltas(&self, cur: NodeId, dst: NodeId) -> (isize, isize) {
        let (r, c) = self.coords(cur);
        let (rd, cd) = self.coords(dst);
        (rd as isize - r as isize, cd as isize - c as isize)
    }

    #[inline]
    fn dir_edge(&self, v: NodeId, dir: Direction) -> Option<EdgeId> {
        let (r, c) = self.coords(v);
        self.edge_in_direction(r, c, dir)
    }

    #[inline]
    fn hop_distance(&self, a: NodeId, b: NodeId) -> usize {
        self.manhattan(a, b)
    }

    #[inline]
    fn edge_dir(&self, e: EdgeId) -> Direction {
        self.direction(e)
    }
}

impl TurnGrid for Torus2D {
    #[inline]
    fn col_of(&self, v: NodeId) -> usize {
        self.coords(v).1
    }

    #[inline]
    fn deltas(&self, cur: NodeId, dst: NodeId) -> (isize, isize) {
        let n = self.side();
        let (r, c) = self.coords(cur);
        let (rd, cd) = self.coords(dst);
        (Torus2D::wrap_delta(n, r, rd), Torus2D::wrap_delta(n, c, cd))
    }

    #[inline]
    fn dir_edge(&self, v: NodeId, dir: Direction) -> Option<EdgeId> {
        Some(self.edge_in_direction(v, dir))
    }

    #[inline]
    fn hop_distance(&self, a: NodeId, b: NodeId) -> usize {
        self.distance(a, b)
    }

    #[inline]
    fn edge_dir(&self, e: EdgeId) -> Direction {
        self.direction(e)
    }
}

/// The vertical direction that reduces a nonzero row delta.
#[inline]
pub(crate) fn vertical_toward(dr: isize) -> Direction {
    if dr > 0 {
        Direction::Down
    } else {
        Direction::Up
    }
}

/// The permitted productive hops out of one node — at most a horizontal
/// and a vertical candidate, in tie-break order.
#[derive(Debug, Clone, Copy)]
pub(crate) struct HopSet {
    buf: [EdgeId; 2],
    len: u8,
}

impl Default for HopSet {
    fn default() -> Self {
        HopSet {
            buf: [EdgeId(0); 2],
            len: 0,
        }
    }
}

impl HopSet {
    #[inline]
    pub(crate) fn push(&mut self, e: EdgeId) {
        self.buf[self.len as usize] = e;
        self.len += 1;
    }

    #[inline]
    pub(crate) fn push_dir<G: TurnGrid>(&mut self, topo: &G, v: NodeId, dir: Direction) {
        let e = topo
            .dir_edge(v, dir)
            .expect("minimal move must stay on the grid");
        self.push(e);
    }

    /// The canonical (empty-network) choice: the first candidate.
    #[inline]
    pub(crate) fn first(&self) -> Option<EdgeId> {
        (self.len > 0).then(|| self.buf[0])
    }

    #[inline]
    pub(crate) fn as_slice(&self) -> &[EdgeId] {
        &self.buf[..self.len as usize]
    }

    /// The candidate with the shortest local queue; ties keep the
    /// canonical order, so an all-zero view reproduces [`HopSet::first`].
    #[inline]
    pub(crate) fn least_occupied(&self, local: &dyn LocalView) -> Option<EdgeId> {
        let mut best = None;
        let mut best_q = u32::MAX;
        for &e in self.as_slice() {
            let q = local.queue_len(e);
            if q < best_q {
                best_q = q;
                best = Some(e);
            }
        }
        best
    }

    /// Equal-split branching over the candidates, for the rate solver.
    pub(crate) fn equal_splits(&self) -> Vec<(EdgeId, f64)> {
        let s = self.as_slice();
        if s.is_empty() {
            return Vec::new();
        }
        let p = 1.0 / s.len() as f64;
        s.iter().map(|&e| (e, p)).collect()
    }
}
