//! `k`-dimensional array meshes (§5.2: "the methods presented here easily
//! extend to array networks in higher dimensions").

use crate::ids::{EdgeId, NodeId};
use crate::traits::Topology;
use serde::{Deserialize, Serialize};

/// A `k`-dimensional mesh with per-axis extents `dims[0] × … × dims[k−1]`.
///
/// Nodes are mixed-radix numbers with axis 0 as the fastest-varying digit.
/// Each axis contributes `(dims[a] − 1) · N / dims[a]` edges in each of the
/// two directions; edge blocks are laid out axis-major, plus-direction first.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeshKD {
    dims: Vec<u32>,
    /// Per-axis (plus_offset, minus_offset) into the edge id space.
    offsets: Vec<(u32, u32)>,
    num_edges: u32,
}

impl MeshKD {
    /// Creates a `k`-dimensional mesh.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty or any extent is below 2.
    #[must_use]
    pub fn new(dims: &[usize]) -> Self {
        assert!(!dims.is_empty(), "mesh needs at least one dimension");
        assert!(dims.iter().all(|&d| d >= 2), "each extent must be >= 2");
        let n: usize = dims.iter().product();
        assert!(n < u32::MAX as usize / 2, "mesh too large");
        let mut offsets = Vec::with_capacity(dims.len());
        let mut off = 0u32;
        for &d in dims {
            let per_dir = ((d - 1) * n / d) as u32;
            offsets.push((off, off + per_dir));
            off += 2 * per_dir;
        }
        Self {
            dims: dims.iter().map(|&d| d as u32).collect(),
            offsets,
            num_edges: off,
        }
    }

    /// Number of dimensions.
    #[must_use]
    pub fn k(&self) -> usize {
        self.dims.len()
    }

    /// Per-axis extents.
    #[must_use]
    pub fn dims(&self) -> Vec<usize> {
        self.dims.iter().map(|&d| d as usize).collect()
    }

    /// Node id of mixed-radix coordinates.
    ///
    /// # Panics
    ///
    /// Debug-panics when out of range.
    #[must_use]
    pub fn node(&self, coords: &[usize]) -> NodeId {
        debug_assert_eq!(coords.len(), self.k());
        let mut id = 0u32;
        for (a, &c) in coords.iter().enumerate().rev() {
            debug_assert!(c < self.dims[a] as usize);
            id = id * self.dims[a] + c as u32;
        }
        NodeId(id)
    }

    /// Mixed-radix coordinates of a node, written into `out`.
    pub fn coords_into(&self, v: NodeId, out: &mut Vec<usize>) {
        out.clear();
        let mut rest = v.0;
        for &d in &self.dims {
            out.push((rest % d) as usize);
            rest /= d;
        }
    }

    /// Mixed-radix coordinates of a node.
    #[must_use]
    pub fn coords(&self, v: NodeId) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.k());
        self.coords_into(v, &mut out);
        out
    }

    /// Coordinate of `v` along axis `a` without materializing the full tuple.
    #[must_use]
    pub fn coord_along(&self, v: NodeId, a: usize) -> usize {
        let mut rest = v.0;
        for &d in &self.dims[..a] {
            rest /= d;
        }
        (rest % self.dims[a]) as usize
    }

    /// Edge from `v` along axis `a`; `positive` selects the +1 direction.
    /// Returns `None` at the mesh boundary.
    #[must_use]
    pub fn edge_along(&self, v: NodeId, a: usize, positive: bool) -> Option<EdgeId> {
        let c = self.coord_along(v, a);
        let d = self.dims[a] as usize;
        // Rank the (node, axis-slot) pair densely: nodes with coordinate c on
        // axis a, c in 0..d−1 for positive edges (base node), 1..d for
        // negative edges (source node has c ≥ 1 → slot c−1).
        let (off, c_slot) = if positive {
            if c + 1 >= d {
                return None;
            }
            (self.offsets[a].0, c)
        } else {
            if c == 0 {
                return None;
            }
            (self.offsets[a].1, c - 1)
        };
        // Dense rank of v among nodes, skipping the axis-a digit's last value:
        // rank = (high digits) * (d−1) * (low radix) + c_slot * (low radix) + low digits.
        let mut low_radix = 1u32;
        for &dd in &self.dims[..a] {
            low_radix *= dd;
        }
        let low = v.0 % low_radix;
        let high = v.0 / (low_radix * self.dims[a]);
        let rank = high * (self.dims[a] - 1) * low_radix + (c_slot as u32) * low_radix + low;
        Some(EdgeId(off + rank))
    }

    /// Decodes an edge id into `(source, axis, positive)`.
    #[must_use]
    pub fn decode_edge(&self, e: EdgeId) -> (NodeId, usize, bool) {
        for a in 0..self.k() {
            let (plus, minus) = self.offsets[a];
            let next = if a + 1 < self.k() {
                self.offsets[a + 1].0
            } else {
                self.num_edges
            };
            if e.0 >= plus && e.0 < next {
                let positive = e.0 < minus;
                let rank = if positive { e.0 - plus } else { e.0 - minus };
                let mut low_radix = 1u32;
                for &dd in &self.dims[..a] {
                    low_radix *= dd;
                }
                let d = self.dims[a];
                let low = rank % low_radix;
                let c_slot = (rank / low_radix) % (d - 1);
                let high = rank / (low_radix * (d - 1));
                let c = if positive { c_slot } else { c_slot + 1 };
                let v = high * (low_radix * d) + c * low_radix + low;
                return (NodeId(v), a, positive);
            }
        }
        panic!("edge id {e} out of range");
    }

    /// Manhattan distance between two nodes.
    #[must_use]
    pub fn distance(&self, a: NodeId, b: NodeId) -> usize {
        (0..self.k())
            .map(|ax| self.coord_along(a, ax).abs_diff(self.coord_along(b, ax)))
            .sum()
    }

    /// Next greedy edge from `from` toward `to`, correcting axes in
    /// increasing order; `None` when `from == to`.
    #[must_use]
    pub fn step_toward(&self, from: NodeId, to: NodeId) -> Option<EdgeId> {
        for a in 0..self.k() {
            let cf = self.coord_along(from, a);
            let ct = self.coord_along(to, a);
            if cf != ct {
                return self.edge_along(from, a, ct > cf);
            }
        }
        None
    }
}

impl Topology for MeshKD {
    fn num_nodes(&self) -> usize {
        self.dims.iter().map(|&d| d as usize).product()
    }

    fn num_edges(&self) -> usize {
        self.num_edges as usize
    }

    fn edge_source(&self, e: EdgeId) -> NodeId {
        self.decode_edge(e).0
    }

    fn edge_target(&self, e: EdgeId) -> NodeId {
        let (v, a, positive) = self.decode_edge(e);
        let mut low_radix = 1u32;
        for &dd in &self.dims[..a] {
            low_radix *= dd;
        }
        if positive {
            NodeId(v.0 + low_radix)
        } else {
            NodeId(v.0 - low_radix)
        }
    }

    fn out_edges_into(&self, v: NodeId, out: &mut Vec<EdgeId>) {
        out.clear();
        for a in 0..self.k() {
            if let Some(e) = self.edge_along(v, a, true) {
                out.push(e);
            }
            if let Some(e) = self.edge_along(v, a, false) {
                out.push(e);
            }
        }
    }

    fn label(&self) -> String {
        let dims: Vec<String> = self.dims.iter().map(|d| d.to_string()).collect();
        format!("mesh {}", dims.join("x"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn matches_2d_mesh_counts() {
        let kd = MeshKD::new(&[5, 5]);
        assert_eq!(kd.num_nodes(), 25);
        assert_eq!(kd.num_edges(), 4 * 5 * 4);
    }

    #[test]
    fn three_d_counts() {
        let kd = MeshKD::new(&[3, 4, 5]);
        assert_eq!(kd.num_nodes(), 60);
        // Per axis a: 2 * (d_a − 1) * N / d_a.
        let expected = 2 * (2 * 60 / 3 + 3 * 60 / 4 + 4 * 60 / 5);
        assert_eq!(kd.num_edges(), expected);
    }

    #[test]
    fn node_coords_roundtrip() {
        let kd = MeshKD::new(&[3, 4, 2]);
        for v in kd.nodes() {
            let c = kd.coords(v);
            assert_eq!(kd.node(&c), v);
            for (a, &ca) in c.iter().enumerate() {
                assert_eq!(kd.coord_along(v, a), ca);
            }
        }
    }

    #[test]
    fn edge_ids_dense_and_decode_roundtrips() {
        let kd = MeshKD::new(&[3, 4, 2]);
        let mut seen = vec![false; kd.num_edges()];
        for v in kd.nodes() {
            for a in 0..kd.k() {
                for positive in [true, false] {
                    if let Some(e) = kd.edge_along(v, a, positive) {
                        assert!(!seen[e.index()], "duplicate edge id {e}");
                        seen[e.index()] = true;
                        assert_eq!(kd.decode_edge(e), (v, a, positive));
                        assert_eq!(kd.edge_source(e), v);
                        assert_eq!(kd.distance(v, kd.edge_target(e)), 1);
                    }
                }
            }
        }
        assert!(seen.iter().all(|&x| x), "edge ids not dense");
    }

    #[test]
    fn greedy_step_reaches_destination() {
        let kd = MeshKD::new(&[4, 3, 3]);
        let from = kd.node(&[0, 2, 1]);
        let to = kd.node(&[3, 0, 2]);
        let mut cur = from;
        let mut hops = 0;
        while let Some(e) = kd.step_toward(cur, to) {
            cur = kd.edge_target(e);
            hops += 1;
            assert!(hops <= 20);
        }
        assert_eq!(cur, to);
        assert_eq!(hops, kd.distance(from, to));
    }

    proptest! {
        #[test]
        fn prop_greedy_route_length_is_distance(
            a in 0usize..60,
            b in 0usize..60,
        ) {
            let kd = MeshKD::new(&[3, 4, 5]);
            let from = NodeId(a as u32);
            let to = NodeId(b as u32);
            let mut cur = from;
            let mut hops = 0;
            while let Some(e) = kd.step_toward(cur, to) {
                cur = kd.edge_target(e);
                hops += 1;
                prop_assert!(hops <= 12);
            }
            prop_assert_eq!(cur, to);
            prop_assert_eq!(hops, kd.distance(from, to));
        }
    }
}
