//! Regenerates the §4.5/§5/§6 extension studies at quick scale and times
//! representative pieces (hypercube sim, PS-mode sim, copy system).

use criterion::{criterion_group, criterion_main, Criterion};
use meshbound::experiments::extensions;
use meshbound::routing::dest::UniformDest;
use meshbound::routing::GreedyXY;
use meshbound::sim::copysys::CopySystemSim;
use meshbound::sim::network::NetConfig;
use meshbound::sim::ps::PsNetworkSim;
use meshbound::topology::Mesh2D;

fn bench(c: &mut Criterion) {
    let scale = meshbound_bench::bench_scale();
    println!(
        "\n{}",
        extensions::render_hypercube(
            6,
            &extensions::hypercube_study(6, &[0.25, 0.5, 0.75], 0.8, &scale)
        )
    );
    println!(
        "{}",
        extensions::render_butterfly(&extensions::butterfly_study(&[2, 4, 6], 0.8, &scale))
    );
    println!(
        "{}",
        extensions::render_randomized(
            8,
            &extensions::randomized_study(8, &[0.5, 0.8, 0.9], &scale)
        )
    );
    println!(
        "{}",
        extensions::render_slotted(
            5,
            0.5,
            &extensions::slotted_study(5, 0.5, &[0.5, 1.0], &scale)
        )
    );

    let cfg = NetConfig {
        lambda: 0.2,
        horizon: 1_000.0,
        warmup: 200.0,
        seed: 5,
        ..NetConfig::default()
    };
    let mut group = c.benchmark_group("comparison_systems");
    group.sample_size(10);
    group.bench_function("ps_network_n5", |b| {
        b.iter(|| PsNetworkSim::new(Mesh2D::square(5), GreedyXY, UniformDest, cfg.clone()).run());
    });
    group.bench_function("copy_system_n5", |b| {
        b.iter(|| CopySystemSim::new(Mesh2D::square(5), GreedyXY, UniformDest, cfg.clone()).run());
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
