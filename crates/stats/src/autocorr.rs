//! Autocorrelation analysis and effective sample size.
//!
//! Delay observations from one simulation run are serially correlated
//! (consecutive packets share queue backlogs), so `n` observations carry
//! fewer than `n` observations' worth of information. [`Autocorrelation`]
//! estimates the lag-k autocorrelation function from a buffered window and
//! derives the *effective sample size* `n_eff = n / (1 + 2Σ_k ρ_k)` — the
//! standard correction (initial-positive-sequence truncation, Geyer 1992)
//! used when judging whether a run is long enough.

use serde::{Deserialize, Serialize};

/// Estimates autocorrelations of a scalar series up to a maximum lag.
///
/// Observations are buffered (this analyzer is for offline diagnostics, not
/// the per-event hot path).
///
/// # Examples
///
/// ```
/// use meshbound_stats::autocorr::Autocorrelation;
/// let mut ac = Autocorrelation::new(8);
/// for i in 0..1000 {
///     ac.push(f64::from(i % 2)); // perfectly alternating
/// }
/// let rho = ac.rho(1).unwrap();
/// assert!(rho < -0.9, "lag-1 autocorrelation of an alternating series");
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Autocorrelation {
    max_lag: usize,
    data: Vec<f64>,
}

impl Autocorrelation {
    /// Creates an analyzer that can report lags `1..=max_lag`.
    ///
    /// # Panics
    ///
    /// Panics if `max_lag == 0`.
    #[must_use]
    pub fn new(max_lag: usize) -> Self {
        assert!(max_lag >= 1);
        Self {
            max_lag,
            data: Vec::new(),
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.data.push(x);
    }

    /// Number of observations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether no observations were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Sample mean.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().sum::<f64>() / self.data.len() as f64
    }

    /// Lag-`k` autocorrelation estimate, or `None` when there are not at
    /// least `k + 2` observations or the series is constant.
    #[must_use]
    pub fn rho(&self, k: usize) -> Option<f64> {
        assert!(k >= 1 && k <= self.max_lag, "lag out of range");
        let n = self.data.len();
        if n < k + 2 {
            return None;
        }
        let mean = self.mean();
        let c0: f64 = self.data.iter().map(|x| (x - mean) * (x - mean)).sum();
        if c0 == 0.0 {
            return None;
        }
        let ck: f64 = (0..n - k)
            .map(|i| (self.data[i] - mean) * (self.data[i + k] - mean))
            .sum();
        Some(ck / c0)
    }

    /// Integrated autocorrelation time `τ = 1 + 2Σρ_k`, truncating the sum
    /// at the first non-positive estimate (initial-positive-sequence rule)
    /// or at `max_lag`.
    #[must_use]
    pub fn integrated_time(&self) -> f64 {
        let mut tau = 1.0;
        for k in 1..=self.max_lag {
            match self.rho(k) {
                Some(r) if r > 0.0 => tau += 2.0 * r,
                _ => break,
            }
        }
        tau
    }

    /// Effective sample size `n / τ`.
    #[must_use]
    pub fn effective_sample_size(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.len() as f64 / self.integrated_time()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg_stream(n: usize) -> Vec<f64> {
        let mut state: u64 = 0x1234_5678;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    #[test]
    fn iid_series_has_near_zero_autocorrelation() {
        let mut ac = Autocorrelation::new(5);
        for x in lcg_stream(50_000) {
            ac.push(x);
        }
        for k in 1..=5 {
            let r = ac.rho(k).unwrap();
            assert!(r.abs() < 0.02, "lag {k}: {r}");
        }
        let ess = ac.effective_sample_size();
        assert!(ess > 45_000.0, "ESS {ess}");
    }

    #[test]
    fn ar1_series_has_geometric_autocorrelation() {
        // x_{t+1} = φ x_t + ε with φ = 0.8 → ρ_k ≈ 0.8^k.
        let phi = 0.8;
        let noise = lcg_stream(100_000);
        let mut ac = Autocorrelation::new(50);
        let mut x = 0.0;
        for e in noise {
            x = phi * x + (e - 0.5);
            ac.push(x);
        }
        for k in 1..=4 {
            let expect = phi_powi(phi, k);
            let got = ac.rho(k).unwrap();
            assert!((got - expect).abs() < 0.05, "lag {k}: {got} vs {expect}");
        }
        // τ for AR(1): (1+φ)/(1−φ) = 9 → ESS ≈ n/9 (max_lag 50 leaves a
        // truncation error below 0.8^50 ≈ 1e-5).
        let ess = ac.effective_sample_size();
        assert!((ess - 100_000.0 / 9.0).abs() < 2_500.0, "ESS {ess}");
    }

    fn phi_powi(phi: f64, k: usize) -> f64 {
        phi.powi(i32::try_from(k).unwrap())
    }

    #[test]
    fn constant_series_yields_none() {
        let mut ac = Autocorrelation::new(3);
        for _ in 0..100 {
            ac.push(7.0);
        }
        assert!(ac.rho(1).is_none());
        assert_eq!(ac.integrated_time(), 1.0);
    }

    #[test]
    fn too_short_series_yields_none() {
        let mut ac = Autocorrelation::new(3);
        ac.push(1.0);
        ac.push(2.0);
        assert!(ac.rho(2).is_none());
    }

    #[test]
    #[should_panic(expected = "lag out of range")]
    fn lag_beyond_max_panics() {
        let ac = Autocorrelation::new(2);
        let _ = ac.rho(3);
    }
}
