//! Future-event queues.
//!
//! The simulator's default queue is a binary heap keyed by `(time, seq)`
//! with a monotone sequence number breaking ties deterministically —
//! identical seeds therefore produce identical event orders. A calendar
//! queue ([`CalendarQueue`]) is provided as the classic O(1)-amortized
//! alternative and is compared against the heap in the `engine` benchmark.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An entry in a future-event queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scheduled<E> {
    /// Firing time.
    pub time: f64,
    /// Tie-break sequence number (monotone per push).
    pub seq: u64,
    /// Payload.
    pub event: E,
}

impl<E> Eq for Scheduled<E> where E: PartialEq {}

impl<E: PartialEq> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E: PartialEq> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we need earliest-first.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times must not be NaN")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A future-event list.
pub trait EventQueue<E> {
    /// Schedules `event` at `time`.
    fn schedule(&mut self, time: f64, event: E);
    /// Removes and returns the earliest event.
    fn next(&mut self) -> Option<(f64, E)>;
    /// Number of pending events.
    fn len(&self) -> usize;
    /// Whether no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Binary-heap event queue (the simulator default).
#[derive(Debug)]
pub struct HeapQueue<E: PartialEq> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
}

impl<E: PartialEq> Default for HeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: PartialEq> HeapQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Creates an empty queue with reserved capacity.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(cap),
            seq: 0,
        }
    }
}

impl<E: PartialEq> EventQueue<E> for HeapQueue<E> {
    #[inline]
    fn schedule(&mut self, time: f64, event: E) {
        debug_assert!(time.is_finite(), "cannot schedule at non-finite time");
        self.heap.push(Scheduled {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    #[inline]
    fn next(&mut self) -> Option<(f64, E)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

/// A classic calendar queue: an array of time buckets of fixed width,
/// scanned cyclically. Amortized O(1) for workloads whose event horizon is
/// short relative to the bucket span (as in this simulator, where service
/// completions land within one unit of now).
#[derive(Debug)]
pub struct CalendarQueue<E> {
    buckets: Vec<Vec<Scheduled<E>>>,
    width: f64,
    /// Bucket index currently being drained.
    cursor: usize,
    /// Start time of the cursor bucket's current lap.
    cursor_time: f64,
    len: usize,
    seq: u64,
    /// Events too far in the future for the current lap.
    overflow: Vec<Scheduled<E>>,
}

impl<E> CalendarQueue<E> {
    /// Creates a calendar with `nbuckets` buckets of `width` time units.
    ///
    /// # Panics
    ///
    /// Panics if `nbuckets == 0` or `width <= 0`.
    #[must_use]
    pub fn new(nbuckets: usize, width: f64) -> Self {
        assert!(nbuckets > 0 && width > 0.0);
        Self {
            buckets: (0..nbuckets).map(|_| Vec::new()).collect(),
            width,
            cursor: 0,
            cursor_time: 0.0,
            len: 0,
            seq: 0,
            overflow: Vec::new(),
        }
    }

    fn span(&self) -> f64 {
        self.width * self.buckets.len() as f64
    }
}

impl<E> EventQueue<E> for CalendarQueue<E> {
    fn schedule(&mut self, time: f64, event: E) {
        debug_assert!(time.is_finite());
        let sched = Scheduled {
            time,
            seq: self.seq,
            event,
        };
        self.seq += 1;
        self.len += 1;
        if time >= self.cursor_time + self.span() {
            self.overflow.push(sched);
        } else {
            let idx = ((time / self.width) as usize) % self.buckets.len();
            self.buckets[idx].push(sched);
        }
    }

    fn next(&mut self) -> Option<(f64, E)> {
        if self.len == 0 {
            return None;
        }
        loop {
            let lap_end = self.cursor_time + self.width;
            // Find the earliest event in the cursor bucket belonging to this lap.
            let bucket = &mut self.buckets[self.cursor];
            let mut best: Option<usize> = None;
            for (i, s) in bucket.iter().enumerate() {
                if s.time < lap_end {
                    match best {
                        None => best = Some(i),
                        Some(j) => {
                            let better = s.time < bucket[j].time
                                || (s.time == bucket[j].time && s.seq < bucket[j].seq);
                            if better {
                                best = Some(i);
                            }
                        }
                    }
                }
            }
            if let Some(i) = best {
                let s = bucket.swap_remove(i);
                self.len -= 1;
                return Some((s.time, s.event));
            }
            // Advance the cursor one bucket.
            self.cursor += 1;
            self.cursor_time += self.width;
            if self.cursor == self.buckets.len() {
                self.cursor = 0;
                // New lap: pull back overflow events that now fit.
                let span = self.span();
                let cursor_time = self.cursor_time;
                let (fit, keep): (Vec<_>, Vec<_>) = self
                    .overflow
                    .drain(..)
                    .partition(|s| s.time < cursor_time + span);
                self.overflow = keep;
                for s in fit {
                    let idx = ((s.time / self.width) as usize) % self.buckets.len();
                    self.buckets[idx].push(s);
                }
            }
        }
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn heap_orders_by_time_then_seq() {
        let mut q = HeapQueue::new();
        q.schedule(2.0, "b");
        q.schedule(1.0, "a");
        q.schedule(2.0, "c");
        assert_eq!(q.next(), Some((1.0, "a")));
        assert_eq!(q.next(), Some((2.0, "b"))); // earlier seq first
        assert_eq!(q.next(), Some((2.0, "c")));
        assert_eq!(q.next(), None);
    }

    #[test]
    fn calendar_matches_heap_order() {
        let times = [0.3, 7.9, 2.2, 2.2, 15.0, 0.1, 99.5, 42.0, 3.3, 8.8];
        let mut heap = HeapQueue::new();
        let mut cal = CalendarQueue::new(8, 1.0);
        for (i, &t) in times.iter().enumerate() {
            heap.schedule(t, i);
            cal.schedule(t, i);
        }
        loop {
            let a = heap.next();
            let b = cal.next();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn calendar_interleaved_push_pop() {
        let mut cal = CalendarQueue::new(4, 0.5);
        cal.schedule(0.2, 1u32);
        cal.schedule(5.0, 2);
        assert_eq!(cal.next(), Some((0.2, 1)));
        cal.schedule(1.0, 3);
        assert_eq!(cal.next(), Some((1.0, 3)));
        assert_eq!(cal.next(), Some((5.0, 2)));
        assert!(cal.is_empty());
    }

    proptest! {
        #[test]
        fn prop_calendar_equals_heap(ops in proptest::collection::vec((0.0f64..50.0, any::<bool>()), 1..300)) {
            let mut heap = HeapQueue::new();
            let mut cal = CalendarQueue::new(16, 0.75);
            let mut id = 0u32;
            let mut last_time = 0.0f64;
            for (t, do_pop) in ops {
                if do_pop {
                    let a = heap.next();
                    let b = cal.next();
                    prop_assert_eq!(a, b);
                    if let Some((t, _)) = a { last_time = t; }
                } else {
                    // Schedule in the future of the last popped time, as a
                    // simulator does.
                    let t = last_time + t;
                    heap.schedule(t, id);
                    cal.schedule(t, id);
                    id += 1;
                }
            }
            // Drain and compare the remainder.
            loop {
                let a = heap.next();
                let b = cal.next();
                prop_assert_eq!(a, b);
                if a.is_none() { break; }
            }
        }
    }
}
