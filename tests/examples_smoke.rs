//! Smoke test: every example must run to completion, so examples cannot
//! silently rot. Runs them in release mode: the first invocation pays a
//! release compile of the example (plus its dependency graph if no release
//! build exists yet), but the simulation-heavy examples then finish in
//! seconds instead of the minutes they take unoptimized.

use std::process::Command;

const EXAMPLES: &[&str] = &[
    "quickstart",
    "capacity_planning",
    "heavy_traffic",
    "jackson_vs_fifo",
    "parameter_sweep",
    "topology_comparison",
    "traffic_patterns",
];

#[test]
fn every_example_runs() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    for example in EXAMPLES {
        let output = Command::new(&cargo)
            .args(["run", "--release", "--example", example])
            .current_dir(env!("CARGO_MANIFEST_DIR"))
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn cargo for {example}: {e}"));
        assert!(
            output.status.success(),
            "example {example} exited with {:?}\nstdout:\n{}\nstderr:\n{}",
            output.status.code(),
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
        assert!(
            !output.stdout.is_empty(),
            "example {example} produced no output",
        );
    }
}
