//! Offline stand-in for `rayon`.
//!
//! The workspace uses exactly one rayon idiom — replication fan-out:
//! `(0..reps).into_par_iter().map(f).collect::<Vec<_>>()`. This crate
//! implements that shape (plus `Vec` sources) with real parallelism:
//! items are chunked across `std::thread::scope` workers, one per
//! available core, and results come back in input order. There is no work
//! stealing; for the coarse-grained simulation replications this serves,
//! even splitting is within noise of the real crate.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Import surface mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

/// Global worker cap installed by [`ThreadPoolBuilder::build_global`];
/// 0 = unset (use all available cores).
static GLOBAL_THREAD_CAP: AtomicUsize = AtomicUsize::new(0);

/// Mirrors `rayon::ThreadPoolBuilder` far enough for callers to cap the
/// worker count (e.g. a `--jobs N` flag).
///
/// ```
/// rayon::ThreadPoolBuilder::new().num_threads(2).build_global().unwrap();
/// assert!(rayon::current_num_threads() <= 2);
/// ```
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error returned when the global pool was already initialized, matching
/// real rayon's one-shot `build_global` contract.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("the global thread pool has already been initialized")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Creates a builder with the default (all cores) configuration.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the number of worker threads; 0 restores the default.
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Installs the configuration globally. Like real rayon this succeeds
    /// at most once per process; later calls return an error and leave the
    /// first configuration in place. `num_threads` 0 (the builder default)
    /// installs the uncapped all-cores pool, matching real rayon.
    ///
    /// # Errors
    ///
    /// Returns [`ThreadPoolBuildError`] if a global pool configuration was
    /// already installed.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        // 0 marks "not installed" in the atomic, so the default (uncapped)
        // configuration is stored as an effectively-infinite cap.
        let cap = if self.num_threads == 0 {
            usize::MAX
        } else {
            self.num_threads
        };
        match GLOBAL_THREAD_CAP.compare_exchange(0, cap, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => Ok(()),
            Err(_) => Err(ThreadPoolBuildError(())),
        }
    }
}

/// The number of worker threads a parallel region may use right now.
#[must_use]
pub fn current_num_threads() -> usize {
    let avail = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    match GLOBAL_THREAD_CAP.load(Ordering::Acquire) {
        0 => avail,
        cap => cap.min(avail),
    }
}

/// `.par_iter()` over borrowed elements, mirroring rayon's trait of the
/// same name.
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed element type.
    type Item: Send + 'a;

    /// Buffers references to every element.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Types convertible into a (stub) parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;

    /// Converts `self`, buffering the items.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for std::ops::Range<u64> {
    type Item = u64;

    fn into_par_iter(self) -> ParIter<u64> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// A buffered "parallel" iterator over owned items.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps each item through `f`; the work runs when `collect` is called.
    pub fn map<U, F>(self, f: F) -> ParMap<T, F>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// The result of [`ParIter::map`], awaiting a `collect`.
pub struct ParMap<T: Send, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParMap<T, F> {
    /// Runs the map across scoped threads, preserving input order.
    ///
    /// Unlike real rayon there is no shared worker pool, so nested
    /// `par_iter` calls (experiment cells fanning out over simulation
    /// replications) would multiply OS threads quadratically. A global
    /// region counter makes inner regions run sequentially instead: only
    /// the outermost active region spawns threads.
    pub fn collect<U, C>(self) -> C
    where
        U: Send,
        F: Fn(T) -> U + Sync,
        C: FromIterator<U>,
    {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static ACTIVE_REGIONS: AtomicUsize = AtomicUsize::new(0);

        let n = self.items.len();
        let threads = crate::current_num_threads().min(n.max(1));
        let f = &self.f;
        if threads <= 1 {
            return self.items.into_iter().map(f).collect();
        }
        if ACTIVE_REGIONS.fetch_add(1, Ordering::Acquire) > 0 {
            ACTIVE_REGIONS.fetch_sub(1, Ordering::Release);
            return self.items.into_iter().map(f).collect();
        }
        struct RegionGuard;
        impl Drop for RegionGuard {
            fn drop(&mut self) {
                ACTIVE_REGIONS.fetch_sub(1, Ordering::Release);
            }
        }
        let _guard = RegionGuard;
        let mut slots: Vec<Option<T>> = self.items.into_iter().map(Some).collect();
        let mut out: Vec<Option<U>> = std::iter::repeat_with(|| None).take(n).collect();
        let chunk = n.div_ceil(threads);
        std::thread::scope(|s| {
            for (in_chunk, out_chunk) in slots.chunks_mut(chunk).zip(out.chunks_mut(chunk)) {
                s.spawn(move || {
                    for (slot, o) in in_chunk.iter_mut().zip(out_chunk.iter_mut()) {
                        *o = Some(f(slot.take().expect("item taken twice")));
                    }
                });
            }
        });
        out.into_iter()
            .map(|o| o.expect("worker panicked"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ordered_parallel_map() {
        let squares: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares.len(), 1000);
        assert!(squares.iter().enumerate().all(|(i, &s)| s == i * i));
    }

    #[test]
    fn vec_source() {
        let doubled: Vec<i32> = vec![3, 1, 4].into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![6, 2, 8]);
    }

    #[test]
    fn nested_regions_stay_correct_and_ordered() {
        // Inner regions run sequentially (region guard), so this must
        // neither deadlock nor explode thread counts — and order holds.
        let grid: Vec<Vec<usize>> = (0..16usize)
            .into_par_iter()
            .map(|i| {
                let row: Vec<usize> = (0..16usize)
                    .into_par_iter()
                    .map(move |j| i * 16 + j)
                    .collect();
                row
            })
            .collect();
        for (i, row) in grid.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                assert_eq!(v, i * 16 + j);
            }
        }
    }
}
