//! Table I: simulated mean delay vs the M/D/1 independence estimate.
//!
//! Grid: `n ∈ {5, 10, 15, 20}`, Table-ρ `∈ {0.2, 0.5, 0.8, 0.9, 0.95,
//! 0.99}` with `λ = 4ρ/n`. For every cell we report the simulated delay
//! (with a replication confidence interval), the paper's printed estimate
//! formula, the textbook M/D/1 estimate, the Theorem 7 upper bound and the
//! best lower bound — together with the paper's printed simulation and
//! estimate values for side-by-side comparison.

use super::{Scale, TextTable};
use crate::sweep::{run_cells, Jobs, SweepCellReport};
use meshbound_queueing::load::Load;
use meshbound_sim::Scenario;
use serde::{Deserialize, Serialize};

/// The paper's printed Table I: `(n, ρ, T(Sim.), T(Est.))`.
pub const PRINTED: &[(usize, f64, f64, f64)] = &[
    (5, 0.2, 3.545, 3.256),
    (5, 0.5, 4.176, 3.722),
    (5, 0.8, 6.252, 5.984),
    (5, 0.9, 8.867, 8.970),
    (5, 0.95, 12.172, 12.877),
    (5, 0.99, 20.333, 21.384),
    (10, 0.2, 6.929, 6.711),
    (10, 0.5, 7.748, 7.641),
    (10, 0.8, 10.652, 12.183),
    (10, 0.9, 14.718, 18.444),
    (10, 0.95, 21.034, 28.014),
    (10, 0.99, 63.950, 77.309),
    (15, 0.2, 10.289, 10.123),
    (15, 0.5, 11.192, 11.518),
    (15, 0.8, 14.563, 18.329),
    (15, 0.9, 19.226, 27.718),
    (15, 0.95, 28.867, 41.990),
    (15, 0.99, 68.220, 103.312),
    (20, 0.2, 13.649, 13.523),
    (20, 0.5, 14.589, 15.383),
    (20, 0.8, 18.191, 24.465),
    (20, 0.9, 20.041, 36.983),
    (20, 0.95, 31.771, 56.015),
    (20, 0.99, 77.283, 141.127),
];

/// One reproduced cell of Table I.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Row {
    /// Array side.
    pub n: usize,
    /// Table-ρ load.
    pub rho: f64,
    /// Our simulated mean delay.
    pub t_sim: f64,
    /// 95% half-width across replications (0 for a single replication).
    pub t_sim_hw: f64,
    /// Paper's printed estimate formula.
    pub t_est_paper: f64,
    /// Textbook M/D/1 estimate.
    pub t_est_md1: f64,
    /// Theorem 7 upper bound.
    pub t_upper: f64,
    /// Best lower bound.
    pub t_lower: f64,
    /// Paper's printed simulation value.
    pub printed_sim: f64,
    /// Paper's printed estimate value.
    pub printed_est: f64,
}

/// The Table I scenario grid at `scale`: one cell per printed row, with
/// the table's historical per-cell seeds and load-adaptive horizons.
#[must_use]
pub fn cells(scale: &Scale) -> Vec<Scenario> {
    PRINTED
        .iter()
        .map(|&(n, rho, _, _)| cell_scenario(scale, n, rho))
        .collect()
}

fn cell_scenario(scale: &Scale, n: usize, rho: f64) -> Scenario {
    Scenario::mesh(n)
        .load(Load::TableRho(rho))
        .horizon(scale.horizon(rho))
        .warmup(scale.warmup(rho))
        .seed(scale.seed ^ ((n as u64) << 32) ^ ((rho * 1000.0) as u64))
}

/// Runs the full Table I grid at the given scale through the sweep engine
/// (cells in parallel).
#[must_use]
pub fn run(scale: &Scale) -> Vec<Table1Row> {
    let report = run_cells("table1", cells(scale), scale.reps, Jobs::Parallel);
    report
        .cells
        .iter()
        .zip(PRINTED)
        .map(|(cell, &(n, rho, printed_sim, printed_est))| {
            row_from_cell(cell, n, rho, printed_sim, printed_est)
        })
        .collect()
}

fn row_from_cell(
    cell: &SweepCellReport,
    n: usize,
    rho: f64,
    printed_sim: f64,
    printed_est: f64,
) -> Table1Row {
    Table1Row {
        n,
        rho,
        t_sim: cell.delay_mean,
        t_sim_hw: cell.delay_half_width,
        t_est_paper: cell.bounds.est_paper,
        t_est_md1: cell.bounds.est_md1,
        t_upper: cell.bounds.upper,
        t_lower: cell.bounds.lower_best,
        printed_sim,
        printed_est,
    }
}

#[cfg(test)]
fn run_cell(scale: &Scale, n: usize, rho: f64, printed_sim: f64, printed_est: f64) -> Table1Row {
    let report = run_cells(
        "table1-cell",
        vec![cell_scenario(scale, n, rho)],
        scale.reps,
        Jobs::Sequential,
    );
    row_from_cell(&report.cells[0], n, rho, printed_sim, printed_est)
}

/// Renders rows in the paper's layout plus our extra columns.
#[must_use]
pub fn render(rows: &[Table1Row]) -> String {
    let mut t = TextTable::new(&[
        "n",
        "rho",
        "T(Sim)",
        "±",
        "T(Est paper)",
        "T(Est MD1)",
        "T(upper)",
        "T(lower)",
        "paper Sim",
        "paper Est",
    ]);
    for r in rows {
        t.row(vec![
            r.n.to_string(),
            format!("{:.2}", r.rho),
            format!("{:.3}", r.t_sim),
            format!("{:.3}", r.t_sim_hw),
            format!("{:.3}", r.t_est_paper),
            format!("{:.3}", r.t_est_md1),
            format!("{:.3}", r.t_upper),
            format!("{:.3}", r.t_lower),
            format!("{:.3}", r.printed_sim),
            format!("{:.3}", r.printed_est),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshbound_queueing::bounds::estimate::estimate_paper;

    #[test]
    fn estimate_columns_match_printed_table() {
        // The analytic column must reproduce the paper's Est. values
        // exactly (to printed precision) on the entire grid.
        for &(n, rho, _, printed_est) in PRINTED {
            let est = estimate_paper(n, 4.0 * rho / n as f64);
            assert!(
                (est - printed_est).abs() / printed_est < 2e-3,
                "n={n}, ρ={rho}: {est} vs {printed_est}"
            );
        }
    }

    #[test]
    fn quick_cell_shapes_match_paper() {
        // One light cell and one moderate cell; shape checks only.
        let scale = Scale::quick();
        let light = run_cell(&scale, 5, 0.2, 3.545, 3.256);
        // Simulation close to the printed value (±10%) at light load.
        assert!(
            (light.t_sim - light.printed_sim).abs() / light.printed_sim < 0.1,
            "sim {} vs printed {}",
            light.t_sim,
            light.printed_sim
        );
        // Bounds bracket the simulation.
        assert!(light.t_lower <= light.t_sim + 0.2);
        assert!(light.t_sim <= light.t_upper + 0.2);
    }

    #[test]
    fn sim_between_estimates_at_light_load() {
        // The paper's estimate omits the residual-service term and
        // undershoots; the textbook estimate ignores smoothing and
        // overshoots. The truth sits between (§4.2 discussion).
        let scale = Scale::quick();
        let cell = run_cell(&scale, 10, 0.5, 7.748, 7.641);
        assert!(
            cell.t_est_paper < cell.t_sim + 0.3,
            "paper est {} should sit below sim {}",
            cell.t_est_paper,
            cell.t_sim
        );
        assert!(
            cell.t_sim < cell.t_est_md1 + 0.3,
            "sim {} should sit below textbook est {}",
            cell.t_sim,
            cell.t_est_md1
        );
    }

    #[test]
    fn render_includes_all_rows() {
        let rows = vec![Table1Row {
            n: 5,
            rho: 0.2,
            t_sim: 3.5,
            t_sim_hw: 0.01,
            t_est_paper: 3.26,
            t_est_md1: 3.4,
            t_upper: 3.8,
            t_lower: 3.2,
            printed_sim: 3.545,
            printed_est: 3.256,
        }];
        let s = render(&rows);
        assert!(s.contains("3.500"));
        assert!(s.contains("paper Sim"));
    }
}
