//! Deterministic case runner for the [`proptest!`](crate::proptest) macro.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Number of random cases each property runs. Override with the
/// `PROPTEST_CASES` environment variable.
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// The RNG handed to strategies. Seeded from the test name, so each test
/// sees the same case sequence on every run and on every platform.
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// Creates the RNG for the named test.
    #[must_use]
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name gives a stable per-test seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            inner: SmallRng::seed_from_u64(h),
        }
    }

    /// Access to the underlying generator.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.inner
    }
}

/// A failed property case (produced by the `prop_assert*` macros).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    #[must_use]
    pub fn fail(message: String) -> Self {
        TestCaseError { message }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}
