//! Workspace-level checks on the adaptive turn-model routers: whatever
//! queue state the network is in, west-first and odd-even must stay
//! minimal and never take a forbidden turn — and at near-saturation load
//! every run must drain to completion. The payoff test at the bottom
//! pins the point of the whole feature: odd-even's measured saturation
//! throughput beats greedy's on the transpose permutation.

use meshbound::routing::{policy_route, LocalView, OddEven, WestFirst};
use meshbound::topology::{Direction, EdgeId, Mesh2D, Topology};
use meshbound::{Load, RouterSpec, Scenario, TrafficSpec};
use proptest::prelude::*;

/// A frozen queue map: the adversary's congestion pattern. `policy_route`
/// re-consults it at every hop, so the adaptive pick is exercised on each
/// decision, not just the first.
struct QueueMap(Vec<u32>);

impl LocalView for QueueMap {
    fn queue_len(&self, e: EdgeId) -> u32 {
        self.0[e.index()]
    }
}

/// Deterministic pseudo-random queue lengths from a proptest-drawn seed
/// (xorshift64*): lets the strategy stay independent of the mesh size.
fn queue_map(num_edges: usize, mut seed: u64) -> QueueMap {
    QueueMap(
        (0..num_edges)
            .map(|_| {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                (seed.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 60) as u32
            })
            .collect(),
    )
}

proptest! {
    /// Odd-even under adversarial congestion: every route the adaptive
    /// picks produce is still minimal and never takes East→North/South at
    /// an even column or North/South→West at an odd column.
    #[test]
    fn oddeven_never_takes_a_forbidden_turn_under_any_view(
        n in 4usize..9,
        a in 0u32..200,
        b in 0u32..200,
        seed in 1u64..u64::MAX,
    ) {
        let m = Mesh2D::square(n);
        let nn = (n * n) as u32;
        let (src, dst) = (meshbound::topology::NodeId(a % nn), meshbound::topology::NodeId(b % nn));
        let view = queue_map(m.num_edges(), seed);
        let src_col = m.coords(src).1 as u32;
        let route = policy_route(&OddEven, &m, src, dst, src_col, &view);
        prop_assert_eq!(route.len(), m.manhattan(src, dst));
        for pair in route.windows(2) {
            let from = m.direction(pair[0]);
            let to = m.direction(pair[1]);
            let col = m.coords(m.edge_source(pair[1])).1;
            prop_assert!(
                !(from == Direction::Right && !to.is_row() && col.is_multiple_of(2)),
                "EN/ES turn at even column {} on {}->{}", col, src, dst
            );
            prop_assert!(
                !(!from.is_row() && to == Direction::Left && col % 2 == 1),
                "NW/SW turn at odd column {} on {}->{}", col, src, dst
            );
        }
    }

    /// West-first under adversarial congestion: minimal, and every West
    /// hop precedes every non-West hop (the defining turn restriction —
    /// once a packet turns off the West direction it may never turn back).
    #[test]
    fn westfirst_goes_west_first_under_any_view(
        n in 4usize..9,
        a in 0u32..200,
        b in 0u32..200,
        seed in 1u64..u64::MAX,
    ) {
        let m = Mesh2D::square(n);
        let nn = (n * n) as u32;
        let (src, dst) = (meshbound::topology::NodeId(a % nn), meshbound::topology::NodeId(b % nn));
        let view = queue_map(m.num_edges(), seed);
        let route = policy_route(&WestFirst, &m, src, dst, (), &view);
        prop_assert_eq!(route.len(), m.manhattan(src, dst));
        let mut west_done = false;
        for &e in &route {
            if m.direction(e) == Direction::Left {
                prop_assert!(!west_done, "West hop after a non-West hop on {}->{}", src, dst);
            } else {
                west_done = true;
            }
        }
    }
}

#[test]
fn adaptive_routers_complete_at_ninety_percent_load() {
    // ρ = 0.9 on uniform and transpose workloads: queues form and the
    // adaptive picks fire constantly, yet (turn restriction ⇒ no cyclic
    // dependency) every run must keep delivering packets to the end of
    // the horizon rather than wedging.
    for router in [RouterSpec::WestFirst, RouterSpec::OddEven] {
        for sc in [
            Scenario::mesh(6).load(Load::Utilization(0.9)),
            Scenario::mesh(6)
                .traffic(TrafficSpec::transpose())
                .load(Load::Utilization(0.9)),
            Scenario::torus(5).load(Load::Utilization(0.9)),
        ] {
            let sc = sc.router(router).horizon(800.0).warmup(80.0).seed(3);
            let label = sc.spec_string();
            let res = sc.run();
            assert!(res.completed > 0, "{label}: nothing delivered");
            assert!(
                res.completed as f64 >= 0.5 * res.generated as f64,
                "{label}: only {}/{} packets delivered — throughput collapsed",
                res.completed,
                res.generated
            );
        }
    }
}

#[test]
fn oddeven_outdelivers_greedy_past_the_transpose_saturation_point() {
    // The acceptance property, measured rather than analytic: on the
    // mesh:16 transpose permutation, greedy funnels the whole diagonal's
    // traffic through a few center edges while odd-even spreads it over
    // the permitted minimal paths. Drive both 30% past greedy's analytic
    // saturation rate and compare delivered packets — odd-even must win.
    let lambda = Scenario::mesh(16)
        .traffic(TrafficSpec::transpose())
        .stability_lambda()
        * 1.3;
    let run = |router: RouterSpec| {
        Scenario::mesh(16)
            .traffic(TrafficSpec::transpose())
            .load(Load::Lambda(lambda))
            .router(router)
            .horizon(1_500.0)
            .warmup(0.0)
            .seed(5)
            .run()
    };
    let greedy = run(RouterSpec::Greedy);
    let oddeven = run(RouterSpec::OddEven);
    assert!(
        oddeven.completed > greedy.completed,
        "odd-even delivered {} vs greedy {} past greedy's saturation rate {lambda:.4}",
        oddeven.completed,
        greedy.completed
    );
}
