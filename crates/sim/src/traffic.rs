//! [`TrafficSpec`]: the first-class workload description a
//! [`Scenario`](crate::Scenario) carries.
//!
//! A workload has two sides, and `TrafficSpec` owns both:
//!
//! * a **source model** ([`SourceSpec`]) — identical Poisson sources (the
//!   paper's standard model), an explicit per-source rate vector, or
//!   hotspot-weighted sources where one node generates a multiple of the
//!   others' rate;
//! * a **destination model** ([`PatternSpec`]) — uniform (the paper),
//!   §5.2's nearby walk, §4.5's Bernoulli hypercube distribution, the
//!   classic address permutations (transpose, bit-reversal,
//!   bit-complement, shuffle), hotspot destinations, or an explicit
//!   traffic matrix which fixes *both* sides at once.
//!
//! Loads keep their meaning: the resolved λ is the **mean** per-source
//! rate, so `γ = λ × #sources` holds for every source model, and
//! utilization-style loads resolve against the workload's actual edge-rate
//! vector.
//!
//! The compact spec grammar writes a workload as `traffic=<pattern>` plus
//! an optional `src=<model>` clause; per-node rate vectors and traffic
//! matrices are builder-only (they do not fit a one-line spec), like
//! per-edge `service_rates`.

use meshbound_routing::pattern::PermutationKind;
use serde::{Deserialize, Serialize};

/// The source side of a workload: who generates packets, and how fast
/// relative to each other. The scenario's load fixes the **mean**
/// per-source rate; the source model only shapes the distribution around
/// that mean.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SourceSpec {
    /// Identical Poisson sources (the paper's model).
    Uniform,
    /// One hot source generates `weight` times the rate of every other
    /// source. `node: None` means the middle-index source
    /// (`#sources / 2` — on a 2-D grid that is a row-start node, not the
    /// geometric center; pass an explicit index for precise placement).
    Hotspot {
        /// Index into the scenario's source list (node id everywhere
        /// except the butterfly, whose sources are the level-0 inputs).
        node: Option<usize>,
        /// Rate multiple of the hot source relative to the others; must be
        /// positive (values below 1 make it a *cold* spot).
        weight: f64,
    },
    /// Explicit relative per-source rates (normalized to mean 1 at
    /// resolution time). Builder-only: no spec-string syntax.
    Rates {
        /// One non-negative relative rate per source, at least one
        /// positive.
        rates: Vec<f64>,
    },
}

impl SourceSpec {
    /// Whether this is the uniform model (no per-source rate vector
    /// needed).
    #[must_use]
    pub fn is_uniform(&self) -> bool {
        matches!(self, SourceSpec::Uniform)
    }

    /// Mean-1-normalized per-source weights, so `λ × weight_i` is source
    /// `i`'s rate and the total arrival rate stays `λ × #sources`.
    /// Returns `None` for the uniform model.
    ///
    /// # Errors
    ///
    /// Rejects shape/value problems (see [`SourceSpec::validate`]).
    pub fn weights(&self, num_sources: usize) -> Result<Option<Vec<f64>>, String> {
        self.validate(num_sources)?;
        match self {
            SourceSpec::Uniform => Ok(None),
            SourceSpec::Hotspot { node, weight } => {
                let hot = node.unwrap_or(num_sources / 2);
                let mut w = vec![1.0; num_sources];
                w[hot] = *weight;
                Ok(Some(mean_normalize(w)))
            }
            SourceSpec::Rates { rates } => Ok(Some(mean_normalize(rates.clone()))),
        }
    }

    /// Checks the model against a source count.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason: out-of-range hot index,
    /// non-positive weight, wrong vector length, negative or all-zero
    /// rates.
    pub fn validate(&self, num_sources: usize) -> Result<(), String> {
        match self {
            SourceSpec::Uniform => Ok(()),
            SourceSpec::Hotspot { node, weight } => {
                if !(weight.is_finite() && *weight > 0.0) {
                    return Err(format!("hotspot source weight {weight} must be positive"));
                }
                if let Some(i) = node {
                    if *i >= num_sources {
                        return Err(format!(
                            "hotspot source index {i} out of range (have {num_sources} sources)"
                        ));
                    }
                }
                Ok(())
            }
            SourceSpec::Rates { rates } => {
                if rates.len() != num_sources {
                    return Err(format!(
                        "source rate vector has {} entries but the scenario has {num_sources} \
                         sources",
                        rates.len()
                    ));
                }
                if !rates.iter().all(|r| r.is_finite() && *r >= 0.0) {
                    return Err("every source rate must be finite and non-negative".into());
                }
                if !rates.iter().any(|&r| r > 0.0) {
                    return Err("source rate vector is all zero (no traffic)".into());
                }
                Ok(())
            }
        }
    }

    /// The spec-grammar token, or `None` for builder-only models
    /// (`Rates`).
    #[must_use]
    pub fn spec_token(&self) -> Option<String> {
        match self {
            SourceSpec::Uniform => Some("uniform".into()),
            SourceSpec::Hotspot { node, weight } => Some(match node {
                Some(i) => format!("hotspot:{weight}:{i}"),
                None => format!("hotspot:{weight}"),
            }),
            SourceSpec::Rates { .. } => None,
        }
    }

    /// Parses a `src=` token (`uniform` or `hotspot:<weight>[:<node>]`).
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed token.
    pub fn parse_token(s: &str) -> Result<Self, String> {
        match s.split(':').collect::<Vec<_>>().as_slice() {
            ["uniform"] => Ok(SourceSpec::Uniform),
            ["hotspot", w] => Ok(SourceSpec::Hotspot {
                node: None,
                weight: num(w, "hotspot source weight")?,
            }),
            ["hotspot", w, i] => Ok(SourceSpec::Hotspot {
                node: Some(index(i, "hotspot source index")?),
                weight: num(w, "hotspot source weight")?,
            }),
            _ => Err(format!(
                "unknown source model `{s}` (expected uniform or hotspot:<weight>[:<node>])"
            )),
        }
    }

    /// Short human-readable label (`"uniform"`, `"hotspot:4"`, `"rates"`).
    #[must_use]
    pub fn label(&self) -> String {
        self.spec_token().unwrap_or_else(|| "rates".into())
    }
}

/// The destination side of a workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PatternSpec {
    /// Uniform over all nodes (the paper's standard model; uniform output
    /// rows on the butterfly).
    Uniform,
    /// §5.2's "nearby" stopping-walk distribution (mesh only).
    Nearby {
        /// Per-node stopping probability in `(0, 1]`.
        stop: f64,
    },
    /// §4.5's per-bit Bernoulli distribution (hypercube only).
    Bernoulli {
        /// Per-dimension flip probability in `(0, 1]`.
        p: f64,
    },
    /// A classic address permutation (transpose, bit-reversal,
    /// bit-complement, shuffle); topology support is checked by
    /// [`meshbound_routing::pattern::PatternTopology`].
    Permutation {
        /// Which permutation.
        kind: PermutationKind,
    },
    /// A fraction of every source's traffic converges on one hot node,
    /// the rest stays uniform.
    Hotspot {
        /// The hot node id; `None` means the topology's geometrically
        /// central node (the middle coordinate tuple on grids).
        node: Option<usize>,
        /// Fraction of traffic aimed at the hot node, in `(0, 1]`.
        frac: f64,
    },
    /// An explicit traffic matrix: `rows[s][d]` is the relative rate of
    /// the `s → d` flow. Fixes both sides of the workload (row sums give
    /// the per-source rates), so it requires a uniform [`SourceSpec`].
    /// Builder-only: no spec-string syntax.
    Matrix {
        /// The square relative-rate matrix (`num_nodes × num_nodes`).
        rows: Vec<Vec<f64>>,
    },
}

impl PatternSpec {
    /// The spec-grammar token, or `None` for builder-only patterns
    /// (`Matrix`).
    #[must_use]
    pub fn spec_token(&self) -> Option<String> {
        match self {
            PatternSpec::Uniform => Some("uniform".into()),
            PatternSpec::Nearby { stop } => Some(format!("nearby:{stop}")),
            PatternSpec::Bernoulli { p } => Some(format!("bernoulli:{p}")),
            PatternSpec::Permutation { kind } => Some(kind.as_str().into()),
            PatternSpec::Hotspot { node, frac } => Some(match node {
                Some(i) => format!("hotspot:{frac}:{i}"),
                None => format!("hotspot:{frac}"),
            }),
            PatternSpec::Matrix { .. } => None,
        }
    }

    /// Parses a `traffic=` token: `uniform`, `nearby:<stop>`,
    /// `bernoulli:<p>`, a permutation name, or `hotspot:<frac>[:<node>]`.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed token.
    pub fn parse_token(s: &str) -> Result<Self, String> {
        if let Ok(kind) = PermutationKind::parse_str(s) {
            return Ok(PatternSpec::Permutation { kind });
        }
        match s.split(':').collect::<Vec<_>>().as_slice() {
            ["uniform"] => Ok(PatternSpec::Uniform),
            ["nearby", stop] => Ok(PatternSpec::Nearby {
                stop: num(stop, "nearby stop probability")?,
            }),
            ["bernoulli", p] => Ok(PatternSpec::Bernoulli {
                p: num(p, "bernoulli flip probability")?,
            }),
            ["hotspot", f] => Ok(PatternSpec::Hotspot {
                node: None,
                frac: num(f, "hotspot fraction")?,
            }),
            ["hotspot", f, i] => Ok(PatternSpec::Hotspot {
                node: Some(index(i, "hotspot node")?),
                frac: num(f, "hotspot fraction")?,
            }),
            _ => Err(format!(
                "unknown traffic pattern `{s}` (expected uniform, nearby:<stop>, \
                 bernoulli:<p>, transpose, bitrev, bitcomp, shuffle or \
                 hotspot:<frac>[:<node>])"
            )),
        }
    }

    /// Short human-readable label (`"transpose"`, `"hotspot:0.2"`,
    /// `"matrix[16]"`).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            PatternSpec::Matrix { rows } => format!("matrix[{}]", rows.len()),
            other => other.spec_token().expect("only Matrix lacks a token"),
        }
    }
}

/// A complete workload: source model plus destination model.
///
/// The default (`uniform` sources, `uniform` destinations) is exactly the
/// paper's standard model and is bit-identical to the historical scalar-λ
/// path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficSpec {
    /// Who generates packets, and at what relative rates.
    pub source: SourceSpec,
    /// Where packets go.
    pub pattern: PatternSpec,
}

impl Default for TrafficSpec {
    fn default() -> Self {
        Self::uniform()
    }
}

impl TrafficSpec {
    /// The paper's standard model: identical sources, uniform
    /// destinations.
    #[must_use]
    pub fn uniform() -> Self {
        Self {
            source: SourceSpec::Uniform,
            pattern: PatternSpec::Uniform,
        }
    }

    /// Uniform sources with the given destination pattern.
    #[must_use]
    pub fn with_pattern(pattern: PatternSpec) -> Self {
        Self {
            source: SourceSpec::Uniform,
            pattern,
        }
    }

    /// A permutation workload.
    #[must_use]
    pub fn permutation(kind: PermutationKind) -> Self {
        Self::with_pattern(PatternSpec::Permutation { kind })
    }

    /// The transpose permutation.
    #[must_use]
    pub fn transpose() -> Self {
        Self::permutation(PermutationKind::Transpose)
    }

    /// The bit-reversal permutation.
    #[must_use]
    pub fn bit_reversal() -> Self {
        Self::permutation(PermutationKind::BitReversal)
    }

    /// The bit-complement permutation.
    #[must_use]
    pub fn bit_complement() -> Self {
        Self::permutation(PermutationKind::BitComplement)
    }

    /// The perfect-shuffle permutation.
    #[must_use]
    pub fn shuffle() -> Self {
        Self::permutation(PermutationKind::Shuffle)
    }

    /// A destination hotspot at the center node.
    #[must_use]
    pub fn hotspot(frac: f64) -> Self {
        Self::with_pattern(PatternSpec::Hotspot { node: None, frac })
    }

    /// A destination hotspot at an explicit node.
    #[must_use]
    pub fn hotspot_at(frac: f64, node: usize) -> Self {
        Self::with_pattern(PatternSpec::Hotspot {
            node: Some(node),
            frac,
        })
    }

    /// An explicit traffic matrix (`rows[s][d]` = relative `s → d` rate).
    #[must_use]
    pub fn matrix(rows: Vec<Vec<f64>>) -> Self {
        Self::with_pattern(PatternSpec::Matrix { rows })
    }

    /// §5.2's nearby walk with uniform sources.
    #[must_use]
    pub fn nearby(stop: f64) -> Self {
        Self::with_pattern(PatternSpec::Nearby { stop })
    }

    /// §4.5's Bernoulli hypercube distribution with uniform sources.
    #[must_use]
    pub fn bernoulli(p: f64) -> Self {
        Self::with_pattern(PatternSpec::Bernoulli { p })
    }

    /// Replaces the source model.
    #[must_use]
    pub fn sources(mut self, source: SourceSpec) -> Self {
        self.source = source;
        self
    }

    /// Whether this is exactly the paper's standard model (the fast
    /// closed-form paths apply).
    #[must_use]
    pub fn is_uniform(&self) -> bool {
        self.source.is_uniform() && self.pattern == PatternSpec::Uniform
    }

    /// Mean-1-normalized per-source rate weights, or `None` when every
    /// source generates at the same rate. For matrix workloads the weights
    /// come from the row sums (the matrix fixes both sides).
    ///
    /// # Errors
    ///
    /// Propagates source-model and matrix shape rejections.
    pub fn source_weights(&self, num_sources: usize) -> Result<Option<Vec<f64>>, String> {
        if let PatternSpec::Matrix { rows } = &self.pattern {
            let sums: Vec<f64> = rows.iter().map(|r| r.iter().sum()).collect();
            let spec = SourceSpec::Rates { rates: sums };
            return spec.weights(num_sources);
        }
        self.source.weights(num_sources)
    }

    /// Short human-readable label: the pattern label, prefixed with the
    /// source label when sources are non-uniform (e.g.
    /// `"src:hotspot:4+uniform"`).
    #[must_use]
    pub fn label(&self) -> String {
        if self.source.is_uniform() {
            self.pattern.label()
        } else {
            format!("src:{}+{}", self.source.label(), self.pattern.label())
        }
    }
}

fn mean_normalize(mut w: Vec<f64>) -> Vec<f64> {
    let mean = w.iter().sum::<f64>() / w.len() as f64;
    for x in &mut w {
        *x /= mean;
    }
    w
}

fn num(s: &str, what: &str) -> Result<f64, String> {
    s.parse::<f64>()
        .map_err(|_| format!("bad number `{s}` for {what}"))
}

fn index(s: &str, what: &str) -> Result<usize, String> {
    s.parse::<usize>()
        .map_err(|_| format!("bad index `{s}` for {what}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_weights_normalize_to_mean_one() {
        let w = SourceSpec::Hotspot {
            node: Some(0),
            weight: 4.0,
        }
        .weights(4)
        .unwrap()
        .unwrap();
        assert!((w.iter().sum::<f64>() - 4.0).abs() < 1e-12);
        assert!((w[0] / w[1] - 4.0).abs() < 1e-12);
        assert_eq!(SourceSpec::Uniform.weights(9).unwrap(), None);
    }

    #[test]
    fn source_validation_rejects_bad_shapes() {
        assert!(SourceSpec::Hotspot {
            node: Some(9),
            weight: 2.0
        }
        .validate(4)
        .is_err());
        assert!(SourceSpec::Hotspot {
            node: None,
            weight: 0.0
        }
        .validate(4)
        .is_err());
        assert!(SourceSpec::Rates {
            rates: vec![1.0; 3]
        }
        .validate(4)
        .is_err());
        assert!(SourceSpec::Rates {
            rates: vec![0.0; 4]
        }
        .validate(4)
        .is_err());
        assert!(SourceSpec::Rates {
            rates: vec![0.0, 1.0, 0.0, 2.0]
        }
        .validate(4)
        .is_ok());
    }

    #[test]
    fn matrix_weights_come_from_row_sums() {
        let t = TrafficSpec::matrix(vec![
            vec![0.0, 3.0, 0.0],
            vec![1.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0],
        ]);
        let w = t.source_weights(3).unwrap().unwrap();
        // Row sums 3, 1, 0 → mean-normalized 9/4, 3/4, 0.
        assert!((w[0] - 2.25).abs() < 1e-12);
        assert!((w[1] - 0.75).abs() < 1e-12);
        assert_eq!(w[2], 0.0);
    }

    #[test]
    fn tokens_round_trip() {
        let patterns = [
            PatternSpec::Uniform,
            PatternSpec::Nearby { stop: 0.5 },
            PatternSpec::Bernoulli { p: 0.25 },
            PatternSpec::Permutation {
                kind: PermutationKind::Transpose,
            },
            PatternSpec::Permutation {
                kind: PermutationKind::Shuffle,
            },
            PatternSpec::Hotspot {
                node: None,
                frac: 0.2,
            },
            PatternSpec::Hotspot {
                node: Some(7),
                frac: 0.4,
            },
        ];
        for p in patterns {
            let token = p.spec_token().unwrap();
            assert_eq!(PatternSpec::parse_token(&token).unwrap(), p, "`{token}`");
        }
        let sources = [
            SourceSpec::Uniform,
            SourceSpec::Hotspot {
                node: None,
                weight: 4.0,
            },
            SourceSpec::Hotspot {
                node: Some(3),
                weight: 0.5,
            },
        ];
        for s in sources {
            let token = s.spec_token().unwrap();
            assert_eq!(SourceSpec::parse_token(&token).unwrap(), s, "`{token}`");
        }
    }

    #[test]
    fn malformed_tokens_are_rejected() {
        for t in [
            "",
            "nearby",
            "hotspot",
            "hotspot:x",
            "hotspot:0.2:1:9",
            "warp",
        ] {
            assert!(PatternSpec::parse_token(t).is_err(), "`{t}` should fail");
        }
        for t in ["", "hotspot", "hotspot:abc", "rates"] {
            assert!(SourceSpec::parse_token(t).is_err(), "`{t}` should fail");
        }
    }

    #[test]
    fn labels_are_compact() {
        assert_eq!(TrafficSpec::uniform().label(), "uniform");
        assert_eq!(TrafficSpec::transpose().label(), "transpose");
        assert_eq!(
            TrafficSpec::matrix(vec![vec![0.0, 1.0], vec![1.0, 0.0]]).label(),
            "matrix[2]"
        );
        assert_eq!(
            TrafficSpec::uniform()
                .sources(SourceSpec::Hotspot {
                    node: None,
                    weight: 4.0
                })
                .label(),
            "src:hotspot:4+uniform"
        );
    }
}
