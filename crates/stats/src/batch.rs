//! Batch-means variance estimation for autocorrelated series.
//!
//! Observations produced by a single simulation run are correlated, so the
//! naive standard error underestimates uncertainty. The batch-means method
//! groups consecutive observations into `k` batches, treats batch averages as
//! approximately independent, and derives the confidence interval from their
//! spread.

use crate::ci::ConfidenceInterval;
use crate::welford::Welford;
use serde::{Deserialize, Serialize};

/// Fixed-batch-count means accumulator.
///
/// Observations are pushed one at a time; the accumulator fills `batch_size`
/// observations into each batch and keeps a [`Welford`] over completed batch
/// means.
///
/// # Examples
///
/// ```
/// use meshbound_stats::BatchMeans;
/// let mut bm = BatchMeans::new(10);
/// for i in 0..100 {
///     bm.push(i as f64);
/// }
/// assert_eq!(bm.completed_batches(), 10);
/// let ci = bm.confidence_interval(0.95);
/// assert!((ci.mean - 49.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchMeans {
    batch_size: u64,
    current_sum: f64,
    current_count: u64,
    batches: Welford,
    overall: Welford,
}

impl BatchMeans {
    /// Creates an accumulator with the given batch size (must be ≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    #[must_use]
    pub fn new(batch_size: u64) -> Self {
        assert!(batch_size >= 1, "batch size must be at least 1");
        Self {
            batch_size,
            current_sum: 0.0,
            current_count: 0,
            batches: Welford::new(),
            overall: Welford::new(),
        }
    }

    /// Adds one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.overall.push(x);
        self.current_sum += x;
        self.current_count += 1;
        if self.current_count == self.batch_size {
            self.batches.push(self.current_sum / self.batch_size as f64);
            self.current_sum = 0.0;
            self.current_count = 0;
        }
    }

    /// Number of completed batches.
    #[must_use]
    pub fn completed_batches(&self) -> u64 {
        self.batches.count()
    }

    /// Total number of observations, including those in the open batch.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.overall.count()
    }

    /// Mean over all observations (not just completed batches).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.overall.mean()
    }

    /// Standard error of the mean estimated from completed batch means.
    #[must_use]
    pub fn standard_error(&self) -> f64 {
        self.batches.standard_error()
    }

    /// Student-t confidence interval at `level`, using completed batches as
    /// the independent replicates.
    #[must_use]
    pub fn confidence_interval(&self, level: f64) -> ConfidenceInterval {
        let dof = self.completed_batches().saturating_sub(1).max(1);
        ConfidenceInterval::from_standard_error(
            self.batches.mean(),
            self.batches.standard_error(),
            dof,
            level,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_fill_correctly() {
        let mut bm = BatchMeans::new(4);
        for i in 0..10 {
            bm.push(i as f64);
        }
        assert_eq!(bm.completed_batches(), 2);
        assert_eq!(bm.count(), 10);
        // batch means: 1.5 and 5.5
        assert!((bm.batches.mean() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn iid_interval_covers_truth_roughly() {
        // Deterministic pseudo-random sequence with mean 0.5.
        let mut state: u64 = 12345;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        let mut bm = BatchMeans::new(100);
        for _ in 0..10_000 {
            bm.push(next());
        }
        let ci = bm.confidence_interval(0.99);
        assert!(ci.contains(0.5), "interval {ci:?} should contain 0.5");
        assert!(ci.half_width < 0.05);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_panics() {
        let _ = BatchMeans::new(0);
    }

    /// Empirical coverage on a correlated stream: AR(1) with φ = 0.8 around
    /// a known mean. The integrated autocorrelation time is
    /// (1+φ)/(1−φ) = 9, so IID-style standard errors would be ~3× too small
    /// and cover far below half the time; batch means with batches ≫ 9
    /// must restore close-to-nominal coverage.
    #[test]
    fn ar1_interval_coverage_near_nominal() {
        const TRUE_MEAN: f64 = 5.0;
        const PHI: f64 = 0.8;
        const REPS: usize = 200;
        const LEN: usize = 20_000;

        let mut covered = 0;
        let mut state: u64 = 0xDEAD_BEEF;
        let mut uniform = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        for _ in 0..REPS {
            let mut bm = BatchMeans::new(500);
            let mut x = TRUE_MEAN; // start at the stationary mean
            for _ in 0..LEN {
                let innovation = uniform() - 0.5;
                x = TRUE_MEAN + PHI * (x - TRUE_MEAN) + innovation;
                bm.push(x);
            }
            if bm.confidence_interval(0.95).contains(TRUE_MEAN) {
                covered += 1;
            }
        }
        let coverage = covered as f64 / REPS as f64;
        assert!(
            coverage >= 0.85,
            "95% batch-means CI covered the AR(1) mean only {coverage:.2} of the time",
        );
    }
}
