//! Traffic patterns on one array: same network, very different workloads.
//!
//! ```text
//! cargo run --release --example traffic_patterns
//! ```
//!
//! The paper proves its bounds for uniform random destinations, but the
//! technique only needs per-edge arrival rates — which the workspace can
//! compute exactly for any oblivious workload. This example puts the
//! classic interconnection-network workloads on an 8×8 array through the
//! first-class `TrafficSpec` API:
//!
//! * each workload's **stability threshold** `λ*` (the λ at which its
//!   busiest edge saturates) differs, because each pattern concentrates
//!   load differently;
//! * at matched peak utilization, `BoundsReport::compute_for` derives the
//!   bounds from each workload's **own edge-rate vector**, and the
//!   simulated delay lands between them.

use meshbound::{BoundsReport, Load, Scenario, SourceSpec, TrafficSpec};
use meshbound_repro::banner;

fn main() {
    let n = 8;
    let util = 0.6;

    banner(&format!(
        "Workloads on the {n}x{n} array at peak edge utilization {util}"
    ));
    println!(
        "{:<20} {:>9} {:>10} {:>9} {:>9} {:>9} {:>9}",
        "traffic", "λ*", "mean dist", "lower", "T (sim)", "upper", "gap"
    );

    let workloads = [
        TrafficSpec::uniform(),
        TrafficSpec::transpose(),
        TrafficSpec::bit_reversal(),
        TrafficSpec::bit_complement(),
        TrafficSpec::shuffle(),
        TrafficSpec::hotspot(0.15),
        TrafficSpec::uniform().sources(SourceSpec::Hotspot {
            node: None,
            weight: 8.0,
        }),
    ];
    for (i, traffic) in workloads.into_iter().enumerate() {
        let sc = Scenario::mesh(n)
            .traffic(traffic)
            .load(Load::Utilization(util))
            .horizon(20_000.0)
            .warmup(2_000.0)
            .seed(1 + i as u64);
        let report = BoundsReport::compute_for(&sc);
        let res = sc.run();
        println!(
            "{:<20} {:>9.4} {:>10.3} {:>9.3} {:>9.3} {:>9.3} {:>9.2}",
            sc.traffic.label(),
            sc.stability_lambda(),
            report.mean_distance,
            report.lower_best,
            res.avg_delay,
            report.upper,
            report.gap(),
        );
    }

    banner("Uniform vs transpose across load");
    println!("{:<6} {:>14} {:>14}", "ρ", "T uniform", "T transpose");
    for rho in [0.2, 0.5, 0.8] {
        let run = |traffic: TrafficSpec| {
            Scenario::mesh(n)
                .traffic(traffic)
                .load(Load::Utilization(rho))
                .horizon(10_000.0)
                .warmup(1_000.0)
                .seed(7)
                .run()
                .avg_delay
        };
        println!(
            "{:<6} {:>14.3} {:>14.3}",
            rho,
            run(TrafficSpec::uniform()),
            run(TrafficSpec::transpose()),
        );
    }
    println!(
        "\nTranspose routes are the same mean length as uniform's, but they\n\
         concentrate on far fewer edges: its busiest edge saturates at a much\n\
         lower λ* (see the first table), yet at *matched utilization* the\n\
         uncongested edges leave transpose with the lower delay."
    );
}
