//! The one-dimensional (linear) array used in Lemma 3 and the tightness
//! examples of §4.4.

use crate::ids::{EdgeId, NodeId};
use crate::traits::Topology;
use serde::{Deserialize, Serialize};

/// A linear array of `n` nodes with directed edges between neighbours.
///
/// Edge layout: ids `0..n−1` are the rightward edges (`k → k+1`), ids
/// `n−1..2(n−1)` are the leftward edges (`k+1 → k`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinearArray {
    n: u32,
}

impl LinearArray {
    /// Creates a linear array of `n ≥ 2` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "linear array needs at least 2 nodes");
        Self { n: n as u32 }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n as usize
    }

    /// Always false (constructor requires ≥ 2 nodes); provided for clippy's
    /// `len_without_is_empty` convention.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The edge `k → k+1`.
    #[inline]
    #[must_use]
    pub fn right_edge(&self, k: usize) -> EdgeId {
        debug_assert!(k + 1 < self.len());
        EdgeId(k as u32)
    }

    /// The edge `k+1 → k`.
    #[inline]
    #[must_use]
    pub fn left_edge(&self, k: usize) -> EdgeId {
        debug_assert!(k + 1 < self.len());
        EdgeId(self.n - 1 + k as u32)
    }

    /// Next edge on the unique path from `from` toward `to`, or `None` if
    /// already there.
    #[inline]
    #[must_use]
    pub fn step_toward(&self, from: NodeId, to: NodeId) -> Option<EdgeId> {
        use std::cmp::Ordering;
        match from.0.cmp(&to.0) {
            Ordering::Less => Some(self.right_edge(from.index())),
            Ordering::Greater => Some(self.left_edge(from.index() - 1)),
            Ordering::Equal => None,
        }
    }
}

impl Topology for LinearArray {
    fn num_nodes(&self) -> usize {
        self.n as usize
    }

    fn num_edges(&self) -> usize {
        2 * (self.n as usize - 1)
    }

    fn edge_source(&self, e: EdgeId) -> NodeId {
        let m = self.n - 1;
        if e.0 < m {
            NodeId(e.0)
        } else {
            NodeId(e.0 - m + 1)
        }
    }

    fn edge_target(&self, e: EdgeId) -> NodeId {
        let m = self.n - 1;
        if e.0 < m {
            NodeId(e.0 + 1)
        } else {
            NodeId(e.0 - m)
        }
    }

    fn out_edges_into(&self, v: NodeId, out: &mut Vec<EdgeId>) {
        out.clear();
        let k = v.index();
        if k + 1 < self.len() {
            out.push(self.right_edge(k));
        }
        if k > 0 {
            out.push(self.left_edge(k - 1));
        }
    }

    fn label(&self) -> String {
        format!("linear array n={}", self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_consistent() {
        let l = LinearArray::new(5);
        for e in l.edges() {
            let s = l.edge_source(e);
            let t = l.edge_target(e);
            assert_eq!(s.0.abs_diff(t.0), 1);
        }
        assert_eq!(l.num_edges(), 8);
    }

    #[test]
    fn step_toward_walks_shortest_path() {
        let l = LinearArray::new(6);
        // 1 -> 4 takes three right steps.
        let mut cur = NodeId(1);
        let mut hops = 0;
        while let Some(e) = l.step_toward(cur, NodeId(4)) {
            cur = l.edge_target(e);
            hops += 1;
            assert!(hops <= 5, "routing loop");
        }
        assert_eq!(cur, NodeId(4));
        assert_eq!(hops, 3);

        // 4 -> 1 takes three left steps.
        let mut cur = NodeId(4);
        let mut hops = 0;
        while let Some(e) = l.step_toward(cur, NodeId(1)) {
            cur = l.edge_target(e);
            hops += 1;
        }
        assert_eq!(cur, NodeId(1));
        assert_eq!(hops, 3);
    }

    #[test]
    fn step_toward_self_is_none() {
        let l = LinearArray::new(3);
        assert_eq!(l.step_toward(NodeId(1), NodeId(1)), None);
    }

    #[test]
    fn out_edges_at_ends() {
        let l = LinearArray::new(4);
        assert_eq!(l.out_edges(NodeId(0)).len(), 1);
        assert_eq!(l.out_edges(NodeId(3)).len(), 1);
        assert_eq!(l.out_edges(NodeId(1)).len(), 2);
    }
}
