//! Deterministic time-series telemetry: probe specs, flight recorders,
//! and the [`TelemetryReport`] attached to simulation results.
//!
//! A [`ProbeSpec`] (the `probes=` spec clause) selects which series to
//! sample — packets in system, peak queue length, drop and delivery
//! counts, per-shard engine counters — and optionally a base sampling
//! interval Δ. Samplers fire at deterministic **sim-clock** ticks
//! `t = k·Δ`, scheduled as ordinary events, never from wall-clock time:
//! telemetry of a run is a pure function of the spec and seed.
//!
//! Storage has flight-recorder semantics: each series is a bounded
//! [`DecimatingSeries`]. When the buffer fills, the sampling stride
//! doubles and the retained samples decimate in place, so a probed run
//! costs `O(capacity)` memory at any horizon. Decimation depends only on
//! tick counts, so the per-shard recorders of the sharded engine stay in
//! lockstep and merge deterministically.
//!
//! Probes read engine state but never mutate it — simulation results with
//! probes on are bit-identical to probes off, on every engine.

use meshbound_stats::{DecimatingSeries, Welford};
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Mutex};

/// Schema tag of [`TelemetryReport`].
pub const TELEMETRY_SCHEMA: &str = "meshbound.telemetry/v1";

/// Number of retained samples per series. Even (decimation halves the
/// buffer keeping the newest sample) and comfortably above the default
/// tick count, so a default-interval run never decimates.
pub const TELEMETRY_CAPACITY: usize = 512;

/// Ticks the default probe interval aims for when the spec gives no
/// explicit `@<dt>`: Δ = horizon / `DEFAULT_TICKS`.
const DEFAULT_TICKS: f64 = 256.0;

/// Progress callback fired from probe ticks: `(now, horizon, events)`.
/// Observability only — the engines call it *after* recording a sample,
/// so it can never perturb simulation state or results.
pub type ProgressFn = Arc<dyn Fn(f64, f64, u64) + Send + Sync>;

/// The process-wide progress sink (`repro --progress` installs one).
static PROGRESS_SINK: Mutex<Option<ProgressFn>> = Mutex::new(None);

/// Installs (or, with `None`, clears) the process-wide progress sink.
/// While installed, probed runs call it at every telemetry tick with the
/// current sim time, the run horizon, and the events processed so far
/// (shard 0's count under the sharded engine). The sink rides the probe
/// schedule: a run without a `probes=` clause never fires it.
pub fn set_progress_sink(sink: Option<ProgressFn>) {
    *PROGRESS_SINK.lock().unwrap() = sink;
}

/// Fires the installed progress sink, if any. The `Arc` is cloned out of
/// the lock before the call so a slow sink cannot block installers.
pub(crate) fn emit_progress(now: f64, horizon: f64, events: u64) {
    let sink = PROGRESS_SINK.lock().unwrap().clone();
    if let Some(f) = sink {
        f(now, horizon, events);
    }
}

/// Which telemetry series a scenario samples, and how often — the value
/// of the `probes=` clause in scenario and sweep specs.
///
/// The grammar is a comma-joined series list with an optional interval
/// suffix: `probes=nsys,maxq@10` samples packets-in-system and the peak
/// queue length every 10 time units. `probes=none` (the default) turns
/// telemetry off entirely — no probe events are scheduled and the run is
/// byte-identical to a pre-telemetry build.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProbeSpec {
    /// Sample `N(t)`, the packets-in-system count (the paper's central
    /// time-averaged quantity).
    pub nsys: bool,
    /// Sample the maximum queue length over all edges. Scans every edge
    /// per tick — cheap next to the event loop, but prefer a coarse
    /// interval on multi-million-edge topologies.
    pub maxq: bool,
    /// Sample the cumulative fault-drop count.
    pub drops: bool,
    /// Sample the cumulative delivered-packet count.
    pub delivered: bool,
    /// Sample per-shard engine counters (events processed, queue mass,
    /// cut-edge handoffs), one series per shard — load-balance
    /// observability for the sharded engine. Single-core engines emit the
    /// same series for their one implicit shard.
    pub shards: bool,
    /// Base sampling interval Δ; `None` picks `horizon / 256`.
    pub every: Option<f64>,
}

impl ProbeSpec {
    /// Parses the value of a `probes=` key: a comma-joined subset of
    /// `nsys`, `maxq`, `drops`, `delivered`, `shards` (or `all`), with an
    /// optional `@<dt>` interval suffix. `none` yields `Ok(None)` —
    /// telemetry off, matching the absent-clause default.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending series token or interval.
    pub fn parse_token(value: &str) -> Result<Option<ProbeSpec>, String> {
        if value == "none" {
            return Ok(None);
        }
        let (series, every) = match value.split_once('@') {
            Some((s, dt)) => {
                let dt: f64 = dt
                    .parse()
                    .map_err(|_| format!("bad probe interval `@{dt}`"))?;
                (s, Some(dt))
            }
            None => (value, None),
        };
        let mut spec = ProbeSpec {
            nsys: false,
            maxq: false,
            drops: false,
            delivered: false,
            shards: false,
            every,
        };
        for token in series.split(',').filter(|t| !t.is_empty()) {
            match token {
                "nsys" => spec.nsys = true,
                "maxq" => spec.maxq = true,
                "drops" => spec.drops = true,
                "delivered" => spec.delivered = true,
                "shards" => spec.shards = true,
                "all" => {
                    spec.nsys = true;
                    spec.maxq = true;
                    spec.drops = true;
                    spec.delivered = true;
                    spec.shards = true;
                }
                other => {
                    return Err(format!(
                        "unknown probe series `{other}` (expected nsys, maxq, drops, \
                         delivered, shards or all; or the whole clause `none`)"
                    ))
                }
            }
        }
        spec.check()?;
        Ok(Some(spec))
    }

    /// Renders the canonical spec token [`ProbeSpec::parse_token`]
    /// accepts: series names in fixed order, `@<dt>` appended when an
    /// explicit interval is set.
    #[must_use]
    pub fn spec_token(&self) -> String {
        let mut names = Vec::new();
        for (on, name) in [
            (self.nsys, "nsys"),
            (self.maxq, "maxq"),
            (self.drops, "drops"),
            (self.delivered, "delivered"),
            (self.shards, "shards"),
        ] {
            if on {
                names.push(name);
            }
        }
        let mut s = names.join(",");
        if let Some(dt) = self.every {
            s.push_str(&format!("@{dt}"));
        }
        s
    }

    /// Validates the spec: at least one series selected, and an explicit
    /// interval (if any) positive and finite.
    ///
    /// # Errors
    ///
    /// A message naming the violated constraint.
    pub fn check(&self) -> Result<(), String> {
        if !(self.nsys || self.maxq || self.drops || self.delivered || self.shards) {
            return Err(
                "probes= selects no series (expected a comma-joined subset of nsys, \
                 maxq, drops, delivered, shards)"
                    .into(),
            );
        }
        if let Some(dt) = self.every {
            if !(dt > 0.0 && dt.is_finite()) {
                return Err(format!(
                    "probe interval `@{dt}` must be positive and finite"
                ));
            }
        }
        Ok(())
    }

    /// The base sampling interval Δ for a run of the given horizon: the
    /// explicit `@<dt>` when set, `horizon / 256` otherwise.
    #[must_use]
    pub fn base_interval(&self, horizon: f64) -> f64 {
        self.every.unwrap_or(horizon / DEFAULT_TICKS)
    }
}

/// How a series combines across shards of the sharded engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MergeOp {
    /// Shard values add (counts, packets in system).
    Sum,
    /// Shard values take the elementwise maximum (peak queue length).
    Max,
    /// Per-shard series: never combined, reported per shard.
    Keep,
}

/// One named series inside a [`Recorder`].
#[derive(Debug, Clone)]
struct Series {
    name: String,
    op: MergeOp,
    data: DecimatingSeries,
}

impl Series {
    fn new(name: impl Into<String>, op: MergeOp) -> Self {
        Self {
            name: name.into(),
            op,
            data: DecimatingSeries::new(TELEMETRY_CAPACITY),
        }
    }
}

/// One probe tick's worth of engine readings, gathered by the engine and
/// handed to [`Recorder::record`]. Fields the spec did not select are
/// ignored; engines may leave them zero.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProbeSample {
    /// Packets currently in the system (this shard's share).
    pub nsys: f64,
    /// Maximum queue length over (owned) edges.
    pub maxq: f64,
    /// Cumulative dropped packets.
    pub drops: f64,
    /// Cumulative delivered packets.
    pub delivered: f64,
    /// Events processed so far (this shard).
    pub events: f64,
    /// Total queued packets over (owned) edges.
    pub qmass: f64,
    /// Cumulative cut-edge handoffs received (sharded engine only).
    pub cut: f64,
}

/// The engine-side flight recorder: one [`DecimatingSeries`] per selected
/// series, all fed on the same tick so they decimate in lockstep.
///
/// Engines schedule a probe event at `t = Δ`, call [`Recorder::record`]
/// from the handler, and reschedule `interval()` ahead — after a
/// decimation the interval widens to `stride × Δ`, so no work is spent on
/// samples that would be discarded.
#[derive(Debug, Clone)]
pub struct Recorder {
    spec: ProbeSpec,
    base: f64,
    ticks: u64,
    series: Vec<Series>,
}

impl Recorder {
    /// Recorder for a single-core engine run of the given horizon. The
    /// `shards` selector maps to the engine's one implicit shard
    /// (`shard0:events`, `shard0:qmass`).
    #[must_use]
    pub fn new(spec: &ProbeSpec, horizon: f64) -> Self {
        let mut r = Self::shared(spec, horizon);
        if spec.shards {
            r.series.push(Series::new("shard0:events", MergeOp::Keep));
            r.series.push(Series::new("shard0:qmass", MergeOp::Keep));
        }
        r
    }

    /// Recorder for shard `shard` of the sharded engine. Shared series
    /// (nsys, maxq, drops, delivered) carry shard-local values combined by
    /// [`Recorder::merge`]; the `shards` selector adds this shard's own
    /// `shard<k>:events` / `shard<k>:qmass` / `shard<k>:cut` series.
    #[must_use]
    pub fn for_shard(spec: &ProbeSpec, horizon: f64, shard: usize) -> Self {
        let mut r = Self::shared(spec, horizon);
        if spec.shards {
            r.series
                .push(Series::new(format!("shard{shard}:events"), MergeOp::Keep));
            r.series
                .push(Series::new(format!("shard{shard}:qmass"), MergeOp::Keep));
            r.series
                .push(Series::new(format!("shard{shard}:cut"), MergeOp::Keep));
        }
        r
    }

    fn shared(spec: &ProbeSpec, horizon: f64) -> Self {
        let mut series = Vec::new();
        if spec.nsys {
            series.push(Series::new("nsys", MergeOp::Sum));
        }
        if spec.maxq {
            series.push(Series::new("maxq", MergeOp::Max));
        }
        if spec.drops {
            series.push(Series::new("drops", MergeOp::Sum));
        }
        if spec.delivered {
            series.push(Series::new("delivered", MergeOp::Sum));
        }
        Self {
            spec: *spec,
            base: spec.base_interval(horizon),
            ticks: 0,
            series,
        }
    }

    /// The probe spec this recorder was built from.
    #[must_use]
    pub fn spec(&self) -> &ProbeSpec {
        &self.spec
    }

    /// The base sampling interval Δ.
    #[must_use]
    pub fn base(&self) -> f64 {
        self.base
    }

    /// The current effective sampling interval `stride × Δ`; widens by
    /// powers of two as the flight recorder decimates. Engines schedule
    /// the next probe event this far ahead.
    #[must_use]
    pub fn interval(&self) -> f64 {
        let stride = self.series.first().map_or(1, |s| s.data.stride());
        stride as f64 * self.base
    }

    /// Probe events consumed so far. Engines subtract this from their
    /// event counters at result assembly so `events_processed` stays
    /// bit-identical to a probes-off run.
    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Feeds one probe tick at sim time `now` into every series.
    pub fn record(&mut self, now: f64, sample: &ProbeSample) {
        self.ticks += 1;
        for s in &mut self.series {
            let v = match s.name.split(':').nth(1) {
                Some("events") => sample.events,
                Some("qmass") => sample.qmass,
                Some("cut") => sample.cut,
                _ => match s.name.as_str() {
                    "nsys" => sample.nsys,
                    "maxq" => sample.maxq,
                    "drops" => sample.drops,
                    "delivered" => sample.delivered,
                    other => unreachable!("unknown telemetry series `{other}`"),
                },
            };
            s.data.record(now, v);
        }
    }

    /// Deterministically merges per-shard recorders (in shard order) into
    /// one: shared series combine sample-by-sample under their merge op
    /// (sum for counts, max for queue peaks), per-shard series pass
    /// through unchanged. All shards feed the same tick schedule, so the
    /// sample times agree bit-for-bit by construction.
    ///
    /// # Panics
    ///
    /// Panics if the parts disagree on series layout or tick counts —
    /// impossible for recorders driven by the sharded engine's common
    /// probe schedule.
    #[must_use]
    pub fn merge(mut parts: Vec<Recorder>) -> Recorder {
        let mut acc = parts.remove(0);
        for part in parts {
            acc.ticks += part.ticks;
            let mut shared = 0;
            for ps in part.series {
                if ps.op == MergeOp::Keep {
                    acc.series.push(ps);
                    continue;
                }
                let s = &mut acc.series[shared];
                shared += 1;
                assert_eq!(s.name, ps.name, "shards disagree on telemetry series");
                match s.op {
                    MergeOp::Sum => s.data.combine_values(&ps.data, |a, b| a + b),
                    MergeOp::Max => s.data.combine_values(&ps.data, f64::max),
                    MergeOp::Keep => unreachable!(),
                }
            }
        }
        acc
    }

    /// Closes the recorder into the serializable [`TelemetryReport`].
    #[must_use]
    pub fn into_report(self) -> TelemetryReport {
        let base = self.base;
        let series = self
            .series
            .into_iter()
            .map(|s| {
                let interval = s.data.stride() as f64 * base;
                let samples = s.data.into_samples();
                let mut w = Welford::new();
                for &(_, v) in &samples {
                    w.push(v);
                }
                let (min, max) = if w.count() == 0 {
                    (0.0, 0.0)
                } else {
                    (w.min(), w.max())
                };
                SeriesReport {
                    name: s.name,
                    interval,
                    min,
                    mean: w.mean(),
                    max,
                    samples,
                }
            })
            .collect();
        TelemetryReport {
            schema: TELEMETRY_SCHEMA.to_string(),
            interval: base,
            capacity: TELEMETRY_CAPACITY,
            series,
        }
    }
}

/// One rendered telemetry series: summary statistics plus the retained
/// `(time, value)` samples at the series' effective interval.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeriesReport {
    /// Series name (`nsys`, `maxq`, `drops`, `delivered`, or a per-shard
    /// name such as `shard2:events`).
    pub name: String,
    /// Effective sampling interval `stride × Δ` after any decimation.
    pub interval: f64,
    /// Smallest retained sample value (0 when the series is empty).
    pub min: f64,
    /// Mean of the retained sample values.
    pub mean: f64,
    /// Largest retained sample value (0 when the series is empty).
    pub max: f64,
    /// Retained `(time, value)` samples, oldest first.
    pub samples: Vec<(f64, f64)>,
}

/// The telemetry output of a probed run (schema
/// `meshbound.telemetry/v1`), attached to `SimResult::telemetry` and
/// sweep cells, and written by `repro scenario … --telemetry out.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TelemetryReport {
    /// Schema tag, [`TELEMETRY_SCHEMA`].
    pub schema: String,
    /// Base sampling interval Δ of the run.
    pub interval: f64,
    /// Per-series retention capacity (flight-recorder bound).
    pub capacity: usize,
    /// The sampled series, in deterministic order: shared series first
    /// (nsys, maxq, drops, delivered), then per-shard series by shard.
    pub series: Vec<SeriesReport>,
}

impl TelemetryReport {
    /// Compact JSON rendering.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde::json::to_string(self)
    }

    /// Pretty (two-space-indented) JSON rendering.
    #[must_use]
    pub fn to_json_pretty(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Text rendering for `repro timeline`: one block per series with
    /// min/mean/max and a coarse ASCII trajectory (each column is the
    /// mean of its time bucket, mapped onto a 9-level density ramp).
    #[must_use]
    pub fn render_timeline(&self) -> String {
        const RAMP: [char; 9] = [' ', '.', ':', '-', '=', '+', '*', '#', '@'];
        const WIDTH: usize = 64;
        let mut out = format!(
            "telemetry {} | base interval {} | capacity {}\n",
            self.schema, self.interval, self.capacity
        );
        for s in &self.series {
            out.push_str(&format!(
                "  {:<16} dt={:<10} n={:<4} min={:.4} mean={:.4} max={:.4}\n",
                s.name,
                s.interval,
                s.samples.len(),
                s.min,
                s.mean,
                s.max
            ));
            if s.samples.is_empty() {
                continue;
            }
            let cols = WIDTH.min(s.samples.len());
            let per = s.samples.len() as f64 / cols as f64;
            let span = s.max - s.min;
            let mut line = String::with_capacity(cols + 4);
            line.push_str("  [");
            for c in 0..cols {
                let lo = (c as f64 * per) as usize;
                let hi = (((c + 1) as f64 * per) as usize).max(lo + 1);
                let bucket = &s.samples[lo..hi.min(s.samples.len())];
                let mean = bucket.iter().map(|p| p.1).sum::<f64>() / bucket.len() as f64;
                let level = if span > 0.0 {
                    (((mean - s.min) / span) * (RAMP.len() - 1) as f64).round() as usize
                } else {
                    RAMP.len() / 2
                };
                line.push(RAMP[level.min(RAMP.len() - 1)]);
            }
            line.push_str("]\n");
            out.push_str(&line);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_token_round_trips() {
        for token in [
            "nsys",
            "maxq",
            "nsys,maxq",
            "nsys,maxq,drops,delivered,shards",
            "drops,shards@2.5",
            "nsys@10",
        ] {
            let spec = ProbeSpec::parse_token(token).unwrap().unwrap();
            assert_eq!(spec.spec_token(), token, "round trip of `{token}`");
            let again = ProbeSpec::parse_token(&spec.spec_token()).unwrap().unwrap();
            assert_eq!(again, spec);
        }
        assert_eq!(ProbeSpec::parse_token("none").unwrap(), None);
        // `all` expands to every series.
        let all = ProbeSpec::parse_token("all@5").unwrap().unwrap();
        assert_eq!(all.spec_token(), "nsys,maxq,drops,delivered,shards@5");
    }

    #[test]
    fn parse_token_rejects_malformed() {
        for bad in ["", "speed", "nsys@", "nsys@0", "nsys@-3", "nsys@inf", "@5"] {
            assert!(ProbeSpec::parse_token(bad).is_err(), "`{bad}` accepted");
        }
    }

    #[test]
    fn recorder_decimates_and_reports() {
        let spec = ProbeSpec::parse_token("nsys,maxq@1").unwrap().unwrap();
        let mut rec = Recorder::new(&spec, 1e9);
        let mut t = 0.0;
        for _ in 0..10_000 {
            t += rec.interval();
            rec.record(
                t,
                &ProbeSample {
                    nsys: t,
                    maxq: 2.0 * t,
                    ..ProbeSample::default()
                },
            );
        }
        let report = rec.into_report();
        assert_eq!(report.schema, TELEMETRY_SCHEMA);
        assert_eq!(report.series.len(), 2);
        for s in &report.series {
            assert!(s.samples.len() <= TELEMETRY_CAPACITY);
            assert!(!s.samples.is_empty());
            // Effective interval widened to a power-of-two multiple.
            let stride = s.interval / report.interval;
            assert!(stride >= 1.0 && (stride as u64).is_power_of_two());
        }
        let text = report.render_timeline();
        assert!(text.contains("nsys") && text.contains("maxq"));
    }

    #[test]
    fn merge_sums_and_maxes_shared_series() {
        let spec = ProbeSpec::parse_token("nsys,maxq,shards@1")
            .unwrap()
            .unwrap();
        let mut parts: Vec<Recorder> = (0..3)
            .map(|k| Recorder::for_shard(&spec, 100.0, k))
            .collect();
        for tick in 1..=20 {
            let t = tick as f64;
            for (k, rec) in parts.iter_mut().enumerate() {
                rec.record(
                    t,
                    &ProbeSample {
                        nsys: 1.0 + k as f64,
                        maxq: 10.0 * (k + 1) as f64,
                        events: t,
                        qmass: k as f64,
                        cut: 0.0,
                        ..ProbeSample::default()
                    },
                );
            }
        }
        let merged = Recorder::merge(parts);
        assert_eq!(merged.ticks(), 60);
        let report = merged.into_report();
        // Shared series first, then 3 shards × (events, qmass, cut).
        assert_eq!(report.series.len(), 2 + 9);
        let nsys = &report.series[0];
        assert_eq!(nsys.name, "nsys");
        assert!(nsys.samples.iter().all(|&(_, v)| v == 6.0));
        let maxq = &report.series[1];
        assert_eq!(maxq.name, "maxq");
        assert!(maxq.samples.iter().all(|&(_, v)| v == 30.0));
        assert_eq!(report.series[2].name, "shard0:events");
        assert_eq!(report.series[5].name, "shard1:events");
        assert_eq!(report.series[9].name, "shard2:qmass");
    }
}
