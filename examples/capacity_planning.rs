//! Capacity planning with Theorem 15 (§5.1).
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```
//!
//! Scenario: a network architect has the same wire budget as the standard
//! 8×8 array (`D = 4n(n−1)` rate units at unit cost) but may distribute
//! transmission capacity non-uniformly — slower wires on the lightly used
//! periphery, faster ones in the congested center. This example
//!
//! 1. computes the Theorem 15 optimal allocation,
//! 2. shows the delay improvement over the standard configuration,
//! 3. demonstrates the stability extension: traffic between `4/n` and
//!    `6/(n+1)` that melts the standard array is carried comfortably.

use meshbound::queueing::capacity::{mesh_unit_budget, optimal_allocation, optimal_delay};
use meshbound::queueing::jackson;
use meshbound::queueing::little::mesh_total_arrival;
use meshbound::queueing::load::{mesh_stability_threshold, optimal_stability_threshold};
use meshbound::routing::rates::mesh_thm6_rates;
use meshbound::topology::{Mesh2D, Topology};
use meshbound::{Load, Scenario};
use meshbound_repro::banner;

fn main() {
    let n = 8;
    let mesh = Mesh2D::square(n);
    let budget = mesh_unit_budget(n);
    let costs = vec![1.0; mesh.num_edges()];

    banner("Operating point");
    println!(
        "n = {n}: standard array stable for λ < {:.4}; optimal allocation extends this to λ < {:.4}",
        mesh_stability_threshold(n),
        optimal_stability_threshold(n)
    );

    banner("Delay improvement inside the standard stability region");
    println!(
        "{:<8} {:>14} {:>14} {:>10}",
        "lambda", "T standard", "T optimal", "speedup"
    );
    for &lambda in &[0.1, 0.2, 0.3, 0.4, 0.45] {
        let rates = mesh_thm6_rates(&mesh, lambda);
        let gamma = mesh_total_arrival(n, lambda);
        let t_std = jackson::mean_delay(&rates, &vec![1.0; rates.len()], gamma);
        let t_opt = optimal_delay(&rates, &costs, budget, gamma);
        println!(
            "{lambda:<8.3} {t_std:>14.3} {t_opt:>14.3} {:>9.2}x",
            t_std / t_opt
        );
    }

    banner("The allocation itself (central vs peripheral row edges)");
    let lambda = 0.3;
    let rates = mesh_thm6_rates(&mesh, lambda);
    let phi = optimal_allocation(&rates, &costs, budget).expect("within budget");
    let central = mesh.right_edge(0, n / 2 - 1);
    let periph = mesh.right_edge(0, 0);
    println!(
        "central edge: arrival {:.3} → rate {:.3};   peripheral edge: arrival {:.3} → rate {:.3}",
        rates[central.index()],
        phi[central.index()],
        rates[periph.index()],
        phi[periph.index()]
    );

    banner("Beyond standard capacity: λ between 4/n and 6/(n+1)");
    let lambda = 0.5 * (mesh_stability_threshold(n) + optimal_stability_threshold(n));
    let rates = mesh_thm6_rates(&mesh, lambda);
    let phi = optimal_allocation(&rates, &costs, budget).expect("still within budget");
    let base = Scenario::mesh(n)
        .load(Load::Lambda(lambda))
        .horizon(8_000.0)
        .warmup(0.0)
        .seed(7);
    let std_run = base.clone().run();
    let opt_run = base.service_rates(phi).run();
    println!(
        "λ = {lambda:.4}: standard config backlog grows (final N = {:.0}, avg N = {:.0} — unstable)",
        std_run.final_n, std_run.time_avg_n
    );
    println!(
        "             optimal config stays stable (final N = {:.0}, avg N = {:.0}, T = {:.2})",
        opt_run.final_n, opt_run.time_avg_n, opt_run.avg_delay
    );
}
