//! Seed-determinism regression tests: the simulator advertises
//! "deterministic given a seed", so the same scenario must produce
//! **bit-identical** observer summaries on every run — including through
//! the parallel replication runner, whose ordered collect must make thread
//! scheduling invisible.

use meshbound_sim::rng::{derive_rng, exp_sample, poisson_sample};
use meshbound_sim::{Load, Scenario, SimResult};
use rand::Rng;

fn scenario(seed: u64) -> Scenario {
    Scenario::mesh(5)
        .load(Load::Lambda(0.16))
        .horizon(800.0)
        .warmup(100.0)
        .seed(seed)
        .track_saturated(true)
}

/// Compares every field of two results for exact (bitwise) equality.
fn assert_bit_identical(a: &SimResult, b: &SimResult) {
    let f = f64::to_bits;
    assert_eq!(f(a.avg_delay), f(b.avg_delay), "avg_delay differs");
    assert_eq!(
        f(a.delay_std_err),
        f(b.delay_std_err),
        "delay_std_err differs"
    );
    assert_eq!(a.generated, b.generated, "generated differs");
    assert_eq!(a.completed, b.completed, "completed differs");
    assert_eq!(f(a.time_avg_n), f(b.time_avg_n), "time_avg_n differs");
    assert_eq!(f(a.time_avg_r), f(b.time_avg_r), "time_avg_r differs");
    assert_eq!(f(a.time_avg_rs), f(b.time_avg_rs), "time_avg_rs differs");
    assert_eq!(f(a.r_ratio), f(b.r_ratio), "r_ratio differs");
    assert_eq!(f(a.rs_ratio), f(b.rs_ratio), "rs_ratio differs");
    assert_eq!(f(a.little_delay), f(b.little_delay), "little_delay differs");
    assert_eq!(
        f(a.max_edge_utilization),
        f(b.max_edge_utilization),
        "max_edge_utilization differs",
    );
    assert_eq!(f(a.final_n), f(b.final_n), "final_n differs");
    assert_eq!(f(a.peak_n), f(b.peak_n), "peak_n differs");
    assert_eq!(f(a.measure_time), f(b.measure_time), "measure_time differs");
    assert_eq!(a.edge_throughput.len(), b.edge_throughput.len());
    for (i, (x, y)) in a.edge_throughput.iter().zip(&b.edge_throughput).enumerate() {
        assert_eq!(f(*x), f(*y), "edge_throughput[{i}] differs");
    }
}

#[test]
fn rng_streams_are_reproducible() {
    let xs: Vec<u64> = {
        let mut rng = derive_rng(99, 7);
        (0..1000).map(|_| rng.gen()).collect()
    };
    let ys: Vec<u64> = {
        let mut rng = derive_rng(99, 7);
        (0..1000).map(|_| rng.gen()).collect()
    };
    assert_eq!(xs, ys);

    // Derived samplers inherit the determinism bit-for-bit.
    let mut a = derive_rng(5, 0);
    let mut b = derive_rng(5, 0);
    for _ in 0..100 {
        assert_eq!(
            exp_sample(&mut a, 2.0).to_bits(),
            exp_sample(&mut b, 2.0).to_bits(),
        );
    }
    let mut a = derive_rng(6, 1);
    let mut b = derive_rng(6, 1);
    for _ in 0..100 {
        assert_eq!(poisson_sample(&mut a, 2.5), poisson_sample(&mut b, 2.5));
    }
}

#[test]
fn same_seed_gives_bit_identical_summaries() {
    let r1 = scenario(42).run();
    let r2 = scenario(42).run();
    assert_bit_identical(&r1, &r2);
    assert!(r1.completed > 0, "simulation delivered no packets");
}

#[test]
fn different_seeds_give_different_summaries() {
    let r1 = scenario(42).run();
    let r2 = scenario(43).run();
    assert_ne!(
        r1.avg_delay.to_bits(),
        r2.avg_delay.to_bits(),
        "different seeds produced identical delays — seed is being ignored",
    );
}

#[test]
fn every_topology_is_deterministic_given_a_seed() {
    let scenarios = [
        Scenario::mesh(4),
        Scenario::torus(4),
        Scenario::hypercube(4),
        Scenario::butterfly(3),
        Scenario::mesh_kd(&[3, 3]),
    ];
    for sc in scenarios {
        let sc = sc
            .load(Load::Lambda(0.05))
            .horizon(500.0)
            .warmup(50.0)
            .seed(77);
        let a = sc.run();
        let b = sc.run();
        assert_bit_identical(&a, &b);
    }
}

#[test]
fn replicated_runner_is_deterministic_across_runs() {
    let reps = 4;
    let a = scenario(7).run_replicated(reps);
    let b = scenario(7).run_replicated(reps);
    assert_eq!(a.runs.len(), reps);
    for (x, y) in a.runs.iter().zip(&b.runs) {
        assert_bit_identical(x, y);
    }
    // The cross-replication summaries (fed in collection order) must agree
    // bit-for-bit too, regardless of worker scheduling.
    assert_eq!(a.delay.mean().to_bits(), b.delay.mean().to_bits());
    assert_eq!(a.delay.std_dev().to_bits(), b.delay.std_dev().to_bits());
    assert_eq!(a.n.mean().to_bits(), b.n.mean().to_bits());
    assert_eq!(a.r_ratio.mean().to_bits(), b.r_ratio.mean().to_bits());
    assert_eq!(a.rs_ratio.mean().to_bits(), b.rs_ratio.mean().to_bits());
    // Replications use distinct derived seeds.
    assert_ne!(
        a.runs[0].avg_delay.to_bits(),
        a.runs[1].avg_delay.to_bits(),
        "replications 0 and 1 are identical — stream derivation is broken",
    );
}

#[test]
fn replication_zero_keeps_the_plain_splitmix_stream() {
    // Replication 0 must stay at splitmix64(seed) so single-replication
    // sweeps are unaffected by the golden-ratio multiplier. (The pairwise
    // high-bit-spread property of later indices is asserted by the
    // scenario module's unit tests.)
    let sc = scenario(7);
    assert_eq!(sc.replication_seed(0), meshbound_sim::rng::splitmix64(7));
}

#[test]
fn sharded_engine_is_deterministic_across_runs_and_shard_counts() {
    use meshbound_sim::EngineSpec;
    for shards in [1, 2, 4] {
        let sc = scenario(42).engine(EngineSpec::Sharded { shards });
        let a = sc.run();
        let b = sc.run();
        assert_bit_identical(&a, &b);
        assert!(a.completed > 0, "shards={shards} delivered nothing");
    }
}
