//! The topology-generic [`Scenario`] API: one front door for every
//! simulation the workspace can run.
//!
//! A [`Scenario`] names a complete experiment — topology, router, a
//! [`TrafficSpec`] workload (source model + destination model), load, and
//! every [`NetConfig`] knob — for any of the paper's network families: the
//! 2-D array (the paper's subject), the torus (§6), the hypercube and
//! butterfly (§4.5), and `k`-dimensional meshes (§5.2). One internal
//! dispatch point maps the specification onto the right concrete
//! [`NetworkSim`] instantiation, so callers never touch the generic
//! machinery:
//!
//! ```
//! use meshbound_sim::{Load, Scenario, TrafficSpec};
//!
//! let result = Scenario::torus(8).load(Load::Utilization(0.5)).run();
//! assert!(result.avg_delay > 0.0);
//!
//! // Any workload through the same entry point: the transpose
//! // permutation on an 8×8 array at half the pattern's capacity.
//! let result = Scenario::mesh(8)
//!     .traffic(TrafficSpec::transpose())
//!     .load(Load::Utilization(0.5))
//!     .run();
//! assert!(result.completed > 0);
//! ```
//!
//! Loads are accepted in any of the [`Load`] conventions and resolved per
//! topology *and workload* ([`Scenario::lambda`]): utilization-style loads
//! solve against the workload's actual edge-rate vector. Replications fan
//! out over Rayon ([`Scenario::run_replicated`]); and [`Scenario::parse`]
//! builds a scenario from a compact command-line spec such as
//! `"torus:8,util=0.9,horizon=5000"` or
//! `"mesh:8,traffic=transpose,util=0.5"` (see [`Scenario::spec_string`]
//! for the inverse).

use crate::engine::{EngineSpec, SPARSE_RATES_MIN_NODES, STREAMING_STATS_MAX_EDGES};
use crate::fault::{FaultPlan, FaultSpec};
use crate::network::{NetConfig, NetworkSim, SimError, SimResult};
use crate::rng::splitmix64;
use crate::runner::ReplicatedResult;
use crate::service::ServiceKind;
use crate::telemetry::ProbeSpec;
use crate::traffic::{PatternSpec, SourceSpec, TrafficSpec};
use meshbound_queueing::load::Load;
use meshbound_queueing::remaining::saturated_edges;
use meshbound_routing::dest::{
    BernoulliDest, ButterflyOutput, DestSampler, NearbyWalk, UniformDest,
};
use meshbound_routing::pattern::{
    GenericDest, HotspotDest, MatrixDest, PatternTopology, PermutationDest, PermutationKind,
};
use meshbound_routing::rates::{
    all_nodes, edge_rates_sparse, edge_rates_weighted, mesh_max_rate, mesh_thm6_rates,
    torus_row_rates, total_rate,
};
use meshbound_routing::{
    adaptive_edge_rates, ButterflyRouter, DimOrder, GreedyXY, KdGreedy, ObliviousRouter, OddEven,
    RandomizedGreedy, Router, SplitRouting, TorusGreedy, TrafficConvergenceError, WestFirst,
};
use meshbound_topology::{
    Butterfly, Direction, EdgeId, Hypercube, Mesh2D, MeshKD, NodeId, Topology, Torus2D,
};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// The network family and size a [`Scenario`] runs on.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TopologySpec {
    /// A `rows × cols` array (the paper's main topology; square when
    /// `rows == cols`).
    Mesh {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
    },
    /// An `n × n` torus (§6).
    Torus {
        /// Side length.
        n: usize,
    },
    /// A `dim`-dimensional hypercube (§4.5).
    Hypercube {
        /// Dimension.
        dim: usize,
    },
    /// A butterfly with `k` edge levels (§4.5). Packets enter at level 0
    /// and leave at level `k`.
    Butterfly {
        /// Number of edge levels.
        k: usize,
    },
    /// A `k`-dimensional mesh with the given per-axis extents (§5.2).
    MeshKd {
        /// Per-axis extents, e.g. `[3, 3, 3]`.
        dims: Vec<usize>,
    },
}

impl TopologySpec {
    /// Human-readable label, e.g. `"torus 8x8"`.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            TopologySpec::Mesh { rows, cols } => Mesh2D::rect(*rows, *cols).label(),
            TopologySpec::Torus { n } => Torus2D::new(*n).label(),
            TopologySpec::Hypercube { dim } => Hypercube::new(*dim).label(),
            TopologySpec::Butterfly { k } => Butterfly::new(*k).label(),
            TopologySpec::MeshKd { dims } => MeshKD::new(dims).label(),
        }
    }

    /// Total node count.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        match self {
            TopologySpec::Mesh { rows, cols } => rows * cols,
            TopologySpec::Torus { n } => n * n,
            TopologySpec::Hypercube { dim } => 1 << dim,
            TopologySpec::Butterfly { k } => (k + 1) << k,
            TopologySpec::MeshKd { dims } => dims.iter().product(),
        }
    }

    /// Total directed-edge count.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        match self {
            TopologySpec::Mesh { rows, cols } => Mesh2D::rect(*rows, *cols).num_edges(),
            TopologySpec::Torus { n } => 4 * n * n,
            TopologySpec::Hypercube { dim } => dim << dim,
            TopologySpec::Butterfly { k } => k << (k + 1),
            TopologySpec::MeshKd { dims } => MeshKD::new(dims).num_edges(),
        }
    }

    /// The maximum route length of the default greedy router.
    #[must_use]
    pub fn max_distance(&self) -> usize {
        match self {
            TopologySpec::Mesh { rows, cols } => (rows - 1) + (cols - 1),
            TopologySpec::Torus { n } => 2 * (n / 2),
            TopologySpec::Hypercube { dim } => *dim,
            TopologySpec::Butterfly { k } => *k,
            TopologySpec::MeshKd { dims } => dims.iter().map(|&d| d - 1).sum(),
        }
    }

    /// The spec-string head this topology parses from, e.g. `"torus:8"`.
    #[must_use]
    pub fn spec_head(&self) -> String {
        match self {
            TopologySpec::Mesh { rows, cols } if rows == cols => format!("mesh:{rows}"),
            TopologySpec::Mesh { rows, cols } => format!("mesh:{rows}x{cols}"),
            TopologySpec::Torus { n } => format!("torus:{n}"),
            TopologySpec::Hypercube { dim } => format!("hypercube:{dim}"),
            TopologySpec::Butterfly { k } => format!("butterfly:{k}"),
            TopologySpec::MeshKd { dims } => {
                let dims: Vec<String> = dims.iter().map(ToString::to_string).collect();
                format!("kd:{}", dims.join("x"))
            }
        }
    }

    pub(crate) fn parse_head(head: &str) -> Result<Self, ScenarioError> {
        let (name, size) = head.split_once(':').ok_or_else(|| {
            ScenarioError::parse(format!(
                "topology `{head}` needs a size, e.g. `mesh:8` or `kd:3x3x3`"
            ))
        })?;
        let dims = |s: &str| -> Result<Vec<usize>, ScenarioError> {
            s.split('x')
                .map(|d| {
                    d.parse::<usize>()
                        .map_err(|_| ScenarioError::parse(format!("bad extent `{d}` in `{head}`")))
                })
                .collect()
        };
        let single = |s: &str| -> Result<usize, ScenarioError> {
            match dims(s)?.as_slice() {
                [n] => Ok(*n),
                _ => Err(ScenarioError::parse(format!(
                    "`{name}` takes a single size, got `{s}`"
                ))),
            }
        };
        match name {
            "mesh" => {
                let d = dims(size)?;
                match d.as_slice() {
                    [n] => Ok(TopologySpec::Mesh { rows: *n, cols: *n }),
                    [r, c] => Ok(TopologySpec::Mesh { rows: *r, cols: *c }),
                    _ => Err(ScenarioError::parse(format!(
                        "mesh size `{size}` must be `n` or `RxC`"
                    ))),
                }
            }
            "torus" => Ok(TopologySpec::Torus { n: single(size)? }),
            "hypercube" => Ok(TopologySpec::Hypercube { dim: single(size)? }),
            "butterfly" => Ok(TopologySpec::Butterfly { k: single(size)? }),
            "kd" => Ok(TopologySpec::MeshKd { dims: dims(size)? }),
            other => Err(ScenarioError::parse(format!(
                "unknown topology `{other}` (expected mesh, torus, hypercube, butterfly or kd)"
            ))),
        }
    }

    fn validate(&self) -> Result<(), ScenarioError> {
        let bad = |msg: String| Err(ScenarioError::unsupported(msg));
        match self {
            TopologySpec::Mesh { rows, cols } => {
                if *rows < 2 || *cols < 2 {
                    return bad(format!("mesh needs at least 2x2 nodes, got {rows}x{cols}"));
                }
            }
            TopologySpec::Torus { n } => {
                if *n < 3 {
                    return bad(format!("torus needs side at least 3, got {n}"));
                }
            }
            TopologySpec::Hypercube { dim } => {
                if !(1..=26).contains(dim) {
                    return bad(format!("hypercube dimension {dim} out of range 1..=26"));
                }
            }
            TopologySpec::Butterfly { k } => {
                if !(1..=20).contains(k) {
                    return bad(format!("butterfly level count {k} out of range 1..=20"));
                }
            }
            TopologySpec::MeshKd { dims } => {
                if dims.is_empty() {
                    return bad("k-d mesh needs at least one dimension".into());
                }
                if dims.iter().any(|&d| d < 2) {
                    return bad(format!("every k-d mesh extent must be >= 2, got {dims:?}"));
                }
                if dims.iter().product::<usize>() >= u32::MAX as usize / 2 {
                    return bad(format!("k-d mesh {dims:?} too large"));
                }
            }
        }
        Ok(())
    }
}

/// Which router a [`Scenario`] uses. Each topology has a canonical greedy
/// router; the randomized variant exists only on the mesh, and the two
/// turn-model adaptive routers exist on the mesh and torus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouterSpec {
    /// The topology's canonical greedy router: [`GreedyXY`] on the mesh,
    /// [`TorusGreedy`] on the torus, [`DimOrder`] on the hypercube,
    /// [`ButterflyRouter`] on the butterfly and [`KdGreedy`] on `k`-d
    /// meshes.
    Greedy,
    /// §6's randomized-order greedy variant (mesh only).
    Randomized,
    /// West-first turn-model adaptive routing ([`WestFirst`]; mesh and
    /// torus).
    WestFirst,
    /// Odd-even turn-model adaptive routing ([`OddEven`]; mesh and
    /// torus).
    OddEven,
}

impl RouterSpec {
    /// The spec-string token, e.g. `"oddeven"` for `router=oddeven`.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            RouterSpec::Greedy => "greedy",
            RouterSpec::Randomized => "randomized",
            RouterSpec::WestFirst => "westfirst",
            RouterSpec::OddEven => "oddeven",
        }
    }

    /// Whether the router picks hops adaptively from local queue state.
    /// Adaptive routers have no enumerable path set, so their edge rates
    /// come from the fixed-point solver, and they stay off the packed
    /// route-table fast path.
    #[must_use]
    pub fn is_adaptive(self) -> bool {
        matches!(self, RouterSpec::WestFirst | RouterSpec::OddEven)
    }

    /// Parses a spec token (the value of a `router=` key).
    ///
    /// # Errors
    ///
    /// Returns a message naming the accepted tokens.
    pub fn parse_token(value: &str) -> Result<Self, String> {
        match value {
            "greedy" => Ok(RouterSpec::Greedy),
            "randomized" => Ok(RouterSpec::Randomized),
            "westfirst" => Ok(RouterSpec::WestFirst),
            "oddeven" => Ok(RouterSpec::OddEven),
            _ => Err(format!(
                "unknown router `{value}` (expected greedy, randomized, westfirst or oddeven)"
            )),
        }
    }
}

/// Builds the topology-generic sampler for a permutation, hotspot or
/// matrix pattern; `None` for the patterns each topology handles natively
/// (uniform, nearby, Bernoulli).
///
/// # Panics
///
/// Unreachable after [`Scenario::validate`], which rejects unsupported
/// permutations and invalid matrices with a typed [`ScenarioError`] before
/// any code path can reach here.
fn generic_dest_for<T: PatternTopology>(topo: &T, pattern: &PatternSpec) -> Option<GenericDest> {
    match pattern {
        PatternSpec::Permutation { kind } => Some(GenericDest::Permutation(
            PermutationDest::new(topo, *kind).unwrap_or_else(|e| {
                unreachable!("validate() rejects unsupported permutations: {e}")
            }),
        )),
        PatternSpec::Hotspot { node, frac } => {
            let hot = node.map_or_else(|| topo.central_node(), |i| NodeId(i as u32));
            Some(GenericDest::Hotspot(HotspotDest::new(hot, *frac)))
        }
        PatternSpec::Matrix { rows } => Some(GenericDest::Matrix(
            MatrixDest::from_rows(rows)
                .unwrap_or_else(|e| unreachable!("validate() rejects invalid matrices: {e}")),
        )),
        PatternSpec::Uniform | PatternSpec::Nearby { .. } | PatternSpec::Bernoulli { .. } => None,
    }
}

/// Weighted exact edge rates for any pattern a [`PatternTopology`] carries
/// natively: uniform, nearby (mesh) and the topology-generic patterns.
///
/// Above [`SPARSE_RATES_MIN_NODES`] sources, sparse-support patterns
/// (permutation, hotspot, matrix) take the O(N · route) fast path of
/// [`edge_rates_sparse`]; `uniform_unit` supplies the closed-form per-edge
/// rates of the **same** `per_source` vector under uniform destinations
/// (the hotspot remainder), or `None` when no closed form applies. At or
/// below the gate every pattern runs through the same enumeration that
/// produced all published ≤512-node numbers.
fn pattern_rates<T, R, F>(
    topo: &T,
    router: &R,
    pattern: &PatternSpec,
    per_source: &[f64],
    sources: &[NodeId],
    uniform_unit: F,
) -> Vec<f64>
where
    T: PatternTopology,
    R: ObliviousRouter<T>,
    F: FnOnce() -> Option<Vec<f64>>,
{
    match pattern {
        PatternSpec::Uniform => {
            edge_rates_weighted(topo, router, &UniformDest, per_source, sources)
        }
        other => match generic_dest_for(topo, other) {
            Some(dest) => {
                if sources.len() > SPARSE_RATES_MIN_NODES {
                    if let Some(rates) =
                        edge_rates_sparse(topo, router, &dest, per_source, sources, uniform_unit)
                    {
                        return rates;
                    }
                }
                edge_rates_weighted(topo, router, &dest, per_source, sources)
            }
            None => unreachable!("validate() rejects this pattern on {}", topo.label()),
        },
    }
}

/// Absolute tolerance of the adaptive fixed-point rate solver. Minimal
/// routers give nilpotent per-destination chains, so the iteration is
/// exact after `diameter` sweeps — the tolerance only guards the
/// termination test against rounding noise.
const FP_TOL: f64 = 1e-13;

/// Sweep budget of the adaptive fixed-point rate solver; far above the
/// diameter of any topology that fits the edge-rate gates.
const FP_MAX_ITER: usize = 10_000;

/// Steady-state edge rates for an adaptive (split-routing) router under
/// any pattern without a topology-native sampler requirement: uniform or
/// the topology-generic patterns. (The mesh-only nearby walk is dispatched
/// by the caller, whose topology is concrete.)
fn adaptive_pattern_rates<T, R>(
    topo: &T,
    router: &R,
    pattern: &PatternSpec,
    per_source: &[f64],
    sources: &[NodeId],
) -> Result<Vec<f64>, ScenarioError>
where
    T: PatternTopology,
    R: SplitRouting<T>,
{
    let rates = match pattern {
        PatternSpec::Uniform => adaptive_edge_rates(
            topo,
            router,
            &UniformDest,
            per_source,
            sources,
            FP_TOL,
            FP_MAX_ITER,
        )?,
        other => match generic_dest_for(topo, other) {
            Some(dest) => adaptive_edge_rates(
                topo,
                router,
                &dest,
                per_source,
                sources,
                FP_TOL,
                FP_MAX_ITER,
            )?,
            None => unreachable!(
                "validate() admits no other adaptive pattern on {}",
                topo.label()
            ),
        },
    };
    Ok(rates)
}

/// Closed-form unit-rate vector of the `n × n` torus with uniform sources
/// and uniform destinations ([`torus_row_rates`] expanded per edge); also
/// the hotspot fast path's uniform remainder.
fn torus_uniform_unit_rates(n: usize) -> Vec<f64> {
    let torus = Torus2D::new(n);
    let (pos, neg) = torus_row_rates(n, 1.0);
    torus
        .edges()
        .map(|e| match Direction::ALL[e.index() % 4] {
            Direction::Right | Direction::Down => pos,
            Direction::Left | Direction::Up => neg,
        })
        .collect()
}

/// Why a scenario specification was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The spec string could not be parsed.
    Parse(String),
    /// The parsed combination is not supported (e.g. a randomized router on
    /// the torus).
    Unsupported(String),
    /// The fixed-point rate solver for an adaptive router ran out of
    /// sweeps before reaching tolerance (see
    /// [`adaptive_edge_rates`]).
    ///
    /// [`adaptive_edge_rates`]: meshbound_routing::adaptive_edge_rates
    Convergence(TrafficConvergenceError),
    /// The simulation itself failed mid-run with a structural
    /// [`SimError`] (surfaced by [`Scenario::try_run`]; the panicking
    /// [`Scenario::run`] aborts instead).
    Sim(SimError),
}

impl ScenarioError {
    fn parse(msg: String) -> Self {
        ScenarioError::Parse(msg)
    }

    fn unsupported(msg: String) -> Self {
        ScenarioError::Unsupported(msg)
    }
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Parse(m) => write!(f, "scenario parse error: {m}"),
            ScenarioError::Unsupported(m) => write!(f, "unsupported scenario: {m}"),
            ScenarioError::Convergence(e) => write!(f, "scenario rate solver: {e}"),
            ScenarioError::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScenarioError::Convergence(e) => Some(e),
            ScenarioError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TrafficConvergenceError> for ScenarioError {
    fn from(e: TrafficConvergenceError) -> Self {
        ScenarioError::Convergence(e)
    }
}

impl From<SimError> for ScenarioError {
    fn from(e: SimError) -> Self {
        ScenarioError::Sim(e)
    }
}

pub(crate) const DEFAULT_HORIZON: f64 = 2_000.0;
pub(crate) const DEFAULT_WARMUP: f64 = 200.0;
pub(crate) const DEFAULT_SEED: u64 = 1;

/// Node count above which [`Scenario::new`] picks the short large-scale
/// default horizon instead of [`DEFAULT_HORIZON`]. Event count scales as
/// `nodes × λ × horizon × route length`, so at `hypercube:20` the
/// small-scale default of 2000 would mean ~10¹⁰ events; the per-event
/// statistics at that scale are already tight at a horizon of 50 (over a
/// million sources average the noise away). Chosen comfortably above every
/// topology used by the ≤512-node published tables so their defaults are
/// untouched.
pub(crate) const LARGE_SCALE_NODES: usize = 4096;
pub(crate) const LARGE_DEFAULT_HORIZON: f64 = 50.0;
pub(crate) const LARGE_DEFAULT_WARMUP: f64 = 5.0;

/// The default `(horizon, warmup)` for a topology: the classic
/// `(2000, 200)` up to [`LARGE_SCALE_NODES`] nodes, `(50, 5)` beyond.
pub(crate) fn default_horizon_for(topology: &TopologySpec) -> (f64, f64) {
    if topology.num_nodes() > LARGE_SCALE_NODES {
        (LARGE_DEFAULT_HORIZON, LARGE_DEFAULT_WARMUP)
    } else {
        (DEFAULT_HORIZON, DEFAULT_WARMUP)
    }
}

/// A complete, topology-generic simulation specification.
///
/// Build one with the convenience constructors ([`Scenario::mesh`],
/// [`Scenario::torus`], …) plus the chainable setters, or parse one from a
/// spec string ([`Scenario::parse`]). Then [`Scenario::run`] simulates it,
/// [`Scenario::run_replicated`] runs independent replications in parallel,
/// and `meshbound::BoundsReport::compute_for` reports every closed-form
/// bound available at its operating point.
#[derive(Debug, Clone, PartialEq, Deserialize)]
pub struct Scenario {
    /// Network family and size.
    pub topology: TopologySpec,
    /// Router choice.
    pub router: RouterSpec,
    /// The workload: source model plus destination model.
    pub traffic: TrafficSpec,
    /// Offered load, in any [`Load`] convention; resolved to the **mean**
    /// per-source rate by [`Scenario::lambda`].
    pub load: Load,
    /// Simulated end time.
    pub horizon: f64,
    /// Warmup discarded from statistics.
    pub warmup: f64,
    /// Master seed.
    pub seed: u64,
    /// Transmission-time distribution (deterministic = standard model,
    /// exponential = Jackson model).
    pub service: ServiceKind,
    /// Count source-=-destination packets (delay 0) in the average.
    pub include_self_packets: bool,
    /// Track the remaining-saturated-services integral (Table III).
    /// Honored on square meshes, where Figure 2 defines the saturated
    /// edge classes; ignored elsewhere.
    pub track_saturated: bool,
    /// Optional per-edge service rates (§5.1); length must equal the
    /// topology's edge count.
    pub service_rates: Option<Vec<f64>>,
    /// Slotted-time width τ (§5.2); `None` = continuous time.
    pub slot: Option<f64>,
    /// Optional `N(t)` sampling interval.
    pub sample_every: Option<f64>,
    /// Track delay quantiles (median / p95 / p99) via reservoir sampling.
    pub delay_quantiles: bool,
    /// Track per-edge time-averaged queue lengths.
    pub track_edge_queues: bool,
    /// Optional fault schedule ([`FaultSpec`]): deterministic, seed-derived
    /// link/node failures materialized into a [`FaultPlan`] per run.
    /// `None` keeps the healthy fast path bit-identical to pre-fault
    /// builds.
    pub faults: Option<FaultSpec>,
    /// Optional telemetry probes ([`ProbeSpec`]): deterministic
    /// sim-clock time-series sampling with flight-recorder storage.
    /// Probes never perturb results — `None` (the default) schedules no
    /// probe events at all, and probed runs are bit-identical to
    /// unprobed ones apart from the attached report.
    pub probes: Option<ProbeSpec>,
    /// Hot-path engine ([`EngineSpec::Auto`] by default). Engines only
    /// move wall-clock time; results are bit-identical across them.
    pub engine: EngineSpec,
}

// Hand-written (field-for-field identical to the derive) so the `probes`
// key appears only when probes are on: pre-telemetry consumers of sweep
// JSON see byte-identical `scenario` objects for unprobed cells.
impl Serialize for Scenario {
    fn serialize(&self, w: &mut serde::json::Writer) {
        w.begin_object();
        w.field("topology", &self.topology);
        w.field("router", &self.router);
        w.field("traffic", &self.traffic);
        w.field("load", &self.load);
        w.field("horizon", &self.horizon);
        w.field("warmup", &self.warmup);
        w.field("seed", &self.seed);
        w.field("service", &self.service);
        w.field("include_self_packets", &self.include_self_packets);
        w.field("track_saturated", &self.track_saturated);
        w.field("service_rates", &self.service_rates);
        w.field("slot", &self.slot);
        w.field("sample_every", &self.sample_every);
        w.field("delay_quantiles", &self.delay_quantiles);
        w.field("track_edge_queues", &self.track_edge_queues);
        w.field("faults", &self.faults);
        if let Some(probes) = &self.probes {
            w.field("probes", probes);
        }
        w.field("engine", &self.engine);
        w.end_object();
    }
}

impl Scenario {
    /// Creates a scenario on `topology` with the default knobs: greedy
    /// routing, uniform destinations, `λ = 0.1`, horizon 2000, warmup 200
    /// (50 and 5 above 4096 nodes, where per-event statistics are dense
    /// enough that the long horizon only burns wall-clock time), seed 1,
    /// deterministic service.
    #[must_use]
    pub fn new(topology: TopologySpec) -> Self {
        let (horizon, warmup) = default_horizon_for(&topology);
        Self {
            topology,
            router: RouterSpec::Greedy,
            traffic: TrafficSpec::uniform(),
            load: Load::Lambda(0.1),
            horizon,
            warmup,
            seed: DEFAULT_SEED,
            service: ServiceKind::Deterministic,
            include_self_packets: true,
            track_saturated: false,
            service_rates: None,
            slot: None,
            sample_every: None,
            delay_quantiles: false,
            track_edge_queues: false,
            faults: None,
            probes: None,
            engine: EngineSpec::Auto,
        }
    }

    /// An `n × n` array scenario.
    #[must_use]
    pub fn mesh(n: usize) -> Self {
        Self::new(TopologySpec::Mesh { rows: n, cols: n })
    }

    /// A `rows × cols` rectangular array scenario.
    #[must_use]
    pub fn mesh_rect(rows: usize, cols: usize) -> Self {
        Self::new(TopologySpec::Mesh { rows, cols })
    }

    /// An `n × n` torus scenario.
    #[must_use]
    pub fn torus(n: usize) -> Self {
        Self::new(TopologySpec::Torus { n })
    }

    /// A `dim`-dimensional hypercube scenario.
    #[must_use]
    pub fn hypercube(dim: usize) -> Self {
        Self::new(TopologySpec::Hypercube { dim })
    }

    /// A `k`-level butterfly scenario (sources at level 0, uniform output
    /// rows).
    #[must_use]
    pub fn butterfly(k: usize) -> Self {
        Self::new(TopologySpec::Butterfly { k })
    }

    /// A `k`-dimensional mesh scenario with the given per-axis extents.
    #[must_use]
    pub fn mesh_kd(dims: &[usize]) -> Self {
        Self::new(TopologySpec::MeshKd {
            dims: dims.to_vec(),
        })
    }

    /// Sets the router.
    #[must_use]
    pub fn router(mut self, router: RouterSpec) -> Self {
        self.router = router;
        self
    }

    /// Sets the whole workload (source model + destination model).
    #[must_use]
    pub fn traffic(mut self, traffic: TrafficSpec) -> Self {
        self.traffic = traffic;
        self
    }

    /// Sets the destination model, keeping the source model.
    #[must_use]
    pub fn pattern(mut self, pattern: PatternSpec) -> Self {
        self.traffic.pattern = pattern;
        self
    }

    /// Sets the source model, keeping the destination model.
    #[must_use]
    pub fn source(mut self, source: SourceSpec) -> Self {
        self.traffic.source = source;
        self
    }

    /// Sets the offered load (any [`Load`] convention).
    #[must_use]
    pub fn load(mut self, load: Load) -> Self {
        self.load = load;
        self
    }

    /// Sets the horizon.
    #[must_use]
    pub fn horizon(mut self, horizon: f64) -> Self {
        self.horizon = horizon;
        self
    }

    /// Sets the warmup.
    #[must_use]
    pub fn warmup(mut self, warmup: f64) -> Self {
        self.warmup = warmup;
        self
    }

    /// Sets the master seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the transmission-time distribution.
    #[must_use]
    pub fn service(mut self, service: ServiceKind) -> Self {
        self.service = service;
        self
    }

    /// Enables or disables counting zero-distance packets.
    #[must_use]
    pub fn include_self_packets(mut self, yes: bool) -> Self {
        self.include_self_packets = yes;
        self
    }

    /// Enables or disables saturated-services tracking (square mesh only).
    #[must_use]
    pub fn track_saturated(mut self, yes: bool) -> Self {
        self.track_saturated = yes;
        self
    }

    /// Installs per-edge service rates (§5.1).
    #[must_use]
    pub fn service_rates(mut self, rates: Vec<f64>) -> Self {
        self.service_rates = Some(rates);
        self
    }

    /// Switches to slotted time with width `tau` (§5.2).
    #[must_use]
    pub fn slot(mut self, tau: f64) -> Self {
        self.slot = Some(tau);
        self
    }

    /// Samples `N(t)` every `dt` time units.
    #[must_use]
    pub fn sample_every(mut self, dt: f64) -> Self {
        self.sample_every = Some(dt);
        self
    }

    /// Enables delay-quantile tracking.
    #[must_use]
    pub fn delay_quantiles(mut self, yes: bool) -> Self {
        self.delay_quantiles = yes;
        self
    }

    /// Enables per-edge mean-queue tracking.
    #[must_use]
    pub fn track_edge_queues(mut self, yes: bool) -> Self {
        self.track_edge_queues = yes;
        self
    }

    /// Installs a fault schedule (see [`FaultSpec`]). The concrete failed
    /// edges are drawn deterministically from the master seed when the
    /// scenario runs.
    #[must_use]
    pub fn faults(mut self, faults: FaultSpec) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Turns on telemetry probes (see [`ProbeSpec`]). Probes sample
    /// deterministic sim-clock series into a flight recorder and attach a
    /// [`crate::telemetry::TelemetryReport`] to the result; they never
    /// change the simulation's outcome.
    #[must_use]
    pub fn probes(mut self, probes: ProbeSpec) -> Self {
        self.probes = Some(probes);
        self
    }

    /// Selects the hot-path engine (see [`EngineSpec`]). Results are
    /// bit-identical whichever engine runs the scenario.
    #[must_use]
    pub fn engine(mut self, engine: EngineSpec) -> Self {
        self.engine = engine;
        self
    }

    /// Human-readable label, e.g. `"hypercube d=6"`.
    #[must_use]
    pub fn label(&self) -> String {
        self.topology.label()
    }

    // ----------------------------------------------------------------
    // Load resolution and traffic characterization.
    // ----------------------------------------------------------------

    /// The **mean** per-source arrival rate λ this scenario's load denotes
    /// (each source `i` generates at `λ × w_i` with the mean-1 weights of
    /// the workload's source model, so `γ = λ × #sources` always holds).
    ///
    /// `Load::Lambda` passes through. `Load::Utilization(ρ)` solves
    /// `max_e λ_e = ρ` against the **workload's actual edge-rate vector**
    /// (permutations, hotspots and matrices included). `Load::TableRho(ρ)`
    /// keeps Table I's mesh convention `λ = 4ρ/n` on square meshes and
    /// coincides with the utilization convention everywhere else.
    #[must_use]
    pub fn lambda(&self) -> f64 {
        self.lambda_given_peak(|| self.peak_unit_rate().unwrap_or_else(|e| panic!("{e}")))
    }

    /// Load resolution with the peak unit rate supplied lazily, so callers
    /// that already hold the rate vector (e.g. [`Scenario::edge_rates`])
    /// don't trigger a second enumeration.
    fn lambda_given_peak<F: FnOnce() -> f64>(&self, peak_unit: F) -> f64 {
        match (self.load, &self.topology) {
            (Load::Lambda(l), _) => l,
            (Load::TableRho(rho), TopologySpec::Mesh { rows, cols }) if rows == cols => {
                4.0 * rho / *rows as f64
            }
            (Load::TableRho(rho) | Load::Utilization(rho), _) => rho / peak_unit(),
        }
    }

    /// Number of packet-generating nodes: all nodes except on the
    /// butterfly, where only the `2^k` level-0 inputs generate.
    #[must_use]
    pub fn num_sources(&self) -> usize {
        match &self.topology {
            TopologySpec::Butterfly { k } => 1 << k,
            other => other.num_nodes(),
        }
    }

    /// Total external arrival rate `γ = λ × #sources`.
    #[must_use]
    pub fn total_arrival(&self) -> f64 {
        self.lambda() * self.num_sources() as f64
    }

    /// Number of **silent sources**: traffic-matrix rows that are entirely
    /// zero, so those nodes generate no packets at all. Zero for every
    /// other pattern. A mostly-zero matrix is structurally valid (only the
    /// all-zero matrix is rejected) but concentrates the whole offered
    /// load on the speaking rows — `BoundsReport` surfaces this count so
    /// it can't masquerade as a healthy all-sources workload.
    #[must_use]
    pub fn silent_sources(&self) -> usize {
        match &self.traffic.pattern {
            PatternSpec::Matrix { rows } => rows
                .iter()
                .filter(|row| row.iter().all(|&w| w == 0.0))
                .count(),
            _ => 0,
        }
    }

    /// Materializes this scenario's fault plan (under the scenario's own
    /// seed) and estimates the surviving-topology reachability: the
    /// fraction of sampled source–destination pairs the router still
    /// connects with every failing edge treated as permanently dead —
    /// the worst case over the timeline, since repairs only help.
    ///
    /// Returns `(dead_edges, reachable_fraction)`, or `None` for healthy
    /// scenarios (no `faults=` clause). Deterministic for a fixed
    /// `(seed, faults, topology, router)`; see
    /// [`reachable_fraction`](crate::fault::reachable_fraction).
    #[must_use]
    pub fn fault_reachability(&self) -> Option<(usize, f64)> {
        use crate::fault::reachable_fraction;
        let spec = self.faults.as_ref()?;
        fn survey<T: Topology, R: Router<T>>(
            spec: &FaultSpec,
            seed: u64,
            topo: &T,
            router: &R,
        ) -> Option<(usize, f64)> {
            let plan = FaultPlan::materialize(spec, seed, topo);
            let frac = reachable_fraction(topo, router, &plan.down_edges, seed);
            Some((plan.down_edges.len(), frac))
        }
        match (&self.topology, self.router) {
            (TopologySpec::Mesh { rows, cols }, router) => {
                let mesh = Mesh2D::rect(*rows, *cols);
                match router {
                    RouterSpec::Greedy => survey(spec, self.seed, &mesh, &GreedyXY),
                    RouterSpec::Randomized => survey(spec, self.seed, &mesh, &RandomizedGreedy),
                    RouterSpec::WestFirst => survey(spec, self.seed, &mesh, &WestFirst),
                    RouterSpec::OddEven => survey(spec, self.seed, &mesh, &OddEven),
                }
            }
            (TopologySpec::Torus { n }, router) => {
                let torus = Torus2D::new(*n);
                match router {
                    RouterSpec::WestFirst => survey(spec, self.seed, &torus, &WestFirst),
                    RouterSpec::OddEven => survey(spec, self.seed, &torus, &OddEven),
                    _ => survey(spec, self.seed, &torus, &TorusGreedy),
                }
            }
            (TopologySpec::Hypercube { dim }, _) => {
                survey(spec, self.seed, &Hypercube::new(*dim), &DimOrder)
            }
            (TopologySpec::Butterfly { k }, _) => {
                survey(spec, self.seed, &Butterfly::new(*k), &ButterflyRouter)
            }
            (TopologySpec::MeshKd { dims }, _) => {
                survey(spec, self.seed, &MeshKD::new(dims), &KdGreedy)
            }
        }
    }

    /// Exact per-edge arrival rates at the resolved λ, for the scenario's
    /// router and destination distribution.
    ///
    /// Uses closed forms where the paper provides them, exact path
    /// enumeration (`O(sources × nodes × route)`) for oblivious routers,
    /// and the fixed-point solver for adaptive ones. Materializes a
    /// vector of length `num_edges` — avoid on very large hypercubes.
    ///
    /// # Panics
    ///
    /// Panics if the adaptive fixed-point solver fails to converge — use
    /// [`Scenario::try_edge_rates`] to handle that as a typed error.
    #[must_use]
    pub fn edge_rates(&self) -> Vec<f64> {
        self.try_edge_rates().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`Scenario::edge_rates`].
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Convergence`] if the fixed-point solver
    /// for an adaptive router runs out of sweeps (impossible for the
    /// minimal turn-model routers, whose per-destination chains are
    /// nilpotent — the variant exists so callers never face a panic).
    pub fn try_edge_rates(&self) -> Result<Vec<f64>, ScenarioError> {
        let unit = self.unit_rates()?;
        // Resolve utilization-style loads against the vector we already
        // hold: on every closed-form topology its maximum is the same
        // expression peak_unit_rate() would compute, and on enumerated
        // topologies this avoids a second full path enumeration.
        let lambda = self.lambda_given_peak(|| unit.iter().fold(0.0, |a: f64, &b| a.max(b)));
        Ok(unit.into_iter().map(|r| r * lambda).collect())
    }

    /// Peak edge utilization `max_e λ_e` at the resolved λ (unit service
    /// rates).
    #[must_use]
    pub fn peak_utilization(&self) -> f64 {
        self.lambda() * self.peak_unit_rate().unwrap_or_else(|e| panic!("{e}"))
    }

    /// The stability threshold `λ*` of the scenario's routing pattern with
    /// unit service rates: the λ at which the busiest edge saturates.
    ///
    /// # Panics
    ///
    /// Panics if the adaptive fixed-point solver fails to converge — use
    /// [`Scenario::try_stability_lambda`] to handle that as a typed error.
    #[must_use]
    pub fn stability_lambda(&self) -> f64 {
        self.try_stability_lambda()
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`Scenario::stability_lambda`].
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Convergence`] if the fixed-point solver
    /// for an adaptive router runs out of sweeps.
    pub fn try_stability_lambda(&self) -> Result<f64, ScenarioError> {
        Ok(1.0 / self.peak_unit_rate()?)
    }

    /// Mean greedy route length over the scenario's workload (self-pairs
    /// included): closed forms for the paper's combinations, and for every
    /// other workload the conservation identity
    /// `Σ_e λ_e = Σ_s λ_s · E[route length | s]`, i.e. the total of the
    /// unit-rate vector divided by the source count.
    ///
    /// With [silent sources](Scenario::silent_sources) the conservation
    /// fallback still divides by the **full** source count — which is
    /// correct, not a bug: the mean-1 source weights already sum to the
    /// source count with silent rows carrying weight 0, so the quotient is
    /// the rate-weighted mean `Σ_s w_s·E[len|s] / Σ_s w_s`, i.e. the mean
    /// route length per **generated** packet. Silent rows simply don't
    /// contribute packets to the average.
    #[must_use]
    pub fn mean_distance(&self) -> f64 {
        // Mean |i−j| over uniform ordered pairs (self included) on a line
        // of m nodes: (m² − 1)/(3m).
        let line = |m: usize| {
            let m = m as f64;
            (m * m - 1.0) / (3.0 * m)
        };
        let uniform_sources = self.traffic.source.is_uniform();
        match (&self.topology, &self.traffic.pattern) {
            // Every butterfly route is exactly k hops, whatever the
            // source weighting.
            (TopologySpec::Butterfly { k }, _) => *k as f64,
            _ if !uniform_sources => self.mean_distance_from_rates(),
            (TopologySpec::Mesh { rows, cols }, PatternSpec::Uniform) => line(*rows) + line(*cols),
            (TopologySpec::Mesh { rows, cols }, PatternSpec::Nearby { stop }) => {
                let mesh = Mesh2D::rect(*rows, *cols);
                let w = NearbyWalk::new(*stop);
                let mut sum = 0.0;
                for s in mesh.nodes() {
                    let (r1, c1) = mesh.coords(s);
                    for d in mesh.nodes() {
                        let (r2, c2) = mesh.coords(d);
                        let dist = r1.abs_diff(r2) + c1.abs_diff(c2);
                        sum += w.weight(&mesh, s, d) * dist as f64;
                    }
                }
                sum / mesh.num_nodes() as f64
            }
            (TopologySpec::Torus { n }, PatternSpec::Uniform) => Torus2D::new(*n).mean_distance(),
            (TopologySpec::Hypercube { dim }, PatternSpec::Bernoulli { p }) => *dim as f64 * p,
            (TopologySpec::Hypercube { dim }, PatternSpec::Uniform) => *dim as f64 * 0.5,
            (TopologySpec::MeshKd { dims }, PatternSpec::Uniform) => {
                dims.iter().map(|&d| line(d)).sum()
            }
            _ => self.mean_distance_from_rates(),
        }
    }

    /// The conservation-law fallback: mean route length over generated
    /// packets = `Σ_e λ_e / (λ × #sources)` evaluated at unit mean rate.
    fn mean_distance_from_rates(&self) -> f64 {
        let unit = self.unit_rates().unwrap_or_else(|e| panic!("{e}"));
        total_rate(&unit) / self.num_sources() as f64
    }

    /// Mean-1 per-source rate weights of the workload (`None` = uniform).
    ///
    /// # Panics
    ///
    /// Panics if the workload fails validation — call
    /// [`Scenario::validate`] first.
    fn source_weights(&self) -> Option<Vec<f64>> {
        self.traffic
            .source_weights(self.num_sources())
            .unwrap_or_else(|e| panic!("invalid source model: {e}"))
    }

    /// Per-edge arrival rates at mean rate `λ = 1`, memoized per
    /// `(topology, router, traffic)` triple.
    ///
    /// The unit-rate vector is load-independent, and sweeps re-derive it
    /// for every cell of a load axis — with path enumeration that is the
    /// dominant setup cost. The cache is keyed on everything
    /// [`Scenario::unit_rates_uncached`] reads, so a hit returns the
    /// bit-identical vector the cold path would compute (pinned in
    /// `tests/sweep_engine.rs`). Matrix patterns and explicit per-source
    /// rate vectors are not cached (unbounded key size, rarely repeated),
    /// nor are vectors above [`STREAMING_STATS_MAX_EDGES`] (the sparse
    /// path is already cheap at that scale and the entries would dominate
    /// memory).
    fn unit_rates(&self) -> Result<Vec<f64>, ScenarioError> {
        use std::collections::HashMap;
        use std::sync::{Arc, Mutex, OnceLock};
        static CACHE: OnceLock<Mutex<HashMap<String, Arc<Vec<f64>>>>> = OnceLock::new();
        /// Entry cap: at the edge-count gate each vector is ≤ 0.5 MiB, so
        /// the cache tops out around 32 MiB before it resets.
        const MAX_ENTRIES: usize = 64;
        let cacheable = !matches!(self.traffic.pattern, PatternSpec::Matrix { .. })
            && !matches!(self.traffic.source, SourceSpec::Rates { .. })
            && self.topology.num_edges() <= STREAMING_STATS_MAX_EDGES;
        if !cacheable {
            return self.unit_rates_uncached();
        }
        let key = format!("{:?}|{:?}|{:?}", self.topology, self.router, self.traffic);
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        if let Some(hit) = cache.lock().expect("unit-rate cache poisoned").get(&key) {
            return Ok(hit.as_ref().clone());
        }
        let rates = self.unit_rates_uncached()?;
        let mut map = cache.lock().expect("unit-rate cache poisoned");
        if map.len() >= MAX_ENTRIES {
            map.clear();
        }
        map.insert(key, Arc::new(rates.clone()));
        Ok(rates)
    }

    /// The cold path of [`Scenario::unit_rates`]: closed form where
    /// available, exact weighted enumeration for oblivious routers, and
    /// the fixed-point solver for adaptive ones.
    fn unit_rates_uncached(&self) -> Result<Vec<f64>, ScenarioError> {
        let weights = self.source_weights();
        let uniform_sources = weights.is_none();
        let per_source = |n: usize| weights.clone().unwrap_or_else(|| vec![1.0; n]);
        Ok(match (&self.topology, self.router, &self.traffic.pattern) {
            (TopologySpec::Mesh { rows, cols }, RouterSpec::Greedy, PatternSpec::Uniform)
                if rows == cols && uniform_sources =>
            {
                mesh_thm6_rates(&Mesh2D::square(*rows), 1.0)
            }
            (TopologySpec::Mesh { rows, cols }, router, pattern) => {
                let mesh = Mesh2D::rect(*rows, *cols);
                let sources = all_nodes(&mesh);
                let per = per_source(sources.len());
                match (router, pattern) {
                    (RouterSpec::Greedy, PatternSpec::Nearby { stop }) => edge_rates_weighted(
                        &mesh,
                        &GreedyXY,
                        &NearbyWalk::new(*stop),
                        &per,
                        &sources,
                    ),
                    (RouterSpec::Randomized, PatternSpec::Nearby { stop }) => edge_rates_weighted(
                        &mesh,
                        &RandomizedGreedy,
                        &NearbyWalk::new(*stop),
                        &per,
                        &sources,
                    ),
                    (RouterSpec::WestFirst, PatternSpec::Nearby { stop }) => adaptive_edge_rates(
                        &mesh,
                        &WestFirst,
                        &NearbyWalk::new(*stop),
                        &per,
                        &sources,
                        FP_TOL,
                        FP_MAX_ITER,
                    )?,
                    (RouterSpec::OddEven, PatternSpec::Nearby { stop }) => adaptive_edge_rates(
                        &mesh,
                        &OddEven,
                        &NearbyWalk::new(*stop),
                        &per,
                        &sources,
                        FP_TOL,
                        FP_MAX_ITER,
                    )?,
                    (RouterSpec::Greedy, pattern) => {
                        let square = rows == cols;
                        pattern_rates(&mesh, &GreedyXY, pattern, &per, &sources, || {
                            (uniform_sources && square).then(|| mesh_thm6_rates(&mesh, 1.0))
                        })
                    }
                    (RouterSpec::Randomized, pattern) => {
                        pattern_rates(&mesh, &RandomizedGreedy, pattern, &per, &sources, || None)
                    }
                    (RouterSpec::WestFirst, pattern) => {
                        adaptive_pattern_rates(&mesh, &WestFirst, pattern, &per, &sources)?
                    }
                    (RouterSpec::OddEven, pattern) => {
                        adaptive_pattern_rates(&mesh, &OddEven, pattern, &per, &sources)?
                    }
                }
            }
            (TopologySpec::Torus { n }, router, PatternSpec::Uniform)
                if uniform_sources && !router.is_adaptive() =>
            {
                torus_uniform_unit_rates(*n)
            }
            (TopologySpec::Torus { n }, router, pattern) => {
                let torus = Torus2D::new(*n);
                let sources = all_nodes(&torus);
                let per = per_source(sources.len());
                match router {
                    RouterSpec::WestFirst => {
                        adaptive_pattern_rates(&torus, &WestFirst, pattern, &per, &sources)?
                    }
                    RouterSpec::OddEven => {
                        adaptive_pattern_rates(&torus, &OddEven, pattern, &per, &sources)?
                    }
                    _ => pattern_rates(&torus, &TorusGreedy, pattern, &per, &sources, || {
                        uniform_sources.then(|| torus_uniform_unit_rates(*n))
                    }),
                }
            }
            (TopologySpec::Hypercube { dim }, _, pattern) => {
                let closed = match pattern {
                    PatternSpec::Bernoulli { p } => Some(*p),
                    PatternSpec::Uniform => Some(0.5),
                    _ => None,
                };
                match closed {
                    Some(p) if uniform_sources => vec![p; dim << dim],
                    _ => {
                        let cube = Hypercube::new(*dim);
                        let sources = all_nodes(&cube);
                        let per = per_source(sources.len());
                        if let PatternSpec::Bernoulli { p } = pattern {
                            edge_rates_weighted(
                                &cube,
                                &DimOrder,
                                &BernoulliDest::new(*p),
                                &per,
                                &sources,
                            )
                        } else {
                            pattern_rates(&cube, &DimOrder, pattern, &per, &sources, || {
                                uniform_sources.then(|| vec![0.5; dim << dim])
                            })
                        }
                    }
                }
            }
            // The butterfly's pattern is always uniform output rows
            // (validated); only the source weighting can vary.
            (TopologySpec::Butterfly { k }, _, _) if uniform_sources => vec![0.5; k << (k + 1)],
            (TopologySpec::Butterfly { k }, _, _) => {
                let b = Butterfly::new(*k);
                let sources: Vec<NodeId> = (0..b.rows()).map(|w| b.node(0, w)).collect();
                let per = per_source(sources.len());
                edge_rates_weighted(&b, &ButterflyRouter, &ButterflyOutput, &per, &sources)
            }
            (TopologySpec::MeshKd { dims }, _, pattern) => {
                let kd = MeshKD::new(dims);
                let sources = all_nodes(&kd);
                let per = per_source(sources.len());
                pattern_rates(&kd, &KdGreedy, pattern, &per, &sources, || None)
            }
        })
    }

    /// Peak per-edge rate at mean rate `λ = 1`, without materializing the
    /// rate vector when a closed form exists. (The torus closed form is
    /// the greedy router's; adaptive routers spread flow differently and
    /// fall through to their solved vector.)
    fn peak_unit_rate(&self) -> Result<f64, ScenarioError> {
        if self.traffic.source.is_uniform() {
            match (&self.topology, self.router, &self.traffic.pattern) {
                (TopologySpec::Mesh { rows, cols }, RouterSpec::Greedy, PatternSpec::Uniform)
                    if rows == cols =>
                {
                    return Ok(mesh_max_rate(*rows, 1.0))
                }
                (TopologySpec::Torus { n }, router, PatternSpec::Uniform)
                    if !router.is_adaptive() =>
                {
                    return Ok(torus_row_rates(*n, 1.0).0)
                }
                (TopologySpec::Hypercube { .. }, _, PatternSpec::Bernoulli { p }) => return Ok(*p),
                (TopologySpec::Hypercube { .. }, _, PatternSpec::Uniform) => return Ok(0.5),
                (TopologySpec::Butterfly { .. }, _, _) => return Ok(0.5),
                _ => {}
            }
        }
        Ok(self.unit_rates()?.into_iter().fold(0.0, f64::max))
    }

    // ----------------------------------------------------------------
    // Validation.
    // ----------------------------------------------------------------

    /// The concrete topology's verdict on a permutation kind (the
    /// topology objects own the address arithmetic, so they own the
    /// support rules too).
    fn permutation_support(&self, kind: PermutationKind) -> Result<(), String> {
        match &self.topology {
            TopologySpec::Mesh { rows, cols } => {
                Mesh2D::rect(*rows, *cols).supports_permutation(kind)
            }
            TopologySpec::Torus { n } => Torus2D::new(*n).supports_permutation(kind),
            TopologySpec::Hypercube { dim } => Hypercube::new(*dim).supports_permutation(kind),
            TopologySpec::Butterfly { k } => Butterfly::new(*k).supports_permutation(kind),
            TopologySpec::MeshKd { dims } => MeshKD::new(dims).supports_permutation(kind),
        }
    }

    /// Checks that the combination of topology, router, workload, load
    /// and knobs is runnable.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError::Unsupported`] describing the first
    /// offending setting.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        let bad = |msg: String| Err(ScenarioError::unsupported(msg));
        self.topology.validate()?;
        let is_mesh = matches!(self.topology, TopologySpec::Mesh { .. });
        if self.router == RouterSpec::Randomized && !is_mesh {
            return bad("the randomized greedy router exists only on the mesh".into());
        }
        if self.router.is_adaptive()
            && !matches!(
                self.topology,
                TopologySpec::Mesh { .. } | TopologySpec::Torus { .. }
            )
        {
            return bad(format!(
                "the {} adaptive router needs a 2-D turn model; {} has none — \
                 adaptive routing exists only on the mesh and torus",
                self.router.as_str(),
                self.topology.label()
            ));
        }
        if matches!(self.topology, TopologySpec::Butterfly { .. })
            && self.traffic.pattern != PatternSpec::Uniform
        {
            return bad(
                "the butterfly supports only uniform output-row destinations (its sources \
                 and destinations live on different levels)"
                    .into(),
            );
        }
        if let Err(e) = self.traffic.source.validate(self.num_sources()) {
            return bad(e);
        }
        match (&self.traffic.pattern, &self.topology) {
            (PatternSpec::Nearby { .. }, t) if !matches!(t, TopologySpec::Mesh { .. }) => {
                return bad("the nearby destination walk exists only on the mesh".into());
            }
            (PatternSpec::Nearby { stop }, _) if !(*stop > 0.0 && *stop <= 1.0) => {
                return bad(format!("nearby stop probability {stop} outside (0, 1]"));
            }
            (PatternSpec::Bernoulli { .. }, t) if !matches!(t, TopologySpec::Hypercube { .. }) => {
                return bad("the Bernoulli destination exists only on the hypercube".into());
            }
            // p = 0 generates only self-packets: no traffic, and a
            // utilization load would resolve to λ = ∞.
            (PatternSpec::Bernoulli { p }, _) if !(*p > 0.0 && *p <= 1.0) => {
                return bad(format!("Bernoulli flip probability {p} outside (0, 1]"));
            }
            (PatternSpec::Permutation { kind }, _) => {
                if let Err(e) = self.permutation_support(*kind) {
                    return bad(format!("{} on {}: {e}", kind, self.topology.label()));
                }
            }
            (PatternSpec::Hotspot { node, frac }, _) => {
                if !(frac.is_finite() && *frac > 0.0 && *frac <= 1.0) {
                    return bad(format!("hotspot fraction {frac} outside (0, 1]"));
                }
                if let Some(i) = node {
                    if *i >= self.topology.num_nodes() {
                        return bad(format!(
                            "hotspot node {i} out of range ({} has {} nodes)",
                            self.topology.label(),
                            self.topology.num_nodes()
                        ));
                    }
                }
            }
            (PatternSpec::Matrix { rows }, _) => {
                if self.traffic.source != SourceSpec::Uniform {
                    return bad(
                        "a traffic matrix fixes the per-source rates via its row sums; \
                         leave the source model uniform"
                            .into(),
                    );
                }
                if rows.len() != self.topology.num_nodes() {
                    return bad(format!(
                        "traffic matrix has {} rows but {} has {} nodes",
                        rows.len(),
                        self.topology.label(),
                        self.topology.num_nodes()
                    ));
                }
                if let Err(e) = MatrixDest::from_rows(rows) {
                    return bad(e);
                }
            }
            _ => {}
        }
        let value = match self.load {
            Load::Lambda(v) | Load::TableRho(v) | Load::Utilization(v) => v,
        };
        if !(value > 0.0 && value.is_finite()) {
            return bad(format!("load value {value} must be positive and finite"));
        }
        if !(self.horizon > 0.0 && self.horizon.is_finite()) {
            return bad(format!(
                "horizon {} must be positive and finite",
                self.horizon
            ));
        }
        if !(self.warmup >= 0.0 && self.warmup <= self.horizon) {
            return bad(format!(
                "warmup {} must lie in [0, horizon = {}]",
                self.warmup, self.horizon
            ));
        }
        if let Some(tau) = self.slot {
            if !(tau > 0.0 && tau.is_finite()) {
                return bad(format!("slot width {tau} must be positive and finite"));
            }
        }
        if let Some(dt) = self.sample_every {
            if !(dt > 0.0 && dt.is_finite()) {
                return bad(format!("sample interval {dt} must be positive and finite"));
            }
        }
        if self.track_edge_queues && self.topology.num_edges() > STREAMING_STATS_MAX_EDGES {
            return bad(format!(
                "per-edge queue tracking materializes a vector per edge; {} has {} edges, \
                 above the streaming-stats gate of {} — run without queues=true at this scale",
                self.topology.label(),
                self.topology.num_edges(),
                STREAMING_STATS_MAX_EDGES
            ));
        }
        if let EngineSpec::Sharded { shards } = self.engine {
            if shards >= 2 && self.service == ServiceKind::Exponential {
                return bad(format!(
                    "the sharded engine with shards={shards} needs deterministic service \
                     times — its conservative lookahead is the minimum cut-edge service \
                     time, which exponential service does not bound"
                ));
            }
        }
        if let Some(faults) = &self.faults {
            if let Err(e) = faults.check(self.topology.num_nodes(), self.topology.num_edges()) {
                return bad(e);
            }
        }
        if let Some(probes) = &self.probes {
            if let Err(e) = probes.check() {
                return bad(e);
            }
        }
        if let Some(rates) = &self.service_rates {
            if rates.len() != self.topology.num_edges() {
                return bad(format!(
                    "service_rates has {} entries but {} has {} edges",
                    rates.len(),
                    self.topology.label(),
                    self.topology.num_edges()
                ));
            }
            if !rates.iter().all(|&r| r > 0.0 && r.is_finite()) {
                return bad("every service rate must be positive and finite".into());
            }
        }
        Ok(())
    }

    // ----------------------------------------------------------------
    // Running.
    // ----------------------------------------------------------------

    /// Runs the scenario once.
    ///
    /// # Panics
    ///
    /// Panics if [`Scenario::validate`] rejects the specification or the
    /// simulation fails mid-run — use [`Scenario::try_run`] to handle
    /// both as typed errors.
    #[must_use]
    pub fn run(&self) -> SimResult {
        self.run_seeded(self.seed)
    }

    /// Runs the scenario once, surfacing every failure — invalid
    /// specification, rate-solver divergence, or a structural
    /// mid-simulation [`SimError`] — as a typed [`ScenarioError`] instead
    /// of a panic.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Unsupported`]/[`ScenarioError::Parse`]
    /// when validation rejects the specification,
    /// [`ScenarioError::Convergence`] when an adaptive router's rate
    /// solver diverges, and [`ScenarioError::Sim`] when the simulation
    /// itself fails.
    pub fn try_run(&self) -> Result<SimResult, ScenarioError> {
        self.try_run_seeded(self.seed)
    }

    /// Runs `reps` independent replications in parallel (one derived seed
    /// per replication) and aggregates the headline metrics.
    ///
    /// # Panics
    ///
    /// Panics if `reps == 0` or the specification is invalid.
    #[must_use]
    pub fn run_replicated(&self, reps: usize) -> ReplicatedResult {
        assert!(reps >= 1);
        let runs: Vec<SimResult> = (0..reps)
            .into_par_iter()
            .map(|i| self.run_seeded(self.replication_seed(i)))
            .collect();
        ReplicatedResult::from_runs(runs)
    }

    /// The derived master seed of replication `i` (replication 0 uses the
    /// scenario's own seed stream: `splitmix64(seed)`).
    #[must_use]
    pub fn replication_seed(&self, i: usize) -> u64 {
        // 64-bit golden-ratio constant for full high-bit spread across
        // replication indices.
        splitmix64(self.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Panicking wrapper around [`Scenario::try_run_seeded`].
    pub(crate) fn run_seeded(&self, seed: u64) -> SimResult {
        self.try_run_seeded(seed).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The single dispatch point: maps the specification onto the concrete
    /// `NetworkSim` instantiation and runs it with `seed` as the master
    /// seed.
    ///
    /// # Errors
    ///
    /// See [`Scenario::try_run`].
    pub fn try_run_seeded(&self, seed: u64) -> Result<SimResult, ScenarioError> {
        self.validate()?;
        let net = self.net_config(seed);
        match (&self.topology, self.router, &self.traffic.pattern) {
            (TopologySpec::Mesh { rows, cols }, router, pattern) => {
                let mesh = Mesh2D::rect(*rows, *cols);
                let sat = if self.track_saturated && mesh.is_square() {
                    saturated_edges(&mesh)
                } else {
                    Vec::new()
                };
                if let Some(dest) = generic_dest_for(&mesh, pattern) {
                    return match router {
                        RouterSpec::Greedy => self.finish(mesh, GreedyXY, dest, net, &sat, None),
                        RouterSpec::Randomized => {
                            self.finish(mesh, RandomizedGreedy, dest, net, &sat, None)
                        }
                        RouterSpec::WestFirst => {
                            self.finish(mesh, WestFirst, dest, net, &sat, None)
                        }
                        RouterSpec::OddEven => self.finish(mesh, OddEven, dest, net, &sat, None),
                    };
                }
                match (router, pattern) {
                    (RouterSpec::Greedy, PatternSpec::Uniform) => {
                        self.finish(mesh, GreedyXY, UniformDest, net, &sat, None)
                    }
                    (RouterSpec::Greedy, PatternSpec::Nearby { stop }) => {
                        self.finish(mesh, GreedyXY, NearbyWalk::new(*stop), net, &sat, None)
                    }
                    (RouterSpec::Randomized, PatternSpec::Uniform) => {
                        self.finish(mesh, RandomizedGreedy, UniformDest, net, &sat, None)
                    }
                    (RouterSpec::Randomized, PatternSpec::Nearby { stop }) => self.finish(
                        mesh,
                        RandomizedGreedy,
                        NearbyWalk::new(*stop),
                        net,
                        &sat,
                        None,
                    ),
                    (RouterSpec::WestFirst, PatternSpec::Uniform) => {
                        self.finish(mesh, WestFirst, UniformDest, net, &sat, None)
                    }
                    (RouterSpec::WestFirst, PatternSpec::Nearby { stop }) => {
                        self.finish(mesh, WestFirst, NearbyWalk::new(*stop), net, &sat, None)
                    }
                    (RouterSpec::OddEven, PatternSpec::Uniform) => {
                        self.finish(mesh, OddEven, UniformDest, net, &sat, None)
                    }
                    (RouterSpec::OddEven, PatternSpec::Nearby { stop }) => {
                        self.finish(mesh, OddEven, NearbyWalk::new(*stop), net, &sat, None)
                    }
                    _ => unreachable!("validate() admits no other mesh combination"),
                }
            }
            (TopologySpec::Torus { n }, router, pattern) => {
                let torus = Torus2D::new(*n);
                match (router, generic_dest_for(&torus, pattern)) {
                    (RouterSpec::WestFirst, Some(dest)) => {
                        self.finish(torus, WestFirst, dest, net, &[], None)
                    }
                    (RouterSpec::WestFirst, None) => {
                        self.finish(torus, WestFirst, UniformDest, net, &[], None)
                    }
                    (RouterSpec::OddEven, Some(dest)) => {
                        self.finish(torus, OddEven, dest, net, &[], None)
                    }
                    (RouterSpec::OddEven, None) => {
                        self.finish(torus, OddEven, UniformDest, net, &[], None)
                    }
                    (_, Some(dest)) => self.finish(torus, TorusGreedy, dest, net, &[], None),
                    (_, None) => self.finish(torus, TorusGreedy, UniformDest, net, &[], None),
                }
            }
            (TopologySpec::Hypercube { dim }, _, pattern) => {
                let cube = Hypercube::new(*dim);
                match pattern {
                    PatternSpec::Bernoulli { p } => {
                        self.finish(cube, DimOrder, BernoulliDest::new(*p), net, &[], None)
                    }
                    other => match generic_dest_for(&cube, other) {
                        Some(dest) => self.finish(cube, DimOrder, dest, net, &[], None),
                        None => self.finish(cube, DimOrder, UniformDest, net, &[], None),
                    },
                }
            }
            (TopologySpec::Butterfly { k }, _, _) => {
                let b = Butterfly::new(*k);
                let sources: Vec<NodeId> = (0..b.rows()).map(|w| b.node(0, w)).collect();
                self.finish(b, ButterflyRouter, ButterflyOutput, net, &[], Some(sources))
            }
            (TopologySpec::MeshKd { dims }, _, pattern) => {
                let kd = MeshKD::new(dims);
                match generic_dest_for(&kd, pattern) {
                    Some(dest) => self.finish(kd, KdGreedy, dest, net, &[], None),
                    None => self.finish(kd, KdGreedy, UniformDest, net, &[], None),
                }
            }
        }
    }

    fn net_config(&self, seed: u64) -> NetConfig {
        NetConfig {
            lambda: self.lambda(),
            horizon: self.horizon,
            warmup: self.warmup,
            seed,
            service: self.service,
            include_self_packets: self.include_self_packets,
            slot: self.slot,
            sample_every: self.sample_every,
            delay_quantiles: self.delay_quantiles,
            track_edge_queues: self.track_edge_queues,
            probes: self.probes,
            engine: self.engine,
        }
    }

    fn finish<T, R, D>(
        &self,
        topo: T,
        router: R,
        dest: D,
        net: NetConfig,
        sat: &[EdgeId],
        sources: Option<Vec<NodeId>>,
    ) -> Result<SimResult, ScenarioError>
    where
        T: Topology + Sync,
        R: Router<T> + Sync,
        D: DestSampler<T> + Sync,
    {
        let lambda = net.lambda;
        let seed = net.seed;
        let plan = match &self.faults {
            Some(spec) => FaultPlan::materialize(spec, seed, &topo),
            None => FaultPlan::default(),
        };
        let mut sim = NetworkSim::new(topo, router, dest, net);
        if !plan.is_empty() {
            sim = sim.with_fault_plan(plan);
        }
        if let Some(s) = sources {
            sim = sim.with_sources(s);
        }
        if let Some(weights) = self.source_weights() {
            sim = sim.with_source_rates(weights.into_iter().map(|w| w * lambda).collect());
        }
        if !sat.is_empty() {
            sim = sim.with_saturated_edges(sat);
        }
        if let Some(rates) = &self.service_rates {
            sim = sim.with_service_rates(rates.clone());
        }
        sim.try_run().map_err(ScenarioError::Sim)
    }

    // ----------------------------------------------------------------
    // Spec strings.
    // ----------------------------------------------------------------

    /// Parses a compact scenario spec of the form
    /// `"<topology>:<size>[,key=value]…"`, e.g.
    /// `"torus:8,util=0.9,horizon=5000,seed=7"`,
    /// `"mesh:8,traffic=transpose,util=0.5"` or
    /// `"hypercube:20 traffic=shuffle load=rho:0.5"` — fields separate on
    /// commas and/or whitespace, so a quoted shell argument with spaces is
    /// one valid spec.
    ///
    /// Recognized keys: `router=greedy|randomized|westfirst|oddeven`,
    /// `traffic=uniform|nearby:<stop>|bernoulli:<p>|transpose|bitrev|`
    /// `bitcomp|shuffle|hotspot:<frac>[:<node>]` (with `dest=` kept as a
    /// pre-PR-5 alias), `src=uniform|hotspot:<weight>[:<node>]`, exactly
    /// one of `lambda=`/`rho=`/`util=` (or the explicit spelling
    /// `load=lambda:<v>|rho:<v>|util:<v>`), and `horizon=`, `warmup=`,
    /// `seed=`, `service=det|exp`, `slot=`, `sample=`, `self=`,
    /// `saturated=`, `quantiles=`, `queues=` (booleans take
    /// `true`/`false`), `faults=…|none`,
    /// `probes=<series>[,<series>…][@<dt>]|none` (series from `nsys`,
    /// `maxq`, `drops`, `delivered`, `shards` — see
    /// [`ProbeSpec::parse_token`]), `engine=auto|heap|calendar|sharded:<N>`
    /// and `shards=<N>` (shorthand for the sharded engine). Per-edge
    /// `service_rates`, per-source rate vectors and traffic matrices have
    /// no spec syntax — set them on the builder.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Parse`] for malformed input and
    /// [`ScenarioError::Unsupported`] when the parsed combination fails
    /// [`Scenario::validate`].
    pub fn parse(spec: &str) -> Result<Self, ScenarioError> {
        let mut raw = spec
            .split(|c: char| c == ',' || c.is_whitespace())
            .filter(|p| !p.is_empty());
        let head = raw.next().unwrap_or_default().trim();
        let mut sc = Scenario::new(TopologySpec::parse_head(head)?);
        // `probes=` is the one clause whose value is itself
        // comma-joined (`probes=nsys,maxq`), so the comma split above
        // fragments it. Re-attach any `=`-less fragment to a directly
        // preceding `probes=` part; everywhere else a part without `=`
        // stays a parse error.
        let mut parts: Vec<String> = Vec::new();
        for part in raw {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            if !part.contains('=') {
                if let Some(prev) = parts.last_mut() {
                    if prev.starts_with("probes=") {
                        prev.push(',');
                        prev.push_str(part);
                        continue;
                    }
                }
            }
            parts.push(part.to_string());
        }
        let mut load_seen = false;
        let f64_of = |key: &str, v: &str| -> Result<f64, ScenarioError> {
            v.parse::<f64>()
                .map_err(|_| ScenarioError::parse(format!("bad number `{v}` for `{key}`")))
        };
        let bool_of = |key: &str, v: &str| -> Result<bool, ScenarioError> {
            match v {
                "true" => Ok(true),
                "false" => Ok(false),
                _ => Err(ScenarioError::parse(format!(
                    "bad boolean `{v}` for `{key}` (expected true or false)"
                ))),
            }
        };
        for part in &parts {
            let part = part.as_str();
            let (key, value) = part.split_once('=').ok_or_else(|| {
                ScenarioError::parse(format!("expected `key=value`, got `{part}`"))
            })?;
            match key {
                "router" => {
                    sc.router = RouterSpec::parse_token(value).map_err(ScenarioError::parse)?;
                }
                // `dest=` is the pre-PR-5 spelling; both keys accept the
                // full pattern grammar.
                "traffic" | "dest" => {
                    sc.traffic.pattern =
                        PatternSpec::parse_token(value).map_err(ScenarioError::parse)?;
                }
                "src" => {
                    sc.traffic.source =
                        SourceSpec::parse_token(value).map_err(ScenarioError::parse)?;
                }
                "lambda" | "rho" | "util" => {
                    if load_seen {
                        return Err(ScenarioError::parse(format!(
                            "`{key}` conflicts with an earlier load key — give exactly \
                             one of lambda=, rho= or util="
                        )));
                    }
                    load_seen = true;
                    let v = f64_of(key, value)?;
                    sc.load = match key {
                        "lambda" => Load::Lambda(v),
                        "rho" => Load::TableRho(v),
                        _ => Load::Utilization(v),
                    };
                }
                // The explicit spelling `load=<convention>:<value>`.
                "load" => {
                    if load_seen {
                        return Err(ScenarioError::parse(
                            "`load` conflicts with an earlier load key — give exactly \
                             one of lambda=, rho=, util= or load="
                                .into(),
                        ));
                    }
                    load_seen = true;
                    let (conv, num) = value.split_once(':').ok_or_else(|| {
                        ScenarioError::parse(format!(
                            "expected `load=<convention>:<value>`, got `load={value}`"
                        ))
                    })?;
                    let v = f64_of(key, num)?;
                    sc.load = match conv {
                        "lambda" => Load::Lambda(v),
                        "rho" => Load::TableRho(v),
                        "util" => Load::Utilization(v),
                        other => {
                            return Err(ScenarioError::parse(format!(
                                "unknown load convention `{other}` (expected lambda, rho \
                                 or util)"
                            )))
                        }
                    };
                }
                "horizon" => sc.horizon = f64_of(key, value)?,
                "warmup" => sc.warmup = f64_of(key, value)?,
                "seed" => {
                    sc.seed = value
                        .parse::<u64>()
                        .map_err(|_| ScenarioError::parse(format!("bad seed `{value}`")))?;
                }
                "service" => {
                    sc.service = match value {
                        "det" | "deterministic" => ServiceKind::Deterministic,
                        "exp" | "exponential" => ServiceKind::Exponential,
                        _ => {
                            return Err(ScenarioError::parse(format!(
                                "unknown service `{value}` (expected det or exp)"
                            )))
                        }
                    };
                }
                "slot" => sc.slot = Some(f64_of(key, value)?),
                "sample" => sc.sample_every = Some(f64_of(key, value)?),
                "self" => sc.include_self_packets = bool_of(key, value)?,
                "saturated" => sc.track_saturated = bool_of(key, value)?,
                "quantiles" => sc.delay_quantiles = bool_of(key, value)?,
                "queues" => sc.track_edge_queues = bool_of(key, value)?,
                "faults" => {
                    sc.faults = FaultSpec::parse_token(value).map_err(ScenarioError::parse)?;
                }
                "probes" => {
                    sc.probes = ProbeSpec::parse_token(value).map_err(ScenarioError::parse)?;
                }
                "engine" => {
                    sc.engine = EngineSpec::parse_str(value).map_err(ScenarioError::parse)?
                }
                // Shorthand for `engine=sharded:<N>`.
                "shards" => {
                    let shards =
                        value
                            .parse::<usize>()
                            .ok()
                            .filter(|&n| n >= 1)
                            .ok_or_else(|| {
                                ScenarioError::parse(format!(
                                    "`shards` needs a count >= 1, got `{value}`"
                                ))
                            })?;
                    sc.engine = EngineSpec::Sharded { shards };
                }
                other => {
                    return Err(ScenarioError::parse(format!("unknown key `{other}`")));
                }
            }
        }
        sc.validate()?;
        Ok(sc)
    }

    /// Renders the scenario as a spec string that [`Scenario::parse`]
    /// accepts; non-default knobs only. The lossy fields are
    /// `service_rates`, `SourceSpec::Rates` vectors and
    /// `PatternSpec::Matrix` matrices, which have no spec syntax (a
    /// per-edge or per-pair table does not fit a one-line spec) and are
    /// omitted.
    #[must_use]
    pub fn spec_string(&self) -> String {
        let mut s = self.topology.spec_head();
        if self.router != RouterSpec::Greedy {
            s.push_str(&format!(",router={}", self.router.as_str()));
        }
        if self.traffic.pattern != PatternSpec::Uniform {
            if let Some(token) = self.traffic.pattern.spec_token() {
                s.push_str(&format!(",traffic={token}"));
            }
        }
        if !self.traffic.source.is_uniform() {
            if let Some(token) = self.traffic.source.spec_token() {
                s.push_str(&format!(",src={token}"));
            }
        }
        match self.load {
            Load::Lambda(l) => s.push_str(&format!(",lambda={l}")),
            Load::TableRho(r) => s.push_str(&format!(",rho={r}")),
            Load::Utilization(u) => s.push_str(&format!(",util={u}")),
        }
        let (default_horizon, default_warmup) = default_horizon_for(&self.topology);
        if self.horizon != default_horizon {
            s.push_str(&format!(",horizon={}", self.horizon));
        }
        if self.warmup != default_warmup {
            s.push_str(&format!(",warmup={}", self.warmup));
        }
        if self.seed != DEFAULT_SEED {
            s.push_str(&format!(",seed={}", self.seed));
        }
        if self.service == ServiceKind::Exponential {
            s.push_str(",service=exp");
        }
        if let Some(tau) = self.slot {
            s.push_str(&format!(",slot={tau}"));
        }
        if let Some(dt) = self.sample_every {
            s.push_str(&format!(",sample={dt}"));
        }
        if !self.include_self_packets {
            s.push_str(",self=false");
        }
        if self.track_saturated {
            s.push_str(",saturated=true");
        }
        if self.delay_quantiles {
            s.push_str(",quantiles=true");
        }
        if self.track_edge_queues {
            s.push_str(",queues=true");
        }
        if let Some(faults) = &self.faults {
            s.push_str(&format!(",faults={}", faults.spec_token()));
        }
        if let Some(probes) = &self.probes {
            s.push_str(&format!(",probes={}", probes.spec_token()));
        }
        match self.engine {
            EngineSpec::Auto => {}
            EngineSpec::Sharded { shards } => s.push_str(&format!(",shards={shards}")),
            other => s.push_str(&format!(",engine={}", other.as_str())),
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_topology_runs_end_to_end() {
        let scenarios = [
            Scenario::mesh(4),
            Scenario::mesh_rect(3, 5),
            Scenario::torus(4),
            Scenario::hypercube(4),
            Scenario::butterfly(3),
            Scenario::mesh_kd(&[3, 3, 3]),
        ];
        for sc in scenarios {
            let res = sc
                .clone()
                .load(Load::Lambda(0.05))
                .horizon(600.0)
                .warmup(60.0)
                .run();
            assert!(res.completed > 0, "{} delivered nothing", sc.label());
            assert!(res.avg_delay > 0.0, "{}", sc.label());
        }
    }

    #[test]
    fn mesh_scenario_matches_direct_network_sim() {
        let sc = Scenario::mesh(5)
            .load(Load::Lambda(0.12))
            .horizon(900.0)
            .warmup(90.0)
            .seed(11);
        let via_scenario = sc.run();
        let direct = NetworkSim::new(
            Mesh2D::square(5),
            GreedyXY,
            UniformDest,
            NetConfig {
                lambda: 0.12,
                horizon: 900.0,
                warmup: 90.0,
                seed: 11,
                ..NetConfig::default()
            },
        )
        .run();
        assert_eq!(via_scenario.avg_delay.to_bits(), direct.avg_delay.to_bits());
        assert_eq!(via_scenario.generated, direct.generated);
    }

    #[test]
    fn load_conventions_resolve_per_topology() {
        // Square mesh keeps Table I's λ = 4ρ/n.
        let mesh = Scenario::mesh(10).load(Load::TableRho(0.8));
        assert!((mesh.lambda() - 0.32).abs() < 1e-12);
        // Hypercube utilization: λp = ρ.
        let hc = Scenario::hypercube(6)
            .pattern(PatternSpec::Bernoulli { p: 0.25 })
            .load(Load::Utilization(0.5));
        assert!((hc.lambda() - 2.0).abs() < 1e-12);
        assert!((hc.peak_utilization() - 0.5).abs() < 1e-12);
        // Butterfly: λ/2 = ρ.
        let bf = Scenario::butterfly(4).load(Load::Utilization(0.7));
        assert!((bf.lambda() - 1.4).abs() < 1e-12);
        // Torus: TableRho coincides with utilization.
        let t1 = Scenario::torus(8).load(Load::TableRho(0.6));
        let t2 = Scenario::torus(8).load(Load::Utilization(0.6));
        assert_eq!(t1.lambda().to_bits(), t2.lambda().to_bits());
    }

    #[test]
    fn mean_distance_closed_forms() {
        assert!((Scenario::mesh(5).mean_distance() - 3.2).abs() < 1e-12);
        assert!((Scenario::torus(4).mean_distance() - 2.0).abs() < 1e-12);
        assert!((Scenario::hypercube(6).mean_distance() - 3.0).abs() < 1e-12);
        assert!((Scenario::butterfly(5).mean_distance() - 5.0).abs() < 1e-12);
        // k-d mesh: Σ (m²−1)/3m, and a [n, n] mesh equals the 2-D formula.
        let kd = Scenario::mesh_kd(&[5, 5]);
        assert!((kd.mean_distance() - 3.2).abs() < 1e-12);
    }

    #[test]
    fn nearby_mean_distance_below_uniform() {
        let uniform = Scenario::mesh(6).mean_distance();
        let nearby = Scenario::mesh(6)
            .traffic(TrafficSpec::nearby(0.5))
            .mean_distance();
        assert!(nearby < uniform, "nearby {nearby} vs uniform {uniform}");
    }

    #[test]
    fn pattern_mean_distances_follow_geometry() {
        // Bit-complement on an n×n mesh: every source travels
        // (n−1−2r)+(n−1−2c) ... averaged = 2·mean|n−1−2c| over c.
        let n = 8usize;
        let per_axis: f64 = (0..n)
            .map(|c| (n as f64 - 1.0 - 2.0 * c as f64).abs())
            .sum::<f64>()
            / n as f64;
        let got = Scenario::mesh(n)
            .traffic(TrafficSpec::bit_complement())
            .mean_distance();
        assert!((got - 2.0 * per_axis).abs() < 1e-9, "{got}");
        // Transpose mean distance: E|r − c| × 2 over uniform (r, c).
        let mut sum = 0.0;
        for r in 0..n {
            for c in 0..n {
                sum += 2.0 * r.abs_diff(c) as f64;
            }
        }
        let expect = sum / (n * n) as f64;
        let got = Scenario::mesh(n)
            .traffic(TrafficSpec::transpose())
            .mean_distance();
        assert!((got - expect).abs() < 1e-9, "{got} vs {expect}");
    }

    #[test]
    fn hotspot_and_weighted_sources_resolve_utilization_loads() {
        // Peak utilization must hit the requested ρ exactly, computed from
        // the workload's actual rate vector.
        for sc in [
            Scenario::mesh(6)
                .traffic(TrafficSpec::hotspot(0.3))
                .load(Load::Utilization(0.6)),
            Scenario::mesh(6)
                .traffic(TrafficSpec::transpose())
                .load(Load::Utilization(0.6)),
            Scenario::torus(4)
                .traffic(TrafficSpec::bit_complement())
                .load(Load::Utilization(0.6)),
            Scenario::mesh(5)
                .source(SourceSpec::Hotspot {
                    node: None,
                    weight: 5.0,
                })
                .load(Load::Utilization(0.6)),
        ] {
            sc.validate().unwrap();
            assert!(
                (sc.peak_utilization() - 0.6).abs() < 1e-9,
                "{}: {}",
                sc.spec_string(),
                sc.peak_utilization()
            );
            let rates = sc.edge_rates();
            let peak = rates.iter().fold(0.0f64, |a, &b| a.max(b));
            assert!((peak - 0.6).abs() < 1e-9, "{}", sc.spec_string());
        }
    }

    #[test]
    fn transpose_stresses_the_mesh_less_than_uniform_per_unit_lambda() {
        // The transpose pattern's peak edge rate differs from uniform's;
        // stability thresholds must reflect the actual pattern.
        let uniform = Scenario::mesh(8).stability_lambda();
        let transpose = Scenario::mesh(8)
            .traffic(TrafficSpec::transpose())
            .stability_lambda();
        assert!(transpose > 0.0 && uniform > 0.0);
        assert_ne!(transpose.to_bits(), uniform.to_bits());
    }

    #[test]
    fn matrix_workload_rates_match_the_matrix() {
        // A 2×2 mesh with a single flow 0 → 3 (one right edge + one down
        // edge, rate = λ·weight of the lone source).
        let n_nodes = 4;
        let mut rows = vec![vec![0.0; n_nodes]; n_nodes];
        rows[0][3] = 2.0;
        let sc = Scenario::mesh(2)
            .traffic(TrafficSpec::matrix(rows))
            .load(Load::Lambda(0.1));
        sc.validate().unwrap();
        let rates = sc.edge_rates();
        // Mean per-source rate 0.1 over 4 sources → total γ = 0.4, all of
        // it from source 0, route length 2 → Σ rates = 0.8.
        assert!((total_rate(&rates) - 0.8).abs() < 1e-12);
        let positive = rates.iter().filter(|&&r| r > 0.0).count();
        assert_eq!(positive, 2);
        assert!((sc.mean_distance() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn edge_rates_match_closed_forms() {
        // Torus direction split matches the closed form used by the bounds.
        let sc = Scenario::torus(5).load(Load::Lambda(0.2));
        let rates = sc.edge_rates();
        let (pos, neg) = torus_row_rates(5, 0.2);
        let max = rates.iter().cloned().fold(0.0, f64::max);
        let min = rates.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!((max - pos).abs() < 1e-12 && (min - neg).abs() < 1e-12);
        // Square-mesh closed form agrees with enumeration via the rect path.
        let closed = Scenario::mesh(4).load(Load::Lambda(0.1)).edge_rates();
        let enumerated = Scenario::mesh_rect(4, 4)
            .load(Load::Lambda(0.1))
            .edge_rates();
        for (a, b) in closed.iter().zip(&enumerated) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn validate_rejects_bad_combinations() {
        assert!(Scenario::torus(8)
            .router(RouterSpec::Randomized)
            .validate()
            .is_err());
        // Adaptive routers need a topology with a 2-D turn model; the
        // rejection is a typed Unsupported error, not a panic.
        for router in [RouterSpec::WestFirst, RouterSpec::OddEven] {
            for sc in [
                Scenario::hypercube(4).router(router),
                Scenario::butterfly(3).router(router),
                Scenario::mesh_kd(&[3, 3, 3]).router(router),
            ] {
                match sc.validate() {
                    Err(ScenarioError::Unsupported(msg)) => {
                        assert!(msg.contains(router.as_str()), "{msg}");
                    }
                    other => panic!("expected Unsupported, got {other:?}"),
                }
            }
            assert!(Scenario::mesh(4).router(router).validate().is_ok());
            assert!(Scenario::torus(4).router(router).validate().is_ok());
        }
        assert!(Scenario::hypercube(4)
            .traffic(TrafficSpec::nearby(0.5))
            .validate()
            .is_err());
        assert!(Scenario::mesh(4)
            .traffic(TrafficSpec::bernoulli(0.5))
            .validate()
            .is_err());
        assert!(Scenario::mesh(4)
            .load(Load::Lambda(-1.0))
            .validate()
            .is_err());
        assert!(Scenario::mesh(1).validate().is_err());
        assert!(Scenario::mesh(4)
            .service_rates(vec![1.0; 3])
            .validate()
            .is_err());
        assert!(Scenario::mesh(4).validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_workloads() {
        // Transpose needs a square array.
        assert!(Scenario::mesh_rect(3, 5)
            .traffic(TrafficSpec::transpose())
            .validate()
            .is_err());
        // Bit reversal needs power-of-two extents.
        assert!(Scenario::mesh(5)
            .traffic(TrafficSpec::bit_reversal())
            .validate()
            .is_err());
        // Odd-dimension hypercube has no transpose.
        assert!(Scenario::hypercube(5)
            .traffic(TrafficSpec::transpose())
            .validate()
            .is_err());
        // The butterfly takes no pattern at all.
        assert!(Scenario::butterfly(3)
            .traffic(TrafficSpec::hotspot(0.2))
            .validate()
            .is_err());
        // Hotspot fraction and node must be in range.
        assert!(Scenario::mesh(4)
            .traffic(TrafficSpec::hotspot(0.0))
            .validate()
            .is_err());
        assert!(Scenario::mesh(4)
            .traffic(TrafficSpec::hotspot_at(0.2, 99))
            .validate()
            .is_err());
        // Source hotspot index out of range; zero weight.
        assert!(Scenario::mesh(4)
            .source(SourceSpec::Hotspot {
                node: Some(16),
                weight: 2.0
            })
            .validate()
            .is_err());
        assert!(Scenario::mesh(4)
            .source(SourceSpec::Rates {
                rates: vec![0.0; 16]
            })
            .validate()
            .is_err());
        // Matrices must be square, node-count sized, and ride uniform
        // sources.
        assert!(Scenario::mesh(4)
            .traffic(TrafficSpec::matrix(vec![vec![1.0; 3]; 3]))
            .validate()
            .is_err());
        assert!(Scenario::mesh(2)
            .traffic(
                TrafficSpec::matrix(vec![vec![1.0; 4]; 4]).sources(SourceSpec::Hotspot {
                    node: None,
                    weight: 2.0
                })
            )
            .validate()
            .is_err());
        // And the supported shapes pass.
        assert!(Scenario::mesh(4)
            .traffic(TrafficSpec::transpose())
            .validate()
            .is_ok());
        assert!(Scenario::mesh(8)
            .traffic(TrafficSpec::bit_reversal())
            .validate()
            .is_ok());
        assert!(Scenario::hypercube(6)
            .traffic(TrafficSpec::shuffle())
            .validate()
            .is_ok());
        assert!(Scenario::torus(5)
            .traffic(TrafficSpec::hotspot(0.5))
            .validate()
            .is_ok());
        assert!(Scenario::butterfly(3)
            .source(SourceSpec::Hotspot {
                node: Some(0),
                weight: 3.0
            })
            .validate()
            .is_ok());
    }

    #[test]
    fn replication_seeds_have_high_bit_spread() {
        // The 64-bit golden-ratio multiplier must separate consecutive
        // replication indices in the high bits before splitmix finishes
        // the job.
        let sc = Scenario::mesh(4);
        let seeds: Vec<u64> = (0..64).map(|i| sc.replication_seed(i)).collect();
        for (i, &a) in seeds.iter().enumerate() {
            for &b in &seeds[i + 1..] {
                assert_ne!(a, b);
                // High 32 bits must differ too — the 32-bit constant left
                // them correlated before mixing.
                assert_ne!(a >> 32, b >> 32, "high bits collide: {a:x} vs {b:x}");
            }
        }
    }

    #[test]
    fn spec_round_trips() {
        let scenarios = [
            Scenario::mesh(8).load(Load::TableRho(0.9)),
            Scenario::mesh_rect(3, 7).load(Load::Lambda(0.05)).seed(9),
            Scenario::torus(8)
                .load(Load::Utilization(0.9))
                .horizon(5_000.0),
            Scenario::hypercube(6)
                .traffic(TrafficSpec::bernoulli(0.25))
                .load(Load::Lambda(0.8))
                .service(ServiceKind::Exponential),
            Scenario::butterfly(4)
                .load(Load::Utilization(0.6))
                .warmup(50.0),
            Scenario::mesh_kd(&[3, 4, 5])
                .load(Load::Lambda(0.02))
                .slot(1.0),
            Scenario::mesh(5)
                .router(RouterSpec::Randomized)
                .traffic(TrafficSpec::nearby(0.5))
                .load(Load::Lambda(0.1))
                .track_saturated(true)
                .include_self_packets(false)
                .delay_quantiles(true),
            Scenario::mesh(8)
                .traffic(TrafficSpec::transpose())
                .load(Load::Utilization(0.5)),
            Scenario::mesh(8)
                .traffic(TrafficSpec::bit_reversal())
                .load(Load::Lambda(0.05)),
            Scenario::torus(4)
                .traffic(TrafficSpec::shuffle())
                .load(Load::Lambda(0.1)),
            Scenario::mesh(6)
                .traffic(TrafficSpec::hotspot(0.25))
                .load(Load::Lambda(0.02)),
            Scenario::mesh(6)
                .traffic(TrafficSpec::hotspot_at(0.4, 7))
                .load(Load::Lambda(0.02)),
            Scenario::mesh(5)
                .source(SourceSpec::Hotspot {
                    node: None,
                    weight: 4.0,
                })
                .load(Load::Lambda(0.05)),
            Scenario::hypercube(6)
                .traffic(TrafficSpec::bit_complement())
                .load(Load::Utilization(0.3)),
            Scenario::mesh(6)
                .load(Load::TableRho(0.4))
                .engine(EngineSpec::Heap),
            Scenario::torus(5)
                .load(Load::Utilization(0.3))
                .engine(EngineSpec::Calendar),
            Scenario::mesh(6)
                .router(RouterSpec::WestFirst)
                .load(Load::Lambda(0.05)),
            Scenario::torus(6)
                .router(RouterSpec::OddEven)
                .traffic(TrafficSpec::transpose())
                .load(Load::Utilization(0.4)),
        ];
        for sc in scenarios {
            let spec = sc.spec_string();
            let parsed = Scenario::parse(&spec).unwrap_or_else(|e| panic!("`{spec}`: {e}"));
            assert_eq!(parsed, sc, "round trip failed for `{spec}`");
        }
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for spec in [
            "",
            "mesh",
            "ring:8",
            "mesh:0",
            "mesh:4x",
            "kd:3x1x3",
            "mesh:4,router=quantum",
            "mesh:4,dest=nearby",
            "mesh:4,speed=9",
            "mesh:4,lambda=fast",
            "torus:8,router=randomized",
            "hypercube:4,router=oddeven",
            "butterfly:3,router=westfirst",
            "kd:3x3x3,router=oddeven",
            "mesh:4,router=eastlast",
            "mesh:4,seed=-1",
            "mesh:4,engine=quantum",
            "mesh:4,traffic=warp",
            "mesh:4,traffic=hotspot",
            "mesh:3x5,traffic=transpose",
            "mesh:5,traffic=bitrev",
            "mesh:4,src=hotspot",
            "mesh:4,src=rates",
            "butterfly:3,traffic=transpose",
            "mesh:4,load=0.5",
            "mesh:4,load=parsecs:0.5",
            "mesh:4,load=rho:0.5,util=0.5",
            "mesh:4,lambda=0.1,load=rho:0.5",
        ] {
            assert!(Scenario::parse(spec).is_err(), "`{spec}` should not parse");
        }
    }

    #[test]
    fn butterfly_permutation_is_a_typed_error_not_a_panic() {
        // Regression: this used to reach `generic_dest_for`'s panic path
        // through run(); validation must reject it up front — in both the
        // comma and whitespace spellings.
        for spec in [
            "butterfly:3,traffic=transpose",
            "butterfly:3 traffic=transpose",
        ] {
            match Scenario::parse(spec) {
                Err(ScenarioError::Unsupported(msg)) => {
                    assert!(msg.contains("butterfly"), "`{spec}`: {msg}")
                }
                other => panic!("`{spec}`: expected Unsupported, got {other:?}"),
            }
        }
    }

    #[test]
    fn whitespace_and_load_key_parse() {
        let sc = Scenario::parse("hypercube:6 traffic=shuffle load=rho:0.5").unwrap();
        assert_eq!(sc.topology, TopologySpec::Hypercube { dim: 6 });
        assert_eq!(
            sc.traffic.pattern,
            PatternSpec::Permutation {
                kind: PermutationKind::Shuffle
            }
        );
        assert_eq!(sc.load, Load::TableRho(0.5));
        // Equivalent to the comma spelling with the short load key.
        let comma = Scenario::parse("hypercube:6,traffic=shuffle,rho=0.5").unwrap();
        assert_eq!(sc, comma);
        // Mixed separators and the other conventions.
        let sc = Scenario::parse("torus:8, traffic=transpose load=util:0.4 seed=3").unwrap();
        assert_eq!(sc.load, Load::Utilization(0.4));
        assert_eq!(sc.seed, 3);
        let sc = Scenario::parse("mesh:5 load=lambda:0.12").unwrap();
        assert_eq!(sc.load, Load::Lambda(0.12));
    }

    #[test]
    fn large_topologies_default_to_the_short_horizon() {
        let small = Scenario::hypercube(10);
        assert_eq!(
            (small.horizon, small.warmup),
            (DEFAULT_HORIZON, DEFAULT_WARMUP)
        );
        let big = Scenario::hypercube(16);
        assert_eq!(
            (big.horizon, big.warmup),
            (LARGE_DEFAULT_HORIZON, LARGE_DEFAULT_WARMUP)
        );
        // spec_string stays minimal at the per-topology default and
        // round-trips an explicit override.
        assert!(!big.spec_string().contains("horizon="));
        let long = big.horizon(2_000.0).warmup(200.0);
        let spec = long.spec_string();
        assert!(spec.contains("horizon=2000"), "{spec}");
        assert_eq!(Scenario::parse(&spec).unwrap(), long);
    }

    #[test]
    fn silent_sources_counted_for_matrices_only() {
        let rows = vec![
            vec![0.0, 1.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 0.0],
            vec![1.0, 0.0, 0.0, 0.0],
        ];
        let sc = Scenario::mesh(2).pattern(PatternSpec::Matrix { rows });
        sc.validate().unwrap();
        assert_eq!(sc.silent_sources(), 2);
        assert_eq!(Scenario::mesh(4).silent_sources(), 0);
        assert_eq!(
            Scenario::mesh(4)
                .traffic(TrafficSpec::hotspot(0.5))
                .silent_sources(),
            0
        );
    }

    #[test]
    fn parse_accepts_the_readme_examples() {
        let sc = Scenario::parse("torus:8,util=0.9,horizon=5000,seed=7").unwrap();
        assert_eq!(sc.topology, TopologySpec::Torus { n: 8 });
        assert_eq!(sc.seed, 7);
        assert!(sc.lambda() > 0.0);
        let sc = Scenario::parse("hypercube:6,dest=bernoulli:0.25,lambda=0.8").unwrap();
        assert_eq!(sc.traffic.pattern, PatternSpec::Bernoulli { p: 0.25 });
        // The `dest=` spelling is a pre-PR-5 alias for `traffic=`.
        let via_traffic = Scenario::parse("hypercube:6,traffic=bernoulli:0.25,lambda=0.8").unwrap();
        assert_eq!(via_traffic, sc);
        let sc = Scenario::parse("mesh:8,traffic=transpose,util=0.5,src=hotspot:4:0").unwrap();
        assert_eq!(
            sc.traffic.pattern,
            PatternSpec::Permutation {
                kind: PermutationKind::Transpose
            }
        );
        assert_eq!(
            sc.traffic.source,
            SourceSpec::Hotspot {
                node: Some(0),
                weight: 4.0
            }
        );
    }

    #[test]
    fn shards_key_round_trips_through_spec_strings() {
        let sc = Scenario::parse("mesh:6,rho=0.4,shards=4").unwrap();
        assert_eq!(sc.engine, EngineSpec::Sharded { shards: 4 });
        let spec = sc.spec_string();
        assert!(spec.ends_with(",shards=4"), "{spec}");
        assert_eq!(Scenario::parse(&spec).unwrap(), sc);
        // The long spelling resolves to the same scenario.
        let long = Scenario::parse("mesh:6,rho=0.4,engine=sharded:4").unwrap();
        assert_eq!(long, sc);
        assert!(Scenario::parse("mesh:6,shards=0").is_err());
        assert!(Scenario::parse("mesh:6,shards=two").is_err());
    }

    #[test]
    fn faults_clause_round_trips_and_validates() {
        let sc = Scenario::parse("mesh:6,rho=0.4,faults=links:0.05+at:100+repair:200").unwrap();
        let faults = sc.faults.clone().expect("faults parsed");
        assert_eq!(faults.spec_token(), "links:0.05+at:100+repair:200");
        let spec = sc.spec_string();
        assert!(
            spec.contains(",faults=links:0.05+at:100+repair:200"),
            "{spec}"
        );
        assert_eq!(Scenario::parse(&spec).unwrap(), sc);
        // The faults clause stays ahead of the engine clause so the engine
        // suffix contract (`…,shards=N`) holds for faulted specs too.
        let sharded = Scenario::parse("mesh:6,rho=0.4,faults=links:0.05,shards=4").unwrap();
        let spec = sharded.spec_string();
        assert!(spec.ends_with(",shards=4"), "{spec}");
        assert_eq!(Scenario::parse(&spec).unwrap(), sharded);
        // `faults=none` is the explicit healthy spelling and is not
        // emitted back.
        let none = Scenario::parse("mesh:6,rho=0.4,faults=none").unwrap();
        assert_eq!(none.faults, None);
        assert!(
            !none.spec_string().contains("faults"),
            "{}",
            none.spec_string()
        );
        // Out-of-range rates and ids are typed errors.
        assert!(Scenario::parse("mesh:4,faults=links:1.5").is_err());
        assert!(Scenario::parse("mesh:4,faults=link:9999").is_err());
        assert!(Scenario::parse("mesh:4,faults=node:400").is_err());
        assert!(Scenario::parse("mesh:4,faults=warp:0.1").is_err());
    }

    #[test]
    fn faulted_scenario_reports_degraded_delivery() {
        let sc = Scenario::parse("mesh:6,lambda=0.1,faults=links:0.1,horizon=800,warmup=80,seed=5")
            .unwrap();
        let a = sc.try_run().unwrap();
        let b = sc.try_run().unwrap();
        assert!(a.dropped.total() > 0, "no drops under links:0.1");
        assert!(a.delivered_fraction < 1.0 && a.delivered_fraction > 0.0);
        assert_eq!(a.dropped, b.dropped);
        assert_eq!(a.avg_delay.to_bits(), b.avg_delay.to_bits());
    }

    #[test]
    fn sharded_engine_rejects_exponential_service() {
        let err = Scenario::parse("mesh:6,rho=0.4,shards=4,service=exp").unwrap_err();
        assert!(err.to_string().contains("deterministic service"), "{err}");
        // A single shard has no cut edges, so exponential service is fine.
        assert!(Scenario::parse("mesh:6,rho=0.4,shards=1,service=exp").is_ok());
    }

    #[test]
    fn unit_rate_cache_hit_is_bit_identical_to_the_cold_path() {
        // Two equal scenarios: the second `edge_rates` call is a cache
        // hit (same topology/router/traffic key); the uncached path must
        // agree bit for bit.
        let sc = Scenario::mesh(7).traffic(TrafficSpec::transpose());
        let cold = sc.unit_rates_uncached().unwrap();
        let warm = sc.unit_rates().unwrap();
        let hit = sc.unit_rates().unwrap();
        assert_eq!(cold.len(), warm.len());
        for ((a, b), c) in cold.iter().zip(&warm).zip(&hit) {
            assert_eq!(a.to_bits(), b.to_bits());
            assert_eq!(a.to_bits(), c.to_bits());
        }
    }

    #[test]
    fn adaptive_routers_run_end_to_end_from_spec_strings() {
        for spec in [
            "mesh:5,router=westfirst,lambda=0.05,horizon=300,warmup=30",
            "mesh:5,router=oddeven,traffic=transpose,util=0.4,horizon=300,warmup=30",
            "torus:5,router=westfirst,util=0.3,horizon=300,warmup=30",
            "torus:5,router=oddeven,lambda=0.05,horizon=300,warmup=30",
        ] {
            let sc = Scenario::parse(spec).unwrap_or_else(|e| panic!("`{spec}`: {e}"));
            let result = sc.run();
            assert!(result.completed > 0, "`{spec}` moved no packets");
            assert!(result.avg_delay.is_finite());
        }
    }

    #[test]
    fn adaptive_rates_come_from_the_fixed_point_solver() {
        // The solved vector must satisfy the conservation law
        // Σ_e λ_e = λ · Σ_s E[route length | s] — adaptive turn-model
        // routes are minimal, so the closed-form mean distance applies.
        for router in [RouterSpec::WestFirst, RouterSpec::OddEven] {
            for sc in [
                Scenario::mesh(6).router(router).load(Load::Lambda(0.2)),
                Scenario::torus(5).router(router).load(Load::Lambda(0.2)),
            ] {
                let rates = sc.try_edge_rates().unwrap();
                assert_eq!(rates.len(), sc.topology.num_edges());
                assert!(rates.iter().all(|r| r.is_finite() && *r >= 0.0));
                let total: f64 = rates.iter().sum();
                let expect = 0.2 * sc.num_sources() as f64 * sc.mean_distance();
                assert!(
                    (total - expect).abs() < 1e-9,
                    "{router:?} on {}: total {total} vs {expect}",
                    sc.label()
                );
                let lam = sc.try_stability_lambda().unwrap();
                assert!(lam.is_finite() && lam > 0.0);
            }
        }
    }

    #[test]
    fn oddeven_stability_exceeds_greedy_on_transpose() {
        // Odd-even spreads the transpose's corner-turn traffic over two
        // minimal candidates, so its busiest edge carries less flow than
        // greedy's single XY path: λ* (fixed point) > λ* (enumeration).
        let greedy = Scenario::mesh(16)
            .traffic(TrafficSpec::transpose())
            .stability_lambda();
        let oddeven = Scenario::mesh(16)
            .router(RouterSpec::OddEven)
            .traffic(TrafficSpec::transpose())
            .try_stability_lambda()
            .unwrap();
        assert!(
            oddeven > greedy * 1.05,
            "odd-even λ* = {oddeven} should beat greedy λ* = {greedy}"
        );
    }
}
