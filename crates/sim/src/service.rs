//! Transmission-time (service) distributions.

use crate::rng::exp_sample;
use rand::rngs::SmallRng;
use serde::{Deserialize, Serialize};

/// The service discipline's time distribution.
///
/// The paper's standard model uses deterministic unit transmission
/// ([`ServiceKind::Deterministic`]); the Jackson comparison model (§3.3)
/// uses exponential transmission with the same mean
/// ([`ServiceKind::Exponential`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServiceKind {
    /// Constant service time `1/φ` for a server of rate `φ`.
    Deterministic,
    /// Exponential service time with mean `1/φ`.
    Exponential,
}

impl ServiceKind {
    /// Samples one service time for a server of rate `rate`.
    ///
    /// Forced inline: this is the per-service fast path of the simulator's
    /// hot loop, and the match collapses to a constant once the variant is
    /// known.
    #[inline(always)]
    #[must_use]
    pub fn sample(self, rate: f64, rng: &mut SmallRng) -> f64 {
        match self {
            ServiceKind::Deterministic => 1.0 / rate,
            ServiceKind::Exponential => exp_sample(rng, rate),
        }
    }

    /// Second moment `E[S²]` of the service time at rate `rate` (used by
    /// Pollaczek–Khinchine cross-checks).
    #[must_use]
    pub fn second_moment(self, rate: f64) -> f64 {
        match self {
            ServiceKind::Deterministic => 1.0 / (rate * rate),
            ServiceKind::Exponential => 2.0 / (rate * rate),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::derive_rng;

    #[test]
    fn deterministic_is_exact() {
        let mut rng = derive_rng(1, 0);
        assert_eq!(ServiceKind::Deterministic.sample(1.0, &mut rng), 1.0);
        assert_eq!(ServiceKind::Deterministic.sample(4.0, &mut rng), 0.25);
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = derive_rng(2, 0);
        let n = 100_000;
        let mean: f64 = (0..n)
            .map(|_| ServiceKind::Exponential.sample(2.0, &mut rng))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.5).abs() < 0.01);
    }

    #[test]
    fn second_moments() {
        assert_eq!(ServiceKind::Deterministic.second_moment(1.0), 1.0);
        assert_eq!(ServiceKind::Exponential.second_moment(1.0), 2.0);
        assert_eq!(ServiceKind::Exponential.second_moment(2.0), 0.5);
    }
}
