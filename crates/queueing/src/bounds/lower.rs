//! Lower bounds on the mean delay (Theorems 8, 10, 12 and 14).
//!
//! The new technique of the paper (§4.3) compares the FIFO network `Q`
//! against a "rushed" bank of queues `Q̄`: each packet immediately deposits a
//! copy at every queue it will visit, so each queue of `Q̄` is an M/D/1 queue
//! in isolation and `E[N̄] = Σ_e N_{M/D/1}(λ_e)`. Theorem 10 shows
//! `E[N̄] ≤ d·E[N]` with `d` the maximum route length; Theorem 12 sharpens
//! `d` to the maximum expected remaining distance `d̄` for Markovian
//! networks; Theorem 14 keeps only the saturated queues, replacing `d̄` by
//! `s̄`, which is a constant — giving bounds within a constant factor of the
//! upper bound in heavy traffic.

use crate::little::mesh_total_arrival;
use crate::remaining::{dbar_closed, max_distance, saturated_classes, sbar_closed};
use crate::single::md1_mean_number;
use meshbound_routing::rates::mesh_class_rate;

/// Sum of independent-M/D/1 mean numbers over all edges of the array:
/// `E[N̄] = Σ_e N_{M/D/1}(λ_e)`.
#[must_use]
pub fn reference_system_number(n: usize, lambda: f64) -> f64 {
    let mut sum = 0.0;
    for i in 1..n {
        sum += md1_mean_number(mesh_class_rate(n, lambda, i));
    }
    4.0 * n as f64 * sum
}

/// Same sum restricted to the saturated edges.
#[must_use]
pub fn reference_system_number_saturated(n: usize, lambda: f64) -> f64 {
    saturated_classes(n)
        .iter()
        .map(|&i| 4.0 * n as f64 * md1_mean_number(mesh_class_rate(n, lambda, i)))
        .sum()
}

/// The parity factor `f` of Theorem 8: `1/2` for even `n`,
/// `1/2 − 1/n²` for odd `n`.
#[must_use]
pub fn thm8_f(n: usize) -> f64 {
    if n.is_multiple_of(2) {
        0.5
    } else {
        0.5 - 1.0 / (n * n) as f64
    }
}

/// Theorem 8's lower bound for **any** routing scheme on the array, at peak
/// utilization `rho`: `T ≥ f·[1 + ρ/(2n(1−ρ))]`.
#[must_use]
pub fn thm8_any_routing(n: usize, rho: f64) -> f64 {
    if rho >= 1.0 {
        return f64::INFINITY;
    }
    thm8_f(n) * (1.0 + rho / (2.0 * n as f64 * (1.0 - rho)))
}

/// Theorem 8's lower bound for **oblivious** routing schemes:
/// `T ≥ f·[1 + ρ/(2(1−ρ))]`.
#[must_use]
pub fn thm8_oblivious(n: usize, rho: f64) -> f64 {
    if rho >= 1.0 {
        return f64::INFINITY;
    }
    thm8_f(n) * (1.0 + rho / (2.0 * (1.0 - rho)))
}

/// The trivial bound `T ≥ n̄`: every packet pays a unit delay per edge.
#[must_use]
pub fn trivial_lower(n: usize) -> f64 {
    let nf = n as f64;
    (2.0 / 3.0) * (nf - 1.0 / nf)
}

/// Theorem 10's lower bound: `T ≥ E[N̄] / (d·λn²)` with `d = 2(n−1)` the
/// maximum route length. Holds for any service order and even non-Markovian
/// systems.
#[must_use]
pub fn thm10_lower(n: usize, lambda: f64) -> f64 {
    reference_system_number(n, lambda) / (max_distance(n) as f64 * mesh_total_arrival(n, lambda))
}

/// Theorem 12's lower bound for Markovian networks:
/// `T ≥ E[N̄] / (d̄·λn²)` with `d̄ = n − 1/2`.
#[must_use]
pub fn thm12_lower(n: usize, lambda: f64) -> f64 {
    reference_system_number(n, lambda) / (dbar_closed(n) * mesh_total_arrival(n, lambda))
}

/// Theorem 14's heavy-traffic lower bound: only saturated queues are
/// counted and the copy factor is `s̄` (`3/2` even, `< 3` odd).
///
/// The theorem is stated in the limit `ρ → 1` (unsaturated queues hold a
/// bounded number of packets); at moderate loads this expression is a valid
/// but weak bound on the saturated-queue population only, so callers should
/// combine it with the other bounds via [`best_lower_bound`].
#[must_use]
pub fn thm14_lower(n: usize, lambda: f64) -> f64 {
    reference_system_number_saturated(n, lambda) / (sbar_closed(n) * mesh_total_arrival(n, lambda))
}

/// The best available lower bound at `(n, λ)`: the maximum of Theorems 8
/// (oblivious form), 10, 12, 14 and the trivial distance bound.
#[must_use]
pub fn best_lower_bound(n: usize, lambda: f64) -> f64 {
    let rho = meshbound_routing::rates::mesh_max_rate(n, lambda);
    [
        thm8_oblivious(n, rho),
        thm10_lower(n, lambda),
        thm12_lower(n, lambda),
        thm14_lower(n, lambda),
        trivial_lower(n),
    ]
    .into_iter()
    .fold(0.0, f64::max)
}

/// Generic Theorem 10/12 bound from explicit rates: `Σ N_{M/D/1}(λ_e)`
/// divided by `copies × total arrival`.
#[must_use]
pub fn lower_bound_from_rates(rates: &[f64], copies: f64, total_arrival: f64) -> f64 {
    rates.iter().map(|&l| md1_mean_number(l)).sum::<f64>() / (copies * total_arrival)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::upper::upper_bound_delay;

    #[test]
    fn lower_bounds_below_upper_bound() {
        for n in [4usize, 5, 10, 15] {
            for rho in [0.1, 0.5, 0.9, 0.99] {
                let lambda = 4.0 * rho / n as f64;
                let ub = upper_bound_delay(n, lambda);
                for (name, lb) in [
                    ("thm8", thm8_oblivious(n, rho)),
                    ("thm10", thm10_lower(n, lambda)),
                    ("thm12", thm12_lower(n, lambda)),
                    ("thm14", thm14_lower(n, lambda)),
                    ("trivial", trivial_lower(n)),
                ] {
                    assert!(lb <= ub, "n={n}, ρ={rho}, {name}: {lb} > {ub}");
                }
            }
        }
    }

    #[test]
    fn thm12_dominates_thm10() {
        // d̄ = n − 1/2 < d = 2(n−1) for n ≥ 2, so Theorem 12 is always the
        // stronger of the two copy bounds.
        for n in [3usize, 8, 21] {
            let lambda = 0.5 * 4.0 / n as f64;
            assert!(thm12_lower(n, lambda) > thm10_lower(n, lambda));
        }
    }

    #[test]
    fn thm12_gap_is_2n_minus_1_at_high_load() {
        // As ρ → 1 (even n), upper/lower → 2·d̄ = 2n − 1 (§4.3: "within a
        // factor of 2n̄−1 of the upper bound" with the M/M/1 vs M/D/1 factor
        // of 2 from Lemma 9).
        let n = 10;
        let lambda = 4.0 * 0.999_99 / n as f64;
        let ratio = upper_bound_delay(n, lambda) / thm12_lower(n, lambda);
        assert!(
            (ratio - (2.0 * n as f64 - 1.0)).abs() < 0.3,
            "ratio {ratio}"
        );
    }

    #[test]
    fn thm14_gap_constant_at_high_load() {
        // Even n: gap → 2·s̄ = 3. Odd n: gap → 2s̄ < 6. Use the
        // *utilization* convention for odd n so the saturated edges truly
        // approach load 1.
        let n = 10;
        let lambda = 4.0 * 0.9999 / n as f64;
        let ratio = upper_bound_delay(n, lambda) / thm14_lower(n, lambda);
        assert!((ratio - 3.0).abs() < 0.05, "even ratio {ratio}");

        let n = 9;
        let util = 0.9999;
        let lambda = crate::load::Load::Utilization(util).lambda(n);
        let ratio = upper_bound_delay(n, lambda) / thm14_lower(n, lambda);
        let cap = 2.0 * sbar_closed(n);
        assert!(ratio < 6.0, "odd ratio {ratio} must stay below 6");
        assert!((ratio - cap).abs() < 0.3, "odd ratio {ratio} ≈ 2s̄ = {cap}");
    }

    #[test]
    fn thm14_beats_thm8_near_saturation() {
        // §4.5: the new technique improves on the old bounds in heavy
        // traffic. At ρ = 0.999 on even n, Theorem 14 ≥ Theorem 8.
        let n = 10;
        let rho = 0.999;
        let lambda = 4.0 * rho / n as f64;
        assert!(thm14_lower(n, lambda) > thm8_oblivious(n, rho));
    }

    #[test]
    fn thm8_any_weaker_than_oblivious() {
        for n in [5usize, 10] {
            for rho in [0.3, 0.9] {
                assert!(thm8_any_routing(n, rho) <= thm8_oblivious(n, rho));
            }
        }
    }

    #[test]
    fn best_lower_is_max() {
        let n = 10;
        let lambda = 0.3;
        let best = best_lower_bound(n, lambda);
        assert!(best >= thm12_lower(n, lambda));
        assert!(best >= trivial_lower(n));
    }

    #[test]
    fn trivial_dominates_at_light_load() {
        // At light load, n̄ is the binding bound.
        let n = 20;
        let lambda = 0.001;
        assert_eq!(best_lower_bound(n, lambda), trivial_lower(n));
    }

    #[test]
    fn generic_form_matches_closed_form() {
        use meshbound_routing::rates::mesh_thm6_rates;
        use meshbound_topology::Mesh2D;
        let n = 6;
        let lambda = 0.4;
        let rates = mesh_thm6_rates(&Mesh2D::square(n), lambda);
        let generic = lower_bound_from_rates(&rates, dbar_closed(n), mesh_total_arrival(n, lambda));
        assert!((generic - thm12_lower(n, lambda)).abs() < 1e-9);
    }
}
