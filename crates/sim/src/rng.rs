//! Random-number utilities: seed derivation, exponential and Poisson
//! sampling.
//!
//! Every simulation object derives its own `SmallRng` from a master seed via
//! SplitMix64, so replications are reproducible and independent streams do
//! not interleave.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// SplitMix64 step: hashes `state` into a well-mixed 64-bit value.
#[must_use]
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a child RNG from a master seed and a stream index.
#[must_use]
pub fn derive_rng(master: u64, stream: u64) -> SmallRng {
    SmallRng::seed_from_u64(splitmix64(master ^ splitmix64(stream)))
}

/// Samples an exponential with the given `rate` (mean `1/rate`).
///
/// Draws directly on `(0, 1]` — the generator yields `U ∈ [0, 1)`, so
/// `1 − U` can never be zero and the logarithm is always finite; no
/// rejection or clamping is needed. This sits on the simulator's
/// service-time fast path, hence the forced inlining.
///
/// # Panics
///
/// Panics in debug builds if `rate <= 0`.
#[inline(always)]
pub fn exp_sample(rng: &mut SmallRng, rate: f64) -> f64 {
    debug_assert!(rate > 0.0);
    let u: f64 = 1.0 - rng.gen::<f64>(); // u ∈ (0, 1]
    -u.ln() / rate
}

/// Samples a Poisson random variable with the given `mean`.
///
/// Knuth's multiplication method for small means, switching to a normal
/// approximation (rounded, clamped at 0) beyond 30 where Knuth's method
/// would need too many uniforms. Slotted-time batch sizes in this workspace
/// have small means, so the approximation branch is effectively unused but
/// keeps the function total.
#[must_use]
pub fn poisson_sample(rng: &mut SmallRng, mean: f64) -> u64 {
    assert!(mean >= 0.0);
    if mean == 0.0 {
        return 0;
    }
    if mean < 30.0 {
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    } else {
        // Normal approximation with continuity correction.
        let z = normal_sample(rng);
        let x = mean + mean.sqrt() * z + 0.5;
        if x < 0.0 {
            0
        } else {
            x as u64
        }
    }
}

/// Standard normal via Box–Muller.
#[must_use]
pub fn normal_sample(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_mixing() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
        // Consecutive seeds produce very different outputs.
        let a = splitmix64(100);
        let b = splitmix64(101);
        assert!((a ^ b).count_ones() > 10);
    }

    #[test]
    fn derived_streams_differ() {
        let mut a = derive_rng(42, 0);
        let mut b = derive_rng(42, 1);
        let xa: u64 = a.gen();
        let xb: u64 = b.gen();
        assert_ne!(xa, xb);
        // Same stream is reproducible.
        let mut a2 = derive_rng(42, 0);
        let x2: u64 = a2.gen();
        assert_eq!(xa, x2);
    }

    #[test]
    fn exp_sample_mean() {
        let mut rng = derive_rng(7, 0);
        let n = 200_000;
        let rate = 2.5;
        let mean: f64 = (0..n).map(|_| exp_sample(&mut rng, rate)).sum::<f64>() / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.01, "mean {mean}");
    }

    /// Guards the `(0, 1]` sampling change: the mean must track `1/rate`
    /// across rates, every draw must be strictly positive and finite
    /// (`ln(0)` would yield `∞`), and the second moment must match the
    /// exponential's `2/rate²`.
    #[test]
    fn exp_sample_distribution_across_rates() {
        for (seed, rate) in [(21u64, 0.25f64), (22, 1.0), (23, 4.0)] {
            let mut rng = derive_rng(seed, 0);
            let n = 200_000;
            let mut sum = 0.0;
            let mut sum_sq = 0.0;
            for _ in 0..n {
                let x = exp_sample(&mut rng, rate);
                assert!(x > 0.0 && x.is_finite(), "bad sample {x} at rate {rate}");
                sum += x;
                sum_sq += x * x;
            }
            let mean = sum / f64::from(n);
            let m2 = sum_sq / f64::from(n);
            assert!((mean * rate - 1.0).abs() < 0.02, "mean {mean} rate {rate}");
            assert!(
                (m2 * rate * rate / 2.0 - 1.0).abs() < 0.05,
                "E[X²] {m2} rate {rate}"
            );
        }
    }

    #[test]
    fn poisson_small_mean() {
        let mut rng = derive_rng(8, 0);
        let n = 200_000;
        let mean = 3.2;
        let total: u64 = (0..n).map(|_| poisson_sample(&mut rng, mean)).sum();
        let avg = total as f64 / n as f64;
        assert!((avg - mean).abs() < 0.05, "avg {avg}");
    }

    #[test]
    fn poisson_large_mean_approximation() {
        let mut rng = derive_rng(9, 0);
        let n = 50_000;
        let mean = 100.0;
        let total: u64 = (0..n).map(|_| poisson_sample(&mut rng, mean)).sum();
        let avg = total as f64 / n as f64;
        assert!((avg - mean).abs() < 1.0, "avg {avg}");
    }

    #[test]
    fn poisson_zero_mean() {
        let mut rng = derive_rng(10, 0);
        assert_eq!(poisson_sample(&mut rng, 0.0), 0);
    }

    #[test]
    fn normal_sample_moments() {
        let mut rng = derive_rng(11, 0);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| normal_sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02);
        assert!((var - 1.0).abs() < 0.03);
    }
}
