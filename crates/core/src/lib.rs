//! # meshbound
//!
//! A library reproduction of Michael Mitzenmacher's *Bounds on the Greedy
//! Routing Algorithm for Array Networks* (SPAA 1994; JCSS 53:317–327, 1996).
//!
//! The paper studies dynamic packet routing on an `n × n` array: every node
//! generates packets as a Poisson process with rate λ, destinations are
//! uniform, and packets follow greedy (column-first) routes over directed
//! edges that each serve one packet per unit time, FIFO, with infinite
//! buffers. The paper's contributions — all implemented here — are:
//!
//! * an **upper bound** on the mean delay via comparison with the
//!   product-form processor-sharing/Jackson network (Theorems 1–7);
//! * a practical **M/D/1 independence approximation** (§4.2, Table I);
//! * a new **lower-bound technique** comparing against a "rushed" copy
//!   network (Theorems 10 and 12), sharpened in heavy traffic by counting
//!   only saturated edges (Theorem 14) so that upper and lower bounds are
//!   within ×3 (even `n`) or ×6 (odd `n`);
//! * applications to the **hypercube and butterfly** (§4.5);
//! * extensions: **optimal capacity allocation** with stability up to
//!   `6/(n+1)` (Theorem 15, §5.1), non-uniform destinations, slotted time,
//!   higher-dimensional meshes (§5.2).
//!
//! The public front door is the topology-generic [`Scenario`]: one builder
//! that names any topology the workspace knows (mesh, torus, hypercube,
//! butterfly, `k`-d mesh), its router and destination distribution, and a
//! load in any [`Load`] convention — then simulates it, replicates it, or
//! reports every closed-form bound at its operating point.
//!
//! ## Crate map
//!
//! | need | start at |
//! |------|----------|
//! | Simulate any topology | [`Scenario::run`], [`Scenario::run_replicated`] |
//! | Run a whole scenario grid in parallel | [`run_sweep`], [`SweepSpec`] |
//! | All bounds for a scenario | [`BoundsReport::compute_for`] |
//! | Mesh shorthand for one `(n, load)` | [`BoundsReport::compute`] |
//! | Name a scenario on a command line | [`Scenario::parse`] |
//! | Regenerate a paper table/figure | [`experiments`] |
//! | Topologies / routers / formulas | [`topology`], [`routing`], [`queueing`] |
//! | Generic simulator internals | [`sim::NetworkSim`] |
//!
//! ## Quickstart
//!
//! ```
//! use meshbound::{BoundsReport, Load, Scenario};
//!
//! // Any topology through one entry point: simulate an 8×8 torus with
//! // every edge at 40% utilization, next to its analytic report.
//! let scenario = Scenario::torus(8).load(Load::Utilization(0.4)).seed(7);
//! let result = scenario.run();
//! let report = BoundsReport::compute_for(&scenario);
//! assert!(report.lower_best <= result.avg_delay * 1.2);
//!
//! // The square-mesh shorthand: all analytic quantities for a 10×10 array
//! // at 80% load.
//! let report = BoundsReport::compute(10, Load::TableRho(0.8));
//! assert!(report.lower_best <= report.upper);
//! assert!(report.upper > 20.0 && report.upper < 25.0);
//! println!("{}", report.to_text());
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod experiments;
pub mod report;
pub mod sweep;

pub use meshbound_queueing::load::Load;
pub use meshbound_sim::{
    set_progress_sink, DropCause, DropCounts, EngineSpec, FaultSpec, HorizonPolicy, PatternSpec,
    PermutationKind, ProbeSpec, ProgressFn, RouterSpec, Scenario, ScenarioError, SourceSpec,
    SweepError, SweepSpec, TelemetryReport, TopologySpec, TrafficSpec, TELEMETRY_SCHEMA,
};
pub use report::{BoundsReport, DegradationReport};
pub use sweep::{run_cells, run_sweep, BoundsCheck, Jobs, SweepCellReport, SweepReport};

/// Re-export of the topology crate (array, torus, hypercube, butterfly…).
pub mod topology {
    pub use meshbound_topology::*;
}

/// Re-export of the routing crate (greedy variants, destinations, rates).
pub mod routing {
    pub use meshbound_routing::*;
    pub use meshbound_routing::{dest, lemma3, rates};
}

/// Re-export of the queueing analytics crate (bounds, capacity, remaining).
pub mod queueing {
    pub use meshbound_queueing::*;
    pub use meshbound_queueing::{bounds, capacity, jackson, little, load, remaining, single};
}

/// Re-export of the statistics crate.
pub mod stats {
    pub use meshbound_stats::*;
}

/// Re-export of the simulator crate.
pub mod sim {
    pub use meshbound_sim::*;
    pub use meshbound_sim::{copysys, network, ps, queue_sim, runner, scenario};
}
