//! Replication aggregation and the legacy square-mesh drivers.
//!
//! The topology-generic front door is [`crate::scenario::Scenario`]; this
//! module keeps the [`ReplicatedResult`] aggregate it returns, plus the
//! original mesh-only configuration type and entry points as deprecated
//! wrappers that delegate to `Scenario`.

use crate::network::SimResult;
use crate::scenario::{RouterSpec, Scenario, TopologySpec};
use crate::service::ServiceKind;
use crate::traffic::{PatternSpec, TrafficSpec};
use meshbound_queueing::load::Load;
use meshbound_routing::dest::DestDist;
use meshbound_stats::Summary;
use serde::{Deserialize, Serialize};

/// Which mesh router to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[deprecated(since = "0.2.0", note = "use `scenario::RouterSpec` instead")]
pub enum MeshRouterKind {
    /// Standard greedy (column first, then row).
    Greedy,
    /// §6's randomized order variant.
    Randomized,
}

/// Configuration of a square-mesh simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[deprecated(
    since = "0.2.0",
    note = "use the topology-generic `scenario::Scenario` builder instead"
)]
pub struct MeshSimConfig {
    /// Mesh side `n`.
    pub n: usize,
    /// Per-node arrival rate λ (use `Load` from the queueing crate to
    /// convert Table-ρ).
    pub lambda: f64,
    /// Simulated end time.
    pub horizon: f64,
    /// Warmup discarded from statistics.
    pub warmup: f64,
    /// Master seed.
    pub seed: u64,
    /// Transmission-time distribution (deterministic = standard model,
    /// exponential = Jackson model).
    pub service: ServiceKind,
    /// Router choice.
    #[allow(deprecated)]
    pub router: MeshRouterKind,
    /// Destination distribution.
    pub dest: DestDist,
    /// Count source-=-destination packets (delay 0) in the average.
    pub include_self_packets: bool,
    /// Track the remaining-saturated-services integral (Table III).
    pub track_saturated: bool,
    /// Optional per-edge service rates (§5.1).
    pub service_rates: Option<Vec<f64>>,
    /// Slotted-time width τ (§5.2); `None` = continuous time.
    pub slot: Option<f64>,
    /// Optional `N(t)` sampling interval.
    pub sample_every: Option<f64>,
    /// Track delay quantiles (median / p95 / p99) via reservoir sampling.
    pub delay_quantiles: bool,
    /// Track per-edge time-averaged queue lengths.
    pub track_edge_queues: bool,
}

#[allow(deprecated)]
impl Default for MeshSimConfig {
    fn default() -> Self {
        Self {
            n: 5,
            lambda: 0.1,
            horizon: 2_000.0,
            warmup: 200.0,
            seed: 1,
            service: ServiceKind::Deterministic,
            router: MeshRouterKind::Greedy,
            dest: DestDist::Uniform,
            include_self_packets: true,
            track_saturated: true,
            service_rates: None,
            slot: None,
            sample_every: None,
            delay_quantiles: false,
            track_edge_queues: false,
        }
    }
}

#[allow(deprecated)]
impl From<&MeshSimConfig> for Scenario {
    fn from(cfg: &MeshSimConfig) -> Self {
        Scenario {
            topology: TopologySpec::Mesh {
                rows: cfg.n,
                cols: cfg.n,
            },
            router: match cfg.router {
                MeshRouterKind::Greedy => RouterSpec::Greedy,
                MeshRouterKind::Randomized => RouterSpec::Randomized,
            },
            traffic: TrafficSpec::with_pattern(match cfg.dest {
                DestDist::Uniform => PatternSpec::Uniform,
                DestDist::Nearby { stop } => PatternSpec::Nearby { stop },
            }),
            load: Load::Lambda(cfg.lambda),
            horizon: cfg.horizon,
            warmup: cfg.warmup,
            seed: cfg.seed,
            service: cfg.service,
            include_self_packets: cfg.include_self_packets,
            track_saturated: cfg.track_saturated,
            service_rates: cfg.service_rates.clone(),
            slot: cfg.slot,
            sample_every: cfg.sample_every,
            delay_quantiles: cfg.delay_quantiles,
            track_edge_queues: cfg.track_edge_queues,
            engine: crate::engine::EngineSpec::Auto,
        }
    }
}

/// Runs one mesh simulation described by `cfg`.
#[deprecated(since = "0.2.0", note = "use `Scenario::run` instead")]
#[allow(deprecated)]
#[must_use]
pub fn simulate_mesh(cfg: &MeshSimConfig) -> SimResult {
    Scenario::from(cfg).run()
}

/// Aggregated replication statistics for an experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplicatedResult {
    /// Per-replication raw results.
    pub runs: Vec<SimResult>,
    /// Mean delay across replications.
    pub delay: Summary,
    /// Time-average `N` across replications.
    pub n: Summary,
    /// `r = E[R]/E[N]` across replications.
    pub r_ratio: Summary,
    /// `r_s = E[R_s]/E[N]` across replications.
    pub rs_ratio: Summary,
}

impl ReplicatedResult {
    /// Aggregates per-replication results (in replication order, so the
    /// summaries are independent of worker scheduling).
    #[must_use]
    pub fn from_runs(runs: Vec<SimResult>) -> Self {
        let mut delay = Summary::new();
        let mut n = Summary::new();
        let mut r_ratio = Summary::new();
        let mut rs_ratio = Summary::new();
        for r in &runs {
            delay.push(r.avg_delay);
            n.push(r.time_avg_n);
            r_ratio.push(r.r_ratio);
            rs_ratio.push(r.rs_ratio);
        }
        Self {
            runs,
            delay,
            n,
            r_ratio,
            rs_ratio,
        }
    }
}

/// Runs `reps` independent replications of `cfg` in parallel (one derived
/// seed per replication) and aggregates the headline metrics.
#[deprecated(since = "0.2.0", note = "use `Scenario::run_replicated` instead")]
#[allow(deprecated)]
#[must_use]
pub fn simulate_mesh_replicated(cfg: &MeshSimConfig, reps: usize) -> ReplicatedResult {
    Scenario::from(cfg).run_replicated(reps)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Scenario {
        Scenario::mesh(4)
            .load(Load::Lambda(0.1))
            .horizon(3_000.0)
            .warmup(300.0)
            .track_saturated(true)
    }

    #[test]
    fn replications_have_distinct_seeds_and_tight_summary() {
        let rep = base().run_replicated(4);
        assert_eq!(rep.runs.len(), 4);
        // Distinct seeds → distinct results.
        assert!(rep
            .runs
            .windows(2)
            .any(|w| w[0].avg_delay != w[1].avg_delay));
        // The summary mean lies within the per-run envelope.
        let lo = rep
            .runs
            .iter()
            .map(|r| r.avg_delay)
            .fold(f64::INFINITY, f64::min);
        let hi = rep
            .runs
            .iter()
            .map(|r| r.avg_delay)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(rep.delay.mean() >= lo && rep.delay.mean() <= hi);
    }

    #[test]
    fn randomized_router_runs() {
        let res = base()
            .load(Load::Lambda(0.15))
            .horizon(2_000.0)
            .warmup(200.0)
            .router(RouterSpec::Randomized)
            .run();
        assert!(res.avg_delay > 0.0);
        assert!(res.completed > 0);
    }

    #[test]
    fn nearby_dest_shortens_delay() {
        let base = Scenario::mesh(6)
            .load(Load::Lambda(0.1))
            .horizon(6_000.0)
            .warmup(500.0)
            .track_saturated(true);
        let uniform = base.clone().run();
        let nearby = base.traffic(TrafficSpec::nearby(0.5)).run();
        assert!(
            nearby.avg_delay < uniform.avg_delay,
            "nearby {} vs uniform {}",
            nearby.avg_delay,
            uniform.avg_delay
        );
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_delegate_to_scenario() {
        // The old mesh-only entry points must stay bit-compatible with the
        // Scenario they construct.
        let cfg = MeshSimConfig {
            n: 4,
            lambda: 0.12,
            horizon: 1_500.0,
            warmup: 150.0,
            seed: 21,
            ..MeshSimConfig::default()
        };
        let old = simulate_mesh(&cfg);
        let new = Scenario::from(&cfg).run();
        assert_eq!(old.avg_delay.to_bits(), new.avg_delay.to_bits());
        assert_eq!(old.generated, new.generated);
        let old_rep = simulate_mesh_replicated(&cfg, 3);
        let new_rep = Scenario::from(&cfg).run_replicated(3);
        assert_eq!(
            old_rep.delay.mean().to_bits(),
            new_rep.delay.mean().to_bits()
        );
    }
}
