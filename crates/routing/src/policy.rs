//! The per-hop routing API: [`RoutingPolicy`], its [`LocalView`] of the
//! switch, and the [`SplitRouting`] hook the steady-state rate solver uses.
//!
//! [`Router`] bakes in oblivious routing: the route is a function of
//! `(source, destination, per-packet state)` fixed at generation time.
//! Adaptive disciplines — west-first and odd-even turn-model routing — pick
//! each hop from the congestion the packet *sees at the switch*, which a
//! pre-declared path cannot express. [`RoutingPolicy`] is that per-hop
//! surface: its core method is
//! [`next_hop`](RoutingPolicy::next_hop)`(topo, here, dst, state, local)`,
//! where `local` is the engine's live [`LocalView`] of per-output-port queue
//! occupancy.
//!
//! A blanket impl makes **every [`Router`] a [`RoutingPolicy`]** — oblivious
//! routers simply ignore the view — so the simulation engines consume the
//! per-hop API exclusively while `route()` survives as a provided
//! test/diagnostic method. Adaptive routers override the
//! [`Router::next_hop`] hook; their `next_edge` remains the *canonical*
//! (empty-network) choice, which is what route materialization and the
//! route-table builder see.
//!
//! # The `LocalView` contract
//!
//! `queue_len(e)` is the number of packets currently queued (or in service)
//! on edge `e`, where `e` is an out-edge of the node the deciding packet
//! occupies. Engines only guarantee occupancy for those local out-edges —
//! a policy must not query remote edges. The view is read at dequeue time,
//! so consecutive decisions at one switch see each other's effects.

use crate::router::Router;
use meshbound_topology::{EdgeId, NodeId, Topology};
use rand::rngs::SmallRng;

/// What a packet can see when it picks its next hop: the occupancy of the
/// output queues at the switch it currently occupies.
///
/// Implemented by the engines over their live edge state; [`ZeroView`] is
/// the canonical empty-network view used outside simulation.
pub trait LocalView {
    /// Number of packets queued or in service on out-edge `e` of the
    /// deciding packet's current node. Querying a non-local edge is
    /// unspecified (engines may panic or return garbage).
    fn queue_len(&self, e: EdgeId) -> u32;

    /// Whether out-edge `e` is currently alive. Engines simulating a
    /// fault schedule override this with the run's liveness mask; the
    /// default (always live) keeps every pre-fault view — and therefore
    /// every healthy simulation — bit-identical.
    fn is_live(&self, _e: EdgeId) -> bool {
        true
    }
}

/// The empty-network view: every queue reports zero occupancy.
///
/// Under `ZeroView` an adaptive router always takes its canonical
/// tie-break, so `next_hop` coincides with [`Router::next_edge`]. Route
/// materialization, rate solving and tests use this view.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ZeroView;

impl LocalView for ZeroView {
    #[inline]
    fn queue_len(&self, _: EdgeId) -> u32 {
        0
    }
}

/// A per-hop routing discipline: given where a packet is and what it can
/// see locally, produce the next edge to cross.
///
/// This is the surface the simulation engines consume. Do **not** implement
/// it directly — implement [`Router`] (overriding
/// [`Router::next_hop`] for adaptive disciplines) and the blanket impl
/// makes the type a `RoutingPolicy` automatically.
pub trait RoutingPolicy<T: Topology> {
    /// Per-packet routing state, fixed at generation time.
    type State: Copy + Send + Sync + std::fmt::Debug;

    /// Draws the per-packet state for a new packet.
    fn init_state(&self, topo: &T, src: NodeId, dst: NodeId, rng: &mut SmallRng) -> Self::State;

    /// The next edge a packet at `here` with destination `dst` crosses
    /// given the local congestion view, or `None` if it has arrived.
    fn next_hop(
        &self,
        topo: &T,
        here: NodeId,
        dst: NodeId,
        state: Self::State,
        local: &dyn LocalView,
    ) -> Option<EdgeId>;

    /// Number of edges the packet still has to cross from `here`
    /// (including the next one).
    fn remaining_hops(&self, topo: &T, here: NodeId, dst: NodeId, state: Self::State) -> usize;

    /// Total route length for a fresh packet.
    fn route_len(&self, topo: &T, src: NodeId, dst: NodeId, state: Self::State) -> usize;

    /// Whether `dst` is a valid destination for this policy.
    fn routes_to(&self, topo: &T, dst: NodeId) -> bool;

    /// Whether routes depend only on `(current node, destination)` — the
    /// gate for the packed [`crate::RouteTable`] fast path. Adaptive
    /// policies must report `false`.
    fn is_route_deterministic(&self) -> bool;
}

impl<T: Topology, R: Router<T>> RoutingPolicy<T> for R {
    type State = R::State;

    #[inline]
    fn init_state(&self, topo: &T, src: NodeId, dst: NodeId, rng: &mut SmallRng) -> Self::State {
        Router::init_state(self, topo, src, dst, rng)
    }

    #[inline]
    fn next_hop(
        &self,
        topo: &T,
        here: NodeId,
        dst: NodeId,
        state: Self::State,
        local: &dyn LocalView,
    ) -> Option<EdgeId> {
        Router::next_hop(self, topo, here, dst, state, local)
    }

    #[inline]
    fn remaining_hops(&self, topo: &T, here: NodeId, dst: NodeId, state: Self::State) -> usize {
        Router::remaining_hops(self, topo, here, dst, state)
    }

    #[inline]
    fn route_len(&self, topo: &T, src: NodeId, dst: NodeId, state: Self::State) -> usize {
        Router::route_len(self, topo, src, dst, state)
    }

    #[inline]
    fn routes_to(&self, topo: &T, dst: NodeId) -> bool {
        Router::routes_to(self, topo, dst)
    }

    #[inline]
    fn is_route_deterministic(&self) -> bool {
        Router::is_route_deterministic(self)
    }
}

/// Materializes the route a policy takes under a fixed view
/// (test/diagnostic use; simulation re-reads the live view each hop).
///
/// # Panics
///
/// Panics if the policy cycles (takes more hops than the topology has
/// edges).
pub fn policy_route<T: Topology, P: RoutingPolicy<T> + ?Sized>(
    policy: &P,
    topo: &T,
    src: NodeId,
    dst: NodeId,
    state: P::State,
    local: &dyn LocalView,
) -> Vec<EdgeId> {
    let mut out = Vec::new();
    let mut cur = src;
    while let Some(e) = policy.next_hop(topo, cur, dst, state, local) {
        out.push(e);
        cur = topo.edge_target(e);
        assert!(
            out.len() <= topo.num_edges(),
            "policy cycled between {src} and {dst}"
        );
    }
    out
}

/// The steady-state branching model of a router, for the fixed-point rate
/// solver ([`crate::traffic::adaptive_edge_rates`]).
///
/// `splits(topo, prev, here, dst)` returns the `(edge, probability)` pairs
/// a packet headed for `dst` takes out of `here`, given the edge it
/// arrived on (`None` at the source). Probabilities must sum to 1 unless
/// `here == dst` (empty). For adaptive routers this is a *model* — the
/// conventional equal-split assumption over the permitted productive hops —
/// not the exact queue-dependent law; for oblivious routers it reproduces
/// the path-enumeration rates exactly.
pub trait SplitRouting<T: Topology> {
    /// Branching probabilities out of `here` toward `dst`, arriving on
    /// `prev` (`None` at the source).
    fn splits(
        &self,
        topo: &T,
        prev: Option<EdgeId>,
        here: NodeId,
        dst: NodeId,
    ) -> Vec<(EdgeId, f64)>;
}
