//! Numerically stable running mean and variance (Welford's algorithm).

use serde::{Deserialize, Serialize};

/// Running mean/variance accumulator using Welford's online algorithm.
///
/// Welford's update avoids the catastrophic cancellation of the naive
/// sum-of-squares method, which matters for long simulation runs where
/// billions of similar observations are folded in.
///
/// # Examples
///
/// ```
/// use meshbound_stats::Welford;
/// let mut w = Welford::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     w.push(x);
/// }
/// assert_eq!(w.mean(), 2.5);
/// assert!((w.sample_variance() - 5.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Welford {
    fn default() -> Self {
        Self::new()
    }
}

impl Welford {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Number of observations folded in so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean of the observations, or 0 if empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (divides by `n − 1`), or 0 for fewer than two
    /// observations.
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population variance (divides by `n`), or 0 if empty.
    #[must_use]
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean, `s/√n`.
    #[must_use]
    pub fn standard_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sample_std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest observation, or `+∞` if empty.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation, or `−∞` if empty.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel-reduction step of
    /// Chan et al.'s pairwise combination).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn naive_mean_var(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        (mean, var)
    }

    #[test]
    fn empty_is_zero() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.sample_variance(), 0.0);
        assert_eq!(w.standard_error(), 0.0);
    }

    #[test]
    fn single_observation() {
        let mut w = Welford::new();
        w.push(42.0);
        assert_eq!(w.mean(), 42.0);
        assert_eq!(w.sample_variance(), 0.0);
        assert_eq!(w.min(), 42.0);
        assert_eq!(w.max(), 42.0);
    }

    #[test]
    fn matches_naive_formulas() {
        let xs = [3.1, -2.0, 0.5, 8.25, 4.0, 4.0, -1.5];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let (mean, var) = naive_mean_var(&xs);
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.sample_variance() - var).abs() < 1e-12);
    }

    #[test]
    fn matches_closed_form_for_arithmetic_sequence() {
        // For 1..=n: mean = (n+1)/2, sample variance = n(n+1)/12.
        for n in [2u64, 10, 101, 1000] {
            let mut w = Welford::new();
            for i in 1..=n {
                w.push(i as f64);
            }
            let nf = n as f64;
            let mean = (nf + 1.0) / 2.0;
            let var = nf * (nf + 1.0) / 12.0;
            assert!(
                (w.mean() - mean).abs() < 1e-9 * mean,
                "n={n} mean {}",
                w.mean()
            );
            assert!(
                (w.sample_variance() - var).abs() < 1e-9 * var,
                "n={n} variance {} want {var}",
                w.sample_variance(),
            );
            assert_eq!(w.min(), 1.0);
            assert_eq!(w.max(), nf);
        }
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Welford::new();
        for &x in &xs {
            all.push(x);
        }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert!((left.mean() - all.mean()).abs() < 1e-10);
        assert!((left.sample_variance() - all.sample_variance()).abs() < 1e-10);
        assert_eq!(left.count(), all.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut w = Welford::new();
        w.push(1.0);
        w.push(2.0);
        let before = w;
        w.merge(&Welford::new());
        assert_eq!(w, before);

        let mut e = Welford::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    proptest! {
        #[test]
        fn prop_mean_within_bounds(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let mut w = Welford::new();
            for &x in &xs { w.push(x); }
            let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(w.mean() >= lo - 1e-9 && w.mean() <= hi + 1e-9);
            prop_assert!(w.sample_variance() >= 0.0);
            prop_assert_eq!(w.min(), lo);
            prop_assert_eq!(w.max(), hi);
        }

        #[test]
        fn prop_merge_associative(
            a in proptest::collection::vec(-1e3f64..1e3, 0..50),
            b in proptest::collection::vec(-1e3f64..1e3, 0..50),
        ) {
            let mut wa = Welford::new();
            for &x in &a { wa.push(x); }
            let mut wb = Welford::new();
            for &x in &b { wb.push(x); }
            let mut merged = wa;
            merged.merge(&wb);

            let mut seq = Welford::new();
            for &x in a.iter().chain(b.iter()) { seq.push(x); }
            prop_assert!((merged.mean() - seq.mean()).abs() < 1e-8);
            prop_assert!((merged.m2 - seq.m2).abs() < 1e-6 * (1.0 + seq.m2.abs()));
        }
    }
}
