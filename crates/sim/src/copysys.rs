//! The "rushed" copy system of Theorem 10 (the network `Q₁`).
//!
//! When a packet is generated, a copy is deposited **immediately** at every
//! queue on its route; copies are served FIFO with unit deterministic
//! service and leave after their single service. Each queue in isolation is
//! an M/D/1 queue with the corresponding edge arrival rate, so by linearity
//! `E[N̄] = Σ_e N_{M/D/1}(λ_e)` — even though the queues are *dependent*
//! (copies of one packet arrive simultaneously). Theorems 10 and 12 bound
//! `E[N̄] ≤ d·E[N]` and `E[N̄] ≤ d̄·E[N]` against the real network; this
//! simulator verifies both the product value and the inequalities
//! empirically.

use crate::events::{EventQueue, HeapQueue};
use crate::network::NetConfig;
use crate::rng::{derive_rng, exp_sample};
use meshbound_routing::dest::DestSampler;
use meshbound_routing::Router;
use meshbound_stats::TimeWeighted;
use meshbound_topology::{NodeId, Topology};
use serde::{Deserialize, Serialize};

/// Output of a copy-system run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CopyResult {
    /// Time-averaged total number of copies in the system, `E[N̄]`.
    pub time_avg_copies: f64,
    /// Packets generated post-warmup (copies / route length each).
    pub generated: u64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Ev {
    Arrival(u32),
    Departure(u32),
    Warmup,
}

/// Simulates the Theorem 10 copy network `Q₁` for any router/topology.
pub struct CopySystemSim<T, R, D>
where
    T: Topology,
    R: Router<T>,
    D: DestSampler<T>,
{
    topo: T,
    router: R,
    dest: D,
    cfg: NetConfig,
}

impl<T, R, D> CopySystemSim<T, R, D>
where
    T: Topology,
    R: Router<T>,
    D: DestSampler<T>,
{
    /// Creates the simulator; every node is a source.
    pub fn new(topo: T, router: R, dest: D, cfg: NetConfig) -> Self {
        assert!(cfg.slot.is_none(), "copy system uses continuous arrivals");
        Self {
            topo,
            router,
            dest,
            cfg,
        }
    }

    /// Runs to the horizon.
    #[must_use]
    pub fn run(self) -> CopyResult {
        let cfg = self.cfg.clone();
        let mut rng = derive_rng(cfg.seed, 2);
        let sources: Vec<NodeId> = self.topo.nodes().collect();
        let num_edges = self.topo.num_edges();
        // Per-edge: number queued and next free service-start time.
        let mut backlog: Vec<u32> = vec![0; num_edges];
        let mut queue: HeapQueue<Ev> = HeapQueue::new();
        let mut copies = TimeWeighted::new(0.0, 0.0);
        let mut generated = 0u64;

        for i in 0..sources.len() {
            queue.schedule(exp_sample(&mut rng, cfg.lambda), Ev::Arrival(i as u32));
        }
        if cfg.warmup > 0.0 {
            queue.schedule(cfg.warmup, Ev::Warmup);
        }

        while let Some((now, ev)) = queue.next() {
            if now > cfg.horizon {
                break;
            }
            match ev {
                Ev::Warmup => copies.reset(cfg.warmup),
                Ev::Arrival(i) => {
                    let src = sources[i as usize];
                    let dst = self.dest.sample(&self.topo, src, &mut rng);
                    if src != dst {
                        if now >= cfg.warmup {
                            generated += 1;
                        }
                        let state = self.router.init_state(&self.topo, src, dst, &mut rng);
                        let mut cur = src;
                        while let Some(e) = self.router.next_edge(&self.topo, cur, dst, state) {
                            let ei = e.index();
                            copies.add(now, 1.0);
                            backlog[ei] += 1;
                            if backlog[ei] == 1 {
                                queue.schedule(now + 1.0, Ev::Departure(ei as u32));
                            }
                            cur = self.topo.edge_target(e);
                        }
                    }
                    queue.schedule(now + exp_sample(&mut rng, cfg.lambda), Ev::Arrival(i));
                }
                Ev::Departure(e) => {
                    let ei = e as usize;
                    debug_assert!(backlog[ei] > 0);
                    backlog[ei] -= 1;
                    copies.add(now, -1.0);
                    if backlog[ei] > 0 {
                        queue.schedule(now + 1.0, Ev::Departure(e));
                    }
                }
            }
        }

        let measure = (cfg.horizon - cfg.warmup).max(f64::MIN_POSITIVE);
        CopyResult {
            time_avg_copies: copies.integral(cfg.horizon) / measure,
            generated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshbound_queueing::single::md1_mean_number;
    use meshbound_routing::dest::UniformDest;
    use meshbound_routing::GreedyXY;
    use meshbound_topology::Mesh2D;

    #[test]
    fn copy_population_matches_sum_of_md1_queues() {
        // Linearity of expectation across *dependent* M/D/1 queues: the
        // crucial step in Theorem 10's proof, verified by simulation.
        let n = 4;
        let mesh = Mesh2D::square(n);
        let lambda = 0.3;
        let cfg = NetConfig {
            lambda,
            horizon: 40_000.0,
            warmup: 2_000.0,
            seed: 31,
            ..NetConfig::default()
        };
        let res = CopySystemSim::new(mesh.clone(), GreedyXY, UniformDest, cfg).run();
        let rates = meshbound_routing::rates::mesh_thm6_rates(&mesh, lambda);
        let expect: f64 = rates.iter().map(|&l| md1_mean_number(l)).sum();
        let rel = (res.time_avg_copies - expect).abs() / expect;
        assert!(
            rel < 0.05,
            "copy system E[N̄] = {}, Σ M/D/1 = {expect}",
            res.time_avg_copies
        );
    }

    #[test]
    fn thm12_inequality_against_fifo_network() {
        // E[N̄] ≤ d̄ · E[N] with d̄ = n − 1/2.
        use crate::network::NetworkSim;
        let n = 5;
        let mesh = Mesh2D::square(n);
        let cfg = NetConfig {
            lambda: 0.35,
            horizon: 30_000.0,
            warmup: 2_000.0,
            seed: 32,
            ..NetConfig::default()
        };
        let fifo = NetworkSim::new(mesh.clone(), GreedyXY, UniformDest, cfg.clone()).run();
        let copies = CopySystemSim::new(mesh, GreedyXY, UniformDest, cfg).run();
        let dbar = n as f64 - 0.5;
        assert!(
            copies.time_avg_copies <= dbar * fifo.time_avg_n,
            "E[N̄] = {} > d̄·E[N] = {}",
            copies.time_avg_copies,
            dbar * fifo.time_avg_n
        );
    }
}
