//! The two-dimensional torus (§6: the open-problem topology).
//!
//! The torus wraps both rows and columns, so every node has exactly four
//! outgoing edges. The paper notes that any network containing a directed
//! ring cannot be layered, so the Theorem 1 upper bound does not apply; the
//! Theorem 10 lower bound still does, and we also study the torus by
//! simulation.

use crate::ids::{EdgeId, NodeId};
use crate::mesh::Direction;
use crate::traits::Topology;
use serde::{Deserialize, Serialize};

/// An `n × n` torus with directed wraparound edges in all four directions.
///
/// Edge layout: for node `(r, c)` with id `v`, its four outgoing edges are
/// `4v + k` where `k` indexes [`Direction::ALL`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Torus2D {
    n: u32,
}

impl Torus2D {
    /// Creates an `n × n` torus.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3` (a 2-torus would have parallel edges).
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n >= 3, "torus needs side at least 3");
        Self { n: n as u32 }
    }

    /// Side length.
    #[must_use]
    pub fn side(&self) -> usize {
        self.n as usize
    }

    /// Node id for 0-based `(row, col)`.
    #[inline]
    #[must_use]
    pub fn node(&self, row: usize, col: usize) -> NodeId {
        debug_assert!(row < self.side() && col < self.side());
        NodeId((row as u32) * self.n + col as u32)
    }

    /// 0-based `(row, col)` of a node.
    #[inline]
    #[must_use]
    pub fn coords(&self, v: NodeId) -> (usize, usize) {
        let n = self.side();
        (v.index() / n, v.index() % n)
    }

    /// The outgoing edge of `v` in direction `dir` (always exists on a torus).
    #[inline]
    #[must_use]
    pub fn edge_in_direction(&self, v: NodeId, dir: Direction) -> EdgeId {
        let k = match dir {
            Direction::Right => 0,
            Direction::Left => 1,
            Direction::Down => 2,
            Direction::Up => 3,
        };
        EdgeId(v.0 * 4 + k)
    }

    /// Direction of an edge.
    #[inline]
    #[must_use]
    pub fn direction(&self, e: EdgeId) -> Direction {
        Direction::ALL[(e.0 % 4) as usize]
    }

    /// Signed wrap-around displacement from `a` to `b` along one axis of
    /// length `n`: the shortest of going "up" (positive) or "down"
    /// (negative); ties resolve to the positive direction.
    #[must_use]
    pub fn wrap_delta(n: usize, a: usize, b: usize) -> isize {
        let n = n as isize;
        let d = (b as isize - a as isize).rem_euclid(n);
        if d <= n / 2 {
            d
        } else {
            d - n
        }
    }

    /// Torus (wraparound Manhattan) distance between two nodes.
    #[must_use]
    pub fn distance(&self, a: NodeId, b: NodeId) -> usize {
        let (ra, ca) = self.coords(a);
        let (rb, cb) = self.coords(b);
        let n = self.side();
        Self::wrap_delta(n, ra, rb).unsigned_abs() + Self::wrap_delta(n, ca, cb).unsigned_abs()
    }

    /// Mean greedy-route length over uniform pairs (self-pairs included).
    #[must_use]
    pub fn mean_distance(&self) -> f64 {
        // Per axis: mean |wrap delta| over uniform pairs = n/4 (even) or
        // (n² − 1)/(4n) (odd); two independent axes.
        let n = self.side() as f64;
        let per_axis = if self.side().is_multiple_of(2) {
            n / 4.0
        } else {
            (n * n - 1.0) / (4.0 * n)
        };
        2.0 * per_axis
    }
}

impl Topology for Torus2D {
    fn num_nodes(&self) -> usize {
        self.side() * self.side()
    }

    fn num_edges(&self) -> usize {
        4 * self.num_nodes()
    }

    fn edge_source(&self, e: EdgeId) -> NodeId {
        NodeId(e.0 / 4)
    }

    fn edge_target(&self, e: EdgeId) -> NodeId {
        let v = NodeId(e.0 / 4);
        let (r, c) = self.coords(v);
        let n = self.side();
        let (r2, c2) = match self.direction(e) {
            Direction::Right => (r, (c + 1) % n),
            Direction::Left => (r, (c + n - 1) % n),
            Direction::Down => ((r + 1) % n, c),
            Direction::Up => ((r + n - 1) % n, c),
        };
        self.node(r2, c2)
    }

    fn out_edges_into(&self, v: NodeId, out: &mut Vec<EdgeId>) {
        out.clear();
        for k in 0..4 {
            out.push(EdgeId(v.0 * 4 + k));
        }
    }

    fn label(&self) -> String {
        format!("torus {0}x{0}", self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_node_has_four_out_edges() {
        let t = Torus2D::new(4);
        for v in t.nodes() {
            let es = t.out_edges(v);
            assert_eq!(es.len(), 4);
            for e in es {
                assert_eq!(t.edge_source(e), v);
            }
        }
    }

    #[test]
    fn wrap_delta_shortest() {
        assert_eq!(Torus2D::wrap_delta(5, 0, 4), -1);
        assert_eq!(Torus2D::wrap_delta(5, 4, 0), 1);
        assert_eq!(Torus2D::wrap_delta(5, 1, 3), 2);
        assert_eq!(Torus2D::wrap_delta(6, 0, 3), 3); // tie goes positive
        assert_eq!(Torus2D::wrap_delta(6, 3, 0), 3);
    }

    #[test]
    fn distance_wraps() {
        let t = Torus2D::new(5);
        assert_eq!(t.distance(t.node(0, 0), t.node(0, 4)), 1);
        assert_eq!(t.distance(t.node(0, 0), t.node(4, 4)), 2);
        assert_eq!(t.distance(t.node(2, 2), t.node(2, 2)), 0);
    }

    #[test]
    fn mean_distance_matches_enumeration() {
        for n in [3usize, 4, 5, 6] {
            let t = Torus2D::new(n);
            let mut total = 0usize;
            for a in t.nodes() {
                for b in t.nodes() {
                    total += t.distance(a, b);
                }
            }
            let avg = total as f64 / ((n * n) as f64).powi(2);
            assert!(
                (avg - t.mean_distance()).abs() < 1e-12,
                "n={n}: enumerated {avg} vs formula {}",
                t.mean_distance()
            );
        }
    }

    #[test]
    fn contains_directed_ring_so_not_layerable() {
        // Walking right n times returns to the start: a directed ring, which
        // is why the paper's layering argument cannot apply (§6).
        let t = Torus2D::new(4);
        let mut v = t.node(2, 0);
        for _ in 0..4 {
            v = t.edge_target(t.edge_in_direction(v, Direction::Right));
        }
        assert_eq!(v, t.node(2, 0));
    }
}
