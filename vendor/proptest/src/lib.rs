//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses: the
//! [`proptest!`] macro with `name in strategy` bindings, range / tuple /
//! `any::<T>()` / `collection::vec` strategies, and the `prop_assert*`
//! macros. Each test runs a fixed number of random cases from a seed
//! derived deterministically from the test's name, so failures reproduce
//! across runs. Unlike the real crate there is **no shrinking** — a failure
//! reports the offending case index and the generated values' Debug
//! rendering instead of a minimized counterexample.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a proptest-style test module needs in scope.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over many generated cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::test_runner::cases();
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for __case in 0..cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}, ",)+ ""),
                        $(&$arg,)+
                    );
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!(
                            "proptest {} failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name), __case + 1, cases, e, __inputs,
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current proptest case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current proptest case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r,
        );
    }};
}

/// Fails the current proptest case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l,
        );
    }};
}
