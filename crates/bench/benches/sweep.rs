//! Sweep-engine benchmark: the same grid executed sequentially and in
//! parallel, to keep the engine's speedup measurable (and its results
//! bit-identical) as the workspace grows.

use criterion::{criterion_group, criterion_main, Criterion};
use meshbound::sweep::{run_sweep, Jobs};
use meshbound::SweepSpec;

const SPEC: &str = "topo=mesh:5|mesh:6|torus:5|torus:6 load=rho:0.2|rho:0.6 \
                    horizon=300 warmup=30";

fn bench(c: &mut Criterion) {
    let spec = SweepSpec::parse(SPEC).expect("bench sweep spec must parse");
    // Sanity: parallel execution must not change a single bit of the
    // results, only the wall clock.
    let seq = run_sweep(&spec, Jobs::Sequential).unwrap();
    let par = run_sweep(&spec, Jobs::Parallel).unwrap();
    assert_eq!(
        seq.without_timings().to_json(),
        par.without_timings().to_json(),
        "parallel sweep diverged from sequential"
    );
    println!(
        "sweep bench grid: {} cells, parallel speedup {:.2}x on {} workers",
        par.num_cells, par.speedup, par.workers
    );

    let mut group = c.benchmark_group("sweep");
    group.bench_function("grid_8cells_sequential", |b| {
        b.iter(|| run_sweep(&spec, Jobs::Sequential).unwrap());
    });
    group.bench_function("grid_8cells_parallel", |b| {
        b.iter(|| run_sweep(&spec, Jobs::Parallel).unwrap());
    });
    // Specification handling alone: parse + expand, no simulation.
    group.bench_function("parse_and_expand", |b| {
        b.iter(|| SweepSpec::parse(SPEC).unwrap().expand().unwrap().len());
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
