//! Offline stand-in for `criterion`.
//!
//! Provides the subset of the Criterion API the workspace's benches use —
//! `Criterion`, `benchmark_group`, `bench_function`, `Bencher::iter` /
//! `iter_batched`, `Throughput`, `BatchSize`, and the `criterion_group!` /
//! `criterion_main!` macros — backed by a deliberately small harness: each
//! benchmark runs a short calibrated loop and prints a single
//! `name ... time/iter` line. There are no statistics, plots, or baselines;
//! the point is that `cargo bench` compiles and produces honest smoke
//! timings without registry access.

use std::time::{Duration, Instant};

/// Re-export-compatible `black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup; ignored by this harness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input for every routine call.
    PerIteration,
}

/// Declared throughput of a benchmark, echoed in the report line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Runs the measured closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over a calibrated number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with per-batch `setup` excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_one(label: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    // Calibrate: one untimed pass, then enough iterations to fill ~50 ms,
    // capped so slow benches still finish promptly.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(50);
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 1000) as u64;
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let ns = b.elapsed.as_nanos() as f64 / iters as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.0} elem/s)", n as f64 / (ns / 1e9))
        }
        Some(Throughput::Bytes(n)) => format!("  ({:.0} B/s)", n as f64 / (ns / 1e9)),
        None => String::new(),
    };
    println!("bench: {label:<50} {:>12.0} ns/iter{rate}", ns);
}

/// Entry point handed to benchmark functions.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one stand-alone benchmark.
    pub fn bench_function<S: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.to_string(), None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: std::fmt::Display>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; this harness self-calibrates instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility with the real crate.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets the throughput echoed on subsequent report lines.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<S: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.throughput, &mut f);
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Bundles benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits the `main` that runs every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
