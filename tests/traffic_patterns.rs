//! Cross-crate tests for the first-class `TrafficSpec` workloads:
//! the uniform-workload bit-identity pin against the pre-TrafficSpec
//! scalar-λ path, per-pattern conservation laws, the delay ≥ distance
//! lower bound, bit-identical rerun determinism, and the end-to-end
//! `repro` CLI path.

use meshbound::routing::dest::UniformDest;
use meshbound::routing::GreedyXY;
use meshbound::sim::network::{NetConfig, NetworkSim};
use meshbound::sim::SimResult;
use meshbound::topology::Mesh2D;
use meshbound::{
    BoundsReport, Load, PatternSpec, PermutationKind, Scenario, SourceSpec, TrafficSpec,
};

/// The acceptance pin: a `TrafficSpec` with uniform sources and uniform
/// destinations must be bit-identical to the historical `DestSpec::Uniform`
/// path (a direct `NetworkSim` with the scalar `NetConfig::lambda`).
#[test]
fn uniform_trafficspec_bit_identical_to_scalar_lambda_path() {
    let sc = Scenario::mesh(5)
        .traffic(TrafficSpec::uniform())
        .load(Load::Lambda(0.15))
        .horizon(1_500.0)
        .warmup(150.0)
        .seed(23);
    let via_traffic = sc.run();
    let direct = NetworkSim::new(
        Mesh2D::square(5),
        GreedyXY,
        UniformDest,
        NetConfig {
            lambda: 0.15,
            horizon: 1_500.0,
            warmup: 150.0,
            seed: 23,
            ..NetConfig::default()
        },
    )
    .run();
    assert_eq!(via_traffic.avg_delay.to_bits(), direct.avg_delay.to_bits());
    assert_eq!(via_traffic.generated, direct.generated);
    assert_eq!(via_traffic.completed, direct.completed);
    assert_eq!(
        via_traffic.time_avg_n.to_bits(),
        direct.time_avg_n.to_bits()
    );
    assert_eq!(via_traffic.events_processed, direct.events_processed);

    // An *explicit* uniform per-source rate vector must also match: the
    // generalized arrival scheduler draws the identical RNG stream.
    let with_rates = NetworkSim::new(
        Mesh2D::square(5),
        GreedyXY,
        UniformDest,
        NetConfig {
            lambda: 0.15,
            horizon: 1_500.0,
            warmup: 150.0,
            seed: 23,
            ..NetConfig::default()
        },
    )
    .with_source_rates(vec![0.15; 25])
    .run();
    assert_eq!(with_rates.avg_delay.to_bits(), direct.avg_delay.to_bits());
    assert_eq!(with_rates.events_processed, direct.events_processed);
}

/// Every new workload, one scenario each, exercised end to end.
fn pattern_zoo() -> Vec<Scenario> {
    vec![
        Scenario::mesh(8)
            .traffic(TrafficSpec::transpose())
            .load(Load::Utilization(0.4)),
        Scenario::mesh(8)
            .traffic(TrafficSpec::bit_reversal())
            .load(Load::Lambda(0.05)),
        Scenario::mesh(7)
            .traffic(TrafficSpec::bit_complement())
            .load(Load::Lambda(0.04)),
        Scenario::mesh(8)
            .traffic(TrafficSpec::shuffle())
            .load(Load::Lambda(0.05)),
        Scenario::mesh(6)
            .traffic(TrafficSpec::hotspot(0.3))
            .load(Load::Utilization(0.5)),
        Scenario::torus(4)
            .traffic(TrafficSpec::transpose())
            .load(Load::Lambda(0.08)),
        Scenario::hypercube(6)
            .traffic(TrafficSpec::shuffle())
            .load(Load::Lambda(0.3)),
        Scenario::hypercube(4)
            .traffic(TrafficSpec::bit_complement())
            .load(Load::Utilization(0.4)),
        Scenario::mesh_kd(&[4, 4, 4])
            .traffic(TrafficSpec::bit_complement())
            .load(Load::Lambda(0.03)),
        Scenario::mesh(5)
            .source(SourceSpec::Hotspot {
                node: None,
                weight: 5.0,
            })
            .load(Load::Lambda(0.08)),
        Scenario::mesh(4).traffic(TrafficSpec::matrix(hot_corner_matrix(16))),
    ]
}

/// A matrix sending most traffic from the first row of nodes to the last
/// node, with a uniform background.
fn hot_corner_matrix(n: usize) -> Vec<Vec<f64>> {
    let mut rows = vec![vec![1.0; n]; n];
    for row in rows.iter_mut().take(4) {
        row[n - 1] = 10.0;
    }
    rows
}

fn run_measured(sc: &Scenario) -> SimResult {
    // warmup = 0 makes the conservation law exact: every in-flight packet
    // at the horizon was generated inside the measurement window.
    sc.clone().horizon(2_000.0).warmup(0.0).seed(11).run()
}

/// Conservation: generated = delivered + in flight at the horizon, for
/// every pattern.
#[test]
fn conservation_arrivals_equal_departures_plus_in_flight() {
    for sc in pattern_zoo() {
        let res = run_measured(&sc);
        assert!(res.completed > 0, "{} delivered nothing", sc.spec_string());
        assert_eq!(
            res.generated,
            res.completed + res.final_n as u64,
            "{}: generated {} vs completed {} + in-flight {}",
            sc.spec_string(),
            res.generated,
            res.completed,
            res.final_n
        );
    }
}

/// Each hop costs at least one unit of service, so the mean delay can
/// never fall below the workload's mean route length (small tolerance for
/// the horizon's censoring of long routes).
#[test]
fn delay_respects_the_distance_lower_bound() {
    for sc in pattern_zoo() {
        let res = run_measured(&sc);
        let nbar = sc.mean_distance();
        assert!(
            res.avg_delay >= nbar * 0.95,
            "{}: delay {} below mean distance {}",
            sc.spec_string(),
            res.avg_delay,
            nbar
        );
    }
}

/// Simulated edge throughput must match the exact enumerated rate vector
/// the bounds are computed from — the workload the simulator runs is the
/// workload the analysis describes.
#[test]
fn edge_throughput_matches_pattern_rate_vectors() {
    for sc in [
        Scenario::mesh(6)
            .traffic(TrafficSpec::transpose())
            .load(Load::Utilization(0.4)),
        Scenario::mesh(6)
            .traffic(TrafficSpec::hotspot(0.3))
            .load(Load::Utilization(0.4)),
    ] {
        let res = sc.clone().horizon(40_000.0).warmup(1_000.0).seed(3).run();
        let rates = sc.edge_rates();
        for (e, (&got, &want)) in res.edge_throughput.iter().zip(&rates).enumerate() {
            assert!(
                (got - want).abs() < 0.1 * want.max(0.05),
                "{} edge {e}: throughput {got} vs rate {want}",
                sc.spec_string()
            );
        }
    }
}

/// Bit-identical rerun determinism across all new patterns (and one
/// seed-sensitivity spot check).
#[test]
fn reruns_are_bit_identical_for_every_pattern() {
    for sc in pattern_zoo() {
        let sc = sc.horizon(800.0).warmup(80.0).seed(42);
        let a = sc.run();
        let b = sc.run();
        assert_eq!(
            a.avg_delay.to_bits(),
            b.avg_delay.to_bits(),
            "{}",
            sc.spec_string()
        );
        assert_eq!(a.generated, b.generated, "{}", sc.spec_string());
        assert_eq!(
            a.events_processed,
            b.events_processed,
            "{}",
            sc.spec_string()
        );
        assert_eq!(a.time_avg_n.to_bits(), b.time_avg_n.to_bits());
    }
    let base = Scenario::mesh(8)
        .traffic(TrafficSpec::transpose())
        .load(Load::Lambda(0.05))
        .horizon(800.0)
        .warmup(80.0);
    let a = base.clone().seed(1).run();
    let b = base.seed(2).run();
    assert_ne!(a.avg_delay.to_bits(), b.avg_delay.to_bits());
}

/// Permutation, hotspot and weighted-source workloads run end to end with
/// bounds computed from their own edge-rate vectors bracketing the
/// simulation.
#[test]
fn bounds_bracket_simulation_for_patterns() {
    for sc in [
        Scenario::mesh(8)
            .traffic(TrafficSpec::transpose())
            .load(Load::Utilization(0.5)),
        Scenario::mesh(8)
            .traffic(TrafficSpec::bit_reversal())
            .load(Load::Utilization(0.5)),
        Scenario::mesh(6)
            .traffic(TrafficSpec::hotspot(0.25))
            .load(Load::Utilization(0.5)),
        Scenario::mesh(5)
            .source(SourceSpec::Hotspot {
                node: Some(12),
                weight: 4.0,
            })
            .load(Load::Utilization(0.5)),
    ] {
        let sc = sc.horizon(20_000.0).warmup(2_000.0).seed(9);
        let report = BoundsReport::compute_for(&sc);
        let res = sc.run();
        assert!(
            res.avg_delay >= report.lower_best * 0.9,
            "{}: delay {} below lower bound {}",
            sc.spec_string(),
            res.avg_delay,
            report.lower_best
        );
        assert!(
            res.avg_delay <= report.upper * 1.1,
            "{}: delay {} above upper bound {}",
            sc.spec_string(),
            res.avg_delay,
            report.upper
        );
        // The report reflects the requested operating point.
        assert!(
            (report.utilization - 0.5).abs() < 1e-9,
            "{}",
            sc.spec_string()
        );
        assert!(
            (res.max_edge_utilization - 0.5).abs() < 0.05,
            "{}: measured peak utilization {}",
            sc.spec_string(),
            res.max_edge_utilization
        );
    }
}

/// Zero-rate sources stay silent: a matrix whose row is all zero
/// generates nothing from that node.
#[test]
fn silent_matrix_rows_generate_nothing() {
    let n = 9; // 3×3 mesh
    let mut rows = vec![vec![0.0; n]; n];
    // Only node 0 talks, to node 8.
    rows[0][8] = 1.0;
    let sc = Scenario::mesh(3)
        .traffic(TrafficSpec::matrix(rows))
        .load(Load::Lambda(0.1))
        .horizon(5_000.0)
        .warmup(0.0);
    let res = sc.run();
    assert!(res.completed > 0);
    // All traffic rides the single 0 → 8 greedy route (4 hops); delays of
    // completed packets are at least that.
    assert!(res.avg_delay >= 4.0, "delay {}", res.avg_delay);
    // Mean per-source rate 0.1 over 9 sources, all concentrated on node
    // 0: γ = 0.9 total, all from one source.
    let rates = sc.edge_rates();
    let positive = rates.iter().filter(|&&r| r > 1e-12).count();
    assert_eq!(positive, 4, "exactly the 0 → 8 route carries traffic");
}

/// The spec grammar names the new workloads: parse → run → spec_string
/// round trip, through the same strings the `repro` CLI accepts.
#[test]
fn traffic_specs_parse_and_run_end_to_end() {
    for spec in [
        "mesh:8,traffic=transpose,util=0.4,horizon=600,warmup=60",
        "mesh:8,traffic=bitrev,lambda=0.05,horizon=600,warmup=60",
        "mesh:8,traffic=shuffle,lambda=0.05,horizon=600,warmup=60",
        "mesh:6,traffic=hotspot:0.3,util=0.4,horizon=600,warmup=60",
        "mesh:6,traffic=hotspot:0.5:0,lambda=0.03,horizon=600,warmup=60",
        "mesh:5,src=hotspot:4,lambda=0.05,horizon=600,warmup=60",
        "hypercube:6,traffic=bitcomp,util=0.4,horizon=600,warmup=60",
        "torus:4,traffic=transpose,lambda=0.08,horizon=600,warmup=60",
    ] {
        let sc = Scenario::parse(spec).unwrap_or_else(|e| panic!("`{spec}`: {e}"));
        let round = Scenario::parse(&sc.spec_string()).unwrap();
        assert_eq!(round, sc, "`{spec}` round trip");
        let res = sc.run();
        assert!(res.completed > 0, "`{spec}` delivered nothing");
        let report = BoundsReport::compute_for(&sc);
        assert!(report.lower_best > 0.0 && report.lower_best.is_finite());
    }
}

/// The `repro` CLI runs traffic-pattern scenarios and sweeps end to end.
#[test]
fn repro_cli_accepts_traffic_workloads() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let output = std::process::Command::new(&cargo)
        .args([
            "run",
            "--release",
            "-p",
            "meshbound_bench",
            "--bin",
            "repro",
            "--",
            "scenario",
            "mesh:8,traffic=transpose,util=0.5,horizon=400,warmup=40",
            "mesh:6,traffic=hotspot:0.25,lambda=0.05,horizon=400,warmup=40",
        ])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("spawn cargo run repro");
    assert!(
        output.status.success(),
        "repro scenario failed\nstdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("traffic=transpose"));
    assert!(stdout.contains("simulated: T ="));

    let output = std::process::Command::new(&cargo)
        .args([
            "run",
            "--release",
            "-p",
            "meshbound_bench",
            "--bin",
            "repro",
            "--",
            "sweep",
            "topo=mesh:4 load=util:0.3 traffic=uniform|transpose|hotspot:0.25 \
             horizon=400 warmup=40",
            "--check",
        ])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("spawn cargo run repro sweep");
    assert!(
        output.status.success(),
        "repro sweep failed\nstdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("traffic=transpose"));
    assert!(stdout.contains("traffic=hotspot:0.25"));
}

/// Sweep cells that differ only in the traffic axis get decorrelated
/// seeds, and uniform cells keep the exact seeds they had before the
/// traffic axis existed (the axis is additive).
#[test]
fn traffic_axis_cells_have_distinct_seeds() {
    use meshbound::SweepSpec;
    let sweep = SweepSpec::parse(
        "topo=mesh:4 load=util:0.3 traffic=uniform|transpose|hotspot:0.25 horizon=400 warmup=40",
    )
    .unwrap();
    let cells = sweep.expand().unwrap();
    assert_eq!(cells.len(), 3);
    let seeds: std::collections::HashSet<u64> = cells.iter().map(|c| c.seed).collect();
    assert_eq!(seeds.len(), 3, "traffic cells share a seed");
    // The uniform cell's spec string carries no traffic clause, so its
    // derived seed is identical to the one a traffic-free sweep assigns.
    let legacy = SweepSpec::parse("topo=mesh:4 load=util:0.3 horizon=400 warmup=40").unwrap();
    let legacy_cells = legacy.expand().unwrap();
    assert_eq!(cells[0].seed, legacy_cells[0].seed);
    assert!(
        matches!(cells[0].traffic.pattern, PatternSpec::Uniform),
        "first cell is the uniform one"
    );
    assert!(matches!(
        cells[1].traffic.pattern,
        PatternSpec::Permutation {
            kind: PermutationKind::Transpose
        }
    ));
}
