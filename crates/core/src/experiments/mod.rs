//! Reproduction harnesses for every table and figure in the paper.
//!
//! | module | regenerates |
//! |--------|-------------|
//! | [`table1`] | Table I — simulated delay vs the M/D/1 estimate |
//! | [`table2`] | Table II — the ratio `r = E[R]/E[N]` |
//! | [`table3`] | Table III — the saturated ratio `r_s` at ρ = 0.99 |
//! | [`fig1`] | Figure 1 — the Lemma 2 layering labels |
//! | [`fig2`] | Figure 2 — saturated edges, even vs odd `n` |
//! | [`extensions`] | §4.5/§5/§6 studies: bounds curves, stability, capacity allocation, hypercube/butterfly gaps, randomized greedy, torus, slotted time, non-uniform destinations |
//!
//! Every harness accepts a [`Scale`] so that CI and Criterion benches can
//! run reduced but structurally identical versions ([`Scale::quick`]) while
//! the `repro` binary runs publication-scale sweeps ([`Scale::full`]).

pub mod extensions;
pub mod fig1;
pub mod fig2;
pub mod table1;
pub mod table2;
pub mod table3;

use serde::{Deserialize, Serialize};

/// Sizing knobs for a simulation sweep.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Scale {
    /// Base horizon; actual horizon grows like `base/(1−ρ)` up to the cap,
    /// tracking the O(1/(1−ρ)²) relaxation time of heavily loaded queues.
    pub horizon_base: f64,
    /// Hard horizon cap.
    pub horizon_cap: f64,
    /// Independent replications per cell.
    pub reps: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Scale {
    /// Reduced scale for tests and Criterion benches (seconds, not minutes).
    #[must_use]
    pub fn quick() -> Self {
        Self {
            horizon_base: 1_500.0,
            horizon_cap: 12_000.0,
            reps: 1,
            seed: 0x6d65_7368,
        }
    }

    /// Publication scale used by the `repro` binary. Sized so the complete
    /// `repro all` sweep finishes in tens of minutes on a single core;
    /// every heavy cell still runs ≥ 10 relaxation times at ρ = 0.99.
    #[must_use]
    pub fn full() -> Self {
        Self {
            horizon_base: 6_000.0,
            horizon_cap: 100_000.0,
            reps: 2,
            seed: 0x6d65_7368,
        }
    }

    /// Horizon for a cell at Table-ρ `rho`.
    #[must_use]
    pub fn horizon(&self, rho: f64) -> f64 {
        (self.horizon_base / (1.0 - rho).max(1e-3)).min(self.horizon_cap)
    }

    /// Warmup used for a cell (one fifth of the horizon).
    #[must_use]
    pub fn warmup(&self, rho: f64) -> f64 {
        self.horizon(rho) / 5.0
    }
}

/// Minimal fixed-width text-table builder used by all renderers.
#[derive(Debug, Default, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics if the width differs from the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let line = |cells: &[String]| -> String {
            let mut s = String::new();
            for i in 0..ncols {
                if i > 0 {
                    s.push_str("  ");
                }
                let w = widths[i];
                s.push_str(&format!("{:>w$}", cells[i]));
            }
            s.push('\n');
            s
        };
        let mut out = line(&self.header);
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horizon_grows_with_load_and_caps() {
        let s = Scale::quick();
        assert!(s.horizon(0.9) > s.horizon(0.2));
        assert!(s.horizon(0.999) <= s.horizon_cap);
        assert!(s.warmup(0.5) < s.horizon(0.5));
    }

    #[test]
    fn text_table_alignment() {
        let mut t = TextTable::new(&["n", "value"]);
        t.row(vec!["5".into(), "3.14".into()]);
        t.row(vec!["100".into(), "2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("value"));
        assert!(lines[2].ends_with("3.14"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn text_table_rejects_ragged_rows() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
