//! Cross-engine equivalence: the hot-path engine (`EngineSpec`) must never
//! change a reported number. Heap, calendar and route-table paths are run
//! side by side over every topology family, both time modes, and random
//! loads/seeds, and every deterministic `SimResult` field is compared bit
//! for bit. The conservative parallel engine joins at three levels:
//! `sharded:1` is bit-identical to the calendar oracle, `sharded:{2,4}`
//! agree with it statistically, and every `(seed, shards)` pair reruns
//! bit-identically.

use meshbound::sim::SimResult;
use meshbound::{EngineSpec, Load, RouterSpec, Scenario, TrafficSpec};
use proptest::prelude::*;

/// Bitwise comparison of every deterministic `SimResult` field
/// (`events_per_sec` is wall-clock and excluded by design).
fn assert_bit_identical(label: &str, a: &SimResult, b: &SimResult) {
    let f = f64::to_bits;
    assert_eq!(f(a.avg_delay), f(b.avg_delay), "{label}: avg_delay");
    assert_eq!(f(a.delay_std_err), f(b.delay_std_err), "{label}: std_err");
    assert_eq!(a.generated, b.generated, "{label}: generated");
    assert_eq!(a.completed, b.completed, "{label}: completed");
    assert_eq!(f(a.time_avg_n), f(b.time_avg_n), "{label}: time_avg_n");
    assert_eq!(f(a.time_avg_r), f(b.time_avg_r), "{label}: time_avg_r");
    assert_eq!(f(a.time_avg_rs), f(b.time_avg_rs), "{label}: time_avg_rs");
    assert_eq!(f(a.r_ratio), f(b.r_ratio), "{label}: r_ratio");
    assert_eq!(f(a.rs_ratio), f(b.rs_ratio), "{label}: rs_ratio");
    assert_eq!(f(a.little_delay), f(b.little_delay), "{label}: little");
    assert_eq!(
        f(a.max_edge_utilization),
        f(b.max_edge_utilization),
        "{label}: max_edge_utilization"
    );
    assert_eq!(f(a.final_n), f(b.final_n), "{label}: final_n");
    assert_eq!(f(a.peak_n), f(b.peak_n), "{label}: peak_n");
    assert_eq!(
        a.events_processed, b.events_processed,
        "{label}: events_processed"
    );
    assert_eq!(a.n_samples, b.n_samples, "{label}: n_samples");
    assert_eq!(a.delay_p50, b.delay_p50, "{label}: delay_p50");
    assert_eq!(a.delay_p99, b.delay_p99, "{label}: delay_p99");
    assert_eq!(a.edge_mean_queue, b.edge_mean_queue, "{label}: edge queues");
    for (i, (x, y)) in a.edge_throughput.iter().zip(&b.edge_throughput).enumerate() {
        assert_eq!(f(*x), f(*y), "{label}: edge_throughput[{i}]");
    }
}

/// Runs one scenario under all three engines and cross-checks.
fn check_all_engines(sc: Scenario) {
    let label = sc.spec_string();
    let heap = sc.clone().engine(EngineSpec::Heap).run();
    let calendar = sc.clone().engine(EngineSpec::Calendar).run();
    let auto = sc.engine(EngineSpec::Auto).run();
    assert_bit_identical(&format!("{label} calendar-vs-heap"), &heap, &calendar);
    assert_bit_identical(&format!("{label} auto-vs-heap"), &heap, &auto);
    assert!(heap.events_processed > 0, "{label}: no events simulated");
}

/// The five topology families at a fixed operating point.
fn family(idx: usize) -> Scenario {
    match idx {
        0 => Scenario::mesh(4),
        1 => Scenario::torus(4),
        2 => Scenario::hypercube(4),
        3 => Scenario::butterfly(3),
        _ => Scenario::mesh_kd(&[3, 3, 3]),
    }
}

proptest! {
    /// All five `TopologySpec` families × slotted/continuous × random
    /// load and seed: heap, calendar and route-table engines must agree
    /// bit for bit.
    #[test]
    fn engines_agree_across_topologies_and_modes(
        topo in 0usize..5,
        slotted in any::<bool>(),
        lambda in 0.02f64..0.12,
        seed in 1u64..1_000,
    ) {
        let mut sc = family(topo)
            .load(Load::Lambda(lambda))
            .horizon(250.0)
            .warmup(25.0)
            .seed(seed);
        if slotted {
            sc = sc.slot(1.0);
        }
        check_all_engines(sc);
    }
}

#[test]
fn engines_agree_with_every_tracking_option_enabled() {
    // Saturated-service tracking (route-table saturated counts), delay
    // quantiles, per-edge queues and N(t) sampling all at once, plus the
    // Jackson (exponential) service mode.
    let sc = Scenario::mesh(5)
        .load(Load::TableRho(0.7))
        .horizon(1_500.0)
        .warmup(150.0)
        .seed(99)
        .track_saturated(true)
        .delay_quantiles(true)
        .track_edge_queues(true)
        .sample_every(100.0);
    check_all_engines(sc.clone());
    check_all_engines(sc.service(meshbound::sim::ServiceKind::Exponential));
}

#[test]
fn greedy_routing_policy_reproduces_the_pre_policy_fingerprints() {
    // Golden pin: these fingerprints were captured *before* the per-hop
    // `RoutingPolicy` refactor, when the engines consumed whole
    // `Router::route` paths. Greedy routing is oblivious — queue state
    // must never change its decisions — so routing hop by hop through
    // `next_hop` has to reproduce the old trajectories bit for bit, on
    // every engine. A mismatch means the adapter changed the physics.
    struct Pin {
        sc: fn() -> Scenario,
        lambda: f64,
        events: u64,
        delay_bits: u64,
        completed: u64,
        time_avg_n_bits: u64,
    }
    let pins = [
        Pin {
            sc: || Scenario::mesh(4),
            lambda: 0.08,
            events: 1765,
            delay_bits: 0x40034e42a2b5e7f1,
            completed: 461,
            time_avg_n_bits: 0x4008fa97cee2fe1b,
        },
        Pin {
            sc: || Scenario::torus(4),
            lambda: 0.08,
            events: 1542,
            delay_bits: 0x3fff6cfb98aa1384,
            completed: 463,
            time_avg_n_bits: 0x40045a74a48281eb,
        },
        Pin {
            sc: || Scenario::hypercube(4),
            lambda: 0.2,
            events: 3856,
            delay_bits: 0x40009025f0b3aae9,
            completed: 1132,
            time_avg_n_bits: 0x401a4bfa0449b79a,
        },
        Pin {
            sc: || Scenario::butterfly(3),
            lambda: 0.3,
            events: 3952,
            delay_bits: 0x40098a857354d1bd,
            completed: 863,
            time_avg_n_bits: 0x401f24b1257a6a4e,
        },
        Pin {
            sc: || Scenario::mesh_kd(&[3, 3, 3]),
            lambda: 0.06,
            events: 2380,
            delay_bits: 0x4005c289c7b2432a,
            completed: 576,
            time_avg_n_bits: 0x401197309818a7c1,
        },
    ];
    let engines = [
        EngineSpec::Heap,
        EngineSpec::Calendar,
        EngineSpec::Auto,
        EngineSpec::Sharded { shards: 1 },
    ];
    for pin in &pins {
        let sc = (pin.sc)()
            .load(Load::Lambda(pin.lambda))
            .horizon(400.0)
            .warmup(40.0)
            .seed(17);
        let label = sc.spec_string();
        for engine in engines {
            let res = sc.clone().engine(engine).run();
            assert_eq!(
                res.events_processed, pin.events,
                "{label} {engine}: events_processed drifted from the pre-policy pin"
            );
            assert_eq!(
                res.avg_delay.to_bits(),
                pin.delay_bits,
                "{label} {engine}: avg_delay drifted from the pre-policy pin"
            );
            assert_eq!(
                res.completed, pin.completed,
                "{label} {engine}: completed drifted from the pre-policy pin"
            );
            assert_eq!(
                res.time_avg_n.to_bits(),
                pin.time_avg_n_bits,
                "{label} {engine}: time_avg_n drifted from the pre-policy pin"
            );
        }
    }
}

#[test]
fn engines_agree_for_adaptive_routers() {
    // Adaptive routers are not table-eligible (`is_route_deterministic`
    // is false), so every engine routes them per hop through `next_hop`
    // with live queue views — heap, calendar, auto and sharded:1 must
    // still agree bit for bit on mesh and torus.
    for router in [RouterSpec::WestFirst, RouterSpec::OddEven] {
        for sc in [
            Scenario::mesh(5).load(Load::Lambda(0.12)),
            Scenario::mesh(4)
                .traffic(TrafficSpec::transpose())
                .load(Load::Lambda(0.2)),
            Scenario::torus(4).load(Load::Lambda(0.12)),
        ] {
            let sc = sc.router(router).horizon(600.0).warmup(60.0).seed(29);
            let label = sc.spec_string();
            check_all_engines(sc.clone());
            let calendar = sc.clone().engine(EngineSpec::Calendar).run();
            let sharded = sc.engine(EngineSpec::Sharded { shards: 1 }).run();
            assert_bit_identical(
                &format!("{label} sharded:1-vs-calendar"),
                &calendar,
                &sharded,
            );
        }
    }
}

#[test]
fn engines_agree_for_randomized_router_fallback() {
    // The randomized router is not table-eligible: Auto must fall back to
    // on-the-fly routing and still match the heap engine exactly.
    let sc = Scenario::mesh(5)
        .router(RouterSpec::Randomized)
        .load(Load::Lambda(0.1))
        .horizon(800.0)
        .warmup(80.0)
        .seed(7);
    check_all_engines(sc);
}

#[test]
fn engines_agree_for_nonuniform_destinations_and_rates() {
    let sc = Scenario::mesh(4)
        .traffic(TrafficSpec::nearby(0.4))
        .load(Load::Lambda(0.15))
        .horizon(900.0)
        .warmup(90.0)
        .seed(31)
        .service_rates(vec![1.5; 48]);
    check_all_engines(sc);
    let hc = Scenario::hypercube(4)
        .traffic(TrafficSpec::bernoulli(0.25))
        .load(Load::Lambda(0.3))
        .horizon(600.0)
        .warmup(60.0)
        .seed(32);
    check_all_engines(hc);
}

/// The sharded-oracle operating points: small members of the families the
/// conservative parallel engine supports, at a load where queues form.
fn sharded_cases() -> Vec<Scenario> {
    vec![
        Scenario::mesh(5).load(Load::Lambda(0.15)),
        Scenario::torus(4).load(Load::Lambda(0.12)),
        Scenario::hypercube(4).load(Load::Lambda(0.3)),
    ]
}

#[test]
fn one_shard_matches_the_calendar_engine_bit_for_bit() {
    // `sharded:1` runs the full conservative machinery — epoch windows,
    // outbox exchange, merge — on one thread, and must still reproduce
    // the single-core calendar engine exactly.
    for sc in sharded_cases() {
        let sc = sc
            .horizon(600.0)
            .warmup(60.0)
            .seed(23)
            .delay_quantiles(true)
            .track_edge_queues(true)
            .sample_every(50.0);
        let label = sc.spec_string();
        let calendar = sc.clone().engine(EngineSpec::Calendar).run();
        let sharded = sc.engine(EngineSpec::Sharded { shards: 1 }).run();
        assert_bit_identical(
            &format!("{label} sharded:1-vs-calendar"),
            &calendar,
            &sharded,
        );
    }
}

#[test]
fn sharded_engine_agrees_statistically_with_the_oracle() {
    // At shards >= 2 the partition changes the per-shard RNG streams, so
    // results differ bitwise from the single-core oracle — but they
    // simulate the same system, so the summary statistics must agree
    // within sampling noise.
    for sc in sharded_cases() {
        let sc = sc.horizon(900.0).warmup(90.0).seed(41);
        let label = sc.spec_string();
        let oracle = sc.clone().engine(EngineSpec::Calendar).run();
        for shards in [2, 4] {
            let res = sc.clone().engine(EngineSpec::Sharded { shards }).run();
            assert!(
                res.completed > 0,
                "{label} shards={shards}: nothing delivered"
            );
            let rel = (res.avg_delay - oracle.avg_delay).abs() / oracle.avg_delay;
            assert!(
                rel < 0.15,
                "{label} shards={shards}: delay {} vs oracle {} (rel {rel:.3})",
                res.avg_delay,
                oracle.avg_delay
            );
            let rel_n = (res.time_avg_n - oracle.time_avg_n).abs() / oracle.time_avg_n;
            assert!(
                rel_n < 0.15,
                "{label} shards={shards}: N {} vs oracle {} (rel {rel_n:.3})",
                res.time_avg_n,
                oracle.time_avg_n
            );
        }
    }
}

#[test]
fn sharded_engine_is_deterministic_at_every_shard_count() {
    // Fixed (seed, shards) must reproduce the identical SimResult across
    // reruns — thread scheduling is invisible by construction.
    for sc in sharded_cases() {
        let sc = sc.horizon(600.0).warmup(60.0).seed(57);
        let label = sc.spec_string();
        for shards in [1, 2, 4] {
            let spec = sc.clone().engine(EngineSpec::Sharded { shards });
            let a = spec.clone().run();
            let b = spec.run();
            assert_bit_identical(&format!("{label} shards={shards} rerun"), &a, &b);
        }
    }
}

#[test]
fn replication_runner_is_engine_invariant() {
    // run_replicated fans out over Rayon with derived seeds; the engine
    // must be invisible there too.
    let base = Scenario::torus(5)
        .load(Load::Utilization(0.5))
        .horizon(500.0)
        .warmup(50.0)
        .seed(11);
    let a = base.clone().engine(EngineSpec::Heap).run_replicated(3);
    let b = base.engine(EngineSpec::Auto).run_replicated(3);
    for (x, y) in a.runs.iter().zip(&b.runs) {
        assert_bit_identical("replicated torus", x, y);
    }
}
