//! Deterministic fault injection: [`FaultSpec`] (the `faults=` grammar)
//! materializes into a [`FaultPlan`] — a seed-derived timeline of link
//! failures and repairs the engines replay.
//!
//! The paper's bounds assume a pristine array; this module asks how
//! gracefully greedy routing degrades when the array is not. A spec names
//! *what* fails (a rate over links or nodes, or explicit ids), *when*
//! (`at:<t>`, default 0) and for how long (`repair:<dt>`, default forever);
//! [`FaultPlan::materialize`] turns it into a concrete edge timeline using
//! an RNG stream derived from the scenario seed, so a fixed
//! `(seed, FaultSpec)` pair yields the identical plan on every engine —
//! the contract `tests/fault_injection.rs` pins with a proptest.
//!
//! A node failure is modeled as the death of every edge incident to the
//! node (in- and out-edges): the switch goes dark, but the node's source
//! process keeps offering traffic, which then drops at injection — the
//! offered-load accounting the degradation report needs.

use crate::rng::derive_rng;
use meshbound_routing::{LocalView, RouteOutcome, Router};
use meshbound_topology::{EdgeId, Topology};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// RNG stream index reserved for fault materialization. Far above any
/// shard index (streams `0..k` belong to the engines), so fault draws
/// never interleave with arrival or service sampling.
pub const FAULT_STREAM: u64 = 0xFA01_7000;

/// Per-hop budget for a packet routed under faults: a packet that crosses
/// more than `4 · route_len + 8` edges is misrouting in a cycle and is
/// dropped as [`DropCause::TtlExceeded`]. Minimal routes on a healthy
/// topology never approach the budget, so it is inert without faults.
#[must_use]
pub fn ttl_budget(route_len: usize) -> u32 {
    u32::try_from(4 * route_len + 8).unwrap_or(u32::MAX)
}

/// Why a packet was dropped instead of delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DropCause {
    /// No live out-edge left the packet's node.
    DeadEnd,
    /// Live out-edges existed but none made progress.
    LocalMinimum,
    /// The packet exhausted its [`ttl_budget`] misroute allowance.
    TtlExceeded,
    /// The packet was queued on an edge at the instant the edge failed.
    LinkDown,
}

/// Dropped-packet accounting, one counter per [`DropCause`].
///
/// Counters only cover packets generated after warmup (the same gate the
/// delivered counters use), so `completed + dropped + in-flight` accounts
/// for every measured packet.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DropCounts {
    /// Drops at a dead end (no live out-edge).
    pub dead_end: u64,
    /// Drops at a local minimum (live but unproductive out-edges).
    pub local_minimum: u64,
    /// Drops from an exhausted misroute budget.
    pub ttl_exceeded: u64,
    /// Drops of packets queued on a failing edge.
    pub link_down: u64,
}

impl DropCounts {
    /// Total packets dropped across all causes.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.dead_end + self.local_minimum + self.ttl_exceeded + self.link_down
    }

    /// Records one drop.
    pub fn record(&mut self, cause: DropCause) {
        match cause {
            DropCause::DeadEnd => self.dead_end += 1,
            DropCause::LocalMinimum => self.local_minimum += 1,
            DropCause::TtlExceeded => self.ttl_exceeded += 1,
            DropCause::LinkDown => self.link_down += 1,
        }
    }

    /// Adds another tally into this one (shard merge).
    pub fn merge(&mut self, other: &DropCounts) {
        self.dead_end += other.dead_end;
        self.local_minimum += other.local_minimum;
        self.ttl_exceeded += other.ttl_exceeded;
        self.link_down += other.link_down;
    }
}

/// A declarative failure schedule: what fails, when, and for how long.
///
/// The grammar token (scenario clause `faults=<token>`, sweep axis
/// `faults=<token>|<token>`) joins parts with `+` — `,`, whitespace and
/// `|` all separate clauses at higher grammar levels:
///
/// ```text
/// faults=none                          no faults (never emitted back)
/// faults=links:0.05                    5% of directed edges fail
/// faults=nodes:0.02                    2% of nodes fail (all incident edges)
/// faults=link:3+link:17                explicit edge ids
/// faults=node:5                        explicit node id
/// faults=links:0.05+at:100             failures strike at t = 100 (default 0)
/// faults=links:0.1+at:50+repair:200    … and repair at t = 250
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Fraction of directed edges to fail, drawn without replacement
    /// (`links:<rate>`, `0.0` = none).
    pub link_rate: f64,
    /// Fraction of nodes to fail (`nodes:<rate>`, `0.0` = none).
    pub node_rate: f64,
    /// Explicit edge ids to fail (`link:<id>`, repeatable).
    pub links: Vec<u32>,
    /// Explicit node ids to fail (`node:<id>`, repeatable).
    pub nodes: Vec<u32>,
    /// Failure time (`at:<t>`, default `0.0` — failed from the start).
    pub at: f64,
    /// Repair delay after the failure (`repair:<dt>`); `None` means the
    /// faults persist to the horizon.
    pub repair: Option<f64>,
}

impl Default for FaultSpec {
    fn default() -> Self {
        Self {
            link_rate: 0.0,
            node_rate: 0.0,
            links: Vec::new(),
            nodes: Vec::new(),
            at: 0.0,
            repair: None,
        }
    }
}

impl FaultSpec {
    /// A rate-drawn link-failure spec (`faults=links:<rate>`).
    #[must_use]
    pub fn links(rate: f64) -> Self {
        Self {
            link_rate: rate,
            ..Self::default()
        }
    }

    /// A rate-drawn node-failure spec (`faults=nodes:<rate>`).
    #[must_use]
    pub fn nodes(rate: f64) -> Self {
        Self {
            node_rate: rate,
            ..Self::default()
        }
    }

    /// Sets the failure time (`at:<t>`).
    #[must_use]
    pub fn at(mut self, t: f64) -> Self {
        self.at = t;
        self
    }

    /// Sets the repair delay (`repair:<dt>`).
    #[must_use]
    pub fn repair(mut self, dt: f64) -> Self {
        self.repair = Some(dt);
        self
    }

    /// True iff the spec names nothing to fail (materializes to an empty
    /// plan on every topology).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.link_rate == 0.0
            && self.node_rate == 0.0
            && self.links.is_empty()
            && self.nodes.is_empty()
    }

    /// Parses a `faults=` grammar token. `"none"` yields `None`; anything
    /// else must be a `+`-joined list of parts.
    ///
    /// # Errors
    ///
    /// A message naming the malformed part.
    pub fn parse_token(value: &str) -> Result<Option<FaultSpec>, String> {
        if value == "none" {
            return Ok(None);
        }
        let mut spec = FaultSpec::default();
        let (mut saw_links, mut saw_nodes, mut saw_at, mut saw_repair) =
            (false, false, false, false);
        let f64_of = |key: &str, v: &str| -> Result<f64, String> {
            match v.parse::<f64>() {
                Ok(x) if x.is_finite() => Ok(x),
                _ => Err(format!("bad number `{v}` in fault part `{key}`")),
            }
        };
        let id_of = |key: &str, v: &str| -> Result<u32, String> {
            v.parse::<u32>()
                .map_err(|_| format!("bad id `{v}` in fault part `{key}`"))
        };
        for part in value.split('+') {
            let (key, v) = part.split_once(':').ok_or_else(|| {
                format!("fault part `{part}` must be `<kind>:<value>` (or the whole clause `none`)")
            })?;
            match key {
                "links" => {
                    if saw_links {
                        return Err("duplicate `links:` fault part".into());
                    }
                    saw_links = true;
                    spec.link_rate = f64_of("links", v)?;
                }
                "nodes" => {
                    if saw_nodes {
                        return Err("duplicate `nodes:` fault part".into());
                    }
                    saw_nodes = true;
                    spec.node_rate = f64_of("nodes", v)?;
                }
                "link" => spec.links.push(id_of("link", v)?),
                "node" => spec.nodes.push(id_of("node", v)?),
                "at" => {
                    if saw_at {
                        return Err("duplicate `at:` fault part".into());
                    }
                    saw_at = true;
                    spec.at = f64_of("at", v)?;
                }
                "repair" => {
                    if saw_repair {
                        return Err("duplicate `repair:` fault part".into());
                    }
                    saw_repair = true;
                    spec.repair = Some(f64_of("repair", v)?);
                }
                other => {
                    return Err(format!(
                        "unknown fault part `{other}` (expected links, nodes, link, node, \
                         at or repair)"
                    ))
                }
            }
        }
        if spec.is_empty() {
            return Err(format!(
                "fault spec `{value}` names nothing to fail (use `faults=none` for no faults)"
            ));
        }
        Ok(Some(spec))
    }

    /// Renders the spec as a grammar token [`FaultSpec::parse_token`]
    /// accepts; canonical part order so round-trips are exact.
    #[must_use]
    pub fn spec_token(&self) -> String {
        let mut parts = Vec::new();
        if self.link_rate != 0.0 {
            parts.push(format!("links:{}", self.link_rate));
        }
        if self.node_rate != 0.0 {
            parts.push(format!("nodes:{}", self.node_rate));
        }
        for id in &self.links {
            parts.push(format!("link:{id}"));
        }
        for id in &self.nodes {
            parts.push(format!("node:{id}"));
        }
        if self.at != 0.0 {
            parts.push(format!("at:{}", self.at));
        }
        if let Some(dt) = self.repair {
            parts.push(format!("repair:{dt}"));
        }
        parts.join("+")
    }

    /// Validates the spec against a topology's shape.
    ///
    /// # Errors
    ///
    /// A message naming the violated constraint: rates outside `[0, 1]`,
    /// ids out of range, non-finite or negative times, or a schedule that
    /// fails every edge of the topology at once.
    pub fn check(&self, num_nodes: usize, num_edges: usize) -> Result<(), String> {
        for (label, rate) in [("links", self.link_rate), ("nodes", self.node_rate)] {
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("fault rate `{label}:{rate}` must lie in [0, 1]"));
            }
        }
        if let Some(&id) = self.links.iter().find(|&&id| id as usize >= num_edges) {
            return Err(format!(
                "fault edge id {id} out of range (topology has {num_edges} edges)"
            ));
        }
        if let Some(&id) = self.nodes.iter().find(|&&id| id as usize >= num_nodes) {
            return Err(format!(
                "fault node id {id} out of range (topology has {num_nodes} nodes)"
            ));
        }
        if !(self.at >= 0.0 && self.at.is_finite()) {
            return Err(format!(
                "fault time `at:{}` must be finite and >= 0",
                self.at
            ));
        }
        if let Some(dt) = self.repair {
            if !(dt > 0.0 && dt.is_finite()) {
                return Err(format!("repair delay `repair:{dt}` must be finite and > 0"));
            }
        }
        if self.link_rate >= 1.0 && self.repair.is_none() {
            return Err(
                "failing every link forever leaves nothing to simulate — lower the \
                 `links:` rate or add a `repair:` delay"
                    .into(),
            );
        }
        Ok(())
    }
}

/// One scheduled liveness transition of one edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Simulated time of the transition.
    pub time: f64,
    /// The affected edge.
    pub edge: EdgeId,
    /// `false` = the edge fails, `true` = it repairs.
    pub up: bool,
}

/// A materialized failure timeline: the concrete, seed-resolved edge
/// transitions a run replays.
///
/// A plan is a **pure function** of `(seed, FaultSpec, topology shape)`:
/// the draw uses the dedicated [`FAULT_STREAM`] RNG stream and visits
/// links before nodes, so every engine (and every shard of the sharded
/// engine) reconstructs the identical timeline independently.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Transitions sorted by `(time, edge)`; fail events precede repairs
    /// because `repair > 0` is enforced at validation.
    pub events: Vec<FaultEvent>,
    /// Distinct edges that fail at least once, ascending — the
    /// worst-case dead set reachability analysis uses.
    pub down_edges: Vec<EdgeId>,
}

impl FaultPlan {
    /// Draws the concrete plan for `spec` on `topo` under `seed`.
    #[must_use]
    pub fn materialize<T: Topology>(spec: &FaultSpec, seed: u64, topo: &T) -> FaultPlan {
        let num_edges = topo.num_edges();
        let num_nodes = topo.num_nodes();
        let mut rng = derive_rng(seed, FAULT_STREAM);
        let mut dead: std::collections::BTreeSet<EdgeId> = std::collections::BTreeSet::new();
        for &id in &spec.links {
            dead.insert(EdgeId(id));
        }
        // Rate-drawn links first, then nodes — a fixed visit order keeps
        // the RNG stream (and therefore the plan) reproducible.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let link_target = (spec.link_rate * num_edges as f64).round() as usize;
        let mut drawn = 0usize;
        while drawn < link_target.min(num_edges) {
            let e = EdgeId(rng.gen_range(0..num_edges as u32));
            if dead.insert(e) {
                drawn += 1;
            }
        }
        let mut dead_nodes: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
        for &id in &spec.nodes {
            dead_nodes.insert(id);
        }
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let node_target = (spec.node_rate * num_nodes as f64).round() as usize;
        let mut drawn_nodes = 0usize;
        while drawn_nodes < node_target.min(num_nodes) {
            let v = rng.gen_range(0..num_nodes as u32);
            if dead_nodes.insert(v) {
                drawn_nodes += 1;
            }
        }
        if !dead_nodes.is_empty() {
            // A dead node takes down every incident edge: its own
            // out-edges plus every in-edge targeting it.
            for e in topo.edges() {
                let s = topo.edge_source(e).0;
                let t = topo.edge_target(e).0;
                if dead_nodes.contains(&s) || dead_nodes.contains(&t) {
                    dead.insert(e);
                }
            }
        }
        let down_edges: Vec<EdgeId> = dead.into_iter().collect();
        let mut events = Vec::with_capacity(down_edges.len() * 2);
        for &e in &down_edges {
            events.push(FaultEvent {
                time: spec.at,
                edge: e,
                up: false,
            });
        }
        if let Some(dt) = spec.repair {
            for &e in &down_edges {
                events.push(FaultEvent {
                    time: spec.at + dt,
                    edge: e,
                    up: true,
                });
            }
        }
        // Already (time, edge)-sorted by construction: one fail batch,
        // then one repair batch at a strictly later time.
        FaultPlan { events, down_edges }
    }

    /// True iff the plan schedules no transitions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// The all-queues-empty view with a static dead-edge mask — what the
/// reachability analysis routes against.
struct DeadSetView<'a> {
    down: &'a [EdgeId],
}

impl LocalView for DeadSetView<'_> {
    fn queue_len(&self, _: EdgeId) -> u32 {
        0
    }

    fn is_live(&self, e: EdgeId) -> bool {
        self.down.binary_search(&e).is_err()
    }
}

/// Sampled source–destination pairs used by [`reachable_fraction`].
pub const REACHABILITY_SAMPLES: usize = 2048;

/// Estimates the fraction of source–destination pairs the router still
/// connects when every edge in `down` (sorted ascending) is dead for the
/// whole walk — the worst-case surviving-topology reachability the
/// degradation report quotes.
///
/// Pairs are drawn from a seed-derived stream (destinations filtered by
/// [`Router::routes_to`]), each walked through
/// [`Router::route_outcome`] under the dead-set view with a
/// [`ttl_budget`] step cap; deterministic for fixed inputs.
#[must_use]
pub fn reachable_fraction<T: Topology, R: Router<T>>(
    topo: &T,
    router: &R,
    down: &[EdgeId],
    seed: u64,
) -> f64 {
    let n = topo.num_nodes() as u32;
    if n < 2 {
        return 1.0;
    }
    let view = DeadSetView { down };
    let mut rng = derive_rng(seed, FAULT_STREAM ^ 1);
    let mut reached = 0usize;
    let mut sampled = 0usize;
    'outer: while sampled < REACHABILITY_SAMPLES {
        let src = meshbound_topology::NodeId(rng.gen_range(0..n));
        let mut dst = meshbound_topology::NodeId(rng.gen_range(0..n));
        // Re-draw invalid destinations (e.g. butterfly non-output levels);
        // bail after a bounded number of misses so a router with no valid
        // destination cannot loop forever.
        let mut tries = 0;
        while dst == src || !router.routes_to(topo, dst) {
            dst = meshbound_topology::NodeId(rng.gen_range(0..n));
            tries += 1;
            if tries > 64 {
                break 'outer;
            }
        }
        sampled += 1;
        let state = router.init_state(topo, src, dst, &mut rng);
        let mut here = src;
        let mut ttl = ttl_budget(router.route_len(topo, src, dst, state));
        loop {
            if here == dst {
                reached += 1;
                break;
            }
            if ttl == 0 {
                break;
            }
            ttl -= 1;
            match router.route_outcome(topo, here, dst, state, &view) {
                RouteOutcome::Forward(e) => here = topo.edge_target(e),
                RouteOutcome::DeadEnd | RouteOutcome::LocalMinimum => break,
            }
        }
    }
    if sampled == 0 {
        return 0.0;
    }
    #[allow(clippy::cast_precision_loss)]
    {
        reached as f64 / sampled as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshbound_routing::GreedyXY;
    use meshbound_topology::Mesh2D;

    #[test]
    fn grammar_round_trips() {
        for token in [
            "links:0.05",
            "nodes:0.02",
            "link:3+link:17",
            "node:5",
            "links:0.1+at:50+repair:200",
            "links:0.05+nodes:0.01+link:2+node:3+at:10+repair:40",
        ] {
            let spec = FaultSpec::parse_token(token).unwrap().unwrap();
            assert_eq!(spec.spec_token(), token, "canonical form of `{token}`");
            assert_eq!(
                FaultSpec::parse_token(&spec.spec_token()).unwrap(),
                Some(spec),
                "round trip of `{token}`"
            );
        }
        assert_eq!(FaultSpec::parse_token("none").unwrap(), None);
    }

    #[test]
    fn grammar_rejects_malformed_tokens() {
        for token in [
            "",
            "links",
            "links:abc",
            "links:0.05+links:0.1",
            "at:10",    // names nothing to fail
            "repair:5", // likewise
            "links:0.05+at:1+at:2",
            "quake:0.5",
            "link:-1",
            "links:inf",
        ] {
            assert!(
                FaultSpec::parse_token(token).is_err(),
                "`{token}` should not parse"
            );
        }
    }

    #[test]
    fn check_enforces_ranges_and_times() {
        assert!(FaultSpec::links(0.05).check(16, 48).is_ok());
        assert!(FaultSpec::links(1.5).check(16, 48).is_err());
        assert!(FaultSpec::links(-0.1).check(16, 48).is_err());
        assert!(FaultSpec::links(1.0).check(16, 48).is_err()); // all links forever
        assert!(FaultSpec::links(1.0).repair(10.0).check(16, 48).is_ok());
        assert!(FaultSpec::links(0.05).at(-1.0).check(16, 48).is_err());
        assert!(FaultSpec::links(0.05).repair(0.0).check(16, 48).is_err());
        let explicit = FaultSpec {
            links: vec![48],
            ..FaultSpec::default()
        };
        assert!(explicit.check(16, 48).is_err());
        let explicit_node = FaultSpec {
            nodes: vec![16],
            ..FaultSpec::default()
        };
        assert!(explicit_node.check(16, 48).is_err());
    }

    #[test]
    fn materialization_is_deterministic_and_counts_match() {
        let topo = Mesh2D::square(8);
        let spec = FaultSpec::links(0.1);
        let a = FaultPlan::materialize(&spec, 7, &topo);
        let b = FaultPlan::materialize(&spec, 7, &topo);
        assert_eq!(a, b);
        let expected = (0.1 * topo.num_edges() as f64).round() as usize;
        assert_eq!(a.down_edges.len(), expected);
        // No repairs scheduled, so one event per dead edge.
        assert_eq!(a.events.len(), expected);
        // A different seed draws a different set.
        let c = FaultPlan::materialize(&spec, 8, &topo);
        assert_ne!(a.down_edges, c.down_edges);
    }

    #[test]
    fn node_failures_kill_all_incident_edges() {
        let topo = Mesh2D::square(4);
        let spec = FaultSpec {
            nodes: vec![5],
            ..FaultSpec::default()
        };
        let plan = FaultPlan::materialize(&spec, 1, &topo);
        for e in topo.edges() {
            let incident = topo.edge_source(e).0 == 5 || topo.edge_target(e).0 == 5;
            assert_eq!(
                plan.down_edges.binary_search(&e).is_ok(),
                incident,
                "edge {e} incident={incident}"
            );
        }
    }

    #[test]
    fn repair_schedules_a_second_batch() {
        let topo = Mesh2D::square(4);
        let spec = FaultSpec::links(0.1).at(50.0).repair(100.0);
        let plan = FaultPlan::materialize(&spec, 3, &topo);
        let fails = plan.events.iter().filter(|ev| !ev.up).count();
        let repairs = plan.events.iter().filter(|ev| ev.up).count();
        assert_eq!(fails, repairs);
        assert!(plan.events.iter().all(|ev| if ev.up {
            ev.time == 150.0
        } else {
            ev.time == 50.0
        }));
        // Sorted by time: all fails precede all repairs.
        assert!(plan.events.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn reachability_is_one_on_a_healthy_mesh_and_degrades() {
        let topo = Mesh2D::square(6);
        let router = GreedyXY;
        let healthy = reachable_fraction(&topo, &router, &[], 17);
        assert!((healthy - 1.0).abs() < f64::EPSILON, "healthy {healthy}");
        let spec = FaultSpec::links(0.2);
        let plan = FaultPlan::materialize(&spec, 17, &topo);
        let faulted = reachable_fraction(&topo, &router, &plan.down_edges, 17);
        assert!(faulted < 1.0, "faulted {faulted}");
        assert!(faulted > 0.0, "faulted {faulted}");
        // Deterministic for fixed inputs.
        assert_eq!(
            faulted.to_bits(),
            reachable_fraction(&topo, &router, &plan.down_edges, 17).to_bits()
        );
    }
}
