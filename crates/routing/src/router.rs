//! The [`Router`] and [`ObliviousRouter`] traits.

use crate::policy::LocalView;
use meshbound_topology::{EdgeId, NodeId, Topology};
use rand::rngs::SmallRng;

/// The typed result of a fault-aware per-hop decision
/// ([`Router::route_outcome`]).
///
/// On a healthy topology every outcome is `Forward`; the failure variants
/// exist so engines can *account* for unroutable packets (drops by cause)
/// instead of aborting the run. They are also the structural home for the
/// geo-routing semantics the ring/small-world roadmap item needs: a
/// distance-greedy router on an augmented ring fails in exactly these two
/// ways.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RouteOutcome {
    /// Cross this edge next.
    Forward(EdgeId),
    /// No live out-edge leaves the current node (or the router has no hop
    /// at all for this destination — a contract violation when the
    /// topology is healthy).
    DeadEnd,
    /// Live out-edges exist, but none makes progress toward the
    /// destination: the packet is stuck in a local minimum of the
    /// router's distance function.
    LocalMinimum,
}

/// An incremental router: given a packet's current node, destination and
/// per-packet state, produce the next edge to cross.
///
/// Routers are *incremental* so the simulator's hot loop never materializes
/// route vectors: greedy routing is Markovian (Corollary 4 of the paper), so
/// the next hop is a function of the current position and a few bits of
/// per-packet state (e.g. the coin flip of randomized greedy).
pub trait Router<T: Topology> {
    /// Per-packet routing state, fixed at generation time.
    type State: Copy + Send + Sync + std::fmt::Debug;

    /// Draws the per-packet state for a new packet (e.g. randomized greedy's
    /// ordering coin). Deterministic routers return a unit-like state.
    fn init_state(&self, topo: &T, src: NodeId, dst: NodeId, rng: &mut SmallRng) -> Self::State;

    /// The next edge a packet at `cur` with destination `dst` crosses, or
    /// `None` if it has arrived.
    fn next_edge(&self, topo: &T, cur: NodeId, dst: NodeId, state: Self::State) -> Option<EdgeId>;

    /// The per-hop decision with a live congestion view — the method the
    /// simulation engines call at every dequeue (via
    /// [`crate::RoutingPolicy`]).
    ///
    /// The default ignores the view and forwards to [`Router::next_edge`],
    /// which keeps every oblivious router bit-identical to the
    /// pre-declared-path semantics. Adaptive routers override this to pick
    /// the least-occupied permitted productive hop; their `next_edge`
    /// remains the canonical ([`crate::ZeroView`]) choice.
    fn next_hop(
        &self,
        topo: &T,
        here: NodeId,
        dst: NodeId,
        state: Self::State,
        _local: &dyn LocalView,
    ) -> Option<EdgeId> {
        self.next_edge(topo, here, dst, state)
    }

    /// The fault-aware per-hop decision: like [`Router::next_hop`], but
    /// consulting the view's link liveness ([`LocalView::is_live`]) and
    /// returning a typed [`RouteOutcome`] instead of an `Option`.
    ///
    /// The provided implementation first asks `next_hop`; a live preferred
    /// edge forwards unchanged, so under an all-live view the outcome is
    /// bit-identical to the classic path. When the preferred edge is dead
    /// the router detours deterministically: it scans the node's out-edges
    /// in edge order and takes the first *live productive* one (strictly
    /// decreasing [`Router::remaining_hops`]). With live edges but no
    /// productive one the packet is at a [`RouteOutcome::LocalMinimum`];
    /// with no live out-edge at all (or no `next_hop` despite
    /// `here != dst`) it is at a [`RouteOutcome::DeadEnd`].
    fn route_outcome(
        &self,
        topo: &T,
        here: NodeId,
        dst: NodeId,
        state: Self::State,
        local: &dyn LocalView,
    ) -> RouteOutcome {
        let want = self.next_hop(topo, here, dst, state, local);
        if let Some(e) = want {
            if local.is_live(e) {
                return RouteOutcome::Forward(e);
            }
        } else {
            // The router has no hop for this pair at all — a healthy-
            // topology contract violation, not a congestion condition, so
            // no detour scan applies.
            return RouteOutcome::DeadEnd;
        }
        let here_hops = self.remaining_hops(topo, here, dst, state);
        let mut any_live = false;
        for e in topo.out_edges(here) {
            if !local.is_live(e) {
                continue;
            }
            any_live = true;
            if self.remaining_hops(topo, topo.edge_target(e), dst, state) < here_hops {
                return RouteOutcome::Forward(e);
            }
        }
        if any_live {
            RouteOutcome::LocalMinimum
        } else {
            RouteOutcome::DeadEnd
        }
    }

    /// Number of edges the packet still has to cross from `cur` (including
    /// the next one), i.e. the "remaining distance" of Definition 11.
    fn remaining_hops(&self, topo: &T, cur: NodeId, dst: NodeId, state: Self::State) -> usize;

    /// Total route length for a fresh packet.
    fn route_len(&self, topo: &T, src: NodeId, dst: NodeId, state: Self::State) -> usize {
        self.remaining_hops(topo, src, dst, state)
    }

    /// Whether `dst` is a valid destination for this router. Most routers
    /// are total (`true` for every node); the butterfly only routes toward
    /// output-level nodes. Precomputation ([`crate::RouteTable`]) skips
    /// invalid destinations.
    fn routes_to(&self, _topo: &T, _dst: NodeId) -> bool {
        true
    }

    /// Whether routes depend only on `(current node, destination)` —
    /// i.e. the per-packet state and the RNG can never influence
    /// [`Router::next_edge`] or [`Router::remaining_hops`], and
    /// [`Router::init_state`] draws nothing from its RNG.
    ///
    /// Routers that uphold this contract can be compiled into a
    /// precomputed [`crate::RouteTable`] (the simulator's fast path);
    /// the conservative default is `false`, which keeps the on-the-fly
    /// routing path.
    fn is_route_deterministic(&self) -> bool {
        false
    }

    /// Materializes the full route (test/diagnostic use only; simulation
    /// never calls this).
    fn route(&self, topo: &T, src: NodeId, dst: NodeId, state: Self::State) -> Vec<EdgeId> {
        let mut out = Vec::new();
        let mut cur = src;
        while let Some(e) = self.next_edge(topo, cur, dst, state) {
            out.push(e);
            cur = topo.edge_target(e);
            assert!(
                out.len() <= topo.num_edges(),
                "router cycled between {src} and {dst}"
            );
        }
        out
    }
}

/// A router whose path distribution for each source/destination pair is
/// fixed in advance (independent of network state).
///
/// Oblivious routers admit *exact* per-edge arrival-rate computation by path
/// enumeration (see [`crate::rates`]); both greedy and randomized greedy are
/// oblivious.
pub trait ObliviousRouter<T: Topology> {
    /// Enumerates the `(probability, path)` pairs for a source/destination
    /// pair. Probabilities must sum to 1; the path for `src == dst` is empty.
    fn paths(&self, topo: &T, src: NodeId, dst: NodeId) -> Vec<(f64, Vec<EdgeId>)>;
}
