//! Product-form (Jackson / processor-sharing) network quantities.
//!
//! Under the PS discipline with unit service, or equivalently under the
//! Jackson model with exponential unit-mean transmission times, the network
//! is product-form (§2.2, §3.3): in equilibrium each queue `e` behaves like
//! an independent M/M/1 queue with its own arrival rate `λ_e`, so the number
//! of packets at `e` is geometric with mean `λ_e/(φ_e − λ_e)`.

use crate::single::mm1_mean_number;

/// Mean total number of packets in a product-form network with per-queue
/// arrival rates `rates` and service rates `services`.
///
/// Returns `∞` if any queue is unstable.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn mean_number(rates: &[f64], services: &[f64]) -> f64 {
    assert_eq!(rates.len(), services.len());
    rates
        .iter()
        .zip(services)
        .map(|(&l, &m)| mm1_mean_number(l, m))
        .sum()
}

/// Mean number with unit service rates everywhere (the standard model).
#[must_use]
pub fn mean_number_unit(rates: &[f64]) -> f64 {
    rates.iter().map(|&l| mm1_mean_number(l, 1.0)).sum()
}

/// Mean delay through the network by Little's law, given the total external
/// arrival rate.
#[must_use]
pub fn mean_delay(rates: &[f64], services: &[f64], total_arrival: f64) -> f64 {
    mean_number(rates, services) / total_arrival
}

/// Equilibrium probability that queue `e` holds exactly `k` packets:
/// geometric, `(1−ρ)ρᵏ` with `ρ = λ/φ`.
#[must_use]
pub fn queue_length_pmf(lambda: f64, mu: f64, k: u64) -> f64 {
    let rho = lambda / mu;
    if rho >= 1.0 {
        0.0
    } else {
        (1.0 - rho) * rho.powf(k as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_per_queue_mm1() {
        let rates = [0.5, 0.25];
        let services = [1.0, 1.0];
        // 0.5/0.5 + 0.25/0.75 = 1 + 1/3.
        assert!((mean_number(&rates, &services) - (1.0 + 1.0 / 3.0)).abs() < 1e-12);
        assert!((mean_number_unit(&rates) - (1.0 + 1.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn unstable_queue_infects_total() {
        assert!(mean_number(&[1.5], &[1.0]).is_infinite());
    }

    #[test]
    fn pmf_sums_to_one() {
        let total: f64 = (0..1000).map(|k| queue_length_pmf(0.7, 1.0, k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pmf_mean_matches_mm1() {
        let mean: f64 = (0..5000)
            .map(|k| k as f64 * queue_length_pmf(0.6, 1.0, k))
            .sum();
        assert!((mean - 1.5).abs() < 1e-9);
    }

    #[test]
    fn delay_uses_littles_law() {
        let rates = [0.5; 4];
        let services = [1.0; 4];
        let t = mean_delay(&rates, &services, 2.0);
        assert!((t - 4.0 * 1.0 / 2.0).abs() < 1e-12);
    }
}
