//! Support crate for the `meshbound` workspace's examples and integration
//! tests.
//!
//! The real library lives in [`meshbound`]; this root package only hosts
//! the runnable examples (`cargo run --example quickstart`) and the
//! cross-crate integration tests under `tests/`.

/// Prints a section banner used by the examples.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}
