//! Statistics collection during a simulation run.
//!
//! The observer maintains, as piecewise-constant time integrals:
//!
//! * `N(t)` — packets in the system (Table I via Little's law);
//! * `R(t)` — total remaining services over all packets (Table II);
//! * `R_s(t)` — total remaining *saturated* services (Table III);
//!
//! plus per-packet delay moments and per-edge busy time / service counts
//! (used to verify Theorem 6's arrival rates empirically).

use crate::fault::{DropCause, DropCounts};
use meshbound_stats::{DecimatingSeries, Reservoir, TimeWeighted, Welford};

/// Retention capacity of the sampled `N(t)` trajectory. The sampler
/// offers every `sample_every` tick but the series keeps at most this
/// many points, decimating by powers of two — a million-node,
/// long-horizon run holds the same `O(1)` memory as a toy one.
pub const N_SAMPLE_CAPACITY: usize = 4096;

/// Live statistics of one simulation run.
#[derive(Debug, Clone)]
pub struct Observer {
    /// Delay (sojourn) of completed packets generated after warmup.
    pub delay: Welford,
    /// Packets in system.
    pub n_sys: TimeWeighted,
    /// Remaining services over in-system packets.
    pub r_total: TimeWeighted,
    /// Remaining saturated services over in-system packets.
    pub rs_total: TimeWeighted,
    /// Per-edge cumulative busy time (post-warmup).
    pub edge_busy: Vec<f64>,
    /// Per-edge completed services (post-warmup).
    pub edge_services: Vec<u64>,
    /// Packets generated post-warmup (including zero-distance ones).
    pub generated: u64,
    /// Packets delivered whose generation was post-warmup.
    pub completed: u64,
    /// Packets dropped by the fault machinery (post-warmup generations
    /// only, like `completed`), tallied by cause.
    pub dropped: DropCounts,
    /// Warmup time after which statistics accumulate.
    pub warmup: f64,
    /// Sampled trajectory of `N(t)` for stability diagnostics, on a
    /// bounded flight-recorder buffer (empty unless `sample_every` ticks
    /// fire). Decimation is a pure function of the tick count, so
    /// per-shard trajectories stay mergeable sample-by-sample.
    pub n_samples: DecimatingSeries,
    /// Optional reservoir of delays for quantile estimation.
    pub delay_sample: Option<Reservoir>,
}

impl Observer {
    /// Creates an observer for `num_edges` servers with the given warmup.
    #[must_use]
    pub fn new(num_edges: usize, warmup: f64) -> Self {
        Self {
            delay: Welford::new(),
            n_sys: TimeWeighted::new(0.0, 0.0),
            r_total: TimeWeighted::new(0.0, 0.0),
            rs_total: TimeWeighted::new(0.0, 0.0),
            edge_busy: vec![0.0; num_edges],
            edge_services: vec![0; num_edges],
            generated: 0,
            completed: 0,
            dropped: DropCounts::default(),
            warmup,
            n_samples: DecimatingSeries::new(N_SAMPLE_CAPACITY),
            delay_sample: None,
        }
    }

    /// Enables delay-quantile tracking with a bounded reservoir.
    pub fn enable_delay_quantiles(&mut self, capacity: usize, seed: u64) {
        self.delay_sample = Some(Reservoir::new(capacity, seed));
    }

    /// Whether `now` is past the warmup boundary.
    #[inline]
    #[must_use]
    pub fn measuring(&self, now: f64) -> bool {
        now >= self.warmup
    }

    /// Discards pre-warmup integrals (call exactly once, at the warmup
    /// boundary).
    pub fn reset_at_warmup(&mut self) {
        self.n_sys.reset(self.warmup);
        self.r_total.reset(self.warmup);
        self.rs_total.reset(self.warmup);
    }

    /// Records a packet entering the system at `now` with `hops` remaining
    /// services, `sat` of them saturated.
    #[inline]
    pub fn packet_enters(&mut self, now: f64, hops: usize, sat: usize) {
        self.n_sys.add(now, 1.0);
        self.r_total.add(now, hops as f64);
        if sat > 0 {
            self.rs_total.add(now, sat as f64);
        }
    }

    /// Records one completed service on `edge` at `now`; `sat` marks a
    /// saturated edge.
    #[inline]
    pub fn service_done(&mut self, now: f64, edge: usize, duration: f64, sat: bool) {
        self.r_total.add(now, -1.0);
        if sat {
            self.rs_total.add(now, -1.0);
        }
        if now >= self.warmup {
            // Clip the busy interval at the warmup boundary.
            let clipped = duration.min(now - self.warmup);
            self.edge_busy[edge] += clipped;
            self.edge_services[edge] += 1;
        }
    }

    /// Records a packet leaving the system at `now`.
    #[inline]
    pub fn packet_exits(&mut self, now: f64, generated_at: f64, counted: bool) {
        self.n_sys.add(now, -1.0);
        if counted && generated_at >= self.warmup {
            self.delay.push(now - generated_at);
            self.completed += 1;
            if let Some(r) = &mut self.delay_sample {
                r.push(now - generated_at);
            }
        }
    }

    /// Records a packet dropped by the fault machinery at `now`: it leaves
    /// the system with `remaining` services undone (`sat_remaining` of
    /// them saturated) and counts toward the per-cause drop tally iff it
    /// was generated after warmup — the same gate `completed` uses, so
    /// `completed + dropped ≤ generated` holds exactly.
    #[inline]
    pub fn packet_dropped(
        &mut self,
        now: f64,
        remaining: f64,
        sat_remaining: f64,
        generated_at: f64,
        cause: DropCause,
    ) {
        self.n_sys.add(now, -1.0);
        self.r_total.add(now, -remaining);
        if sat_remaining > 0.0 {
            self.rs_total.add(now, -sat_remaining);
        }
        if generated_at >= self.warmup {
            self.dropped.record(cause);
        }
    }

    /// Records a zero-distance packet (source = destination): it spends no
    /// time in the system but counts toward the delay average, matching the
    /// paper's model where "we allow a packet's destination to be the same
    /// as its starting point".
    #[inline]
    pub fn zero_distance_packet(&mut self, now: f64) {
        if now >= self.warmup {
            self.delay.push(0.0);
            self.generated += 1;
            self.completed += 1;
            if let Some(r) = &mut self.delay_sample {
                r.push(0.0);
            }
        }
    }

    /// Counts a generated packet (post-warmup only).
    #[inline]
    pub fn packet_generated(&mut self, now: f64) {
        if now >= self.warmup {
            self.generated += 1;
        }
    }

    /// Takes an `N(t)` sample for trajectory diagnostics. The sampling
    /// clock stays fixed (other consumers schedule by `sample_every`), so
    /// the series counts every offer and stores each `stride`-th one.
    pub fn sample_n(&mut self, now: f64) {
        self.n_samples.offer(now, self.n_sys.value());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrals_track_population() {
        let mut obs = Observer::new(2, 0.0);
        obs.packet_enters(0.0, 3, 1);
        obs.packet_enters(1.0, 2, 0);
        obs.service_done(2.0, 0, 1.0, true);
        obs.packet_exits(4.0, 0.0, true);
        // N: 1 on [0,1), 2 on [1,4), 1 after.
        assert!((obs.n_sys.integral(4.0) - (1.0 + 2.0 * 3.0)).abs() < 1e-12);
        // R: 3 on [0,1), 5 on [1,2), 4 on [2,4).
        assert!((obs.r_total.integral(4.0) - (3.0 + 5.0 + 8.0)).abs() < 1e-12);
        // R_s: 1 on [0,2), 0 after.
        assert!((obs.rs_total.integral(4.0) - 2.0).abs() < 1e-12);
        assert_eq!(obs.completed, 1);
        assert!((obs.delay.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn warmup_gates_delay_recording() {
        let mut obs = Observer::new(1, 10.0);
        obs.packet_enters(5.0, 1, 0);
        obs.packet_exits(8.0, 5.0, true); // generated pre-warmup: not recorded
        assert_eq!(obs.completed, 0);
        obs.packet_enters(11.0, 1, 0);
        obs.packet_exits(12.5, 11.0, true);
        assert_eq!(obs.completed, 1);
        assert!((obs.delay.mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn drops_reverse_integrals_and_gate_on_generation_time() {
        let mut obs = Observer::new(1, 10.0);
        obs.packet_enters(5.0, 3, 1);
        // Generated pre-warmup: the integrals unwind but no drop counts.
        obs.packet_dropped(8.0, 3.0, 1.0, 5.0, DropCause::LinkDown);
        assert_eq!(obs.dropped.total(), 0);
        assert!((obs.n_sys.value()).abs() < 1e-12);
        obs.packet_enters(11.0, 4, 0);
        obs.packet_dropped(13.0, 2.0, 0.0, 11.0, DropCause::DeadEnd);
        assert_eq!(obs.dropped.dead_end, 1);
        assert_eq!(obs.dropped.total(), 1);
        assert!((obs.n_sys.value()).abs() < 1e-12);
        // The packet entered with 4 remaining services but was dropped
        // with only 2 left: R unwinds by the 2 still undone.
        assert!((obs.r_total.value() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn n_sampling_stays_bounded_at_million_node_horizons() {
        // A `hypercube:20`-scale run offers millions of `N(t)` samples;
        // the unbounded Vec this replaced grew linearly with the horizon.
        let mut obs = Observer::new(1, 0.0);
        for k in 1..=2_000_000u64 {
            obs.sample_n(k as f64);
        }
        assert!(obs.n_samples.len() <= N_SAMPLE_CAPACITY);
        assert_eq!(obs.n_samples.offered(), 2_000_000);
        assert!(obs.n_samples.stride().is_power_of_two());
        // The newest retained tick is within one stride of the last offer.
        let last = obs.n_samples.samples().last().unwrap().0 as u64;
        assert!(2_000_000 - last < obs.n_samples.stride());
    }

    #[test]
    fn busy_time_clipped_at_warmup() {
        let mut obs = Observer::new(1, 10.0);
        // Service ran 9.5 → 10.5: only 0.5 counts.
        obs.service_done(10.5, 0, 1.0, false);
        assert!((obs.edge_busy[0] - 0.5).abs() < 1e-12);
    }
}
