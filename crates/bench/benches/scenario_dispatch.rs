//! Dispatch-overhead check for the unified `Scenario` API.
//!
//! `Scenario::run` resolves the load convention, matches on the
//! topology/router/destination combination, and only then instantiates the
//! same monomorphized `NetworkSim` a direct caller would build. This bench
//! runs both entry points on an identical 6×6 mesh workload to show the
//! dispatch layer costs nothing measurable next to the simulation itself.

use criterion::{criterion_group, criterion_main, Criterion};
use meshbound::routing::dest::UniformDest;
use meshbound::routing::GreedyXY;
use meshbound::sim::network::{NetConfig, NetworkSim};
use meshbound::topology::Mesh2D;
use meshbound::{Load, Scenario};

const N: usize = 6;
const RHO: f64 = 0.8;
const HORIZON: f64 = 400.0;
const WARMUP: f64 = 80.0;
const SEED: u64 = 17;

fn bench(c: &mut Criterion) {
    // Sanity: the two paths must simulate the identical system.
    let old = direct_sim().run();
    let new = scenario().run();
    assert_eq!(
        old.avg_delay.to_bits(),
        new.avg_delay.to_bits(),
        "dispatch changed the simulation"
    );

    let mut group = c.benchmark_group("scenario_dispatch");
    group.bench_function("direct_network_sim_6x6", |b| {
        b.iter(|| direct_sim().run());
    });
    group.bench_function("scenario_run_6x6", |b| {
        b.iter(|| scenario().run());
    });
    // Construction + load resolution alone (no simulation): the pure
    // dispatch-layer cost.
    group.bench_function("scenario_build_and_resolve", |b| {
        b.iter(|| {
            let sc = scenario();
            (sc.lambda(), sc.validate().is_ok())
        });
    });
    group.finish();
}

fn direct_sim() -> NetworkSim<Mesh2D, GreedyXY, UniformDest> {
    let cfg = NetConfig {
        lambda: 4.0 * RHO / N as f64,
        horizon: HORIZON,
        warmup: WARMUP,
        seed: SEED,
        ..NetConfig::default()
    };
    NetworkSim::new(Mesh2D::square(N), GreedyXY, UniformDest, cfg)
}

fn scenario() -> Scenario {
    Scenario::mesh(N)
        .load(Load::TableRho(RHO))
        .horizon(HORIZON)
        .warmup(WARMUP)
        .seed(SEED)
}

criterion_group!(benches, bench);
criterion_main!(benches);
