//! Table III: the saturated remaining-work ratio `r_s = E[R_s]/E[N]` at
//! ρ = 0.99.
//!
//! `R_s(t)` counts only the remaining services *at saturated edges* (the
//! central cuts of Figure 2). The paper's Table III shows the striking
//! parity pattern — odd `n` has roughly double the `r_s` of even `n`,
//! because odd arrays have two saturated classes per axis — and notes the
//! dependence on ρ is minimal.

use super::{Scale, TextTable};
use crate::sweep::{run_cells, Jobs};
use meshbound_queueing::load::Load;
use meshbound_queueing::remaining::{light_load_rs, sbar_closed};
use meshbound_sim::Scenario;
use meshbound_topology::Mesh2D;
use serde::{Deserialize, Serialize};

/// The paper's printed Table III at ρ = 0.99: `(n, r_s)`.
pub const PRINTED: &[(usize, f64)] = &[
    (5, 1.875),
    (10, 1.250),
    (15, 2.106),
    (20, 1.230),
    (25, 2.209),
];

/// One reproduced row of Table III.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Row {
    /// Array side.
    pub n: usize,
    /// Simulated `r_s`.
    pub rs_sim: f64,
    /// Light-load closed form for `r_s`.
    pub rs_light: f64,
    /// The bound constant `s̄` (Definition 13).
    pub sbar: f64,
    /// Paper's printed value.
    pub printed_rs: f64,
}

/// The Table III scenario grid at `scale` (ρ = 0.99, saturated-services
/// tracking on, historical per-cell seeds).
#[must_use]
pub fn cells(scale: &Scale) -> Vec<Scenario> {
    let rho = 0.99;
    PRINTED
        .iter()
        .map(|&(n, _)| {
            Scenario::mesh(n)
                .load(Load::TableRho(rho))
                .horizon(scale.horizon(rho))
                .warmup(scale.warmup(rho))
                .seed(scale.seed ^ 0x5A7A ^ ((n as u64) << 16))
                .track_saturated(true)
        })
        .collect()
}

/// Runs Table III through the sweep engine (rows in parallel).
#[must_use]
pub fn run(scale: &Scale) -> Vec<Table3Row> {
    let report = run_cells("table3", cells(scale), scale.reps, Jobs::Parallel);
    report
        .cells
        .iter()
        .zip(PRINTED)
        .map(|(cell, &(n, printed))| Table3Row {
            n,
            rs_sim: cell.rs_ratio,
            rs_light: light_load_rs(&Mesh2D::square(n)),
            sbar: sbar_closed(n),
            printed_rs: printed,
        })
        .collect()
}

/// Renders the reproduced Table III.
#[must_use]
pub fn render(rows: &[Table3Row]) -> String {
    let mut t = TextTable::new(&["n", "r_s(Sim)", "r_s(light-load)", "s̄", "paper r_s"]);
    for r in rows {
        t.row(vec![
            r.n.to_string(),
            format!("{:.3}", r.rs_sim),
            format!("{:.3}", r.rs_light),
            format!("{:.3}", r.sbar),
            format!("{:.3}", r.printed_rs),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn printed_parity_pattern() {
        // Odd-n rows ≈ 2, even-n rows ≈ 1.25 in the paper's own data.
        for &(n, rs) in PRINTED {
            if n % 2 == 0 {
                assert!(rs < 1.3, "even n={n}");
            } else {
                assert!(rs > 1.8, "odd n={n}");
            }
        }
    }

    #[test]
    fn light_load_closed_form_shows_same_parity() {
        let even = light_load_rs(&Mesh2D::square(10));
        let odd = light_load_rs(&Mesh2D::square(11));
        assert!(odd > 1.5 * even, "odd {odd} vs even {even}");
    }

    #[test]
    fn quick_sim_shows_parity_pattern() {
        // Reduced-scale version of the table at moderate load (the paper
        // notes r_s depends minimally on ρ).
        let rho = 0.8;
        let run_one = |n: usize| {
            Scenario::mesh(n)
                .load(Load::TableRho(rho))
                .horizon(6_000.0)
                .warmup(600.0)
                .seed(99)
                .track_saturated(true)
                .run_replicated(1)
                .rs_ratio
                .mean()
        };
        let rs5 = run_one(5);
        let rs6 = run_one(6);
        assert!(rs5 > rs6, "odd {rs5} should exceed even {rs6}");
    }

    #[test]
    fn rs_below_sbar() {
        // r_s can never exceed s̄... in expectation per packet at saturated
        // queues; the light-load closed form respects this.
        for n in [4usize, 5, 8, 9, 12, 13] {
            let rs = light_load_rs(&Mesh2D::square(n));
            assert!(rs < sbar_closed(n), "n={n}: {rs} vs {}", sbar_closed(n));
        }
    }
}
