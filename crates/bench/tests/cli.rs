//! End-to-end tests of the `repro` binary: the fault-injection surface
//! and the structured-error contract (nonzero exit + single-line
//! `repro: …` on stderr, never a panic backtrace).

use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("spawn repro")
}

#[test]
fn faulted_scenario_completes_and_reports_degradation() {
    let out = repro(&[
        "scenario",
        "mesh:8,util=0.4,faults=links:0.1,horizon=600,warmup=60,seed=3",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The analytic degradation section (reachability, post-fault λ*) and
    // the measured drop accounting both reach the terminal.
    assert!(stdout.contains("degradation:"), "{stdout}");
    assert!(stdout.contains("degraded: delivered"), "{stdout}");
    assert!(stdout.contains("link-down"), "{stdout}");
}

#[test]
fn healthy_scenario_prints_no_degradation_lines() {
    let out = repro(&["scenario", "mesh:6,util=0.3,horizon=400,warmup=40"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!stdout.contains("degradation:"), "{stdout}");
    assert!(!stdout.contains("degraded:"), "{stdout}");
}

#[test]
fn bad_fault_spec_exits_nonzero_with_structured_error() {
    let out = repro(&["scenario", "mesh:8,util=0.4,faults=warp:1"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.starts_with("repro:"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
    assert!(!stderr.contains("RUST_BACKTRACE"), "{stderr}");
}

#[test]
fn unsupported_engine_config_is_a_structured_error_not_a_panic() {
    // Exponential service has no lower bound, so the sharded engine's
    // conservative lookahead does not exist: the run must be refused
    // with a typed error, not abort the process.
    let out = repro(&["scenario", "mesh:6,util=0.3,service=exp,shards=2"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.starts_with("repro:"), "{stderr}");
    assert!(stderr.contains("deterministic service"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
}

/// Drops the one wall-clock line (`… events at Nk events/s`) so the rest
/// of the output can be compared byte-for-byte.
fn deterministic_lines(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout)
        .lines()
        .filter(|l| !l.contains("events/s"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn faulted_reruns_are_bit_identical_on_both_engines() {
    // The acceptance scenario: same seed + same fault spec → identical
    // simulated output, on the calendar engine and on the two-shard
    // engine alike (only the events/s wall-clock figure may move).
    for engine in ["calendar", "sharded:2"] {
        let spec = format!(
            "mesh:16 traffic=transpose load=rho:0.5 faults=links:0.05 \
             horizon=400 warmup=40 seed=11 engine={engine}"
        );
        let a = repro(&["scenario", &spec]);
        let b = repro(&["scenario", &spec]);
        assert!(
            a.status.success(),
            "engine={engine} stderr: {}",
            String::from_utf8_lossy(&a.stderr)
        );
        assert_eq!(
            deterministic_lines(&a),
            deterministic_lines(&b),
            "engine={engine} rerun differs"
        );
        let stdout = String::from_utf8_lossy(&a.stdout);
        assert!(stdout.contains("degraded: delivered"), "{stdout}");
    }
}
