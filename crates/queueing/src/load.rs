//! Load conventions and stability regions for the array.
//!
//! Two load conventions appear in the paper and must not be conflated:
//!
//! * **Table ρ** — Table I parameterizes load by `ρ` with `λ = 4ρ/n`,
//!   i.e. load relative to the even-`n` capacity `4/n`. (We verified this
//!   numerically against the printed estimates; see DESIGN.md.) For odd `n`
//!   the true peak utilization at Table-ρ `ρ` is `ρ·(1 − 1/n²) < ρ`.
//! * **Utilization** — §2.1 defines `ρ = max_e λ_e/φ_e`; the asymptotic
//!   statements ("as ρ → 1", Theorems 8 and 14) use this convention.
//!
//! [`Load`] converts both to a per-node arrival rate `λ`.

use meshbound_routing::rates::mesh_max_rate;
use serde::{Deserialize, Serialize};

/// A load specification for the `n × n` array.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Load {
    /// Raw per-node Poisson arrival rate `λ`.
    Lambda(f64),
    /// Table I's convention: `λ = 4ρ/n`.
    TableRho(f64),
    /// Peak-utilization convention: `max_e λ_e = ρ`.
    Utilization(f64),
}

impl Load {
    /// The per-node arrival rate `λ` this load denotes on an `n × n` array.
    #[must_use]
    pub fn lambda(self, n: usize) -> f64 {
        match self {
            Load::Lambda(l) => l,
            Load::TableRho(rho) => 4.0 * rho / n as f64,
            Load::Utilization(rho) => rho / mesh_max_rate(n, 1.0),
        }
    }

    /// The peak edge utilization this load induces on an `n × n` array
    /// (unit service rates).
    #[must_use]
    pub fn utilization(self, n: usize) -> f64 {
        mesh_max_rate(n, self.lambda(n))
    }
}

/// Stability threshold of the standard (unit-rate) array: greedy routing is
/// stable for `λ` below `4/n` (even `n`) or `4n/(n²−1)` (odd `n`).
#[must_use]
pub fn mesh_stability_threshold(n: usize) -> f64 {
    let nf = n as f64;
    if n.is_multiple_of(2) {
        4.0 / nf
    } else {
        4.0 * nf / (nf * nf - 1.0)
    }
}

/// Stability threshold of the *optimally configured* array (§5.1):
/// `λ < 6/(n+1)`.
#[must_use]
pub fn optimal_stability_threshold(n: usize) -> f64 {
    6.0 / (n as f64 + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rho_even_n_equals_utilization() {
        // For even n the central cut is exactly n²/4, so Table-ρ equals
        // peak utilization.
        let n = 10;
        let l = Load::TableRho(0.8);
        assert!((l.utilization(n) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn table_rho_odd_n_slightly_below_utilization_one() {
        // For odd n, Table-ρ = 1 leaves peak utilization at 1 − 1/n².
        let n = 5;
        let l = Load::TableRho(1.0);
        assert!((l.utilization(n) - (1.0 - 1.0 / 25.0)).abs() < 1e-12);
    }

    #[test]
    fn utilization_load_roundtrips() {
        for n in [4usize, 5, 9, 12] {
            let l = Load::Utilization(0.7);
            assert!((l.utilization(n) - 0.7).abs() < 1e-12, "n={n}");
        }
    }

    #[test]
    fn stability_threshold_saturates_peak_edge() {
        for n in [4usize, 5, 8, 9] {
            let lambda = mesh_stability_threshold(n);
            let peak = Load::Lambda(lambda).utilization(n);
            assert!((peak - 1.0).abs() < 1e-12, "n={n}: peak {peak}");
        }
    }

    #[test]
    fn optimal_threshold_exceeds_standard() {
        // The optimally configured network absorbs more traffic (§5.1);
        // at n = 3 the odd-n standard threshold 4n/(n²−1) = 3/2 coincides
        // with 6/(n+1), so the comparison is non-strict there.
        assert!((optimal_stability_threshold(3) - mesh_stability_threshold(3)).abs() < 1e-12);
        for n in 4..30 {
            assert!(
                optimal_stability_threshold(n) > mesh_stability_threshold(n),
                "n={n}"
            );
        }
    }

    #[test]
    fn lambda_passthrough() {
        assert_eq!(Load::Lambda(0.123).lambda(7), 0.123);
    }
}
