//! Discrete-event, packet-level simulation of greedy routing networks.
//!
//! This crate is the measurement instrument of the `meshbound` workspace: it
//! simulates the paper's standard model — Poisson arrivals at every node,
//! uniform destinations, greedy routing, FIFO edges with unit transmission
//! time and infinite buffers — as well as every variant the paper analyzes:
//!
//! * **Jackson mode** (exponential transmission times, §3.3) and
//!   **processor-sharing mode** (the Theorem 1/5 comparison system, [`ps`]);
//! * the **copy/"rushed" reference system** of Theorem 10 ([`copysys`]);
//! * **variable per-edge service rates** for the §5.1 capacity experiments;
//! * **slotted time** with batch Poisson arrivals (§5.2);
//! * alternative topologies (torus, hypercube, butterfly) and routers
//!   (randomized greedy), via generic parameters.
//!
//! Simulations are deterministic given a seed; independent replications and
//! parameter sweeps run in parallel with Rayon in [`runner`].
//!
//! # Quickstart
//!
//! ```
//! use meshbound_sim::{MeshSimConfig, simulate_mesh};
//!
//! let cfg = MeshSimConfig {
//!     n: 5,
//!     lambda: 0.16,          // Table-ρ 0.2 on n = 5
//!     horizon: 2_000.0,
//!     warmup: 200.0,
//!     seed: 1,
//!     ..MeshSimConfig::default()
//! };
//! let result = simulate_mesh(&cfg);
//! assert!(result.avg_delay > 3.0 && result.avg_delay < 4.5);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod copysys;
pub mod events;
pub mod network;
pub mod observer;
pub mod ps;
pub mod queue_sim;
pub mod rng;
pub mod runner;
pub mod service;

pub use network::{NetworkSim, SimResult};
pub use runner::{simulate_mesh, simulate_mesh_replicated, MeshRouterKind, MeshSimConfig};
pub use service::ServiceKind;
