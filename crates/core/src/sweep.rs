//! The parallel sweep executor: expanded scenario grids in, a
//! machine-readable report out.
//!
//! [`run_sweep`] executes a [`SweepSpec`] (or [`run_cells`] any explicit
//! cell list, which is how the paper-table harnesses ride the engine):
//! every cell is simulated with its replications, paired with its analytic
//! [`BoundsReport`], and judged against the bounds. The result is a
//! [`SweepReport`] that serializes to schema-versioned JSON
//! ([`SweepReport::to_json`]) so CI can gate on it and archive it:
//!
//! ```
//! use meshbound::sweep::{run_sweep, Jobs, SCHEMA};
//! use meshbound::SweepSpec;
//!
//! let spec = SweepSpec::parse("topo=mesh:4 load=rho:0.2 horizon=400 warmup=40").unwrap();
//! let report = run_sweep(&spec, Jobs::Sequential).unwrap();
//! assert_eq!(report.schema, SCHEMA);
//! assert!(report.cells[0].within_bounds);
//! ```
//!
//! Cell *results* are bit-deterministic: a grid run sequentially
//! ([`Jobs::Sequential`]) and the same grid run on every core
//! ([`Jobs::Parallel`]) produce identical simulated numbers, because each
//! cell carries its own derived seed and the executor preserves input
//! order. Only the wall-clock fields differ; strip them with
//! [`SweepReport::without_timings`] before comparing reports.

use crate::report::BoundsReport;
use meshbound_sim::{DropCounts, FaultSpec, Scenario, SweepError, SweepSpec, TelemetryReport};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Schema identifier embedded in every report; bump when the JSON layout
/// changes shape. v2 added `events_processed`/`events_per_sec` to every
/// cell; v3 added the per-cell `traffic` workload label; v4 split each
/// cell's wall clock into `setup_s` (analytic bounds + edge-rate cache
/// warmup) and `sim_s` (replication hot loop) and redefined
/// `events_per_sec` over `sim_s` alone; v5 added the per-cell `router`
/// label alongside the `router=` sweep axis; v6 added the per-cell
/// `faults` label, the `delivered_fraction`/`dropped` drop accounting,
/// and the `degradation` section inside each cell's bounds report; v7
/// added the shared `probes=` telemetry clause and the optional per-cell
/// `telemetry` flight-recorder report (schema `meshbound.telemetry/v1`) —
/// unprobed sweeps serialize byte-identically to v6 apart from this
/// schema tag.
pub const SCHEMA: &str = "meshbound.sweep/v7";

/// Tolerance for judging a simulated mean delay against analytic bounds.
///
/// The bounds constrain *expectations*; a finite-horizon simulation
/// estimates them with noise, so the verdict allows
/// `rel · delay + abs` of slack on each side before declaring a
/// violation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundsCheck {
    /// Relative slack (fraction of the simulated delay).
    pub rel: f64,
    /// Absolute slack (delay units).
    pub abs: f64,
}

impl Default for BoundsCheck {
    fn default() -> Self {
        Self {
            rel: 0.05,
            abs: 0.5,
        }
    }
}

impl BoundsCheck {
    /// True iff `delay` respects `bounds` within the tolerance. The lower
    /// bound always applies (it is finite for every topology); the upper
    /// bound applies only where the paper proves one (`∞` marks the torus
    /// open problem and saturated operating points).
    #[must_use]
    pub fn verdict(&self, delay: f64, bounds: &BoundsReport) -> bool {
        let slack = self.rel * delay.abs() + self.abs;
        let lower_ok = delay + slack >= bounds.lower_best;
        let upper_ok = !bounds.upper.is_finite() || delay <= bounds.upper + slack;
        lower_ok && upper_ok
    }
}

/// How many workers execute sweep cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Jobs {
    /// One cell at a time on the calling thread (replications inside a
    /// cell still fan out).
    Sequential,
    /// Cells in parallel across the Rayon pool (all cores, or the global
    /// cap installed via `rayon::ThreadPoolBuilder`).
    Parallel,
}

impl Jobs {
    /// Worker count this choice resolves to right now.
    #[must_use]
    pub fn workers(self) -> usize {
        match self {
            Jobs::Sequential => 1,
            Jobs::Parallel => rayon::current_num_threads(),
        }
    }
}

/// One executed sweep cell: the scenario, its simulated statistics, the
/// matching analytic bounds and the verdict.
///
/// `Serialize` is hand-written (field order matches declaration order,
/// like the derive) so the optional `telemetry` section is omitted —
/// rather than emitted as `null` — when the cell ran without probes,
/// keeping unprobed report JSON byte-identical to schema v6.
#[derive(Debug, Clone, Deserialize)]
pub struct SweepCellReport {
    /// The cell's full scenario spec string (round-trips through
    /// `Scenario::parse`).
    pub spec: String,
    /// Human-readable topology label.
    pub label: String,
    /// The cell's workload label (e.g. `"uniform"`, `"transpose"`,
    /// `"hotspot:0.25"`, `"src:hotspot:4+uniform"`).
    pub traffic: String,
    /// The cell's router label (`"greedy"`, `"randomized"`,
    /// `"westfirst"` or `"oddeven"`).
    pub router: String,
    /// The cell's fault label (e.g. `"links:0.05"`, `"none"` for a
    /// healthy cell).
    pub faults: String,
    /// The structured scenario (topology, router, traffic, load, seed, …).
    pub scenario: Scenario,
    /// Replications run for this cell.
    pub reps: usize,
    /// Mean delay across replications.
    pub delay_mean: f64,
    /// 95% Student-t half-width across replications (0 for one
    /// replication).
    pub delay_half_width: f64,
    /// Mean time-averaged number-in-system across replications.
    pub time_avg_n: f64,
    /// Mean remaining-work ratio `r = E[R]/E[N]` across replications.
    pub r_ratio: f64,
    /// Mean saturated ratio `r_s = E[R_s]/E[N]` across replications.
    pub rs_ratio: f64,
    /// Mean delivered throughput (packets per unit time) across
    /// replications.
    pub throughput: f64,
    /// Packets generated, summed over replications.
    pub generated: u64,
    /// Packets delivered, summed over replications.
    pub completed: u64,
    /// `completed / generated` over all replications (1 minus the drop
    /// and still-in-flight fractions; 0 when nothing was generated).
    pub delivered_fraction: f64,
    /// Fault-induced drops by cause, summed over replications (all zero
    /// for healthy cells).
    pub dropped: DropCounts,
    /// Future-event-list events processed, summed over replications
    /// (deterministic: a pure work measure).
    pub events_processed: u64,
    /// Simulator throughput over the hot loop alone: total
    /// `events_processed` divided by [`sim_s`](Self::sim_s). Setup work
    /// (bounds, edge-rate derivation) is excluded, so this measures the
    /// event loop rather than the cell overhead. A timing field, zeroed by
    /// [`SweepReport::without_timings`].
    pub events_per_sec: f64,
    /// The analytic report at this cell's operating point.
    pub bounds: BoundsReport,
    /// Whether the simulated delay respects the bounds (see
    /// [`BoundsCheck`]); vacuously true where no finite bound applies,
    /// and for faulted cells — the analytic bounds describe the healthy
    /// topology and do not constrain a degraded one.
    pub within_bounds: bool,
    /// Whether a finite upper bound constrained this cell (the torus has
    /// none, and saturated loads push the Theorem 7 bound to `∞`).
    pub upper_bound_finite: bool,
    /// Wall-clock seconds of cell setup: the analytic [`BoundsReport`],
    /// which also derives (and caches) the cell's unit edge rates before
    /// the simulation starts.
    pub setup_s: f64,
    /// Wall-clock seconds of the replication hot loop (`run_replicated`),
    /// after setup has warmed the rate cache.
    pub sim_s: f64,
    /// Wall-clock seconds this cell took (simulation + bounds).
    pub wall_s: f64,
    /// Flight-recorder telemetry of the cell's first replication, when
    /// the sweep's `probes=` clause was set (schema
    /// `meshbound.telemetry/v1`). Omitted from the JSON entirely when
    /// absent.
    pub telemetry: Option<TelemetryReport>,
}

impl Serialize for SweepCellReport {
    fn serialize(&self, w: &mut serde::json::Writer) {
        w.begin_object();
        w.field("spec", &self.spec);
        w.field("label", &self.label);
        w.field("traffic", &self.traffic);
        w.field("router", &self.router);
        w.field("faults", &self.faults);
        w.field("scenario", &self.scenario);
        w.field("reps", &self.reps);
        w.field("delay_mean", &self.delay_mean);
        w.field("delay_half_width", &self.delay_half_width);
        w.field("time_avg_n", &self.time_avg_n);
        w.field("r_ratio", &self.r_ratio);
        w.field("rs_ratio", &self.rs_ratio);
        w.field("throughput", &self.throughput);
        w.field("generated", &self.generated);
        w.field("completed", &self.completed);
        w.field("delivered_fraction", &self.delivered_fraction);
        w.field("dropped", &self.dropped);
        w.field("events_processed", &self.events_processed);
        w.field("events_per_sec", &self.events_per_sec);
        w.field("bounds", &self.bounds);
        w.field("within_bounds", &self.within_bounds);
        w.field("upper_bound_finite", &self.upper_bound_finite);
        w.field("setup_s", &self.setup_s);
        w.field("sim_s", &self.sim_s);
        w.field("wall_s", &self.wall_s);
        if let Some(telemetry) = &self.telemetry {
            w.field("telemetry", telemetry);
        }
        w.end_object();
    }
}

/// A complete executed sweep: header, per-cell results, timing roll-up.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepReport {
    /// Report schema identifier ([`SCHEMA`]).
    pub schema: String,
    /// The sweep spec string (grammar form for grammar-driven sweeps, a
    /// descriptive name for programmatic cell lists).
    pub spec: String,
    /// Worker configuration the sweep ran under.
    pub jobs: Jobs,
    /// Worker count [`SweepReport::jobs`] resolved to.
    pub workers: usize,
    /// Replications per cell.
    pub reps: usize,
    /// Number of cells.
    pub num_cells: usize,
    /// True iff every cell's `within_bounds` verdict is true.
    pub all_within_bounds: bool,
    /// Relative + absolute tolerance the verdicts used.
    pub tolerance: BoundsCheck,
    /// Per-cell results, in grid order.
    pub cells: Vec<SweepCellReport>,
    /// Wall-clock seconds for the whole sweep.
    pub wall_s: f64,
    /// Sum of per-cell wall-clock seconds (the sequential-equivalent
    /// cost).
    pub cells_wall_s: f64,
    /// Measured parallel speedup: `cells_wall_s / wall_s`.
    pub speedup: f64,
}

impl SweepReport {
    /// Compact single-line JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde::json::to_string(self)
    }

    /// Two-space-indented JSON (what `repro sweep --out` writes).
    #[must_use]
    pub fn to_json_pretty(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// A copy with every wall-clock field zeroed — the deterministic part
    /// of the report, suitable for bit-exact comparison across runs and
    /// worker counts.
    #[must_use]
    pub fn without_timings(&self) -> Self {
        let mut copy = self.clone();
        copy.jobs = Jobs::Sequential;
        copy.workers = 1;
        copy.wall_s = 0.0;
        copy.cells_wall_s = 0.0;
        copy.speedup = 0.0;
        for cell in &mut copy.cells {
            cell.setup_s = 0.0;
            cell.sim_s = 0.0;
            cell.wall_s = 0.0;
            cell.events_per_sec = 0.0;
        }
        copy
    }

    /// Fixed-width text summary of the grid (one row per cell).
    #[must_use]
    pub fn to_text(&self) -> String {
        use crate::experiments::TextTable;
        let mut t = TextTable::new(&[
            "cell", "T(sim)", "±", "lower", "upper", "bounds", "wall s", "ev/s",
        ]);
        for cell in &self.cells {
            t.row(vec![
                cell.spec.clone(),
                format!("{:.3}", cell.delay_mean),
                format!("{:.3}", cell.delay_half_width),
                format!("{:.3}", cell.bounds.lower_best),
                if cell.bounds.upper.is_finite() {
                    format!("{:.3}", cell.bounds.upper)
                } else {
                    "open".into()
                },
                if cell.within_bounds { "ok" } else { "VIOLATED" }.into(),
                format!("{:.2}", cell.wall_s),
                format!("{:.0}k", cell.events_per_sec / 1e3),
            ]);
        }
        let mut out = format!(
            "sweep: {} ({} cells, reps={}, {} workers)\n",
            self.spec, self.num_cells, self.reps, self.workers
        );
        out.push_str(&t.render());
        out.push_str(&format!(
            "wall {:.2}s, cells {:.2}s, speedup {:.2}x, bounds {}\n",
            self.wall_s,
            self.cells_wall_s,
            self.speedup,
            if self.all_within_bounds {
                "ok"
            } else {
                "VIOLATED"
            }
        ));
        out
    }
}

/// Expands `spec` and executes the grid.
///
/// # Errors
///
/// Propagates [`SweepSpec::expand`] rejections (empty axes, invalid or
/// duplicate cells).
pub fn run_sweep(spec: &SweepSpec, jobs: Jobs) -> Result<SweepReport, SweepError> {
    let cells = spec.expand()?;
    Ok(run_cells(&spec.spec_string(), cells, spec.reps, jobs))
}

/// Executes an explicit scenario list as a sweep. This is the entry point
/// the paper-table harnesses use: they construct their exact legacy cells
/// (seeds, horizons) and ride the same parallel engine and report format.
///
/// # Panics
///
/// Panics if `reps == 0` or any cell fails `Scenario::validate`
/// ([`run_sweep`] rejects both up front via [`SweepSpec::expand`]).
#[must_use]
pub fn run_cells(spec: &str, cells: Vec<Scenario>, reps: usize, jobs: Jobs) -> SweepReport {
    assert!(reps >= 1, "a sweep needs at least one replication per cell");
    let check = BoundsCheck::default();
    let t0 = Instant::now();
    let run_one = |sc: &Scenario| run_cell(sc, reps, check);
    let cell_reports: Vec<SweepCellReport> = match jobs {
        Jobs::Sequential => cells.iter().map(run_one).collect(),
        Jobs::Parallel => cells.par_iter().map(run_one).collect(),
    };
    let wall_s = t0.elapsed().as_secs_f64();
    let cells_wall_s: f64 = cell_reports.iter().map(|c| c.wall_s).sum();
    SweepReport {
        schema: SCHEMA.to_string(),
        spec: spec.to_string(),
        jobs,
        workers: jobs.workers(),
        reps,
        num_cells: cell_reports.len(),
        all_within_bounds: cell_reports.iter().all(|c| c.within_bounds),
        tolerance: check,
        cells: cell_reports,
        wall_s,
        cells_wall_s,
        speedup: if wall_s > 0.0 {
            cells_wall_s / wall_s
        } else {
            1.0
        },
    }
}

/// Simulates one cell and assembles its report.
///
/// The analytic bounds run *first*: computing them derives the cell's
/// unit edge rates, which `Scenario` memoizes, so by the time the
/// replications start the rate cache is warm and `sim_s` times the event
/// loop alone.
fn run_cell(sc: &Scenario, reps: usize, check: BoundsCheck) -> SweepCellReport {
    let t0 = Instant::now();
    let mut bounds = BoundsReport::compute_for(sc);
    let setup_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let rep = sc.run_replicated(reps);
    let sim_s = t1.elapsed().as_secs_f64();
    let delay_mean = rep.delay.mean();
    let delay_half_width = if reps >= 2 {
        rep.delay.confidence_interval(0.95).half_width
    } else {
        0.0
    };
    let mut throughput = 0.0;
    let (mut generated, mut completed, mut events_processed) = (0u64, 0u64, 0u64);
    let mut dropped = DropCounts::default();
    for run in &rep.runs {
        throughput += run.completed as f64 / run.measure_time;
        generated += run.generated;
        completed += run.completed;
        events_processed += run.events_processed;
        dropped.merge(&run.dropped);
    }
    throughput /= rep.runs.len() as f64;
    let delivered_fraction = if generated > 0 {
        completed as f64 / generated as f64
    } else {
        0.0
    };
    // The simulated half of the degradation section lives here — the
    // analytic report only knows the fault plan, not the outcome.
    if let Some(d) = bounds.degradation.as_mut() {
        d.delivered_fraction = delivered_fraction;
        d.dropped = dropped;
    }
    // Healthy analytic bounds do not constrain a faulted topology:
    // faulted cells pass vacuously, like cells with no finite upper
    // bound.
    let within_bounds = sc.faults.is_some() || check.verdict(delay_mean, &bounds);
    let events_per_sec = if sim_s > 0.0 {
        events_processed as f64 / sim_s
    } else {
        0.0
    };
    SweepCellReport {
        spec: sc.spec_string(),
        label: sc.label(),
        traffic: sc.traffic.label(),
        router: sc.router.as_str().to_string(),
        faults: sc
            .faults
            .as_ref()
            .map_or_else(|| "none".to_string(), FaultSpec::spec_token),
        scenario: sc.clone(),
        reps,
        delay_mean,
        delay_half_width,
        time_avg_n: rep.n.mean(),
        r_ratio: rep.r_ratio.mean(),
        rs_ratio: rep.rs_ratio.mean(),
        throughput,
        generated,
        completed,
        delivered_fraction,
        dropped,
        events_processed,
        events_per_sec,
        within_bounds,
        upper_bound_finite: bounds.upper.is_finite(),
        bounds,
        setup_s,
        sim_s,
        wall_s: t0.elapsed().as_secs_f64(),
        // One representative trajectory per cell: replications share the
        // cell's physics, so the first run's flight recorder stands for
        // the cell without multiplying report size by `reps`.
        telemetry: rep.runs.first().and_then(|r| r.telemetry.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshbound_queueing::load::Load;
    use meshbound_sim::{HorizonPolicy, SweepSpec, TopologySpec};

    fn tiny() -> SweepSpec {
        SweepSpec::new()
            .topologies(vec![
                TopologySpec::Mesh { rows: 4, cols: 4 },
                TopologySpec::Torus { n: 4 },
            ])
            .loads(vec![Load::TableRho(0.2), Load::TableRho(0.6)])
            .horizon(HorizonPolicy::Fixed {
                horizon: 500.0,
                warmup: 50.0,
            })
    }

    #[test]
    fn report_header_and_verdicts() {
        let report = run_sweep(&tiny(), Jobs::Parallel).unwrap();
        assert_eq!(report.schema, SCHEMA);
        assert_eq!(report.num_cells, 4);
        assert_eq!(report.cells.len(), 4);
        assert!(report.all_within_bounds, "{}", report.to_text());
        assert!(report.wall_s > 0.0);
        assert!(report.cells_wall_s > 0.0);
        // Torus cells have no finite upper bound; mesh cells do.
        assert!(report.cells[0].upper_bound_finite);
        assert!(!report.cells[2].upper_bound_finite);
        // Every cell spec round-trips through Scenario::parse.
        for cell in &report.cells {
            let parsed = Scenario::parse(&cell.spec).unwrap();
            assert_eq!(parsed, cell.scenario);
        }
    }

    #[test]
    fn perf_counters_are_populated_and_stripped_with_timings() {
        let report = run_sweep(&tiny().loads(vec![Load::TableRho(0.2)]), Jobs::Sequential).unwrap();
        for cell in &report.cells {
            assert!(cell.events_processed > 0, "{}", cell.spec);
            assert!(cell.events_per_sec > 0.0, "{}", cell.spec);
            // v4: the wall clock is split — setup (bounds + rate cache)
            // and the simulation hot loop are timed separately, and ev/s
            // is events over sim_s alone.
            assert!(cell.setup_s > 0.0, "{}", cell.spec);
            assert!(cell.sim_s > 0.0, "{}", cell.spec);
            assert!(cell.wall_s >= cell.setup_s + cell.sim_s, "{}", cell.spec);
            let expected = cell.events_processed as f64 / cell.sim_s;
            assert!(
                (cell.events_per_sec - expected).abs() < 1e-9 * expected,
                "ev/s is not events/sim_s for {}",
                cell.spec
            );
        }
        let stripped = report.without_timings();
        for cell in &stripped.cells {
            assert!(cell.events_processed > 0); // deterministic: kept
            assert_eq!(cell.events_per_sec, 0.0); // wall-clock: zeroed
            assert_eq!(cell.setup_s, 0.0);
            assert_eq!(cell.sim_s, 0.0);
        }
    }

    #[test]
    fn sequential_and_parallel_agree_bit_for_bit() {
        let seq = run_sweep(&tiny(), Jobs::Sequential).unwrap();
        let par = run_sweep(&tiny(), Jobs::Parallel).unwrap();
        assert_eq!(
            seq.without_timings().to_json(),
            par.without_timings().to_json()
        );
        for (a, b) in seq.cells.iter().zip(&par.cells) {
            assert_eq!(a.delay_mean.to_bits(), b.delay_mean.to_bits());
            assert_eq!(a.generated, b.generated);
        }
    }

    #[test]
    fn json_is_schema_versioned_and_machine_readable() {
        let report = run_sweep(&tiny().loads(vec![Load::TableRho(0.2)]), Jobs::Sequential).unwrap();
        let json = report.to_json();
        assert!(json.starts_with(&format!("{{\"schema\":\"{SCHEMA}\"")));
        assert!(json.contains("\"within_bounds\":true"));
        assert!(json.contains("\"cells\":["));
        // v3: every cell carries its workload label.
        assert!(json.contains("\"traffic\":\"uniform\""));
        // v5: every cell carries its router label.
        assert!(json.contains("\"router\":\"greedy\""));
        // v6: every cell carries its fault label and drop accounting.
        assert!(json.contains("\"faults\":\"none\""));
        assert!(json.contains("\"delivered_fraction\":"));
        assert!(json.contains("\"link_down\":0"));
        assert!(json.contains("\"degradation\":null"));
        // The torus's open upper bound serializes as null, not Infinity.
        assert!(json.contains("\"upper\":null"));
        assert!(!json.contains("inf"));
    }

    #[test]
    fn traffic_axis_cells_carry_their_labels_and_check_out() {
        let spec = meshbound_sim::SweepSpec::parse(
            "topo=mesh:4 load=util:0.3 traffic=uniform|transpose|hotspot:0.25 \
             horizon=500 warmup=50 reps=2",
        )
        .unwrap();
        let report = run_sweep(&spec, Jobs::Parallel).unwrap();
        assert_eq!(report.num_cells, 3);
        let labels: Vec<&str> = report.cells.iter().map(|c| c.traffic.as_str()).collect();
        assert_eq!(labels, ["uniform", "transpose", "hotspot:0.25"]);
        // Each workload's simulated delay respects the bounds computed
        // from its own edge-rate vector.
        assert!(report.all_within_bounds, "{}", report.to_text());
        // And the JSON carries the labels.
        let json = report.to_json();
        assert!(json.contains("\"traffic\":\"transpose\""));
        assert!(json.contains("\"traffic\":\"hotspot:0.25\""));
    }

    #[test]
    fn faulted_cells_report_degradation_and_pass_bounds_vacuously() {
        let spec = meshbound_sim::SweepSpec::parse(
            "topo=mesh:5 load=rho:0.4 faults=none|links:0.1 horizon=600 warmup=60",
        )
        .unwrap();
        let report = run_sweep(&spec, Jobs::Sequential).unwrap();
        assert_eq!(report.num_cells, 2);
        let healthy = &report.cells[0];
        let faulted = &report.cells[1];
        assert_eq!(healthy.faults, "none");
        assert!(healthy.bounds.degradation.is_none());
        assert_eq!(healthy.dropped.total(), 0);
        assert_eq!(faulted.faults, "links:0.1");
        assert!(faulted.dropped.total() > 0, "{}", faulted.spec);
        assert!(faulted.delivered_fraction < healthy.delivered_fraction);
        assert!(faulted.within_bounds, "faulted verdicts are vacuous");
        assert!(report.all_within_bounds);
        let d = faulted.bounds.degradation.as_ref().unwrap();
        assert!(d.dead_edges > 0);
        assert!((0.0..=1.0).contains(&d.reachable_fraction));
        assert!((d.delivered_fraction - faulted.delivered_fraction).abs() < 1e-15);
        assert_eq!(d.dropped, faulted.dropped);
        // The labels and the degradation section reach the JSON.
        let json = report.to_json();
        assert!(json.contains("\"faults\":\"links:0.1\""));
        assert!(json.contains("\"degradation\":{"));
    }

    #[test]
    fn probed_sweeps_attach_telemetry_without_perturbing_results() {
        let base = "topo=mesh:4 load=rho:0.2 horizon=400 warmup=40";
        let plain = run_sweep(&SweepSpec::parse(base).unwrap(), Jobs::Sequential).unwrap();
        let probed = run_sweep(
            &SweepSpec::parse(&format!("{base} probes=nsys,shards")).unwrap(),
            Jobs::Sequential,
        )
        .unwrap();
        // An unprobed report carries no telemetry key at all — the v7
        // JSON is byte-identical to v6 apart from the schema tag.
        let plain_json = plain.to_json();
        assert!(!plain_json.contains("telemetry"));
        assert!(plain_json.starts_with("{\"schema\":\"meshbound.sweep/v7\""));
        assert!(plain.cells[0].telemetry.is_none());
        // The probed twin shares the cell seed and every simulated number
        // bit for bit; only the telemetry section differs.
        let (a, b) = (&plain.cells[0], &probed.cells[0]);
        assert_eq!(a.scenario.seed, b.scenario.seed);
        assert_eq!(a.delay_mean.to_bits(), b.delay_mean.to_bits());
        assert_eq!(a.time_avg_n.to_bits(), b.time_avg_n.to_bits());
        assert_eq!(a.events_processed, b.events_processed);
        let telemetry = b
            .telemetry
            .as_ref()
            .expect("probed cell lost its telemetry");
        assert_eq!(telemetry.schema, meshbound_sim::TELEMETRY_SCHEMA);
        let names: Vec<&str> = telemetry.series.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["nsys", "shard0:events", "shard0:qmass"]);
        assert!(telemetry.series.iter().all(|s| !s.samples.is_empty()));
        assert!(probed.to_json().contains("\"telemetry\":{\"schema\":"));
    }

    #[test]
    fn text_rendering_flags_violations() {
        let mut report =
            run_sweep(&tiny().loads(vec![Load::TableRho(0.2)]), Jobs::Sequential).unwrap();
        assert!(report.to_text().contains("ok"));
        report.cells[0].within_bounds = false;
        assert!(report.to_text().contains("VIOLATED"));
    }
}
