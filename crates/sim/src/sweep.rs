//! [`SweepSpec`]: a declarative grid of [`Scenario`]s.
//!
//! The paper's tables are really *sweeps* — a cartesian product of
//! topology, load, router and destination axes, one scenario per cell. A
//! [`SweepSpec`] names such a grid compactly, expands it deterministically
//! ([`SweepSpec::expand`]), and round-trips through a textual grammar
//! ([`SweepSpec::parse`] / [`SweepSpec::spec_string`]) the same way
//! [`Scenario`] specs do:
//!
//! ```
//! use meshbound_sim::SweepSpec;
//!
//! let sweep = SweepSpec::parse(
//!     "topo=mesh:5|torus:6 load=rho:0.2|rho:0.8 reps=2 horizon=800 warmup=80",
//! )
//! .unwrap();
//! let cells = sweep.expand().unwrap();
//! assert_eq!(cells.len(), 4); // 2 topologies × 2 loads
//! assert_eq!(SweepSpec::parse(&sweep.spec_string()).unwrap(), sweep);
//! ```
//!
//! Expansion is pure specification → scenarios: per-cell seeds are derived
//! by hashing each cell's parameters against the sweep seed, so the grid is
//! identical however (and in whatever order, on however many threads) the
//! cells are later executed. The parallel executor that runs an expanded
//! grid and emits the JSON report lives in the `meshbound` facade crate
//! (`meshbound::sweep`).

use crate::engine::EngineSpec;
use crate::fault::FaultSpec;
use crate::rng::splitmix64;
use crate::scenario::{
    RouterSpec, Scenario, ScenarioError, TopologySpec, DEFAULT_HORIZON, DEFAULT_WARMUP,
};
use crate::service::ServiceKind;
use crate::telemetry::ProbeSpec;
use crate::traffic::{PatternSpec, SourceSpec};
use meshbound_queueing::load::Load;
use serde::{Deserialize, Serialize};

/// How each cell's simulation horizon is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum HorizonPolicy {
    /// Every cell runs the same fixed horizon and warmup.
    Fixed {
        /// Simulated end time.
        horizon: f64,
        /// Warmup discarded from statistics.
        warmup: f64,
    },
    /// Load-adaptive: `horizon = min(base / (1 − ρ), cap)` with
    /// `ρ` the cell's peak edge utilization (clamped to `1 − 10⁻³`) and
    /// warmup one fifth of the horizon — the same growth law the paper
    /// tables use, tracking the `O(1/(1−ρ)²)` relaxation time of heavily
    /// loaded queues.
    Auto {
        /// Base horizon at light load.
        base: f64,
        /// Hard horizon cap.
        cap: f64,
    },
}

impl HorizonPolicy {
    /// The `(horizon, warmup)` pair for a cell with peak utilization `rho`.
    #[must_use]
    pub fn resolve(&self, rho: f64) -> (f64, f64) {
        match *self {
            HorizonPolicy::Fixed { horizon, warmup } => (horizon, warmup),
            HorizonPolicy::Auto { base, cap } => {
                let horizon = (base / (1.0 - rho).max(1e-3)).min(cap);
                (horizon, horizon / 5.0)
            }
        }
    }
}

/// Why a sweep specification was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepError {
    /// The sweep grammar could not be parsed.
    Parse(String),
    /// An axis is empty, so the grid has no cells.
    EmptyAxis(String),
    /// Two cells expand to the identical scenario.
    DuplicateCell(String),
    /// A cell fails [`Scenario::validate`].
    InvalidCell(String),
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Parse(m) => write!(f, "sweep parse error: {m}"),
            SweepError::EmptyAxis(m) => write!(f, "empty sweep axis: {m}"),
            SweepError::DuplicateCell(m) => write!(f, "duplicate sweep cell: {m}"),
            SweepError::InvalidCell(m) => write!(f, "invalid sweep cell: {m}"),
        }
    }
}

impl std::error::Error for SweepError {}

/// A declarative grid of scenarios: axis lists plus the knobs shared by
/// every cell.
///
/// Build one with [`SweepSpec::new`] and the chainable setters, or parse
/// the textual grammar with [`SweepSpec::parse`]. [`SweepSpec::expand`]
/// turns it into concrete [`Scenario`]s in a deterministic order
/// (topology-major, then load, router, destination).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// Topology axis (at least one entry).
    pub topologies: Vec<TopologySpec>,
    /// Load axis (at least one entry, any [`Load`] convention per entry).
    pub loads: Vec<Load>,
    /// Router axis.
    pub routers: Vec<RouterSpec>,
    /// Traffic-pattern axis (the destination side of the workload; the
    /// grammar key is `traffic=`, with `dest=` kept as the pre-PR-5
    /// alias). Matrix workloads have no grammar token and are
    /// builder-only at the [`Scenario`] level.
    pub patterns: Vec<PatternSpec>,
    /// Source model shared by every cell (`src=` clause; not an axis).
    pub source: SourceSpec,
    /// Fault axis (`faults=` clause; `none` is the healthy entry). Each
    /// cell materializes its own deterministic [`FaultPlan`] from the
    /// cell seed, so a faulted sweep is as replayable as a healthy one.
    ///
    /// [`FaultPlan`]: crate::fault::FaultPlan
    pub faults: Vec<Option<FaultSpec>>,
    /// Telemetry probes shared by every cell (`probes=` clause; not an
    /// axis — probes never change the physics, so sweeping them would
    /// only duplicate cells). `None` (the default) keeps every cell spec
    /// string, and therefore every derived cell seed, byte-identical to
    /// a pre-telemetry sweep.
    pub probes: Option<ProbeSpec>,
    /// Engine axis (defaults to `[Auto]`). Engines produce bit-identical
    /// results and share per-cell seeds, so an `engine=` axis measures
    /// pure wall-clock differences — the perf-ablation use case.
    pub engines: Vec<EngineSpec>,
    /// Transmission-time distribution shared by every cell.
    pub service: ServiceKind,
    /// Independent replications per cell.
    pub reps: usize,
    /// Sweep master seed; each cell derives its own scenario seed from it.
    pub seed: u64,
    /// Horizon policy shared by every cell.
    pub horizon: HorizonPolicy,
    /// Track the remaining-saturated-services integral (square meshes).
    pub track_saturated: bool,
}

impl Default for SweepSpec {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepSpec {
    /// An empty sweep with the default shared knobs: greedy router, uniform
    /// destinations, deterministic service, one replication, seed 1, fixed
    /// horizon 2000 / warmup 200. Topology and load axes start empty and
    /// must be filled before [`SweepSpec::expand`].
    #[must_use]
    pub fn new() -> Self {
        Self {
            topologies: Vec::new(),
            loads: Vec::new(),
            routers: vec![RouterSpec::Greedy],
            patterns: vec![PatternSpec::Uniform],
            source: SourceSpec::Uniform,
            faults: vec![None],
            probes: None,
            engines: vec![EngineSpec::Auto],
            service: ServiceKind::Deterministic,
            reps: 1,
            seed: 1,
            horizon: HorizonPolicy::Fixed {
                horizon: DEFAULT_HORIZON,
                warmup: DEFAULT_WARMUP,
            },
            track_saturated: false,
        }
    }

    /// Sets the topology axis.
    #[must_use]
    pub fn topologies(mut self, topologies: Vec<TopologySpec>) -> Self {
        self.topologies = topologies;
        self
    }

    /// Sets the load axis.
    #[must_use]
    pub fn loads(mut self, loads: Vec<Load>) -> Self {
        self.loads = loads;
        self
    }

    /// Sets the router axis.
    #[must_use]
    pub fn routers(mut self, routers: Vec<RouterSpec>) -> Self {
        self.routers = routers;
        self
    }

    /// Sets the traffic-pattern axis.
    #[must_use]
    pub fn patterns(mut self, patterns: Vec<PatternSpec>) -> Self {
        self.patterns = patterns;
        self
    }

    /// Sets the shared source model.
    #[must_use]
    pub fn source(mut self, source: SourceSpec) -> Self {
        self.source = source;
        self
    }

    /// Sets the fault axis (`None` entries are healthy cells).
    #[must_use]
    pub fn faults(mut self, faults: Vec<Option<FaultSpec>>) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the shared telemetry probes (`None` turns telemetry off).
    #[must_use]
    pub fn probes(mut self, probes: Option<ProbeSpec>) -> Self {
        self.probes = probes;
        self
    }

    /// Sets the engine axis.
    #[must_use]
    pub fn engines(mut self, engines: Vec<EngineSpec>) -> Self {
        self.engines = engines;
        self
    }

    /// Sets the shared service distribution.
    #[must_use]
    pub fn service(mut self, service: ServiceKind) -> Self {
        self.service = service;
        self
    }

    /// Sets the per-cell replication count.
    #[must_use]
    pub fn reps(mut self, reps: usize) -> Self {
        self.reps = reps;
        self
    }

    /// Sets the sweep master seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the horizon policy.
    #[must_use]
    pub fn horizon(mut self, horizon: HorizonPolicy) -> Self {
        self.horizon = horizon;
        self
    }

    /// Enables or disables saturated-services tracking in every cell.
    #[must_use]
    pub fn track_saturated(mut self, yes: bool) -> Self {
        self.track_saturated = yes;
        self
    }

    /// Number of cells the grid expands to (before validation).
    #[must_use]
    pub fn num_cells(&self) -> usize {
        self.topologies.len()
            * self.loads.len()
            * self.routers.len()
            * self.patterns.len()
            * self.faults.len()
            * self.engines.len()
    }

    /// Expands the grid into concrete scenarios, topology-major
    /// (`for topology { for load { for router { for traffic } } }`).
    ///
    /// Every cell gets a seed derived from the sweep seed and the cell's
    /// own parameters (see [`SweepSpec::cell_seed`]), so the expansion is a
    /// pure function of the spec — independent of execution order and
    /// thread count downstream.
    ///
    /// # Errors
    ///
    /// [`SweepError::EmptyAxis`] if any axis or `reps` is empty,
    /// [`SweepError::InvalidCell`] if a cell fails [`Scenario::validate`]
    /// (e.g. a randomized router paired with a torus), and
    /// [`SweepError::DuplicateCell`] if two cells coincide.
    pub fn expand(&self) -> Result<Vec<Scenario>, SweepError> {
        for (axis, len) in [
            ("topo", self.topologies.len()),
            ("load", self.loads.len()),
            ("router", self.routers.len()),
            ("traffic", self.patterns.len()),
            ("faults", self.faults.len()),
            ("engine", self.engines.len()),
            ("reps", self.reps),
        ] {
            if len == 0 {
                return Err(SweepError::EmptyAxis(format!(
                    "`{axis}` has no entries — a sweep needs at least one value per axis"
                )));
            }
        }
        if let Some(p) = self
            .patterns
            .iter()
            .find(|p| matches!(p, PatternSpec::Matrix { .. }))
        {
            return Err(SweepError::InvalidCell(format!(
                "`{}` traffic has no sweep grammar — run matrix workloads through \
                 `Scenario` directly",
                p.label()
            )));
        }
        let mut cells = Vec::with_capacity(self.num_cells());
        let mut seen: std::collections::HashSet<String> = std::collections::HashSet::new();
        for topology in &self.topologies {
            for &load in &self.loads {
                for &router in &self.routers {
                    for pattern in &self.patterns {
                        for faults in &self.faults {
                            for &engine in &self.engines {
                                let mut sc = Scenario::new(topology.clone())
                                    .router(router)
                                    .pattern(pattern.clone())
                                    .source(self.source.clone())
                                    .load(load)
                                    .service(self.service)
                                    .track_saturated(self.track_saturated)
                                    .engine(engine);
                                sc.faults = faults.clone();
                                sc.probes = self.probes;
                                // First validation catches unsupported
                                // combinations before `cell_rho` resolves
                                // the load against them.
                                let invalid = |sc: &Scenario, e: ScenarioError| {
                                    SweepError::InvalidCell(format!("`{}`: {e}", sc.spec_string()))
                                };
                                sc.validate().map_err(|e| invalid(&sc, e))?;
                                let (horizon, warmup) = self.horizon.resolve(cell_rho(&sc));
                                sc = sc.horizon(horizon).warmup(warmup);
                                let seed = self.cell_seed(&sc);
                                sc = sc.seed(seed);
                                sc.validate().map_err(|e| invalid(&sc, e))?;
                                let spec = sc.spec_string();
                                if !seen.insert(spec.clone()) {
                                    return Err(SweepError::DuplicateCell(format!(
                                        "`{spec}` appears twice — deduplicate the axis lists"
                                    )));
                                }
                                cells.push(sc);
                            }
                        }
                    }
                }
            }
        }
        Ok(cells)
    }

    /// The derived scenario seed of one cell: the sweep seed mixed (via
    /// FNV-1a and splitmix) with the cell's parameter string, so equal
    /// cells always get equal seeds and distinct cells get decorrelated
    /// streams.
    ///
    /// Only the cell's *physical* parameters feed the hash — its `seed`
    /// field is ignored, and so are its `engine` (engines are bit-identical,
    /// so cells differing only in engine share a seed and therefore produce
    /// identical results: an `engine=` axis is a pure wall-clock ablation)
    /// and its `probes` (telemetry reads state without perturbing it, so a
    /// probed sweep replays the exact sample paths of its unprobed twin).
    /// Re-deriving the seed of an already-expanded cell (e.g. one parsed
    /// back out of a sweep report) returns the value
    /// [`SweepSpec::expand`] assigned it.
    #[must_use]
    pub fn cell_seed(&self, cell: &Scenario) -> u64 {
        // Scenario spec strings omit the seed, engine and probes clauses
        // at their defaults, so clearing all three reproduces the
        // pre-seeding, engine-free, telemetry-free parameter string.
        let mut unseeded = cell.clone();
        unseeded.seed = crate::scenario::DEFAULT_SEED;
        unseeded.engine = EngineSpec::Auto;
        unseeded.probes = None;
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in unseeded.spec_string().bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        splitmix64(self.seed ^ hash)
    }

    // ------------------------------------------------------------------
    // The textual grammar.
    // ------------------------------------------------------------------

    /// Parses the sweep grammar: whitespace-separated `key=value` clauses
    /// where axis values are `|`-separated lists.
    ///
    /// ```text
    /// topo=mesh:5|mesh:10|torus:8     (required; any Scenario topology head)
    /// load=rho:0.2|util:0.9|lambda:0.1 (required; convention:value pairs)
    /// router=greedy|oddeven            (default greedy; also randomized,
    ///                                  westfirst)
    /// traffic=uniform|transpose|hotspot:0.2 (default uniform; also
    ///                                  nearby:<stop>, bernoulli:<p>,
    ///                                  bitrev, bitcomp, shuffle,
    ///                                  hotspot:<frac>:<node>; `dest=` is
    ///                                  the pre-PR-5 alias)
    /// src=uniform|hotspot:4[:<node>]   (shared source model, not an axis)
    /// faults=none|links:0.05           (default none; fault axis — each
    ///                                  entry is a [`FaultSpec`] token such
    ///                                  as links:<rate>, nodes:<rate>,
    ///                                  link:<id>, node:<id>, joined with
    ///                                  `+`, plus at:<t> and repair:<dt>)
    /// engine=auto|heap|calendar|sharded:<N> (default auto; a perf
    ///                                  ablation axis — single-core engines
    ///                                  are bit-identical, `sharded:<N>`
    ///                                  is the conservative parallel
    ///                                  engine)
    /// probes=nsys,maxq@10              (default none; shared telemetry
    ///                                  clause, not an axis — a comma-joined
    ///                                  subset of nsys, maxq, drops,
    ///                                  delivered, shards (or all) with an
    ///                                  optional @<dt> interval; probes
    ///                                  never change simulated results or
    ///                                  cell seeds)
    /// service=det|exp                  (default det)
    /// reps=2      seed=7               (defaults 1 and 1)
    /// horizon=2000 warmup=200          (fixed policy, the default)
    /// horizon=auto:1500:12000          (load-adaptive policy)
    /// saturated=true                   (default false)
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Parse`] for malformed input; expansion-time
    /// problems (empty axes, invalid or duplicate cells) surface from
    /// [`SweepSpec::expand`].
    pub fn parse(spec: &str) -> Result<Self, SweepError> {
        let mut sweep = SweepSpec::new();
        let bad = |msg: String| SweepError::Parse(msg);
        let f64_of = |key: &str, v: &str| -> Result<f64, SweepError> {
            v.parse::<f64>()
                .map_err(|_| bad(format!("bad number `{v}` for `{key}`")))
        };
        let mut fixed_horizon: Option<f64> = None;
        let mut warmup: Option<f64> = None;
        let mut auto_horizon: Option<(f64, f64)> = None;
        let mut seen_keys: std::collections::HashSet<&str> = std::collections::HashSet::new();
        for clause in spec.split_whitespace() {
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| bad(format!("expected `key=value`, got `{clause}`")))?;
            // `traffic=` and `dest=` spell the same axis.
            let canonical = if key == "dest" { "traffic" } else { key };
            if !seen_keys.insert(canonical) {
                return Err(bad(format!("duplicate clause `{key}=`")));
            }
            match key {
                "topo" => {
                    sweep.topologies = split_axis(value)
                        .map_err(bad)?
                        .into_iter()
                        .map(|head| TopologySpec::parse_head(head).map_err(|e| bad(format!("{e}"))))
                        .collect::<Result<_, _>>()?;
                }
                "load" => {
                    sweep.loads = split_axis(value)
                        .map_err(bad)?
                        .into_iter()
                        .map(|item| parse_load(item).map_err(bad))
                        .collect::<Result<_, _>>()?;
                }
                "router" => {
                    sweep.routers = split_axis(value)
                        .map_err(bad)?
                        .into_iter()
                        .map(|item| RouterSpec::parse_token(item).map_err(bad))
                        .collect::<Result<_, _>>()?;
                }
                "traffic" | "dest" => {
                    sweep.patterns = split_axis(value)
                        .map_err(bad)?
                        .into_iter()
                        .map(|item| PatternSpec::parse_token(item).map_err(bad))
                        .collect::<Result<_, _>>()?;
                }
                "src" => {
                    sweep.source = SourceSpec::parse_token(value).map_err(bad)?;
                }
                "faults" => {
                    sweep.faults = split_axis(value)
                        .map_err(bad)?
                        .into_iter()
                        .map(|item| FaultSpec::parse_token(item).map_err(bad))
                        .collect::<Result<_, _>>()?;
                }
                "engine" => {
                    sweep.engines = split_axis(value)
                        .map_err(bad)?
                        .into_iter()
                        .map(|item| EngineSpec::parse_str(item).map_err(bad))
                        .collect::<Result<_, _>>()?;
                }
                "probes" => {
                    sweep.probes = ProbeSpec::parse_token(value).map_err(bad)?;
                }
                "service" => {
                    sweep.service = match value {
                        "det" | "deterministic" => ServiceKind::Deterministic,
                        "exp" | "exponential" => ServiceKind::Exponential,
                        other => {
                            return Err(bad(format!(
                                "unknown service `{other}` (expected det or exp)"
                            )))
                        }
                    };
                }
                "reps" => {
                    sweep.reps = value
                        .parse::<usize>()
                        .map_err(|_| bad(format!("bad replication count `{value}`")))?;
                }
                "seed" => {
                    sweep.seed = value
                        .parse::<u64>()
                        .map_err(|_| bad(format!("bad seed `{value}`")))?;
                }
                "horizon" => {
                    if let Some(rest) = value.strip_prefix("auto:") {
                        let (base, cap) = rest.split_once(':').ok_or_else(|| {
                            bad(format!(
                                "auto horizon `{value}` must be `auto:<base>:<cap>`"
                            ))
                        })?;
                        auto_horizon =
                            Some((f64_of("horizon base", base)?, f64_of("horizon cap", cap)?));
                    } else if value == "auto" {
                        return Err(bad(
                            "auto horizon needs explicit sizes: `horizon=auto:<base>:<cap>`".into(),
                        ));
                    } else {
                        fixed_horizon = Some(f64_of("horizon", value)?);
                    }
                }
                "warmup" => warmup = Some(f64_of("warmup", value)?),
                "saturated" => {
                    sweep.track_saturated = match value {
                        "true" => true,
                        "false" => false,
                        other => {
                            return Err(bad(format!(
                                "bad boolean `{other}` for `saturated` (expected true or false)"
                            )))
                        }
                    };
                }
                other => return Err(bad(format!("unknown sweep key `{other}`"))),
            }
        }
        if sweep.topologies.is_empty() {
            return Err(bad("a sweep needs a `topo=` axis".into()));
        }
        if sweep.loads.is_empty() {
            return Err(bad("a sweep needs a `load=` axis".into()));
        }
        // A fixed and an auto horizon cannot coexist: both spell their
        // clause `horizon=`, so the duplicate-clause check above already
        // rejected that combination.
        sweep.horizon = match (auto_horizon, fixed_horizon, warmup) {
            (Some(_), _, Some(_)) => {
                return Err(bad("`warmup=` only applies to a fixed horizon".into()))
            }
            (Some((base, cap)), _, None) => HorizonPolicy::Auto { base, cap },
            (None, h, w) => {
                // An explicit horizon without a warmup keeps the default
                // 1:10 warmup ratio rather than the absolute default (a
                // 200-unit warmup would invalidate any shorter horizon).
                let horizon = h.unwrap_or(DEFAULT_HORIZON);
                HorizonPolicy::Fixed {
                    horizon,
                    warmup: w.unwrap_or(horizon * DEFAULT_WARMUP / DEFAULT_HORIZON),
                }
            }
        };
        Ok(sweep)
    }

    /// Renders the sweep as a grammar string [`SweepSpec::parse`] accepts;
    /// non-default clauses only (plus the mandatory axes).
    #[must_use]
    pub fn spec_string(&self) -> String {
        let mut out = String::from("topo=");
        out.push_str(
            &self
                .topologies
                .iter()
                .map(TopologySpec::spec_head)
                .collect::<Vec<_>>()
                .join("|"),
        );
        out.push_str(" load=");
        out.push_str(
            &self
                .loads
                .iter()
                .map(|l| match l {
                    Load::Lambda(v) => format!("lambda:{v}"),
                    Load::TableRho(v) => format!("rho:{v}"),
                    Load::Utilization(v) => format!("util:{v}"),
                })
                .collect::<Vec<_>>()
                .join("|"),
        );
        if self.routers != [RouterSpec::Greedy] {
            out.push_str(" router=");
            out.push_str(
                &self
                    .routers
                    .iter()
                    .map(|r| r.as_str())
                    .collect::<Vec<_>>()
                    .join("|"),
            );
        }
        if self.patterns != [PatternSpec::Uniform] {
            out.push_str(" traffic=");
            out.push_str(
                &self
                    .patterns
                    .iter()
                    .map(|p| {
                        p.spec_token()
                            .expect("matrix patterns are builder-only and cannot reach a sweep")
                    })
                    .collect::<Vec<_>>()
                    .join("|"),
            );
        }
        if !self.source.is_uniform() {
            if let Some(token) = self.source.spec_token() {
                out.push_str(&format!(" src={token}"));
            }
        }
        if self.faults != [None] {
            out.push_str(" faults=");
            out.push_str(
                &self
                    .faults
                    .iter()
                    .map(|f| {
                        f.as_ref()
                            .map_or_else(|| "none".into(), FaultSpec::spec_token)
                    })
                    .collect::<Vec<_>>()
                    .join("|"),
            );
        }
        if let Some(probes) = &self.probes {
            out.push_str(&format!(" probes={}", probes.spec_token()));
        }
        if self.engines != [EngineSpec::Auto] {
            out.push_str(" engine=");
            // Display, not `as_str`: `sharded:<N>` must keep its count to
            // round-trip through `EngineSpec::parse_str`.
            out.push_str(
                &self
                    .engines
                    .iter()
                    .map(|e| e.to_string())
                    .collect::<Vec<_>>()
                    .join("|"),
            );
        }
        if self.service == ServiceKind::Exponential {
            out.push_str(" service=exp");
        }
        if self.reps != 1 {
            out.push_str(&format!(" reps={}", self.reps));
        }
        if self.seed != 1 {
            out.push_str(&format!(" seed={}", self.seed));
        }
        match self.horizon {
            HorizonPolicy::Fixed { horizon, warmup }
                if horizon == DEFAULT_HORIZON && warmup == DEFAULT_WARMUP => {}
            HorizonPolicy::Fixed { horizon, warmup } => {
                out.push_str(&format!(" horizon={horizon} warmup={warmup}"));
            }
            HorizonPolicy::Auto { base, cap } => {
                out.push_str(&format!(" horizon=auto:{base}:{cap}"));
            }
        }
        if self.track_saturated {
            out.push_str(" saturated=true");
        }
        out
    }
}

/// `|`-separated axis entries. Empty entries (doubled or trailing `|`)
/// are rejected rather than silently dropped, matching the grammar's
/// otherwise strict handling of malformed input.
fn split_axis(value: &str) -> Result<Vec<&str>, String> {
    if value.split('|').any(str::is_empty) {
        return Err(format!(
            "empty axis entry in `{value}` (doubled or trailing `|`?)"
        ));
    }
    Ok(value.split('|').collect())
}

fn parse_load(item: &str) -> Result<Load, String> {
    let (conv, value) = item
        .split_once(':')
        .ok_or_else(|| format!("load `{item}` must be `<rho|util|lambda>:<value>`"))?;
    let v = value
        .parse::<f64>()
        .map_err(|_| format!("bad number `{value}` in load `{item}`"))?;
    match conv {
        "rho" => Ok(Load::TableRho(v)),
        "util" => Ok(Load::Utilization(v)),
        "lambda" => Ok(Load::Lambda(v)),
        other => Err(format!(
            "unknown load convention `{other}` (expected rho, util or lambda)"
        )),
    }
}

/// The utilization the auto horizon policy scales by: the nominal load
/// value for `rho`/`util` conventions (what the paper's tables index by),
/// the exact peak utilization for raw-λ loads.
fn cell_rho(sc: &Scenario) -> f64 {
    match sc.load {
        Load::TableRho(v) | Load::Utilization(v) => v,
        Load::Lambda(_) => sc.peak_utilization(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SweepSpec {
        SweepSpec::new()
            .topologies(vec![
                TopologySpec::Mesh { rows: 4, cols: 4 },
                TopologySpec::Torus { n: 4 },
            ])
            .loads(vec![Load::TableRho(0.2), Load::TableRho(0.8)])
    }

    #[test]
    fn expansion_counts_multiply_axes() {
        let sweep = small();
        assert_eq!(sweep.num_cells(), 4);
        let cells = sweep.expand().unwrap();
        assert_eq!(cells.len(), 4);
        // Topology-major order.
        assert_eq!(cells[0].topology, TopologySpec::Mesh { rows: 4, cols: 4 });
        assert_eq!(cells[1].topology, TopologySpec::Mesh { rows: 4, cols: 4 });
        assert_eq!(cells[2].topology, TopologySpec::Torus { n: 4 });
    }

    #[test]
    fn empty_axes_are_rejected() {
        assert!(matches!(
            SweepSpec::new().loads(vec![Load::Lambda(0.1)]).expand(),
            Err(SweepError::EmptyAxis(_))
        ));
        assert!(matches!(
            small().routers(Vec::new()).expand(),
            Err(SweepError::EmptyAxis(_))
        ));
        assert!(matches!(
            small().reps(0).expand(),
            Err(SweepError::EmptyAxis(_))
        ));
    }

    #[test]
    fn duplicate_cells_are_rejected() {
        let sweep = small().loads(vec![Load::TableRho(0.5), Load::TableRho(0.5)]);
        assert!(matches!(sweep.expand(), Err(SweepError::DuplicateCell(_))));
    }

    #[test]
    fn invalid_cells_are_rejected_with_the_offending_spec() {
        let sweep = small().routers(vec![RouterSpec::Randomized]);
        match sweep.expand() {
            Err(SweepError::InvalidCell(msg)) => {
                assert!(msg.contains("torus"), "{msg}");
            }
            other => panic!("expected InvalidCell, got {other:?}"),
        }
    }

    #[test]
    fn cell_seeds_are_deterministic_and_distinct() {
        let a = small().expand().unwrap();
        let b = small().expand().unwrap();
        let seeds: Vec<u64> = a.iter().map(|c| c.seed).collect();
        assert_eq!(seeds, b.iter().map(|c| c.seed).collect::<Vec<_>>());
        let unique: std::collections::HashSet<u64> = seeds.iter().copied().collect();
        assert_eq!(unique.len(), seeds.len(), "cell seeds collide: {seeds:?}");
        // A different sweep seed moves every cell seed.
        let c = small().seed(99).expand().unwrap();
        assert!(c.iter().zip(&a).all(|(x, y)| x.seed != y.seed));
        // Re-deriving the seed of an already-seeded cell reproduces the
        // value expand() assigned (the seed field itself is not hashed).
        let sweep = small();
        for cell in &a {
            assert_eq!(sweep.cell_seed(cell), cell.seed, "{}", cell.spec_string());
        }
    }

    #[test]
    fn auto_horizon_grows_with_load_and_caps() {
        let sweep = small().horizon(HorizonPolicy::Auto {
            base: 1_000.0,
            cap: 20_000.0,
        });
        let cells = sweep.expand().unwrap();
        // ρ = 0.2 → 1250, ρ = 0.8 → 5000.
        assert!(cells[1].horizon > cells[0].horizon);
        assert!((cells[0].horizon - 1_250.0).abs() < 1e-9);
        assert!((cells[1].horizon - 5_000.0).abs() < 1e-9);
        assert!((cells[0].warmup - cells[0].horizon / 5.0).abs() < 1e-12);
    }

    #[test]
    fn engine_axis_cells_share_seeds_and_parameters() {
        let sweep = small().engines(vec![EngineSpec::Auto, EngineSpec::Heap]);
        assert_eq!(sweep.num_cells(), 8);
        let cells = sweep.expand().unwrap();
        assert_eq!(cells.len(), 8);
        // Engine is the innermost axis; each adjacent pair differs only in
        // engine and shares the derived seed (engines are bit-identical, so
        // the axis is a pure wall-clock ablation).
        for pair in cells.chunks(2) {
            assert_eq!(pair[0].engine, EngineSpec::Auto);
            assert_eq!(pair[1].engine, EngineSpec::Heap);
            assert_eq!(pair[0].seed, pair[1].seed, "{}", pair[0].spec_string());
            let mut a = pair[0].clone();
            a.engine = pair[1].engine;
            assert_eq!(a, pair[1]);
        }
    }

    #[test]
    fn grammar_round_trips() {
        let sweeps = [
            small(),
            small().engines(vec![EngineSpec::Heap, EngineSpec::Calendar]),
            // The sharded engine's count must survive the round trip
            // (`engine=sharded:4`, not a bare `engine=sharded`).
            small().engines(vec![
                EngineSpec::Sharded { shards: 1 },
                EngineSpec::Sharded { shards: 4 },
            ]),
            small()
                .routers(vec![RouterSpec::Greedy, RouterSpec::Randomized])
                .reps(3)
                .seed(42),
            SweepSpec::new()
                .topologies(vec![TopologySpec::Hypercube { dim: 5 }])
                .loads(vec![Load::Utilization(0.5), Load::Lambda(0.25)])
                .patterns(vec![
                    PatternSpec::Uniform,
                    PatternSpec::Bernoulli { p: 0.25 },
                ])
                .service(ServiceKind::Exponential),
            SweepSpec::new()
                .topologies(vec![TopologySpec::Mesh { rows: 4, cols: 4 }])
                .loads(vec![Load::Utilization(0.3)])
                .patterns(vec![
                    PatternSpec::Uniform,
                    PatternSpec::Permutation {
                        kind: meshbound_routing::pattern::PermutationKind::Transpose,
                    },
                    PatternSpec::Hotspot {
                        node: None,
                        frac: 0.25,
                    },
                ])
                .source(SourceSpec::Hotspot {
                    node: Some(0),
                    weight: 4.0,
                }),
            small().horizon(HorizonPolicy::Auto {
                base: 1_500.0,
                cap: 12_000.0,
            }),
            small()
                .horizon(HorizonPolicy::Fixed {
                    horizon: 900.0,
                    warmup: 90.0,
                })
                .track_saturated(true),
        ];
        for sweep in sweeps {
            let spec = sweep.spec_string();
            let parsed = SweepSpec::parse(&spec).unwrap_or_else(|e| panic!("`{spec}`: {e}"));
            assert_eq!(parsed, sweep, "round trip failed for `{spec}`");
        }
    }

    #[test]
    fn grammar_rejects_malformed_specs() {
        for spec in [
            "",
            "load=rho:0.5",
            "topo=mesh:5",
            "topo=mesh:5 load=rho",
            "topo=mesh:5 load=rho:0.5 load=rho:0.2",
            "topo=ring:8 load=rho:0.5",
            "topo=mesh:5 load=watts:0.5",
            "topo=mesh:5 load=rho:0.5 horizon=auto",
            "topo=mesh:5 load=rho:0.5 horizon=auto:100:200 warmup=10",
            "topo=mesh:5 load=rho:0.5 horizon=100 horizon=auto:100:200",
            "topo=mesh:5||torus:8 load=rho:0.5",
            "topo=mesh:5 load=rho:0.2|",
            "topo=mesh:5 load=rho:0.5 jobs=4",
            "topo=mesh:5 load=rho:0.5 reps=none",
            "topo=mesh:5 load=rho:0.5 engine=quantum",
            "topo=mesh:5 load=rho:0.5 engine=heap|",
            "topo=mesh:5 load=rho:0.5 traffic=warp",
            "topo=mesh:5 load=rho:0.5 traffic=uniform dest=uniform",
            "topo=mesh:5 load=rho:0.5 src=rates",
        ] {
            assert!(SweepSpec::parse(spec).is_err(), "`{spec}` should not parse");
        }
    }

    #[test]
    fn traffic_axis_expands_and_round_trips() {
        let sweep = SweepSpec::parse(
            "topo=mesh:4 load=util:0.3 traffic=uniform|transpose|hotspot:0.25 \
             horizon=400 warmup=40",
        )
        .unwrap();
        assert_eq!(sweep.num_cells(), 3);
        let cells = sweep.expand().unwrap();
        assert_eq!(cells.len(), 3);
        assert_eq!(cells[0].traffic.pattern, PatternSpec::Uniform);
        assert!(matches!(
            cells[1].traffic.pattern,
            PatternSpec::Permutation { .. }
        ));
        assert!(matches!(
            cells[2].traffic.pattern,
            PatternSpec::Hotspot { .. }
        ));
        // Every cell's spec string round-trips through Scenario::parse.
        for cell in &cells {
            let parsed = Scenario::parse(&cell.spec_string()).unwrap();
            assert_eq!(&parsed, cell, "{}", cell.spec_string());
        }
        // And the sweep grammar round-trips through its own spec string.
        assert_eq!(SweepSpec::parse(&sweep.spec_string()).unwrap(), sweep);
        // `dest=` parses as an alias for `traffic=`.
        let legacy = SweepSpec::parse(
            "topo=mesh:4 load=util:0.3 dest=uniform|transpose|hotspot:0.25 \
             horizon=400 warmup=40",
        )
        .unwrap();
        assert_eq!(legacy, sweep);
    }

    #[test]
    fn faults_axis_expands_and_round_trips() {
        let sweep = SweepSpec::parse(
            "topo=mesh:4 load=rho:0.2 faults=none|links:0.05|links:0.1+at:50+repair:100 \
             horizon=400 warmup=40",
        )
        .unwrap();
        assert_eq!(sweep.num_cells(), 3);
        let cells = sweep.expand().unwrap();
        assert_eq!(cells[0].faults, None);
        assert!(cells[1].faults.is_some());
        assert!(cells[2].faults.is_some());
        // Healthy and faulted cells differ in spec, so their derived
        // seeds decorrelate.
        assert_ne!(cells[0].seed, cells[1].seed);
        // Every cell spec round-trips through Scenario::parse, and the
        // sweep grammar through its own spec string.
        for cell in &cells {
            assert_eq!(&Scenario::parse(&cell.spec_string()).unwrap(), cell);
        }
        assert_eq!(SweepSpec::parse(&sweep.spec_string()).unwrap(), sweep);
        // A default (all-healthy) axis emits no faults clause.
        assert!(!small().spec_string().contains("faults"));
        // Malformed fault tokens are parse errors; out-of-range rates and
        // an emptied axis surface at expansion.
        assert!(SweepSpec::parse("topo=mesh:4 load=rho:0.2 faults=warp:1").is_err());
        let bad_rate = SweepSpec::parse("topo=mesh:4 load=rho:0.2 faults=links:2.0").unwrap();
        assert!(matches!(bad_rate.expand(), Err(SweepError::InvalidCell(_))));
        assert!(matches!(
            small().faults(Vec::new()).expand(),
            Err(SweepError::EmptyAxis(_))
        ));
    }

    #[test]
    fn healthy_cell_seeds_are_unchanged_by_the_faults_axis_default() {
        // `faults` defaults to `[None]`, which must leave every pre-fault
        // cell spec string — and therefore every derived seed — untouched.
        let cells = small().expand().unwrap();
        for cell in &cells {
            assert!(
                !cell.spec_string().contains("faults"),
                "{}",
                cell.spec_string()
            );
        }
    }

    #[test]
    fn probes_clause_expands_and_round_trips() {
        let sweep = SweepSpec::parse(
            "topo=mesh:4 load=rho:0.2|rho:0.6 probes=nsys,maxq@10 horizon=400 warmup=40",
        )
        .unwrap();
        let probes = sweep.probes.unwrap();
        assert!(probes.nsys && probes.maxq && !probes.shards);
        assert_eq!(probes.every, Some(10.0));
        // The shared clause reaches every cell, and every cell spec
        // round-trips through Scenario::parse.
        let cells = sweep.expand().unwrap();
        for cell in &cells {
            assert_eq!(cell.probes, Some(probes));
            assert!(cell.spec_string().contains("probes=nsys,maxq@10"));
            assert_eq!(&Scenario::parse(&cell.spec_string()).unwrap(), cell);
        }
        // The sweep grammar round-trips through its own spec string.
        assert_eq!(SweepSpec::parse(&sweep.spec_string()).unwrap(), sweep);
        // `probes=none` spells the default and emits no clause.
        let off =
            SweepSpec::parse("topo=mesh:4 load=rho:0.2|rho:0.6 probes=none horizon=400 warmup=40")
                .unwrap();
        assert_eq!(off.probes, None);
        assert!(!off.spec_string().contains("probes"));
        // Malformed probe tokens are parse errors.
        assert!(SweepSpec::parse("topo=mesh:4 load=rho:0.2 probes=speed").is_err());
        assert!(SweepSpec::parse("topo=mesh:4 load=rho:0.2 probes=nsys@0").is_err());
    }

    #[test]
    fn cell_seeds_are_unchanged_by_probes() {
        // Telemetry never changes the physics, so a probed sweep must
        // replay the exact sample paths — i.e. the exact cell seeds — of
        // its unprobed twin, and default cells carry no probes clause.
        let plain = small().expand().unwrap();
        let probed = small()
            .probes(ProbeSpec::parse_token("all").unwrap())
            .expand()
            .unwrap();
        for (a, b) in plain.iter().zip(&probed) {
            assert_eq!(a.seed, b.seed, "{}", a.spec_string());
            assert!(!a.spec_string().contains("probes"));
            assert!(b.spec_string().contains("probes="));
        }
    }

    #[test]
    fn matrix_patterns_cannot_enter_a_sweep() {
        let sweep = small().patterns(vec![PatternSpec::Matrix {
            rows: vec![vec![1.0; 16]; 16],
        }]);
        assert!(matches!(sweep.expand(), Err(SweepError::InvalidCell(_))));
    }

    #[test]
    fn explicit_horizon_scales_the_default_warmup() {
        // `horizon=100` without `warmup=` must not keep the absolute
        // 200-unit default (which would invalidate every cell); the 1:10
        // ratio applies instead, and the result round-trips.
        let sweep = SweepSpec::parse("topo=mesh:4 load=rho:0.2 horizon=100").unwrap();
        assert_eq!(
            sweep.horizon,
            HorizonPolicy::Fixed {
                horizon: 100.0,
                warmup: 10.0
            }
        );
        assert!(sweep.expand().is_ok());
        assert_eq!(SweepSpec::parse(&sweep.spec_string()).unwrap(), sweep);
    }

    #[test]
    fn parsed_and_built_sweeps_expand_identically() {
        let parsed = SweepSpec::parse("topo=mesh:4|torus:4 load=rho:0.2|rho:0.8").unwrap();
        let built = small();
        assert_eq!(parsed, built);
        let a = parsed.expand().unwrap();
        let b = built.expand().unwrap();
        assert_eq!(a, b);
    }
}
