//! Value-generation strategies.

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Blanket impl so `&strategy` also works as a strategy.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    // Whole domain: truncate 64 uniform bits.
                    rng.rng().gen::<u64>() as $t
                } else if hi == <$t>::MAX {
                    // `hi + 1` would overflow; shift the window down one
                    // instead so the endpoint stays reachable.
                    rng.rng().gen_range(lo - 1..hi) + 1
                } else {
                    rng.rng().gen_range(lo..hi + 1)
                }
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.rng().gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "whole domain" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The canonical whole-domain strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.rng().gen()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.rng().gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    /// Uniform in `[0, 1)` — unlike real proptest this never yields NaN or
    /// infinities, which is what every in-tree property wants anyway.
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.rng().gen()
    }
}

#[cfg(test)]
mod tests {
    use super::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn inclusive_range_reaches_max_endpoint() {
        let mut rng = TestRng::for_test("inclusive_range_reaches_max_endpoint");
        let mut saw_max = false;
        let mut saw_min = false;
        for _ in 0..2000 {
            let v = (u8::MAX - 3..=u8::MAX).generate(&mut rng);
            assert!(v >= u8::MAX - 3);
            saw_max |= v == u8::MAX;
            let w = (i8::MIN..=i8::MAX).generate(&mut rng);
            saw_min |= w == i8::MIN;
        }
        assert!(saw_max, "u8::MAX endpoint never generated");
        assert!(saw_min, "i8::MIN never generated from the full domain");
    }
}
