//! Regenerates Table I (simulation vs M/D/1 estimate) and times one cell.
//!
//! The full quick-scale table is printed once at startup; the Criterion
//! measurement then times the lightest and the heaviest cells so the
//! regeneration cost is tracked over time.

use criterion::{criterion_group, criterion_main, Criterion};
use meshbound::experiments::{table1, Scale};
use meshbound::{Load, Scenario};

fn bench(c: &mut Criterion) {
    let scale = meshbound_bench::bench_scale();
    let rows = table1::run(&scale);
    println!("\n{}", table1::render(&rows));

    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    for (n, rho) in [(5usize, 0.2f64), (10, 0.9)] {
        group.bench_function(format!("cell_n{n}_rho{rho}"), |b| {
            b.iter(|| {
                Scenario::mesh(n)
                    .load(Load::TableRho(rho))
                    .horizon(Scale::quick().horizon(rho) / 4.0)
                    .warmup(Scale::quick().warmup(rho) / 4.0)
                    .seed(42)
                    .run()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
