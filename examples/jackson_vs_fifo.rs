//! The comparison systems behind the bounds (§3, §4.3).
//!
//! ```text
//! cargo run --release --example jackson_vs_fifo
//! ```
//!
//! Simulates, at one operating point, all four systems the paper reasons
//! about and verifies the ordering its theorems assert:
//!
//! 1. the standard FIFO network with deterministic transmission,
//! 2. the processor-sharing network (Theorem 1's "delayed" system),
//! 3. the Jackson network (exponential transmission, §3.3) — equal in
//!    equilibrium to the PS network and to the product form,
//! 4. the copy ("rushed") system of Theorem 10, whose population equals
//!    `Σ_e N_{M/D/1}(λ_e)` and is at most `d̄·E[N_FIFO]`.

use meshbound::queueing::remaining::dbar_closed;
use meshbound::queueing::single::md1_mean_number;
use meshbound::routing::dest::UniformDest;
use meshbound::routing::rates::mesh_thm6_rates;
use meshbound::routing::GreedyXY;
use meshbound::sim::copysys::CopySystemSim;
use meshbound::sim::network::NetConfig;
use meshbound::sim::ps::PsNetworkSim;
use meshbound::sim::ServiceKind;
use meshbound::topology::Mesh2D;
use meshbound::{Load, Scenario};
use meshbound_repro::banner;

fn main() {
    let n = 6;
    let rho: f64 = 0.7;
    let lambda = 4.0 * rho / n as f64;
    let mesh = Mesh2D::square(n);
    // The FIFO and Jackson systems go through the unified Scenario front
    // door; the PS and copy comparison systems are simulator internals the
    // paper's proofs reason about, so they use their dedicated engines
    // with the same NetConfig.
    let scenario = Scenario::mesh(n)
        .load(Load::TableRho(rho))
        .horizon(40_000.0)
        .warmup(4_000.0)
        .seed(99);
    let cfg = NetConfig {
        lambda,
        horizon: 40_000.0,
        warmup: 4_000.0,
        seed: 99,
        ..NetConfig::default()
    };

    banner(&format!("n = {n}, Table-ρ = {rho} (λ = {lambda:.3})"));

    let fifo = scenario.clone().run();
    println!(
        "1. FIFO, deterministic service: E[N] = {:>8.2}   T = {:.3}",
        fifo.time_avg_n, fifo.avg_delay
    );

    let ps = PsNetworkSim::new(mesh.clone(), GreedyXY, UniformDest, cfg.clone()).run();
    println!(
        "2. processor sharing:           E[N] = {:>8.2}   T = {:.3}",
        ps.time_avg_n, ps.avg_delay
    );

    let jackson = scenario.service(ServiceKind::Exponential).run();
    println!(
        "3. Jackson (exp. service):      E[N] = {:>8.2}   T = {:.3}",
        jackson.time_avg_n, jackson.avg_delay
    );

    let rates = mesh_thm6_rates(&mesh, lambda);
    let product_form: f64 = rates.iter().map(|&l| l / (1.0 - l)).sum();
    println!("   product form Σ λe/(1−λe):    E[N] = {product_form:>8.2}");

    let copies = CopySystemSim::new(mesh.clone(), GreedyXY, UniformDest, cfg).run();
    let md1_sum: f64 = rates.iter().map(|&l| md1_mean_number(l)).sum();
    println!(
        "4. copy system (Thm 10):        E[N̄] = {:>7.2}   (Σ M/D/1 = {md1_sum:.2})",
        copies.time_avg_copies
    );

    banner("Orderings the theorems assert");
    let checks = [
        (
            "Thm 5:  E[N_FIFO] ≤ E[N_PS]",
            fifo.time_avg_n <= ps.time_avg_n,
        ),
        (
            "§3.3:   E[N_PS] ≈ E[N_Jackson] ≈ product form",
            (ps.time_avg_n - product_form).abs() / product_form < 0.1
                && (jackson.time_avg_n - product_form).abs() / product_form < 0.1,
        ),
        (
            "Thm 10: E[N̄] = Σ M/D/1 (linearity under dependence)",
            (copies.time_avg_copies - md1_sum).abs() / md1_sum < 0.1,
        ),
        (
            "Thm 12: E[N̄] ≤ d̄·E[N_FIFO]",
            copies.time_avg_copies <= dbar_closed(n) * fifo.time_avg_n,
        ),
        (
            "Lemma 9: Σ M/M/1 ≤ 2·Σ M/D/1",
            product_form <= 2.0 * md1_sum,
        ),
    ];
    for (label, ok) in checks {
        println!("{}  {label}", if ok { "✓" } else { "✗" });
    }
}
