//! The `d`-dimensional hypercube (§4.5).

use crate::ids::{EdgeId, NodeId};
use crate::traits::Topology;
use serde::{Deserialize, Serialize};

/// A directed hypercube of dimension `d`: nodes are the bit-strings
/// `0..2^d`, and each node has one outgoing edge per dimension to the
/// neighbour differing in that bit.
///
/// Edge layout: the edge from node `u` across dimension `i` has id
/// `u·d + i`, so per-node out-edges are contiguous.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hypercube {
    dim: u32,
}

impl Hypercube {
    /// Creates a hypercube of dimension `d`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ d ≤ 26` (keeping ids within `u32`).
    #[must_use]
    pub fn new(d: usize) -> Self {
        assert!((1..=26).contains(&d), "hypercube dimension out of range");
        Self { dim: d as u32 }
    }

    /// Dimension `d`.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim as usize
    }

    /// The edge from `u` across dimension `i` (flipping bit `i`).
    #[inline]
    #[must_use]
    pub fn edge_across(&self, u: NodeId, i: usize) -> EdgeId {
        debug_assert!(i < self.dim());
        EdgeId(u.0 * self.dim + i as u32)
    }

    /// The dimension an edge crosses.
    #[inline]
    #[must_use]
    pub fn edge_dimension(&self, e: EdgeId) -> usize {
        (e.0 % self.dim) as usize
    }

    /// Hamming distance between two nodes.
    #[inline]
    #[must_use]
    pub fn distance(&self, a: NodeId, b: NodeId) -> usize {
        (a.0 ^ b.0).count_ones() as usize
    }

    /// Lowest differing dimension between `from` and `to`, i.e. the next
    /// dimension canonical-order greedy routing corrects; `None` if equal.
    #[inline]
    #[must_use]
    pub fn next_differing_dim(&self, from: NodeId, to: NodeId) -> Option<usize> {
        let x = from.0 ^ to.0;
        if x == 0 {
            None
        } else {
            Some(x.trailing_zeros() as usize)
        }
    }
}

impl Topology for Hypercube {
    fn num_nodes(&self) -> usize {
        1usize << self.dim
    }

    fn num_edges(&self) -> usize {
        self.num_nodes() * self.dim()
    }

    fn edge_source(&self, e: EdgeId) -> NodeId {
        NodeId(e.0 / self.dim)
    }

    fn edge_target(&self, e: EdgeId) -> NodeId {
        let u = e.0 / self.dim;
        let i = e.0 % self.dim;
        NodeId(u ^ (1 << i))
    }

    fn out_edges_into(&self, v: NodeId, out: &mut Vec<EdgeId>) {
        out.clear();
        for i in 0..self.dim() {
            out.push(self.edge_across(v, i));
        }
    }

    fn label(&self) -> String {
        format!("hypercube d={}", self.dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counts() {
        let h = Hypercube::new(4);
        assert_eq!(h.num_nodes(), 16);
        assert_eq!(h.num_edges(), 64);
    }

    #[test]
    fn edges_flip_exactly_one_bit() {
        let h = Hypercube::new(5);
        for e in h.edges() {
            let s = h.edge_source(e);
            let t = h.edge_target(e);
            assert_eq!((s.0 ^ t.0).count_ones(), 1);
            assert_eq!(h.distance(s, t), 1);
        }
    }

    #[test]
    fn reverse_edge_exists() {
        let h = Hypercube::new(3);
        for e in h.edges() {
            let s = h.edge_source(e);
            let t = h.edge_target(e);
            let back = h.find_edge(t, s);
            assert!(back.is_some());
            assert_ne!(back, Some(e));
        }
    }

    #[test]
    fn canonical_routing_corrects_lowest_bit_first() {
        let h = Hypercube::new(4);
        let from = NodeId(0b0000);
        let to = NodeId(0b1010);
        assert_eq!(h.next_differing_dim(from, to), Some(1));
        let e = h.edge_across(from, 1);
        let mid = h.edge_target(e);
        assert_eq!(h.next_differing_dim(mid, to), Some(3));
        assert_eq!(h.next_differing_dim(to, to), None);
    }

    proptest! {
        #[test]
        fn prop_route_length_is_hamming(d in 2usize..8, a in 0u32..256, b in 0u32..256) {
            let h = Hypercube::new(d);
            let mask = (1u32 << d) - 1;
            let mut cur = NodeId(a & mask);
            let to = NodeId(b & mask);
            let mut hops = 0;
            while let Some(i) = h.next_differing_dim(cur, to) {
                cur = h.edge_target(h.edge_across(cur, i));
                hops += 1;
                prop_assert!(hops <= d);
            }
            prop_assert_eq!(hops, h.distance(NodeId(a & mask), to));
            prop_assert_eq!(cur, to);
        }
    }
}
