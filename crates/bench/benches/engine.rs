//! Simulator-engine ablations: event-queue implementations, raw simulation
//! throughput, and the engine comparison that feeds `BENCH_engine.json`.
//!
//! Running this bench always measures events/sec for every [`EngineSpec`]
//! on the Table-I mesh workload (ρ = 0.8), asserts the engines agree bit
//! for bit, and writes a schema-versioned JSON report to
//! `$ENGINE_BENCH_OUT` (default `BENCH_engine.json`) — the first point of
//! the perf trajectory CI archives. Pass `-- --smoke` for the reduced CI
//! variant that skips the criterion timing groups.

use criterion::{BatchSize, Criterion, Throughput};
use meshbound::sim::events::{CalendarQueue, EventQueue, HeapQueue};
use meshbound::{EngineSpec, Load, Scenario};
use serde::Serialize;

/// Schema identifier of the JSON report; bump on layout changes.
const SCHEMA: &str = "meshbound.engine-bench/v1";

#[derive(Serialize)]
struct EngineBenchReport {
    schema: String,
    /// Human description of the measured workload.
    workload: String,
    /// One row per (mesh size, engine).
    rows: Vec<Row>,
    /// Headline number: `Auto` vs `Heap` events/sec at the largest size.
    speedup_auto_vs_heap: f64,
}

#[derive(Serialize, Clone)]
struct Row {
    engine: String,
    n: usize,
    rho: f64,
    horizon: f64,
    /// Deterministic event count (identical across engines by contract).
    events_processed: u64,
    /// Best-of-reps simulator throughput.
    events_per_sec: f64,
    /// This row's events/sec over the heap row's at the same size.
    speedup_vs_heap: f64,
}

/// The cross-engine comparison: measures all engines at several sizes,
/// asserts bit-identity, and assembles the JSON report.
///
/// Reps are *interleaved* — every round measures each engine once — so
/// machine-noise phases (a busy neighbor, a thermal dip) hit all engines
/// alike instead of biasing whichever ran during the bad stretch; the
/// best round per engine is reported.
fn engine_comparison(smoke: bool) -> EngineBenchReport {
    // Horizons track real workloads (the Scenario default is 2000): engine
    // setup is one-time, so unrealistically short runs would under-credit
    // (or over-credit) whichever engine amortizes differently.
    let sizes: &[(usize, f64)] = if smoke {
        &[(5, 200.0), (10, 400.0)]
    } else {
        &[(5, 500.0), (10, 1_000.0), (20, 1_000.0)]
    };
    let engines = [EngineSpec::Heap, EngineSpec::Calendar, EngineSpec::Auto];
    let reps = if smoke { 3 } else { 5 };
    let mut rows = Vec::new();
    let mut headline = 0.0;
    for &(n, horizon) in sizes {
        let scenario = |engine: EngineSpec| {
            Scenario::mesh(n)
                .load(Load::TableRho(0.8))
                .horizon(horizon)
                .warmup(horizon / 5.0)
                .seed(13)
                .engine(engine)
        };
        let mut best = [0.0f64; 3];
        let mut fingerprint = [(0u64, 0u64); 3];
        for _ in 0..reps {
            for (slot, &engine) in engines.iter().enumerate() {
                let res = scenario(engine).run();
                best[slot] = best[slot].max(res.events_per_sec);
                fingerprint[slot] = (res.events_processed, res.avg_delay.to_bits());
            }
        }
        for slot in 1..engines.len() {
            assert_eq!(
                fingerprint[slot], fingerprint[0],
                "engine {} diverged from heap on mesh n={n}",
                engines[slot]
            );
        }
        let heap_eps = best[0];
        for (slot, &engine) in engines.iter().enumerate() {
            let speedup = best[slot] / heap_eps;
            if engine == EngineSpec::Auto {
                headline = speedup; // last size wins: the headline scale
            }
            rows.push(Row {
                engine: engine.as_str().to_string(),
                n,
                rho: 0.8,
                horizon,
                events_processed: fingerprint[slot].0,
                events_per_sec: best[slot],
                speedup_vs_heap: speedup,
            });
        }
    }
    EngineBenchReport {
        schema: SCHEMA.to_string(),
        workload: "Table-I square mesh, rho=0.8, seed 13".to_string(),
        rows,
        speedup_auto_vs_heap: headline,
    }
}

/// Classic hold-model: pop one event, push one event at t + U(0,2).
fn hold_model<Q: EventQueue<u32>>(queue: &mut Q, ops: usize) {
    let mut x = 0x2545_F491_4F6C_DD1Du64;
    let mut rnd = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        (x >> 11) as f64 / (1u64 << 53) as f64
    };
    for i in 0..256u32 {
        queue.schedule(rnd() * 2.0, i);
    }
    for _ in 0..ops {
        let (t, id) = queue.next().unwrap();
        queue.schedule(t + rnd() * 2.0, id);
    }
}

fn criterion_groups(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue_hold_model");
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("binary_heap", |b| {
        b.iter_batched(
            HeapQueue::<u32>::new,
            |mut q| hold_model(&mut q, 100_000),
            BatchSize::SmallInput,
        );
    });
    group.bench_function("calendar_queue", |b| {
        b.iter_batched(
            || CalendarQueue::<u32>::new(64, 0.125),
            |mut q| hold_model(&mut q, 100_000),
            BatchSize::SmallInput,
        );
    });
    group.finish();

    let mut group = c.benchmark_group("network_sim_throughput");
    group.sample_size(10);
    for n in [5usize, 10, 20] {
        for engine in EngineSpec::ALL {
            group.bench_function(format!("mesh_n{n}_rho0.8_{engine}"), |b| {
                b.iter(|| {
                    Scenario::mesh(n)
                        .load(Load::TableRho(0.8))
                        .horizon(500.0)
                        .warmup(100.0)
                        .seed(13)
                        .engine(engine)
                        .run()
                });
            });
        }
    }
    group.finish();
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let report = engine_comparison(smoke);
    println!("engine comparison ({}):", report.workload);
    for row in &report.rows {
        println!(
            "  mesh n={:<3} {:<9} {:>10.0} events/s  ({:.2}x vs heap, {} events)",
            row.n, row.engine, row.events_per_sec, row.speedup_vs_heap, row.events_processed
        );
    }
    println!(
        "headline: auto vs heap {:.2}x at the largest size",
        report.speedup_auto_vs_heap
    );
    let out = std::env::var("ENGINE_BENCH_OUT").unwrap_or_else(|_| "BENCH_engine.json".to_string());
    match std::fs::write(&out, serde::json::to_string_pretty(&report)) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => {
            // The report is this binary's entire point in CI: fail loudly
            // rather than letting the smoke step pass without its artifact.
            eprintln!("cannot write {out}: {e}");
            std::process::exit(1);
        }
    }
    if !smoke {
        let mut c = Criterion::default();
        criterion_groups(&mut c);
    }
}
