//! One-stop analytic report for a scenario (topology + load).
//!
//! [`BoundsReport::compute_for`] fills the report for any
//! [`Scenario`] — mesh, torus, hypercube, butterfly or `k`-d mesh — using
//! the closed forms in `meshbound_queueing::bounds` where the paper derives
//! them and exact rate enumeration otherwise.
//! [`BoundsReport::compute`] remains as the square-mesh shorthand.

use meshbound_queueing::bounds::estimate::{estimate_from_rates, paper_queue_number};
use meshbound_queueing::bounds::{
    butterfly as bf_bounds, estimate, hypercube as hc_bounds, lower, torus as torus_bounds, upper,
};
use meshbound_queueing::load::{mesh_stability_threshold, optimal_stability_threshold, Load};
use meshbound_queueing::remaining::{dbar_closed, light_load_r, sbar_closed};
use meshbound_queueing::single::md1_mean_number;
use meshbound_sim::{DropCounts, PatternSpec, Scenario, TopologySpec};
use meshbound_topology::Mesh2D;
use serde::{Deserialize, Serialize};

/// Degradation summary of a faulted scenario: how far delivery falls
/// short of the healthy model and why.
///
/// The analytic half (`dead_edges`, `reachable_fraction`,
/// `post_fault_lambda_star`) is filled by
/// [`BoundsReport::compute_for`] from the materialized fault plan at the
/// scenario's own seed. The measured half (`delivered_fraction`,
/// `dropped`) starts zeroed and is populated by the sweep executor from
/// the simulated replications — the analytic report alone cannot know
/// it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradationReport {
    /// Fraction of post-warmup generated packets actually delivered
    /// (simulated; 0 until a simulation fills it in).
    pub delivered_fraction: f64,
    /// Per-cause drop tally over the simulated replications (zeroed until
    /// a simulation fills it in).
    pub dropped: DropCounts,
    /// Distinct edges the fault plan takes down at least once.
    pub dead_edges: usize,
    /// Fraction of sampled source–destination pairs the router still
    /// connects with every failing edge permanently dead (worst case
    /// over the timeline — repairs only help).
    pub reachable_fraction: f64,
    /// First-order post-fault stability estimate: the healthy `λ*`
    /// scaled by [`reachable_fraction`](Self::reachable_fraction). The
    /// surviving traffic concentrates on fewer paths, so the true
    /// threshold can sit below this value; it is an upper estimate, not
    /// a bound.
    pub post_fault_lambda_star: f64,
}

/// Every closed-form quantity the paper derives for a scenario at a given
/// load, gathered in one structure.
///
/// Use [`BoundsReport::compute_for`] to fill it for any [`Scenario`],
/// [`BoundsReport::compute`] as the square-mesh shorthand, and
/// [`BoundsReport::to_text`] for a human-readable summary. Theorem-specific
/// fields that the paper does not derive for a topology are set to `0.0`
/// (they are vacuous lower bounds, so `lower_best` stays correct); the
/// torus has no proven upper bound (§6's open problem), so its `upper` is
/// `∞`. Simulated values are *not* included here — see
/// [`crate::experiments`] and [`Scenario::run`] for the measurement
/// harnesses.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BoundsReport {
    /// Topology label, e.g. `"array 10x10"` or `"torus 8x8"`.
    pub label: String,
    /// Characteristic size: array side `n`, torus side, hypercube dimension,
    /// butterfly levels, or the largest extent of a `k`-d mesh.
    pub n: usize,
    /// Total node count.
    pub nodes: usize,
    /// Per-source Poisson arrival rate.
    pub lambda: f64,
    /// Load in Table I's convention (`λn/4`) on the square mesh; equal to
    /// [`BoundsReport::utilization`] on every other topology.
    pub table_rho: f64,
    /// Peak edge utilization (`max_e λ_e`).
    pub utilization: f64,
    /// Mean greedy route length over the destination distribution.
    pub mean_distance: f64,
    /// Theorem 5/7 upper bound on the mean delay (`∞` for the torus, where
    /// the upper bound is §6's open problem).
    pub upper: f64,
    /// §4.2 estimate, paper's printed form (Table I "Est.").
    pub est_paper: f64,
    /// §4.2 estimate, textbook M/D/1 form.
    pub est_md1: f64,
    /// Theorem 8 lower bound (any routing; square mesh only, else 0).
    pub lower_thm8_any: f64,
    /// Theorem 8 lower bound (oblivious routing; square mesh only, else 0).
    pub lower_thm8_oblivious: f64,
    /// Theorem 10 lower bound (copy network, max route length `d`).
    pub lower_thm10: f64,
    /// Theorem 12 lower bound (Markovian, max expected remaining distance
    /// `d̄`; 0 where `d̄` is not derived).
    pub lower_thm12: f64,
    /// Theorem 14 heavy-traffic lower bound (saturated edges; square mesh
    /// only, else 0).
    pub lower_thm14: f64,
    /// Trivial bound `n̄`.
    pub lower_trivial: f64,
    /// Best lower bound (max of the above).
    pub lower_best: f64,
    /// Maximum expected remaining distance `d̄` (0 where not derived).
    pub dbar: f64,
    /// Maximum expected remaining saturated distance `s̄` (square mesh only,
    /// else 0).
    pub sbar: f64,
    /// Light-load value of Table II's ratio `r` (square mesh only, else 0).
    pub light_load_r: f64,
    /// Stability threshold `λ*` of the topology's routing pattern.
    pub stability_lambda: f64,
    /// Stability threshold with optimal capacity allocation, `6/(n+1)`
    /// (square mesh only, else 0).
    pub optimal_stability_lambda: f64,
    /// Number of silent sources — all-zero traffic-matrix rows that
    /// generate nothing. Zero for every non-matrix workload. Surfaced so a
    /// mostly-zero matrix cannot masquerade as a healthy all-sources
    /// workload (the offered load concentrates on the speaking rows).
    pub silent_sources: usize,
    /// Degradation summary when the scenario injects faults (`None` for
    /// healthy scenarios — every field above describes the fault-free
    /// topology either way).
    pub degradation: Option<DegradationReport>,
}

impl BoundsReport {
    /// Computes the full report for an `n × n` array at the given load —
    /// the mesh shorthand for [`BoundsReport::compute_for`].
    #[must_use]
    pub fn compute(n: usize, load: Load) -> Self {
        let lambda = load.lambda(n);
        let rho_util = load.utilization(n);
        Self {
            label: format!("array {n}x{n}"),
            n,
            nodes: n * n,
            lambda,
            table_rho: lambda * n as f64 / 4.0,
            utilization: rho_util,
            mean_distance: Mesh2D::square(n).mean_distance(),
            upper: upper::upper_bound_delay(n, lambda),
            est_paper: estimate::estimate_paper(n, lambda),
            est_md1: estimate::estimate_md1(n, lambda),
            lower_thm8_any: lower::thm8_any_routing(n, rho_util),
            lower_thm8_oblivious: lower::thm8_oblivious(n, rho_util),
            lower_thm10: lower::thm10_lower(n, lambda),
            lower_thm12: lower::thm12_lower(n, lambda),
            lower_thm14: lower::thm14_lower(n, lambda),
            lower_trivial: lower::trivial_lower(n),
            lower_best: lower::best_lower_bound(n, lambda),
            dbar: dbar_closed(n),
            sbar: sbar_closed(n),
            light_load_r: light_load_r(n),
            stability_lambda: mesh_stability_threshold(n),
            optimal_stability_lambda: optimal_stability_threshold(n),
            silent_sources: 0,
            degradation: None,
        }
    }

    /// Computes the report for any [`Scenario`], dispatching to the
    /// topology's closed forms where the paper derives them (§4.5
    /// hypercube and butterfly, §6 torus — all under the standard uniform
    /// workload) and to exact rate enumeration otherwise: rectangular
    /// meshes, nearby destinations, randomized greedy, `k`-d meshes, and
    /// every [`TrafficSpec`](meshbound_sim::TrafficSpec) workload
    /// (permutations, hotspots, matrices, weighted sources), whose bounds
    /// are resolved against the pattern's actual edge-rate vector.
    ///
    /// # Panics
    ///
    /// Panics if [`Scenario::validate`] rejects the scenario.
    #[must_use]
    pub fn compute_for(sc: &Scenario) -> Self {
        if let Err(e) = sc.validate() {
            panic!("{e}");
        }
        let uniform_sources = sc.traffic.source.is_uniform();
        let mut report = match (&sc.topology, &sc.traffic.pattern) {
            (TopologySpec::Mesh { rows, cols }, PatternSpec::Uniform)
                if rows == cols
                    && uniform_sources
                    && sc.router == meshbound_sim::RouterSpec::Greedy =>
            {
                Self::compute(*rows, Load::Lambda(sc.lambda()))
            }
            // The torus closed forms describe greedy wraparound routing;
            // adaptive routers fall through to the rate-enumeration
            // fallback, whose λ* comes from their fixed-point rate vector.
            (TopologySpec::Torus { n }, PatternSpec::Uniform)
                if uniform_sources && !sc.router.is_adaptive() =>
            {
                Self::torus_report(sc, *n)
            }
            (
                TopologySpec::Hypercube { dim },
                pattern @ (PatternSpec::Uniform | PatternSpec::Bernoulli { .. }),
            ) if uniform_sources => {
                let p = match pattern {
                    PatternSpec::Bernoulli { p } => *p,
                    _ => 0.5,
                };
                Self::hypercube_report(sc, *dim, p)
            }
            // The butterfly's workload is always uniform output rows;
            // only non-uniform *sources* fall through to enumeration.
            (TopologySpec::Butterfly { k }, _) if uniform_sources => Self::butterfly_report(sc, *k),
            _ => Self::generic_report(sc),
        };
        // Every bound above describes the fault-free topology; a fault
        // spec additionally gets the surviving-reachability analysis.
        // The measured half of the degradation (delivered fraction,
        // drops) is filled in by whoever runs the simulation.
        if let Some((dead_edges, reachable_fraction)) = sc.fault_reachability() {
            report.degradation = Some(DegradationReport {
                delivered_fraction: 0.0,
                dropped: DropCounts::default(),
                dead_edges,
                reachable_fraction,
                post_fault_lambda_star: report.stability_lambda * reachable_fraction,
            });
        }
        report
    }

    /// §6 torus: Theorem 10's copy bound applies (it needs neither layering
    /// nor the Markov property), the upper bound is the paper's open
    /// problem, and the independence estimate is computed from the exact
    /// wraparound rates.
    fn torus_report(sc: &Scenario, n: usize) -> Self {
        let lambda = sc.lambda();
        let rates = sc.edge_rates();
        let gamma = sc.total_arrival();
        Self {
            label: sc.label(),
            n,
            nodes: sc.topology.num_nodes(),
            lambda,
            table_rho: sc.peak_utilization(),
            utilization: sc.peak_utilization(),
            mean_distance: sc.mean_distance(),
            upper: f64::INFINITY,
            est_paper: estimate_from_rates(&rates, gamma, paper_queue_number),
            est_md1: estimate_from_rates(&rates, gamma, md1_mean_number),
            lower_thm8_any: 0.0,
            lower_thm8_oblivious: 0.0,
            lower_thm10: torus_bounds::thm10_lower(n, lambda),
            lower_thm12: 0.0,
            lower_thm14: 0.0,
            lower_trivial: torus_bounds::trivial_lower(n),
            lower_best: torus_bounds::best_lower_bound(n, lambda),
            dbar: 0.0,
            sbar: 0.0,
            light_load_r: 0.0,
            stability_lambda: torus_bounds::stability_threshold(n),
            optimal_stability_lambda: 0.0,
            silent_sources: sc.silent_sources(),
            degradation: None,
        }
    }

    /// §4.5 hypercube with per-bit flip probability `p`: every edge carries
    /// `λp`, so every quantity has a closed form.
    fn hypercube_report(sc: &Scenario, d: usize, p: f64) -> Self {
        let lambda = sc.lambda();
        let le = lambda * p;
        let df = d as f64;
        let lower_thm10 = hc_bounds::thm10_lower(d, lambda, p);
        let lower_thm12 = hc_bounds::thm12_lower(d, lambda, p);
        let trivial = hc_bounds::mean_distance(d, p);
        Self {
            label: sc.label(),
            n: d,
            nodes: sc.topology.num_nodes(),
            lambda,
            table_rho: le,
            utilization: le,
            mean_distance: trivial,
            upper: hc_bounds::upper_bound_delay(d, lambda, p),
            // All d·2^d edges carry λp and γ = λ·2^d, so the per-edge sums
            // collapse to d·N(λp)/λ.
            est_paper: df * paper_queue_number(le) / lambda,
            est_md1: df * md1_mean_number(le) / lambda,
            lower_thm8_any: 0.0,
            lower_thm8_oblivious: 0.0,
            lower_thm10,
            lower_thm12,
            lower_thm14: 0.0,
            lower_trivial: trivial,
            lower_best: lower_thm10.max(lower_thm12).max(trivial),
            dbar: hc_bounds::dbar(d, p),
            sbar: 0.0,
            light_load_r: 0.0,
            stability_lambda: 1.0 / p,
            optimal_stability_lambda: 0.0,
            silent_sources: sc.silent_sources(),
            degradation: None,
        }
    }

    /// §4.5 butterfly: every packet crosses exactly `k` edges, every edge
    /// carries `λ/2`, and every route has the same length (so `d̄ = d = k`
    /// and Theorems 10 and 12 coincide).
    fn butterfly_report(sc: &Scenario, k: usize) -> Self {
        let lambda = sc.lambda();
        let le = lambda / 2.0;
        let kf = k as f64;
        let lower_thm10 = bf_bounds::thm10_lower(k, lambda);
        Self {
            label: sc.label(),
            n: k,
            nodes: sc.topology.num_nodes(),
            lambda,
            table_rho: le,
            utilization: le,
            mean_distance: kf,
            upper: bf_bounds::upper_bound_delay(k, lambda),
            // k·2^{k+1} edges at λ/2 against γ = λ·2^k sources.
            est_paper: 2.0 * kf * paper_queue_number(le) / lambda,
            est_md1: 2.0 * kf * md1_mean_number(le) / lambda,
            lower_thm8_any: 0.0,
            lower_thm8_oblivious: 0.0,
            lower_thm10,
            lower_thm12: lower_thm10,
            lower_thm14: 0.0,
            lower_trivial: kf,
            lower_best: lower_thm10.max(kf),
            dbar: kf,
            sbar: 0.0,
            light_load_r: 0.0,
            stability_lambda: 2.0,
            optimal_stability_lambda: 0.0,
            silent_sources: sc.silent_sources(),
            degradation: None,
        }
    }

    /// Rate-enumeration fallback for every remaining Markovian scenario:
    /// rectangular meshes, nearby destinations, randomized greedy, `k`-d
    /// meshes, and all pattern/hotspot/matrix/weighted-source workloads.
    /// Uses the generic Theorem 5 product form and Theorem 10 copy bound
    /// from the exact per-edge rates of the *actual* workload. On the
    /// torus the upper bound stays `∞` for every workload — §6's
    /// layerability obstruction does not depend on the traffic.
    fn generic_report(sc: &Scenario) -> Self {
        let lambda = sc.lambda();
        let rates = sc.edge_rates();
        let gamma = sc.total_arrival();
        let d_max = sc.topology.max_distance() as f64;
        let trivial = sc.mean_distance();
        let lower_thm10 = lower::lower_bound_from_rates(&rates, d_max, gamma);
        // The materialized rate vector already holds everything the
        // peak-rate helpers would re-enumerate: the peak itself, and the
        // stability threshold λ* = λ/peak.
        let peak = rates.iter().fold(0.0, |a: f64, &b| a.max(b));
        let n = match &sc.topology {
            TopologySpec::Mesh { rows, cols } => *rows.max(cols),
            TopologySpec::MeshKd { dims } => dims.iter().copied().max().unwrap_or(0),
            other => other.num_nodes(),
        };
        Self {
            label: sc.label(),
            n,
            nodes: sc.topology.num_nodes(),
            lambda,
            table_rho: peak,
            utilization: peak,
            mean_distance: trivial,
            upper: if matches!(sc.topology, TopologySpec::Torus { .. }) {
                f64::INFINITY
            } else {
                upper::upper_bound_from_rates(&rates, gamma)
            },
            est_paper: estimate_from_rates(&rates, gamma, paper_queue_number),
            est_md1: estimate_from_rates(&rates, gamma, md1_mean_number),
            lower_thm8_any: 0.0,
            lower_thm8_oblivious: 0.0,
            lower_thm10,
            lower_thm12: 0.0,
            lower_thm14: 0.0,
            lower_trivial: trivial,
            lower_best: lower_thm10.max(trivial),
            dbar: 0.0,
            sbar: 0.0,
            light_load_r: 0.0,
            stability_lambda: lambda / peak,
            optimal_stability_lambda: 0.0,
            silent_sources: sc.silent_sources(),
            degradation: None,
        }
    }

    /// Ratio of upper to best lower bound (the "gap" the paper tracks);
    /// `∞` where the upper bound is open or the load saturates an edge.
    #[must_use]
    pub fn gap(&self) -> f64 {
        self.upper / self.lower_best
    }

    /// Multi-line human-readable summary.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{0} ({1} nodes): λ = {2:.5} (Table-ρ {3:.3}, peak utilization {4:.3})\n",
            self.label, self.nodes, self.lambda, self.table_rho, self.utilization
        ));
        s.push_str(&format!(
            "  mean distance n̄ = {:.4}   d̄ = {:.1}   s̄ = {:.4}\n",
            self.mean_distance, self.dbar, self.sbar
        ));
        if self.upper.is_finite() {
            s.push_str(&format!(
                "  upper bound (Thm 5/7)      T ≤ {:.4}\n",
                self.upper
            ));
        } else {
            s.push_str("  upper bound                open (§6) or saturated\n");
        }
        s.push_str(&format!(
            "  estimate (paper / M/D/1)   T ≈ {:.4} / {:.4}\n",
            self.est_paper, self.est_md1
        ));
        s.push_str(&format!(
            "  lower bounds: Thm8any {:.4}  Thm8obl {:.4}  Thm10 {:.4}  Thm12 {:.4}  Thm14 {:.4}  n̄ {:.4}\n",
            self.lower_thm8_any,
            self.lower_thm8_oblivious,
            self.lower_thm10,
            self.lower_thm12,
            self.lower_thm14,
            self.lower_trivial
        ));
        if self.gap().is_finite() {
            s.push_str(&format!(
                "  best lower {:.4}   gap upper/lower = {:.3}\n",
                self.lower_best,
                self.gap()
            ));
        } else {
            s.push_str(&format!("  best lower {:.4}\n", self.lower_best));
        }
        if self.optimal_stability_lambda > 0.0 {
            s.push_str(&format!(
                "  stability: standard λ < {:.4}, optimal allocation λ < {:.4}\n",
                self.stability_lambda, self.optimal_stability_lambda
            ));
        } else {
            s.push_str(&format!("  stability: λ < {:.4}\n", self.stability_lambda));
        }
        if self.silent_sources > 0 {
            s.push_str(&format!(
                "  WARNING: {} of {} sources are silent (all-zero matrix rows) — \
                 the offered load concentrates on the remaining sources\n",
                self.silent_sources, self.nodes
            ));
        }
        if let Some(d) = &self.degradation {
            s.push_str(&format!(
                "  degradation: {} dead edges, reachability {:.4}, post-fault λ* ≈ {:.4}\n",
                d.dead_edges, d.reachable_fraction, d.post_fault_lambda_star
            ));
            if d.delivered_fraction > 0.0 || d.dropped.total() > 0 {
                s.push_str(&format!(
                    "  delivered {:.4} of generated; drops: dead-end {}, local-min {}, \
                     ttl {}, link-down {}\n",
                    d.delivered_fraction,
                    d.dropped.dead_end,
                    d.dropped.local_minimum,
                    d.dropped.ttl_exceeded,
                    d.dropped.link_down
                ));
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshbound_sim::{RouterSpec, SourceSpec, TrafficSpec};

    #[test]
    fn report_is_internally_consistent() {
        for n in [4usize, 5, 10, 15] {
            for rho in [0.2, 0.8, 0.95] {
                let r = BoundsReport::compute(n, Load::TableRho(rho));
                assert!(r.lower_best <= r.upper, "n={n}, ρ={rho}");
                assert!(r.est_paper <= r.est_md1);
                assert!(r.est_md1 <= r.upper + 1e-12);
                assert!(r.lower_best >= r.lower_trivial);
                assert!((r.table_rho - rho).abs() < 1e-12);
                assert!(r.gap() >= 1.0);
            }
        }
    }

    #[test]
    fn compute_for_square_mesh_matches_compute() {
        let sc = Scenario::mesh(10).load(Load::TableRho(0.8));
        let via_scenario = BoundsReport::compute_for(&sc);
        let direct = BoundsReport::compute(10, Load::TableRho(0.8));
        assert_eq!(via_scenario.upper.to_bits(), direct.upper.to_bits());
        assert_eq!(
            via_scenario.lower_best.to_bits(),
            direct.lower_best.to_bits()
        );
        assert_eq!(via_scenario.est_paper.to_bits(), direct.est_paper.to_bits());
        assert_eq!(via_scenario.label, direct.label);
    }

    #[test]
    fn compute_for_covers_every_topology() {
        let scenarios = [
            Scenario::mesh(6).load(Load::TableRho(0.5)),
            Scenario::mesh_rect(3, 6).load(Load::Utilization(0.5)),
            Scenario::mesh(5)
                .router(RouterSpec::Randomized)
                .load(Load::Lambda(0.2)),
            Scenario::mesh(5)
                .traffic(TrafficSpec::nearby(0.5))
                .load(Load::Lambda(0.3)),
            Scenario::torus(6).load(Load::Utilization(0.5)),
            Scenario::hypercube(5).load(Load::Utilization(0.5)),
            Scenario::hypercube(5)
                .traffic(TrafficSpec::bernoulli(0.25))
                .load(Load::Utilization(0.5)),
            Scenario::butterfly(4).load(Load::Utilization(0.5)),
            Scenario::mesh_kd(&[3, 3, 3]).load(Load::Utilization(0.5)),
            // TrafficSpec workloads resolve against their own rate
            // vectors.
            Scenario::mesh(8)
                .traffic(TrafficSpec::transpose())
                .load(Load::Utilization(0.5)),
            Scenario::mesh(8)
                .traffic(TrafficSpec::bit_reversal())
                .load(Load::Utilization(0.5)),
            Scenario::mesh(6)
                .traffic(TrafficSpec::hotspot(0.2))
                .load(Load::Utilization(0.5)),
            Scenario::hypercube(4)
                .traffic(TrafficSpec::bit_complement())
                .load(Load::Utilization(0.5)),
            Scenario::mesh(5)
                .source(SourceSpec::Hotspot {
                    node: None,
                    weight: 4.0,
                })
                .load(Load::Utilization(0.5)),
            // Adaptive routers: λ* and the bounds resolve against the
            // fixed-point rate vector.
            Scenario::mesh(6)
                .router(RouterSpec::WestFirst)
                .load(Load::Utilization(0.5)),
            Scenario::mesh(8)
                .router(RouterSpec::OddEven)
                .traffic(TrafficSpec::transpose())
                .load(Load::Utilization(0.5)),
            Scenario::torus(5)
                .router(RouterSpec::OddEven)
                .load(Load::Utilization(0.5)),
        ];
        for sc in &scenarios {
            let r = BoundsReport::compute_for(sc);
            assert!(r.lower_best > 0.0, "{}", r.label);
            assert!(r.lower_best.is_finite(), "{}", r.label);
            assert!(
                r.lower_best <= r.upper,
                "{}: {} > {}",
                r.label,
                r.lower_best,
                r.upper
            );
            assert!(r.lower_best >= r.lower_trivial, "{}", r.label);
            assert!(r.mean_distance > 0.0, "{}", r.label);
            assert!(r.stability_lambda > 0.0, "{}", r.label);
            assert!(
                (r.utilization - 0.5).abs() < 1e-9 || !matches!(sc.load, Load::Utilization(_)),
                "{}: utilization {}",
                r.label,
                r.utilization
            );
            // Every topology except the torus has a finite proven upper
            // bound below saturation.
            if !matches!(sc.topology, TopologySpec::Torus { .. }) {
                assert!(r.upper.is_finite(), "{}", r.label);
                assert!(r.est_md1 <= r.upper + 1e-9, "{}", r.label);
            }
        }
    }

    #[test]
    fn torus_upper_bound_is_open() {
        let r = BoundsReport::compute_for(&Scenario::torus(8).load(Load::Utilization(0.5)));
        assert!(r.upper.is_infinite());
        assert!(r.est_md1.is_finite());
        assert!(r.to_text().contains("open"));
    }

    #[test]
    fn pattern_reports_use_the_actual_rate_vector() {
        // The transpose workload on an 8×8 mesh has a different peak than
        // uniform; at util=0.5 its report must say utilization 0.5 and a
        // finite upper bound strictly above the trivial one.
        let sc = Scenario::mesh(8)
            .traffic(TrafficSpec::transpose())
            .load(Load::Utilization(0.5));
        let r = BoundsReport::compute_for(&sc);
        assert!((r.utilization - 0.5).abs() < 1e-9);
        assert!(r.upper.is_finite() && r.upper > r.mean_distance);
        // The same λ under the uniform workload gives a *different*
        // report — the pattern matters.
        let uniform = BoundsReport::compute_for(&Scenario::mesh(8).load(Load::Lambda(sc.lambda())));
        assert_ne!(r.upper.to_bits(), uniform.upper.to_bits());
        // Torus workloads keep the open upper bound whatever the pattern.
        let torus = BoundsReport::compute_for(
            &Scenario::torus(4)
                .traffic(TrafficSpec::bit_complement())
                .load(Load::Utilization(0.4)),
        );
        assert!(torus.upper.is_infinite());
        assert!(torus.lower_best.is_finite() && torus.lower_best > 0.0);
    }

    #[test]
    fn hypercube_report_matches_closed_forms() {
        let sc = Scenario::hypercube(6)
            .traffic(TrafficSpec::bernoulli(0.25))
            .load(Load::Lambda(1.0));
        let r = BoundsReport::compute_for(&sc);
        assert!((r.upper - hc_bounds::upper_bound_delay(6, 1.0, 0.25)).abs() < 1e-12);
        assert!((r.lower_thm12 - hc_bounds::thm12_lower(6, 1.0, 0.25)).abs() < 1e-12);
        assert!((r.dbar - hc_bounds::dbar(6, 0.25)).abs() < 1e-12);
        assert!((r.mean_distance - 1.5).abs() < 1e-12);
    }

    #[test]
    fn heavy_traffic_gap_bounded_for_even_n() {
        // Theorem 14's headline: the gap is ~3 for even n near capacity.
        let r = BoundsReport::compute(10, Load::TableRho(0.9999));
        assert!(r.gap() < 3.1, "gap {}", r.gap());
    }

    #[test]
    fn heavy_traffic_gap_bounded_for_odd_n() {
        let r = BoundsReport::compute(9, Load::Utilization(0.9999));
        assert!(r.gap() < 6.0, "gap {}", r.gap());
    }

    #[test]
    fn silent_sources_surface_in_the_report() {
        let rows = vec![
            vec![0.0, 1.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 0.0],
            vec![1.0, 0.0, 0.0, 0.0],
        ];
        let sc = Scenario::mesh(2)
            .pattern(meshbound_sim::PatternSpec::Matrix { rows })
            .load(Load::Lambda(0.1));
        let r = BoundsReport::compute_for(&sc);
        assert_eq!(r.silent_sources, 2);
        assert!(r.to_text().contains("2 of 4 sources are silent"));
        // Non-matrix workloads report zero and stay warning-free.
        let r = BoundsReport::compute(8, Load::TableRho(0.5));
        assert_eq!(r.silent_sources, 0);
        assert!(!r.to_text().contains("silent"));
    }

    #[test]
    fn faulted_scenarios_grow_a_degradation_section() {
        use meshbound_sim::FaultSpec;
        let healthy = Scenario::mesh(6).load(Load::TableRho(0.5));
        assert!(BoundsReport::compute_for(&healthy).degradation.is_none());
        let faulted = healthy.clone().faults(FaultSpec::links(0.1));
        let r = BoundsReport::compute_for(&faulted);
        let d = r.degradation.as_ref().expect("faults => degradation");
        assert!(d.dead_edges > 0);
        assert!((0.0..=1.0).contains(&d.reachable_fraction));
        assert!(
            (d.post_fault_lambda_star - r.stability_lambda * d.reachable_fraction).abs() < 1e-12
        );
        // The measured half starts zeroed — the simulation fills it in.
        assert_eq!(d.delivered_fraction, 0.0);
        assert_eq!(d.dropped.total(), 0);
        // The healthy bounds themselves are untouched by the fault spec.
        let base = BoundsReport::compute_for(&healthy);
        assert_eq!(r.upper.to_bits(), base.upper.to_bits());
        assert_eq!(r.lower_best.to_bits(), base.lower_best.to_bits());
        assert!(r.to_text().contains("degradation:"));
        assert!(!base.to_text().contains("degradation:"));
        // Same seed, same spec → same plan → same reachability.
        let again = BoundsReport::compute_for(&faulted);
        assert_eq!(
            d.reachable_fraction.to_bits(),
            again
                .degradation
                .as_ref()
                .unwrap()
                .reachable_fraction
                .to_bits()
        );
    }

    #[test]
    fn text_rendering_mentions_key_quantities() {
        let r = BoundsReport::compute(8, Load::TableRho(0.5));
        let text = r.to_text();
        assert!(text.contains("upper bound"));
        assert!(text.contains("Thm12"));
        assert!(text.contains("stability"));
        assert!(text.contains("array 8x8"));
    }
}
