//! Upper and lower bounds on the mean delay, plus the §4.2 approximation.

pub mod butterfly;
pub mod estimate;
pub mod hypercube;
pub mod lower;
pub mod torus;
pub mod upper;
