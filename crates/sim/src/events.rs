//! Future-event queues.
//!
//! Two interchangeable future-event lists implement [`EventQueue`]:
//!
//! * [`HeapQueue`] — a binary heap keyed by `(time, seq)` with a monotone
//!   sequence number breaking ties deterministically. O(log n) per
//!   operation, no tuning knobs; the reference implementation.
//! * [`CalendarQueue`] — the classic O(1)-amortized calendar queue with
//!   sorted buckets and Brown-style dynamic resizing, used by the
//!   simulator's default engine (see `EngineSpec`).
//!
//! Both pop events in exactly the same `(time, seq)` order, so a simulation
//! produces bit-identical results whichever queue drives it — the
//! cross-queue property tests below and the engine-equivalence suite pin
//! that guarantee.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An entry in a future-event queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scheduled<E> {
    /// Firing time.
    pub time: f64,
    /// Tie-break sequence number (monotone per push).
    pub seq: u64,
    /// Payload.
    pub event: E,
}

impl<E> Eq for Scheduled<E> where E: PartialEq {}

impl<E: PartialEq> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E: PartialEq> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we need earliest-first.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times must not be NaN")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A future-event list.
pub trait EventQueue<E> {
    /// Schedules `event` at `time`.
    fn schedule(&mut self, time: f64, event: E);
    /// Removes and returns the earliest event.
    fn next(&mut self) -> Option<(f64, E)>;
    /// Number of pending events.
    fn len(&self) -> usize;
    /// Whether no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Binary-heap event queue (the reference implementation).
#[derive(Debug)]
pub struct HeapQueue<E: PartialEq> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
}

impl<E: PartialEq> Default for HeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: PartialEq> HeapQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Creates an empty queue with reserved capacity.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(cap),
            seq: 0,
        }
    }
}

impl<E: PartialEq> EventQueue<E> for HeapQueue<E> {
    #[inline]
    fn schedule(&mut self, time: f64, event: E) {
        debug_assert!(time.is_finite(), "cannot schedule at non-finite time");
        self.heap.push(Scheduled {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    #[inline]
    fn next(&mut self) -> Option<(f64, E)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

/// Smallest and largest bucket-width exponents the calendar accepts.
///
/// Widths are powers of two inside this range, so `time / width` is an
/// exact float operation and bucket assignment can never disagree with the
/// cursor arithmetic (see [`CalendarQueue`]). With `|exp| ≤ 24` and event
/// times below `2^28` time units, every virtual bucket index stays well
/// under `2^53` and all conversions are exact.
const MIN_WIDTH_EXP: i32 = -24;
const MAX_WIDTH_EXP: i32 = 24;

/// Upper bound on the bucket count (a memory guard, ~64 MiB of headers).
const MAX_BUCKETS: usize = 1 << 22;

/// Ceiling on virtual bucket indices (see `CalendarQueue::vbucket`): far
/// enough below `u64::MAX` that the cursor can still advance whole laps
/// past it without overflowing.
const VB_CAP: u64 = u64::MAX - 2 * (MAX_BUCKETS as u64) - 2;

/// Rounds `w` to the nearest power of two inside the supported range.
fn round_width(w: f64) -> f64 {
    assert!(w > 0.0 && w.is_finite(), "bucket width must be positive");
    let exp = w
        .log2()
        .round()
        .clamp(f64::from(MIN_WIDTH_EXP), f64::from(MAX_WIDTH_EXP));
    f64::exp2(exp)
}

/// A production calendar queue: an array of time buckets of power-of-two
/// width, scanned cyclically, each bucket kept sorted so the next event
/// pops in O(1).
///
/// Design notes (all load-bearing for the bit-identical-order guarantee):
///
/// * **Sorted buckets.** Each bucket is a `Vec` sorted *descending* by
///   `(time, seq)`, so the bucket minimum sits at the tail: `next()` is a
///   bounds check plus `pop()`, and `schedule` is a binary search plus an
///   insert into a short vector.
/// * **Exact bucket math.** The width is always a power of two
///   (`round_width`), so `time / width` only adjusts the float exponent
///   and the virtual bucket index `⌊time / width⌋` is computed exactly —
///   bucket assignment, cursor laps and the "does this event belong to the
///   current lap" test can never disagree by a rounding error.
/// * **Past events land under the cursor.** An event scheduled at or
///   before the cursor's bucket window goes into the *cursor* bucket, so it
///   pops next rather than waiting a full lap for the cursor to come back
///   around (the pre-overhaul implementation had exactly that bug).
/// * **Brown-style resizing.** When the event count outgrows (or far
///   undershoots) the bucket count, the calendar rebuilds with ~2 buckets
///   per event and a new width keyed to the observed event density
///   (average inter-event gap of everything pending), so the hot window
///   stays at O(1) events per bucket whatever the workload's time scale.
/// * **Empty-lap jump.** If a whole lap passes without a pop (all pending
///   events far in the future), the cursor jumps straight to the earliest
///   pending bucket instead of spinning lap by lap.
///
/// Together these give amortized O(1) `schedule`/`next` while popping in
/// exactly the same `(time, seq)` order as [`HeapQueue`].
#[derive(Debug)]
pub struct CalendarQueue<E> {
    /// Buckets, each sorted descending by `(time, seq)` (minimum at tail).
    buckets: Vec<Vec<Scheduled<E>>>,
    /// Bucket width; always a power of two in `[2^-24, 2^24]`.
    width: f64,
    /// `1 / width` (exact for powers of two): bucket assignment is a
    /// multiply, not a divide.
    inv_width: f64,
    /// Virtual index of the cursor bucket: `⌊cursor time / width⌋`.
    cursor_vb: u64,
    /// `cursor_vb % buckets.len()`, cached.
    cursor: usize,
    /// Total pending events (buckets + overflow).
    len: usize,
    /// Monotone tie-break counter.
    seq: u64,
    /// Events beyond the current calendar span, repatriated lazily.
    overflow: Vec<Scheduled<E>>,
    /// The bucket count never shrinks below this floor.
    min_buckets: usize,
    /// Cursor advances since the last rebuild (width-too-narrow signal).
    advances: u64,
    /// Pops since the last rebuild.
    pops: u64,
}

/// A single bucket holding more than this many events triggers a
/// density-keyed width resize (the Brown adaptation signal).
const OVERLOAD: usize = 16;

impl<E> CalendarQueue<E> {
    /// Creates a calendar with `nbuckets` buckets (rounded up to a power
    /// of two, so ring arithmetic is a mask instead of a modulo) of
    /// roughly `width` time units (rounded to the nearest power of two for
    /// exact bucket math). The calendar resizes itself as the population
    /// grows or shrinks; `nbuckets` is the initial geometry and the shrink
    /// floor.
    ///
    /// # Panics
    ///
    /// Panics if `nbuckets == 0` or `width` is not positive and finite.
    #[must_use]
    pub fn new(nbuckets: usize, width: f64) -> Self {
        assert!(nbuckets > 0, "calendar needs at least one bucket");
        let nbuckets = nbuckets.next_power_of_two().min(MAX_BUCKETS);
        let width = round_width(width);
        Self {
            buckets: (0..nbuckets).map(|_| Vec::new()).collect(),
            width,
            inv_width: 1.0 / width,
            cursor_vb: 0,
            cursor: 0,
            len: 0,
            seq: 0,
            overflow: Vec::new(),
            min_buckets: nbuckets,
            advances: 0,
            pops: 0,
        }
    }

    /// A calendar sized for a simulation expected to hold about
    /// `expected_events` concurrent events with service times of order one
    /// time unit. The geometry is only a starting point — resizing keys the
    /// width to the density actually observed.
    #[must_use]
    pub fn for_simulation(expected_events: usize) -> Self {
        let nbuckets = (2 * expected_events.max(1))
            .next_power_of_two()
            .clamp(64, 1 << 16);
        let mut cal = Self::new(nbuckets, 1.0 / 32.0);
        cal.min_buckets = 64;
        cal
    }

    /// The virtual bucket index of `time` — exact because `width` is a
    /// power of two (`time * 2^k` only shifts the exponent).
    ///
    /// Capped at [`VB_CAP`] so a huge `time / width` ratio (the f64→u64
    /// cast saturates at `u64::MAX`) cannot overflow the cursor
    /// arithmetic: capped events share one far-future virtual bucket,
    /// where the sorted-bucket `(time, seq)` order still pops them
    /// correctly, and the cursor — which never moves past the earliest
    /// pending event's bucket by more than one lap — stays clear of
    /// `u64::MAX`.
    #[inline]
    fn vbucket(&self, time: f64) -> u64 {
        debug_assert!(time >= 0.0, "calendar times must be non-negative");
        ((time * self.inv_width) as u64).min(VB_CAP)
    }

    /// Inserts into the right bucket (or overflow). Does not touch `len`.
    /// Returns the bucket index used (`None` for overflow).
    ///
    /// `NEWEST` marks a fresh `schedule` call: the event then carries the
    /// largest sequence number ever issued, so among equal times it sorts
    /// before every resident entry and comparing times alone suffices.
    /// Re-placement during rebuilds and overflow repatriation moves *old*
    /// events and must compare the full `(time, seq)` key.
    #[inline]
    fn place<const NEWEST: bool>(&mut self, s: Scheduled<E>) -> Option<usize> {
        let n = self.buckets.len() as u64;
        let vb = self.vbucket(s.time);
        if vb >= self.cursor_vb.saturating_add(n) {
            self.overflow.push(s);
            return None;
        }
        // An event at or before the cursor's window goes into the cursor
        // bucket so it is found *now*, not a full lap later.
        let idx = if vb <= self.cursor_vb {
            self.cursor
        } else {
            // The bucket count is always a power of two: mask, not modulo.
            (vb & (n - 1)) as usize
        };
        let bucket = &mut self.buckets[idx];
        // Descending by (time, seq); see the `NEWEST` contract above.
        let pos = if NEWEST {
            bucket.partition_point(|x| x.time > s.time)
        } else {
            bucket.partition_point(|x| (x.time, x.seq) > (s.time, s.seq))
        };
        bucket.insert(pos, s);
        Some(idx)
    }

    /// Pulls overflow events whose bucket now lies within the calendar
    /// span back into the buckets.
    fn repatriate_overflow(&mut self) {
        if self.overflow.is_empty() {
            return;
        }
        for s in std::mem::take(&mut self.overflow) {
            self.place::<false>(s); // re-defers anything still beyond the span
        }
    }

    /// Jumps the cursor to the earliest pending event's bucket (called
    /// after a full lap produced no pop, so every pending event is ahead
    /// of the cursor).
    fn jump_to_min(&mut self) {
        debug_assert!(self.len > 0);
        let mut min_vb = u64::MAX;
        for bucket in &self.buckets {
            if let Some(last) = bucket.last() {
                min_vb = min_vb.min(self.vbucket(last.time));
            }
        }
        for s in &self.overflow {
            min_vb = min_vb.min(self.vbucket(s.time));
        }
        // A silent lap re-checked every bucket before over-running it, so
        // nothing pending lies behind the cursor; the earliest bucket can
        // coincide with the cursor's, never precede it.
        debug_assert!(min_vb >= self.cursor_vb);
        self.cursor_vb = min_vb;
        self.cursor = (min_vb & (self.buckets.len() as u64 - 1)) as usize;
        self.repatriate_overflow();
    }

    /// The bucket count matched to the current population: ~1 bucket per
    /// event (occupancy near one balances cursor advances against
    /// sorted-insert work).
    fn target_buckets(&self) -> usize {
        self.len
            .max(1)
            .next_power_of_two()
            .clamp(self.min_buckets, MAX_BUCKETS)
    }

    /// Rebuilds the calendar with the given geometry, re-anchoring the
    /// cursor at the same point in time and re-distributing every pending
    /// event.
    fn rebuild(&mut self, nbuckets: usize, width: f64) {
        let mut all: Vec<Scheduled<E>> = Vec::with_capacity(self.len);
        for bucket in &mut self.buckets {
            all.append(bucket);
        }
        all.append(&mut self.overflow);
        // cursor_vb * width is exact: power-of-two scaling.
        let now = self.cursor_vb as f64 * self.width;
        self.width = width;
        self.inv_width = 1.0 / width;
        // Same cap as `vbucket`: a width-narrowing rebuild while the
        // cursor sits in the capped far-future bucket must not saturate
        // the cursor to `u64::MAX` (which would funnel every future event
        // into one bucket).
        self.cursor_vb = ((now * self.inv_width) as u64).min(VB_CAP);
        if nbuckets != self.buckets.len() {
            self.buckets = (0..nbuckets).map(|_| Vec::new()).collect();
        }
        self.cursor = (self.cursor_vb & (nbuckets as u64 - 1)) as usize;
        self.advances = 0;
        self.pops = 0;
        for s in all {
            self.place::<false>(s);
        }
    }
}

impl<E> EventQueue<E> for CalendarQueue<E> {
    #[inline]
    fn schedule(&mut self, time: f64, event: E) {
        debug_assert!(time.is_finite() && time >= 0.0);
        let s = Scheduled {
            time,
            seq: self.seq,
            event,
        };
        self.seq += 1;
        self.len += 1;
        let idx = self.place::<true>(s);
        // Grow: keep the expected occupancy below one event per bucket.
        if self.len > 2 * self.buckets.len() && self.buckets.len() < MAX_BUCKETS {
            self.rebuild(self.target_buckets(), self.width);
            return;
        }
        // Density overload: one bucket collecting many events means the
        // width is too coarse for the hot window. Re-key it to that
        // bucket's *local* density (Brown's adaptation, deterministic,
        // and robust against far-future outliers that poison any global
        // range estimate).
        if let Some(idx) = idx {
            let bucket = &self.buckets[idx];
            if bucket.len() > OVERLOAD {
                let range = bucket[0].time - bucket[bucket.len() - 1].time;
                if range > 0.0 {
                    let w = round_width(2.0 * range / bucket.len() as f64);
                    if w < self.width {
                        self.rebuild(self.target_buckets(), w);
                    }
                }
            }
        }
    }

    #[inline]
    fn next(&mut self) -> Option<(f64, E)> {
        if self.len == 0 {
            return None;
        }
        let mut empty_advances = 0usize;
        loop {
            let cursor_vb = self.cursor_vb;
            let inv_width = self.inv_width;
            let bucket = &mut self.buckets[self.cursor];
            if let Some(last) = bucket.last() {
                // Same capped virtual-bucket math as `vbucket` — the raw
                // cast would overshoot `VB_CAP` and never test as due.
                if ((last.time * inv_width) as u64).min(VB_CAP) <= cursor_vb {
                    let s = bucket.pop().expect("tail just observed");
                    self.len -= 1;
                    self.pops += 1;
                    if self.buckets.len() > self.min_buckets && 4 * self.len < self.buckets.len() {
                        self.rebuild(self.target_buckets(), self.width);
                    } else if self.advances > 8 * self.pops + 2 * self.buckets.len() as u64 {
                        // Chronically sparse laps: the width is too narrow
                        // for the event spread — widen it.
                        let w = round_width(self.width * 8.0);
                        if w > self.width {
                            self.rebuild(self.target_buckets(), w);
                        } else {
                            self.advances = 0;
                            self.pops = 0;
                        }
                    }
                    return Some((s.time, s.event));
                }
            }
            // Nothing due in this bucket's current window: advance.
            self.cursor_vb += 1;
            self.cursor += 1;
            self.advances += 1;
            if self.cursor == self.buckets.len() {
                self.cursor = 0;
                self.repatriate_overflow();
            }
            empty_advances += 1;
            if empty_advances > self.buckets.len() {
                // A full silent lap: everything pending is far ahead.
                self.jump_to_min();
                empty_advances = 0;
            }
        }
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn heap_orders_by_time_then_seq() {
        let mut q = HeapQueue::new();
        q.schedule(2.0, "b");
        q.schedule(1.0, "a");
        q.schedule(2.0, "c");
        assert_eq!(q.next(), Some((1.0, "a")));
        assert_eq!(q.next(), Some((2.0, "b"))); // earlier seq first
        assert_eq!(q.next(), Some((2.0, "c")));
        assert_eq!(q.next(), None);
    }

    #[test]
    fn widths_round_to_powers_of_two() {
        assert_eq!(round_width(1.0), 1.0);
        assert_eq!(round_width(0.75), 1.0);
        assert_eq!(round_width(0.125), 0.125);
        assert_eq!(round_width(3.0), 4.0);
        assert_eq!(round_width(1e-30), f64::exp2(-24.0));
        assert_eq!(round_width(1e30), f64::exp2(24.0));
    }

    #[test]
    fn calendar_matches_heap_order() {
        let times = [0.3, 7.9, 2.2, 2.2, 15.0, 0.1, 99.5, 42.0, 3.3, 8.8];
        let mut heap = HeapQueue::new();
        let mut cal = CalendarQueue::new(8, 1.0);
        for (i, &t) in times.iter().enumerate() {
            heap.schedule(t, i);
            cal.schedule(t, i);
        }
        loop {
            let a = heap.next();
            let b = cal.next();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn calendar_interleaved_push_pop() {
        let mut cal = CalendarQueue::new(4, 0.5);
        cal.schedule(0.2, 1u32);
        cal.schedule(5.0, 2);
        assert_eq!(cal.next(), Some((0.2, 1)));
        cal.schedule(1.0, 3);
        assert_eq!(cal.next(), Some((1.0, 3)));
        assert_eq!(cal.next(), Some((5.0, 2)));
        assert!(cal.is_empty());
    }

    /// Regression: an event scheduled at a time at-or-before the cursor
    /// bucket's already-drained portion must pop immediately, not one full
    /// lap later. The pre-overhaul calendar filed it under a bucket the
    /// cursor had already passed, so later-lap events popped first.
    #[test]
    fn schedule_behind_cursor_pops_before_later_events() {
        let mut cal = CalendarQueue::new(4, 1.0);
        cal.schedule(2.5, "mid");
        cal.schedule(3.5, "late");
        assert_eq!(cal.next(), Some((2.5, "mid"))); // cursor now in bucket 2
                                                    // Behind the cursor's drained portion — and in an earlier bucket.
        cal.schedule(1.0, "past");
        // At the cursor's exact window start.
        cal.schedule(2.0, "edge");
        assert_eq!(cal.next(), Some((1.0, "past")));
        assert_eq!(cal.next(), Some((2.0, "edge")));
        assert_eq!(cal.next(), Some((3.5, "late")));
        assert_eq!(cal.next(), None);
    }

    /// The same interleaving, pinned against the heap so the order is the
    /// specified one rather than merely a plausible one.
    #[test]
    fn interleaved_schedule_pop_order_matches_heap() {
        let ops: &[(bool, f64)] = &[
            (false, 2.5),
            (false, 3.5),
            (true, 0.0),
            (false, 1.0), // behind the cursor
            (false, 2.5), // equal to an already-popped time
            (true, 0.0),
            (true, 0.0),
            (false, 0.25), // far behind, earlier lap bucket
            (true, 0.0),
            (true, 0.0),
            (true, 0.0),
        ];
        let mut heap = HeapQueue::new();
        let mut cal = CalendarQueue::new(4, 1.0);
        let mut id = 0u32;
        for &(pop, t) in ops {
            if pop {
                assert_eq!(heap.next(), cal.next());
            } else {
                heap.schedule(t, id);
                cal.schedule(t, id);
                id += 1;
            }
        }
        assert_eq!(heap.next(), None);
        assert_eq!(cal.next(), None);
    }

    #[test]
    fn resizing_keeps_order_under_growth_and_drain() {
        // Grow far past the initial 4 buckets, then drain to empty; every
        // pop must match the heap bit for bit through grows and shrinks.
        let mut heap = HeapQueue::new();
        let mut cal = CalendarQueue::new(4, 1.0);
        let mut x = 0x9E37_79B9u64;
        for i in 0..2_000u32 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            let t = (x >> 11) as f64 / (1u64 << 53) as f64 * 50.0;
            heap.schedule(t, i);
            cal.schedule(t, i);
        }
        assert!(cal.buckets.len() > 4, "growth should have triggered");
        loop {
            let a = heap.next();
            let b = cal.next();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    /// Regression: a time so far beyond the width scale that
    /// `time / width` saturates the u64 cast must still pop (in heap
    /// order) instead of overflowing the cursor arithmetic — `vbucket`
    /// caps at `VB_CAP`, leaving the cursor headroom.
    #[test]
    fn saturating_virtual_buckets_pop_in_order() {
        let mut cal = CalendarQueue::new(4, f64::exp2(-24.0));
        let mut heap = HeapQueue::new();
        for (i, t) in [2e12, 0.5, 3e12, 1e19].into_iter().enumerate() {
            cal.schedule(t, i);
            heap.schedule(t, i);
        }
        for _ in 0..4 {
            assert_eq!(cal.next(), heap.next());
        }
        assert!(cal.is_empty());
        // Interleaved: schedule another capped-bucket event after popping.
        cal.schedule(5e12, 9);
        cal.schedule(1.0, 10);
        assert_eq!(cal.next(), Some((1.0, 10)));
        assert_eq!(cal.next(), Some((5e12, 9)));
    }

    #[test]
    fn far_future_events_pop_without_lap_spinning() {
        // One event 10^6 spans ahead: the empty-lap jump must find it.
        let mut cal = CalendarQueue::new(4, 0.5);
        cal.schedule(2_000_000.0, "far");
        cal.schedule(0.1, "near");
        assert_eq!(cal.next(), Some((0.1, "near")));
        assert_eq!(cal.next(), Some((2_000_000.0, "far")));
    }

    proptest! {
        #[test]
        fn prop_calendar_equals_heap(ops in proptest::collection::vec((0.0f64..50.0, any::<bool>()), 1..300)) {
            let mut heap = HeapQueue::new();
            let mut cal = CalendarQueue::new(16, 0.75);
            let mut id = 0u32;
            let mut last_time = 0.0f64;
            for (t, do_pop) in ops {
                if do_pop {
                    let a = heap.next();
                    let b = cal.next();
                    prop_assert_eq!(a, b);
                    if let Some((t, _)) = a { last_time = t; }
                } else {
                    // Schedule in the future of the last popped time, as a
                    // simulator does.
                    let t = last_time + t;
                    heap.schedule(t, id);
                    cal.schedule(t, id);
                    id += 1;
                }
            }
            // Drain and compare the remainder.
            loop {
                let a = heap.next();
                let b = cal.next();
                prop_assert_eq!(a, b);
                if a.is_none() { break; }
            }
        }

        /// Adversarial variant: pops interleaved with schedules that may
        /// land *behind* the last popped time (the fixed bug's territory),
        /// plus occasional far-future outliers exercising overflow,
        /// repatriation, resizing and the empty-lap jump.
        #[test]
        fn prop_calendar_equals_heap_with_past_and_far_events(
            ops in proptest::collection::vec((0.0f64..8.0, 0u8..4), 1..300),
        ) {
            let mut heap = HeapQueue::new();
            let mut cal = CalendarQueue::new(8, 0.5);
            let mut id = 0u32;
            let mut last_time = 0.0f64;
            for (t, kind) in ops {
                match kind {
                    0 => {
                        let a = heap.next();
                        let b = cal.next();
                        prop_assert_eq!(a, b);
                        if let Some((t, _)) = a { last_time = t; }
                    }
                    // Future of the current time.
                    1 => {
                        heap.schedule(last_time + t, id);
                        cal.schedule(last_time + t, id);
                        id += 1;
                    }
                    // At or before the current time (a "past" schedule).
                    2 => {
                        let t = (last_time - t).max(0.0);
                        heap.schedule(t, id);
                        cal.schedule(t, id);
                        id += 1;
                    }
                    // Far future: beyond the calendar span.
                    _ => {
                        let t = last_time + 100.0 + t * 40.0;
                        heap.schedule(t, id);
                        cal.schedule(t, id);
                        id += 1;
                    }
                }
            }
            loop {
                let a = heap.next();
                let b = cal.next();
                prop_assert_eq!(a, b);
                if a.is_none() { break; }
            }
        }
    }
}
