//! Offline stand-in for `serde`.
//!
//! The workspace only ever writes `#[derive(Serialize, Deserialize)]` — no
//! trait bounds, no attributes, no `serde_json` — so this crate just
//! re-exports no-op derives under the expected paths. The `derive` feature
//! is declared (and ignored) so manifests stay compatible with the real
//! crate.

pub use serde_derive::{Deserialize, Serialize};
