//! The Lemma 2 layering of the array (the paper's Figure 1).
//!
//! A network is *layered* (Theorem 1, first condition) if the edges can be
//! labelled so that every packet crosses edges with strictly increasing
//! labels. Lemma 2 exhibits such a labelling for greedy routing on the
//! `n × n` array:
//!
//! | edge (1-based coordinates)   | label    |
//! |------------------------------|----------|
//! | `((i, j), (i, j+1))` (right) | `j`      |
//! | `((i, j+1), (i, j))` (left)  | `n − j`  |
//! | `((i, j), (i+1, j))` (down)  | `n+i−1`  |
//! | `((i+1, j), (i, j))` (up)    | `2n−i−1` |
//!
//! Row-edge labels lie in `1..n−1` and column-edge labels in `n..2n−2`, so a
//! greedy packet — which first moves monotonically along its row, then
//! monotonically along its column — sees strictly increasing labels.

use crate::ids::EdgeId;
use crate::mesh::{Direction, Mesh2D};

/// The Lemma 2 label of a mesh edge (see module docs for the table).
///
/// # Panics
///
/// Panics if the mesh is not square (the paper states the lemma for `n × n`
/// arrays; rectangular variants are a straightforward generalization we do
/// not need here).
#[must_use]
pub fn lemma2_label(mesh: &Mesh2D, e: EdgeId) -> usize {
    let n = mesh.side();
    let ((r1, c1), (_, c2)) = mesh.edge_coords(e);
    match mesh.direction(e) {
        // 1-based j of the source column: j = c1 + 1.
        Direction::Right => c1 + 1,
        // Source is (i, j+1) with j = c2 + 1 (1-based target column), label n − j.
        Direction::Left => n - (c2 + 1),
        // Source is (i, j), label n + i − 1 with i = r1 + 1.
        Direction::Down => n + (r1 + 1) - 1,
        // Source is (i+1, j), label 2n − i − 1 with i = r1 (source row is i+1 = r1+1).
        Direction::Up => 2 * n - r1 - 1,
    }
}

/// Checks that `label` strictly increases along every path in `paths`.
///
/// Returns the first violating `(path_index, position)` if any; `Ok(())`
/// means the labelling layers the given set of paths.
///
/// # Errors
///
/// Returns `Err((p, k))` when edge `k+1` of path `p` does not carry a larger
/// label than edge `k`.
pub fn check_layered<F>(paths: &[Vec<EdgeId>], mut label: F) -> Result<(), (usize, usize)>
where
    F: FnMut(EdgeId) -> usize,
{
    for (p, path) in paths.iter().enumerate() {
        for k in 1..path.len() {
            if label(path[k]) <= label(path[k - 1]) {
                return Err((p, k - 1));
            }
        }
    }
    Ok(())
}

/// Enumerates the greedy (column-first, then row) path between two nodes of
/// a square mesh, as a sequence of edge ids.
///
/// This is the reference path enumeration used by the layering check and by
/// exact arrival-rate computation; the routing crate provides the
/// incremental, allocation-free equivalent for simulation.
#[must_use]
pub fn greedy_path(mesh: &Mesh2D, from: (usize, usize), to: (usize, usize)) -> Vec<EdgeId> {
    let mut path = Vec::with_capacity(from.0.abs_diff(to.0) + from.1.abs_diff(to.1));
    let (r0, mut c) = from;
    // Phase 1: correct the column along row edges.
    while c != to.1 {
        if c < to.1 {
            path.push(mesh.right_edge(r0, c));
            c += 1;
        } else {
            path.push(mesh.left_edge(r0, c - 1));
            c -= 1;
        }
    }
    // Phase 2: correct the row along column edges.
    let mut r = r0;
    while r != to.0 {
        if r < to.0 {
            path.push(mesh.down_edge(r, c));
            r += 1;
        } else {
            path.push(mesh.up_edge(r - 1, c));
            r -= 1;
        }
    }
    path
}

/// All greedy paths between every ordered pair of nodes (excluding
/// self-pairs, which have empty paths).
#[must_use]
pub fn all_greedy_paths(mesh: &Mesh2D) -> Vec<Vec<EdgeId>> {
    let n = mesh.side();
    let mut paths = Vec::with_capacity(n * n * (n * n - 1));
    for r1 in 0..n {
        for c1 in 0..n {
            for r2 in 0..n {
                for c2 in 0..n {
                    if (r1, c1) != (r2, c2) {
                        paths.push(greedy_path(mesh, (r1, c1), (r2, c2)));
                    }
                }
            }
        }
    }
    paths
}

/// Attempts to *discover* a layering for an arbitrary set of paths over
/// `num_edges` edges, by topologically sorting the edge-precedence relation
/// (edge `u` precedes edge `v` when `v` directly follows `u` on some path).
///
/// Returns `Some(labels)` — one label per edge, strictly increasing along
/// every given path — iff the precedence graph is acyclic; `None` means no
/// labelling can layer these paths (Theorem 1 cannot apply), which is
/// exactly the §6 situation for greedy routing on the torus.
///
/// Runs in `O(num_edges + Σ path lengths)` using Kahn's algorithm.
#[must_use]
pub fn find_layering(num_edges: usize, paths: &[Vec<EdgeId>]) -> Option<Vec<usize>> {
    // Build the precedence multigraph (deduplicated adjacency).
    let mut succ: Vec<Vec<u32>> = vec![Vec::new(); num_edges];
    let mut indeg: Vec<u32> = vec![0; num_edges];
    {
        let mut seen = std::collections::HashSet::new();
        for path in paths {
            for w in path.windows(2) {
                let (a, b) = (w[0].0, w[1].0);
                if seen.insert((a, b)) {
                    succ[a as usize].push(b);
                    indeg[b as usize] += 1;
                }
            }
        }
    }
    // Kahn's algorithm, assigning each edge the longest-path depth so that
    // labels strictly increase along every precedence arc.
    let mut label = vec![0usize; num_edges];
    let mut queue: std::collections::VecDeque<u32> = indeg
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d == 0)
        .map(|(i, _)| i as u32)
        .collect();
    let mut visited = 0usize;
    while let Some(u) = queue.pop_front() {
        visited += 1;
        let lu = label[u as usize];
        for &v in &succ[u as usize] {
            label[v as usize] = label[v as usize].max(lu + 1);
            indeg[v as usize] -= 1;
            if indeg[v as usize] == 0 {
                queue.push_back(v);
            }
        }
    }
    (visited == num_edges).then_some(label)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::Topology;

    #[test]
    fn labels_match_paper_table() {
        // n = 5, 1-based example: right edge from (2,3): label 3.
        let m = Mesh2D::square(5);
        assert_eq!(lemma2_label(&m, m.right_edge(1, 2)), 3);
        // Left edge ((2,4),(2,3)): j = 3, label n−j = 2.
        assert_eq!(lemma2_label(&m, m.left_edge(1, 2)), 2);
        // Down edge ((2,3),(3,3)): label n+i−1 = 5+2−1 = 6.
        assert_eq!(lemma2_label(&m, m.down_edge(1, 2)), 6);
        // Up edge ((3,3),(2,3)): label 2n−i−1 = 10−2−1 = 7.
        assert_eq!(lemma2_label(&m, m.up_edge(1, 2)), 7);
    }

    #[test]
    fn row_labels_below_column_labels() {
        let m = Mesh2D::square(6);
        for e in crate::traits::Topology::edges(&m) {
            let lbl = lemma2_label(&m, e);
            if m.direction(e).is_row() {
                assert!((1..=5).contains(&lbl), "row label {lbl}");
            } else {
                assert!((6..=10).contains(&lbl), "column label {lbl}");
            }
        }
    }

    #[test]
    fn lemma2_layers_every_greedy_path() {
        for n in [2usize, 3, 4, 5, 7] {
            let m = Mesh2D::square(n);
            let paths = all_greedy_paths(&m);
            assert_eq!(
                check_layered(&paths, |e| lemma2_label(&m, e)),
                Ok(()),
                "n = {n}"
            );
        }
    }

    #[test]
    fn greedy_path_is_shortest_and_column_first() {
        let m = Mesh2D::square(5);
        let p = greedy_path(&m, (4, 0), (1, 3));
        assert_eq!(p.len(), 3 + 3);
        // First three edges are row edges, last three are column edges.
        for e in &p[..3] {
            assert!(m.direction(*e).is_row());
        }
        for e in &p[3..] {
            assert!(!m.direction(*e).is_row());
        }
        // Consecutive edges share a node.
        use crate::traits::Topology;
        for w in p.windows(2) {
            assert_eq!(m.edge_target(w[0]), m.edge_source(w[1]));
        }
        assert_eq!(m.edge_source(p[0]), m.node(4, 0));
        assert_eq!(m.edge_target(p[5]), m.node(1, 3));
    }

    #[test]
    fn check_layered_detects_violations() {
        let m = Mesh2D::square(3);
        // A fabricated "path" that repeats an edge must violate strictness.
        let e = m.right_edge(0, 0);
        let bad = vec![vec![e, e]];
        assert_eq!(check_layered(&bad, |x| lemma2_label(&m, x)), Err((0, 0)));
    }

    #[test]
    fn path_count_matches() {
        let m = Mesh2D::square(3);
        assert_eq!(all_greedy_paths(&m).len(), 9 * 8);
    }

    #[test]
    fn find_layering_succeeds_on_array_greedy_paths() {
        for n in [3usize, 4, 5] {
            let m = Mesh2D::square(n);
            let paths = all_greedy_paths(&m);
            let labels = find_layering(m.num_edges(), &paths)
                .unwrap_or_else(|| panic!("array n={n} must be layerable"));
            assert_eq!(check_layered(&paths, |e| labels[e.index()]), Ok(()));
        }
    }

    #[test]
    fn find_layering_fails_on_a_directed_ring() {
        // Three edges forming a ring: e0 → e1 → e2 → e0 as consecutive
        // pairs across paths. No layering exists (§6's torus obstruction).
        let paths = vec![
            vec![EdgeId(0), EdgeId(1)],
            vec![EdgeId(1), EdgeId(2)],
            vec![EdgeId(2), EdgeId(0)],
        ];
        assert_eq!(find_layering(3, &paths), None);
    }

    #[test]
    fn find_layering_handles_disconnected_edges() {
        // Edges never appearing in any path get label 0 and do not block.
        let paths = vec![vec![EdgeId(0), EdgeId(2)]];
        let labels = find_layering(4, &paths).unwrap();
        assert!(labels[2] > labels[0]);
        assert_eq!(labels[1], 0);
        assert_eq!(labels[3], 0);
    }

    #[test]
    fn discovered_labels_at_most_lemma2_depth() {
        // The longest-path labelling is the minimal layering; Lemma 2's
        // hand-crafted labels use 2n−2 layers, the discovered one no more.
        let n = 5;
        let m = Mesh2D::square(n);
        let paths = all_greedy_paths(&m);
        let labels = find_layering(m.num_edges(), &paths).unwrap();
        let depth = labels.iter().max().unwrap() + 1;
        assert!(depth <= 2 * n - 2, "depth {depth}");
    }
}
