//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Strategy producing `Vec<S::Value>` with a length drawn from a range.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    len: std::ops::Range<usize>,
}

/// Generates vectors whose length is uniform in `len` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.rng().gen_range(self.len.clone());
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
