//! Exact per-edge arrival rates.
//!
//! For any *oblivious* router the long-run arrival rate at edge `e` is
//!
//! ```text
//! λ_e = Σ_{s, d} λ_s · P[dest = d | src = s] · P[path s→d crosses e]
//! ```
//!
//! [`edge_rates_enumerated`] evaluates this sum exactly by path enumeration;
//! it works for every router/destination pair in this crate and serves as
//! the ground truth that validates the closed forms:
//!
//! * [`mesh_thm6_rates`] — Theorem 6 (Harchol-Balter & Black): on the
//!   `n × n` array under greedy routing with uniform destinations, an edge
//!   with crossing index `i` has `λ_e = (λ/n)·i(n−i)`;
//! * [`hypercube_rate`] — §4.5: all hypercube edges carry `λ·p`;
//! * [`butterfly_rate`] — §4.5: all butterfly edges carry `λ/2`;
//! * [`torus_row_rates`] — wraparound flow split for the torus of §6.

use crate::dest::{DestSampler, DestSupport};
use crate::router::ObliviousRouter;
use meshbound_topology::{Mesh2D, NodeId, Topology};

/// Exact per-edge arrival rates by path enumeration.
///
/// `sources` lists the packet-generating nodes (all nodes for the array, the
/// level-0 nodes for a butterfly), each generating at Poisson rate
/// `lambda_per_source`.
pub fn edge_rates_enumerated<T, R, D>(
    topo: &T,
    router: &R,
    dest: &D,
    lambda_per_source: f64,
    sources: &[NodeId],
) -> Vec<f64>
where
    T: Topology,
    R: ObliviousRouter<T>,
    D: DestSampler<T>,
{
    let rates = vec![lambda_per_source; sources.len()];
    edge_rates_weighted(topo, router, dest, &rates, sources)
}

/// Exact per-edge arrival rates with a **per-source rate vector** —
/// the general form behind [`edge_rates_enumerated`], used by weighted
/// sources, hotspot source models and traffic matrices.
///
/// `rates_per_source[i]` is the Poisson rate of `sources[i]`; zero-rate
/// sources are skipped.
///
/// # Panics
///
/// Panics if the two slices differ in length.
pub fn edge_rates_weighted<T, R, D>(
    topo: &T,
    router: &R,
    dest: &D,
    rates_per_source: &[f64],
    sources: &[NodeId],
) -> Vec<f64>
where
    T: Topology,
    R: ObliviousRouter<T>,
    D: DestSampler<T>,
{
    assert_eq!(
        rates_per_source.len(),
        sources.len(),
        "one rate per source required"
    );
    let mut rates = vec![0.0; topo.num_edges()];
    for (&s, &rate) in sources.iter().zip(rates_per_source) {
        if rate == 0.0 {
            continue;
        }
        for d in topo.nodes() {
            let w = dest.weight(topo, s, d);
            if w == 0.0 {
                continue;
            }
            for (p, path) in router.paths(topo, s, d) {
                let contribution = rate * w * p;
                for e in path {
                    rates[e.index()] += contribution;
                }
            }
        }
    }
    rates
}

/// Sparse-support fast path for [`edge_rates_weighted`].
///
/// When every source's destination distribution decomposes as *a handful of
/// point masses plus a shared uniform remainder*
/// ([`DestSupport::Sparse`](crate::dest::DestSupport)), the exact rate sum
/// splits the same way:
///
/// ```text
/// λ_e = Σ_s λ_s · Σ_{(d, w) ∈ points(s)} w · P[path s→d crosses e]
///       + uniform · λ_e^{uniform destinations}
/// ```
///
/// The point-mass part costs O(points · route length) per source — for a
/// permutation that is O(N · diameter) total instead of the O(N² · route)
/// all-destinations scan — and the uniform remainder is delegated to
/// `uniform_rates`, which must return the per-edge rates the **same**
/// `rates_per_source` vector would induce under uniform destinations
/// (typically a closed form such as [`mesh_thm6_rates`]), or `None` if no
/// cheap form exists.
///
/// Returns `None` — caller falls back to enumeration — if any source reports
/// dense support, if sources disagree on the uniform remainder mass, or if a
/// uniform remainder is needed but `uniform_rates` declines.
///
/// # Panics
///
/// Panics if the two slices differ in length.
pub fn edge_rates_sparse<T, R, D, F>(
    topo: &T,
    router: &R,
    dest: &D,
    rates_per_source: &[f64],
    sources: &[NodeId],
    uniform_rates: F,
) -> Option<Vec<f64>>
where
    T: Topology,
    R: ObliviousRouter<T>,
    D: DestSampler<T>,
    F: FnOnce() -> Option<Vec<f64>>,
{
    assert_eq!(
        rates_per_source.len(),
        sources.len(),
        "one rate per source required"
    );
    let mut rates = vec![0.0; topo.num_edges()];
    let mut uniform_mass: Option<f64> = None;
    for (&s, &rate) in sources.iter().zip(rates_per_source) {
        let DestSupport::Sparse { points, uniform } = dest.support(topo, s) else {
            return None;
        };
        match uniform_mass {
            None => uniform_mass = Some(uniform),
            Some(u) if u != uniform => return None,
            Some(_) => {}
        }
        if rate == 0.0 {
            continue;
        }
        for (d, w) in points {
            if w == 0.0 {
                continue;
            }
            for (p, path) in router.paths(topo, s, d) {
                let contribution = rate * w * p;
                for e in path {
                    rates[e.index()] += contribution;
                }
            }
        }
    }
    if let Some(uniform) = uniform_mass {
        if uniform > 0.0 {
            let base = uniform_rates()?;
            debug_assert_eq!(base.len(), rates.len());
            for (r, b) in rates.iter_mut().zip(&base) {
                *r += uniform * b;
            }
        }
    }
    Some(rates)
}

/// All nodes of a topology, as a source list.
#[must_use]
pub fn all_nodes<T: Topology>(topo: &T) -> Vec<NodeId> {
    topo.nodes().collect()
}

/// Theorem 6 closed-form rates on a square mesh under greedy routing with
/// uniform destinations: `λ_e = (λ/n)·i(n−i)` where `i` is the edge's
/// crossing index.
///
/// # Panics
///
/// Panics if the mesh is not square.
#[must_use]
pub fn mesh_thm6_rates(mesh: &Mesh2D, lambda: f64) -> Vec<f64> {
    let n = mesh.side();
    mesh.edges()
        .map(|e| mesh_class_rate(n, lambda, mesh.crossing_index(e)))
        .collect()
}

/// Rate of a crossing-index class: `(λ/n)·i(n−i)`.
#[must_use]
pub fn mesh_class_rate(n: usize, lambda: f64, i: usize) -> f64 {
    debug_assert!((1..n).contains(&i));
    lambda / n as f64 * (i as f64) * ((n - i) as f64)
}

/// The largest per-edge rate on the square mesh: `(λ/n)·⌊n²/4⌋`.
#[must_use]
pub fn mesh_max_rate(n: usize, lambda: f64) -> f64 {
    mesh_class_rate(n, lambda, n / 2)
}

/// Hypercube edge rate under dimension-order routing with Bernoulli-`p`
/// destinations: every edge carries `λ·p` (§4.5).
#[must_use]
pub fn hypercube_rate(lambda: f64, p: f64) -> f64 {
    lambda * p
}

/// Butterfly edge rate with uniform outputs: every edge carries `λ/2`
/// (§4.5: each level-`l` node splits its flow evenly over two edges).
#[must_use]
pub fn butterfly_rate(lambda: f64) -> f64 {
    lambda / 2.0
}

/// Torus per-direction row-edge rates `(right, left)` under shortest-wrap
/// greedy routing with uniform destinations (ties toward `Right`).
///
/// By symmetry every `Right` edge carries `λ·E[Δ⁺]` where `Δ` is the wrap
/// displacement of a uniform pair; for odd `n` the two directions are equal,
/// for even `n` the tie-break loads `Right` more heavily. Column edges
/// behave identically with `Down`/`Up`.
#[must_use]
pub fn torus_row_rates(n: usize, lambda: f64) -> (f64, f64) {
    let nf = n as f64;
    if n % 2 == 1 {
        let half = (n - 1) / 2;
        let e_pos = (half * (half + 1) / 2) as f64 / nf;
        (lambda * e_pos, lambda * e_pos)
    } else {
        let pos_sum = (n / 2) * (n / 2 + 1) / 2; // 1 + … + n/2
        let neg_sum = (n / 2 - 1) * (n / 2) / 2; // 1 + … + (n/2 − 1)
        (lambda * pos_sum as f64 / nf, lambda * neg_sum as f64 / nf)
    }
}

/// Sum of all edge rates; by conservation this equals
/// `Σ_s λ_s · E[route length]`, a useful cross-check (and the identity the
/// paper invokes in §5.1 when computing `D*`).
#[must_use]
pub fn total_rate(rates: &[f64]) -> f64 {
    rates.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dest::{BernoulliDest, ButterflyOutput, UniformDest};
    use crate::{ButterflyRouter, DimOrder, GreedyXY, RandomizedGreedy, TorusGreedy};
    use meshbound_topology::{Butterfly, Direction, Hypercube, Torus2D};

    #[test]
    fn thm6_matches_enumeration_on_mesh() {
        for n in [3usize, 4, 5] {
            let m = Mesh2D::square(n);
            let lambda = 0.37;
            let exact = edge_rates_enumerated(&m, &GreedyXY, &UniformDest, lambda, &all_nodes(&m));
            let closed = mesh_thm6_rates(&m, lambda);
            for e in m.edges() {
                assert!(
                    (exact[e.index()] - closed[e.index()]).abs() < 1e-12,
                    "n={n}, edge {e}: {} vs {}",
                    exact[e.index()],
                    closed[e.index()]
                );
            }
        }
    }

    #[test]
    fn thm6_directional_forms() {
        // Spot-check the paper's table: edge directed Right from (i, j)
        // (1-based) has rate (λ/n)·j(n−j).
        let n = 6;
        let m = Mesh2D::square(n);
        let lambda = 1.0;
        let rates = mesh_thm6_rates(&m, lambda);
        // Right edge from column j=2 (1-based): (λ/n)·2·4.
        let e = m.right_edge(3, 1);
        assert!((rates[e.index()] - 2.0 * 4.0 / 6.0).abs() < 1e-12);
        // Left edge from (i, j=3) → (i, 2): (λ/n)(j−1)(n−j+1) = 2·4/6.
        let e = m.left_edge(0, 1);
        assert!((rates[e.index()] - 2.0 * 4.0 / 6.0).abs() < 1e-12);
        // Down edge from row i=3: (λ/n)·3·3.
        let e = m.down_edge(2, 4);
        assert!((rates[e.index()] - 3.0 * 3.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn rate_conservation_mesh() {
        let n = 5;
        let m = Mesh2D::square(n);
        let lambda = 0.8;
        let rates = mesh_thm6_rates(&m, lambda);
        let expected = lambda * (n * n) as f64 * m.mean_distance();
        assert!((total_rate(&rates) - expected).abs() < 1e-9);
    }

    #[test]
    fn randomized_greedy_preserves_total_rate() {
        let m = Mesh2D::square(4);
        let lambda = 0.5;
        let std = edge_rates_enumerated(&m, &GreedyXY, &UniformDest, lambda, &all_nodes(&m));
        let rnd =
            edge_rates_enumerated(&m, &RandomizedGreedy, &UniformDest, lambda, &all_nodes(&m));
        assert!((total_rate(&std) - total_rate(&rnd)).abs() < 1e-9);
        // Randomized greedy symmetrizes rows and columns: the rate on a right
        // edge equals the rate on the transposed down edge.
        let e_right = m.right_edge(1, 2);
        let e_down = m.down_edge(2, 1);
        assert!((rnd[e_right.index()] - rnd[e_down.index()]).abs() < 1e-12);
    }

    #[test]
    fn randomized_peak_rate_not_lower_than_greedy() {
        // The coin flip spreads row-phase traffic across both edge classes;
        // the peak stays at the central cut.
        let m = Mesh2D::square(6);
        let lambda = 0.4;
        let rnd =
            edge_rates_enumerated(&m, &RandomizedGreedy, &UniformDest, lambda, &all_nodes(&m));
        let peak_rnd = rnd.iter().cloned().fold(0.0f64, f64::max);
        let peak_std = mesh_max_rate(6, lambda);
        assert!(peak_rnd >= peak_std - 1e-12);
    }

    #[test]
    fn hypercube_rates_uniform_lambda_p() {
        let h = Hypercube::new(4);
        let lambda = 0.3;
        for p in [0.25, 0.5, 0.75] {
            let rates = edge_rates_enumerated(
                &h,
                &DimOrder,
                &BernoulliDest::new(p),
                lambda,
                &all_nodes(&h),
            );
            for e in h.edges() {
                assert!(
                    (rates[e.index()] - hypercube_rate(lambda, p)).abs() < 1e-12,
                    "p={p}, e={e}"
                );
            }
        }
    }

    #[test]
    fn butterfly_rates_lambda_over_two() {
        let b = Butterfly::new(3);
        let lambda = 0.7;
        let sources: Vec<NodeId> = (0..b.rows()).map(|w| b.node(0, w)).collect();
        let rates = edge_rates_enumerated(&b, &ButterflyRouter, &ButterflyOutput, lambda, &sources);
        for e in b.edges() {
            assert!(
                (rates[e.index()] - butterfly_rate(lambda)).abs() < 1e-12,
                "e={e}"
            );
        }
    }

    #[test]
    fn torus_rates_match_closed_form() {
        for n in [4usize, 5] {
            let t = Torus2D::new(n);
            let lambda = 0.2;
            let rates =
                edge_rates_enumerated(&t, &TorusGreedy, &UniformDest, lambda, &all_nodes(&t));
            let (right, left) = torus_row_rates(n, lambda);
            for e in t.edges() {
                let want = match t.direction(e) {
                    Direction::Right | Direction::Down => right,
                    Direction::Left | Direction::Up => left,
                };
                assert!(
                    (rates[e.index()] - want).abs() < 1e-12,
                    "n={n}, e={e}, dir {:?}: {} vs {want}",
                    t.direction(e),
                    rates[e.index()]
                );
            }
        }
    }

    #[test]
    fn sparse_matches_weighted_on_patterns() {
        use crate::pattern::{HotspotDest, MatrixDest, PermutationDest, PermutationKind};
        let m = Mesh2D::square(4);
        let srcs = all_nodes(&m);
        let rates: Vec<f64> = (0..srcs.len()).map(|i| 0.1 + 0.01 * i as f64).collect();
        let transpose = PermutationDest::new(&m, PermutationKind::Transpose).unwrap();
        let slow = edge_rates_weighted(&m, &GreedyXY, &transpose, &rates, &srcs);
        let fast = edge_rates_sparse(&m, &GreedyXY, &transpose, &rates, &srcs, || None).unwrap();
        for (a, b) in slow.iter().zip(&fast) {
            assert!((a - b).abs() < 1e-12);
        }
        // Hotspot needs the uniform remainder; decline it and the fast path
        // must bail rather than return wrong numbers.
        let hot = HotspotDest::new(m.node(1, 2), 0.4);
        assert!(edge_rates_sparse(&m, &GreedyXY, &hot, &rates, &srcs, || None).is_none());
        let uniform_base = edge_rates_weighted(&m, &GreedyXY, &UniformDest, &rates, &srcs);
        let slow = edge_rates_weighted(&m, &GreedyXY, &hot, &rates, &srcs);
        let fast = edge_rates_sparse(&m, &GreedyXY, &hot, &rates, &srcs, || {
            Some(uniform_base.clone())
        })
        .unwrap();
        for (a, b) in slow.iter().zip(&fast) {
            assert!((a - b).abs() < 1e-12);
        }
        // Matrix rows with a silent source.
        let rows = vec![
            vec![0.0, 0.5, 0.5, 0.0],
            vec![1.0, 0.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 0.0],
            vec![0.2, 0.3, 0.5, 0.0],
        ];
        let mx = MatrixDest::from_rows(&rows).unwrap();
        let small = Mesh2D::square(2);
        let ssrc = all_nodes(&small);
        let srates = vec![0.25; 4];
        let slow = edge_rates_weighted(&small, &GreedyXY, &mx, &srates, &ssrc);
        let fast = edge_rates_sparse(&small, &GreedyXY, &mx, &srates, &ssrc, || None).unwrap();
        for (a, b) in slow.iter().zip(&fast) {
            assert!((a - b).abs() < 1e-12);
        }
        // Dense samplers decline.
        let h = Hypercube::new(3);
        let hsrc = all_nodes(&h);
        let hrates = vec![0.1; hsrc.len()];
        assert!(edge_rates_sparse(
            &h,
            &DimOrder,
            &BernoulliDest::new(0.5),
            &hrates,
            &hsrc,
            || None
        )
        .is_none());
    }

    #[test]
    fn rate_conservation_torus() {
        let n = 5;
        let t = Torus2D::new(n);
        let lambda = 0.3;
        let rates = edge_rates_enumerated(&t, &TorusGreedy, &UniformDest, lambda, &all_nodes(&t));
        let expected = lambda * (n * n) as f64 * t.mean_distance();
        assert!((total_rate(&rates) - expected).abs() < 1e-9);
    }
}
