//! Scale tests: the sparse-support rate fast path must be bit-close to the
//! all-destinations enumeration everywhere both run, and million-node-class
//! scenarios must keep memory streaming (no per-edge vectors, no route
//! tables, no panics).
//!
//! The fast path ([`edge_rates_sparse`]) activates inside
//! `Scenario::edge_rates` only above 512 sources, so every published
//! ≤512-node number still comes from the enumeration path; these tests pin
//! the two paths together across the pattern zoo and then smoke-test the
//! wiring at 2¹⁰–2¹⁶ nodes.

use meshbound::routing::dest::{DestSampler, UniformDest};
use meshbound::routing::pattern::{HotspotDest, MatrixDest, PatternTopology, PermutationDest};
use meshbound::routing::rates::{
    all_nodes, edge_rates_sparse, edge_rates_weighted, mesh_thm6_rates,
};
use meshbound::routing::{DimOrder, GreedyXY, ObliviousRouter, RandomizedGreedy, TorusGreedy};
use meshbound::topology::{Hypercube, Mesh2D, NodeId, Topology, Torus2D};
use meshbound::{Load, PermutationKind, Scenario, TrafficSpec};
use proptest::prelude::*;

const TOL: f64 = 1e-12;

fn assert_rates_close(label: &str, fast: &[f64], slow: &[f64]) {
    assert_eq!(fast.len(), slow.len(), "{label}: length");
    for (i, (a, b)) in fast.iter().zip(slow).enumerate() {
        assert!(
            (a - b).abs() <= TOL,
            "{label}: edge {i}: sparse {a} vs enumerated {b}"
        );
    }
}

/// Sparse vs enumerated for one sampler on one topology, with per-source
/// rates that are deliberately non-uniform so the weighting matters.
fn check_sparse<T, R, D>(label: &str, topo: &T, router: &R, dest: &D)
where
    T: Topology,
    R: ObliviousRouter<T>,
    D: DestSampler<T>,
{
    let sources = all_nodes(topo);
    let rates: Vec<f64> = (0..sources.len())
        .map(|i| 0.05 + 0.003 * (i % 17) as f64)
        .collect();
    let slow = edge_rates_weighted(topo, router, dest, &rates, &sources);
    let fast = edge_rates_sparse(topo, router, dest, &rates, &sources, || None)
        .unwrap_or_else(|| panic!("{label}: sparse path declined"));
    assert_rates_close(label, &fast, &slow);
}

#[test]
fn sparse_matches_enumeration_across_the_pattern_zoo() {
    // Every permutation each topology supports, on ≤512-node instances.
    let mesh = Mesh2D::square(8);
    let torus = Torus2D::new(8);
    let cube = Hypercube::new(6);
    for kind in PermutationKind::ALL {
        if mesh.supports_permutation(kind).is_ok() {
            let dest = PermutationDest::new(&mesh, kind).unwrap();
            check_sparse(&format!("mesh {kind}"), &mesh, &GreedyXY, &dest);
            check_sparse(
                &format!("mesh randomized {kind}"),
                &mesh,
                &RandomizedGreedy,
                &dest,
            );
        }
        if torus.supports_permutation(kind).is_ok() {
            let dest = PermutationDest::new(&torus, kind).unwrap();
            check_sparse(&format!("torus {kind}"), &torus, &TorusGreedy, &dest);
        }
        if cube.supports_permutation(kind).is_ok() {
            let dest = PermutationDest::new(&cube, kind).unwrap();
            check_sparse(&format!("hypercube {kind}"), &cube, &DimOrder, &dest);
        }
    }
}

#[test]
fn sparse_hotspot_needs_and_uses_the_uniform_remainder() {
    // The uniform base must correspond to the SAME per-source rates, so
    // these arms use constant rates and supply the matching base directly.
    let mesh = Mesh2D::square(8);
    let sources = all_nodes(&mesh);
    let rates = vec![0.1; sources.len()];
    let hot = HotspotDest::new(mesh.node(3, 4), 0.3);
    // Without a uniform closed form the fast path must decline…
    assert!(edge_rates_sparse(&mesh, &GreedyXY, &hot, &rates, &sources, || None).is_none());
    // …and with it the decomposition point-masses + 0.7 × uniform is exact
    // (the Theorem 6 closed form is the base the scenario layer wires in).
    let slow = edge_rates_weighted(&mesh, &GreedyXY, &hot, &rates, &sources);
    let fast = edge_rates_sparse(&mesh, &GreedyXY, &hot, &rates, &sources, || {
        Some(mesh_thm6_rates(&mesh, 0.1))
    })
    .expect("mesh hotspot: sparse path declined");
    assert_rates_close("mesh hotspot", &fast, &slow);

    let cube = Hypercube::new(6);
    let hot = HotspotDest::new(NodeId(17), 0.45);
    let sources = all_nodes(&cube);
    let per = vec![0.2; sources.len()];
    let slow = edge_rates_weighted(&cube, &DimOrder, &hot, &per, &sources);
    let fast = edge_rates_sparse(&cube, &DimOrder, &hot, &per, &sources, || {
        Some(edge_rates_weighted(
            &cube,
            &DimOrder,
            &UniformDest,
            &per,
            &sources,
        ))
    })
    .expect("hypercube hotspot: sparse path declined");
    assert_rates_close("hypercube hotspot", &fast, &slow);
}

#[test]
fn scenario_edge_rates_agree_with_direct_enumeration_above_the_gate() {
    // hypercube:10 has 1024 > 512 sources, so Scenario::edge_rates takes
    // the sparse path; enumerate directly and compare. This pins the
    // scenario wiring (gate, closures, λ resolution), not just the kernel.
    let cube = Hypercube::new(10);
    let sources = all_nodes(&cube);
    for (traffic, label) in [
        (TrafficSpec::shuffle(), "shuffle"),
        (TrafficSpec::bit_reversal(), "bitrev"),
        (TrafficSpec::hotspot(0.25), "hotspot"),
    ] {
        let sc = Scenario::hypercube(10)
            .traffic(traffic.clone())
            .load(Load::Lambda(0.4));
        let got = sc.edge_rates();
        let per = vec![0.4; sources.len()];
        let want = match &traffic.pattern {
            meshbound::PatternSpec::Permutation { kind } => {
                let dest = PermutationDest::new(&cube, *kind).unwrap();
                edge_rates_weighted(&cube, &DimOrder, &dest, &per, &sources)
            }
            meshbound::PatternSpec::Hotspot { frac, .. } => {
                let dest = HotspotDest::new(cube.central_node(), *frac);
                edge_rates_weighted(&cube, &DimOrder, &dest, &per, &sources)
            }
            other => panic!("unexpected pattern {other:?}"),
        };
        assert_rates_close(&format!("hypercube:10 {label}"), &got, &want);
        // The bounds pipeline built on these rates stays finite.
        let report = meshbound::BoundsReport::compute_for(&sc);
        assert!(report.stability_lambda.is_finite() && report.stability_lambda > 0.0);
        assert!(report.mean_distance > 0.0, "{label}");
    }
}

proptest! {
    /// Random sparse matrices (silent rows included) on a small mesh:
    /// the fast path reproduces enumeration to 1e-12.
    #[test]
    fn sparse_matrix_rates_match_enumeration(
        entries in proptest::collection::vec(0u8..4, (16 * 16)..(16 * 16 + 1)),
        scale_milli in 1u32..2000,
    ) {
        let n = 16usize;
        let scale = f64::from(scale_milli) / 1000.0;
        let mut rows: Vec<Vec<f64>> = (0..n)
            .map(|r| entries[r * n..(r + 1) * n].iter().map(|&e| scale * f64::from(e)).collect())
            .collect();
        // MatrixDest rejects the all-zero matrix (rightly); pin one entry
        // positive so every generated case is a valid workload.
        rows[0][1] += scale;
        let mesh = Mesh2D::square(4);
        let dest = MatrixDest::from_rows(&rows).unwrap();
        let sources = all_nodes(&mesh);
        let per: Vec<f64> = (0..sources.len()).map(|i| 0.01 + 0.02 * (i % 5) as f64).collect();
        let slow = edge_rates_weighted(&mesh, &GreedyXY, &dest, &per, &sources);
        let fast = edge_rates_sparse(&mesh, &GreedyXY, &dest, &per, &sources, || None).unwrap();
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((a - b).abs() <= TOL);
        }
    }

    /// Random hotspot fractions and locations on mesh and torus, uniform
    /// remainder supplied from the closed forms the scenario layer uses.
    #[test]
    fn sparse_hotspot_rates_match_enumeration(
        frac_milli in 1u32..1000,
        node in 0u32..64,
        lambda_milli in 1u32..800,
    ) {
        let frac = f64::from(frac_milli) / 1000.0;
        let lambda = f64::from(lambda_milli) / 1000.0;
        let mesh = Mesh2D::square(8);
        let hot = HotspotDest::new(NodeId(node), frac);
        let sources = all_nodes(&mesh);
        let per = vec![lambda; sources.len()];
        let slow = edge_rates_weighted(&mesh, &GreedyXY, &hot, &per, &sources);
        let fast = edge_rates_sparse(&mesh, &GreedyXY, &hot, &per, &sources, || {
            Some(mesh_thm6_rates(&mesh, lambda))
        })
        .unwrap();
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((a - b).abs() <= TOL);
        }
    }
}

#[test]
fn large_hypercube_streams_its_edge_stats() {
    // 2¹⁶ nodes, 2²⁰ edges: far above both the route-table gate and the
    // streaming-stats gate. A short horizon keeps this a smoke test; the
    // point is that it runs table-free, keeps per-edge collection
    // streaming, and produces a coherent report.
    let sc = Scenario::hypercube(16)
        .traffic(TrafficSpec::shuffle())
        .load(Load::TableRho(0.3))
        .horizon(4.0)
        .warmup(1.0);
    // The large-scale default horizon applies before the explicit override.
    assert_eq!(Scenario::hypercube(16).horizon, 50.0);
    let res = sc.run();
    assert!(res.completed > 0);
    let edges = 16 << 16;
    assert!(
        res.edge_throughput.is_empty(),
        "per-edge vector materialized at {edges} edges"
    );
    assert_eq!(res.edge_throughput_stats.edges, edges);
    assert!(res.edge_throughput_stats.max > 0.0);
    assert!(res.edge_throughput_stats.mean > 0.0);
    assert!(res.edge_throughput_stats.max >= res.edge_throughput_stats.mean);
    assert!(res.edge_mean_queue.is_none());
    // Per-edge queue tracking is a typed error at this scale, not an OOM.
    let rejected = sc.track_edge_queues(true).validate();
    assert!(
        rejected.is_err(),
        "queues=true must be rejected at 2^20 edges"
    );

    // Below the gate the full vector is still there and consistent with
    // the streaming summary.
    let small = Scenario::hypercube(6).load(Load::Lambda(0.2)).run();
    assert_eq!(small.edge_throughput.len(), 6 << 6);
    let max = small.edge_throughput.iter().cloned().fold(0.0f64, f64::max);
    assert_eq!(max.to_bits(), small.edge_throughput_stats.max.to_bits());
}

#[test]
fn million_node_bounds_report_without_simulation() {
    // The acceptance scenario's analytic side at full 2²⁰ scale: rates,
    // stability and the bounds report must all come out finite through the
    // sparse path (no 2⁴⁰-entry enumeration, no route table).
    let sc = Scenario::parse("hypercube:20 traffic=shuffle load=rho:0.5").unwrap();
    assert_eq!(sc.horizon, 50.0, "large-scale default horizon");
    let report = meshbound::BoundsReport::compute_for(&sc);
    assert_eq!(report.nodes, 1 << 20);
    assert!(report.lambda > 0.0 && report.lambda.is_finite());
    assert!(report.stability_lambda.is_finite() && report.stability_lambda > 0.0);
    assert!(report.mean_distance > 0.0);
    assert!((report.utilization - 0.5).abs() < 1e-9);
}
