//! Single-queue simulators used to validate the analytic building blocks.
//!
//! A Lindley-recursion M/G/1 simulator: exact for FIFO single-server queues,
//! used in tests to confirm the M/M/1, M/D/1 and Pollaczek–Khinchine
//! formulas that the bounds are assembled from.

use crate::rng::{derive_rng, exp_sample};
use crate::service::ServiceKind;
use meshbound_stats::Welford;
use serde::{Deserialize, Serialize};

/// Result of a single-queue simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueueSimResult {
    /// Mean sojourn time (wait + service).
    pub avg_sojourn: f64,
    /// Mean number in system via Little's law on the empirical rate.
    pub avg_number: f64,
    /// Customers served.
    pub served: u64,
}

/// Simulates an M/G/1 FIFO queue by the Lindley recursion.
///
/// `customers` arrivals are generated with rate `lambda`; the first
/// `warmup_customers` are discarded from statistics.
#[must_use]
pub fn simulate_mg1(
    lambda: f64,
    service: ServiceKind,
    service_rate: f64,
    customers: u64,
    warmup_customers: u64,
    seed: u64,
) -> QueueSimResult {
    assert!(lambda > 0.0);
    let mut rng = derive_rng(seed, 3);
    let mut sojourn = Welford::new();
    let mut arrival_time = 0.0f64;
    let mut depart_prev = 0.0f64; // departure time of the previous customer
    let mut measured_span_start = None;
    let mut last_arrival = 0.0;
    for i in 0..customers {
        arrival_time += exp_sample(&mut rng, lambda);
        let start = depart_prev.max(arrival_time);
        let s = service.sample(service_rate, &mut rng);
        let depart = start + s;
        if i >= warmup_customers {
            sojourn.push(depart - arrival_time);
            if measured_span_start.is_none() {
                measured_span_start = Some(arrival_time);
            }
            last_arrival = arrival_time;
        }
        depart_prev = depart;
    }
    let span = last_arrival - measured_span_start.unwrap_or(0.0);
    let measured = customers - warmup_customers;
    let emp_rate = if span > 0.0 {
        (measured - 1) as f64 / span
    } else {
        0.0
    };
    QueueSimResult {
        avg_sojourn: sojourn.mean(),
        avg_number: sojourn.mean() * emp_rate,
        served: measured,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshbound_queueing::single::{md1_mean_sojourn, mg1_mean_sojourn, mm1_mean_sojourn};

    #[test]
    fn md1_sojourn_matches_pollaczek_khinchine() {
        for lambda in [0.3, 0.6, 0.8] {
            let res = simulate_mg1(lambda, ServiceKind::Deterministic, 1.0, 400_000, 20_000, 7);
            let expect = md1_mean_sojourn(lambda);
            let rel = (res.avg_sojourn - expect).abs() / expect;
            assert!(
                rel < 0.03,
                "λ={lambda}: sim {} vs P-K {expect}",
                res.avg_sojourn
            );
        }
    }

    #[test]
    fn mm1_sojourn_matches_closed_form() {
        for lambda in [0.25, 0.5, 0.75] {
            let res = simulate_mg1(lambda, ServiceKind::Exponential, 1.0, 400_000, 20_000, 8);
            let expect = mm1_mean_sojourn(lambda, 1.0);
            let rel = (res.avg_sojourn - expect).abs() / expect;
            assert!(
                rel < 0.05,
                "λ={lambda}: sim {} vs M/M/1 {expect}",
                res.avg_sojourn
            );
        }
    }

    #[test]
    fn faster_server_shortens_sojourn() {
        let slow = simulate_mg1(0.5, ServiceKind::Deterministic, 1.0, 100_000, 5_000, 9);
        let fast = simulate_mg1(0.5, ServiceKind::Deterministic, 2.0, 100_000, 5_000, 9);
        assert!(fast.avg_sojourn < slow.avg_sojourn);
        let expect = mg1_mean_sojourn(0.5, 0.5, 0.25);
        let rel = (fast.avg_sojourn - expect).abs() / expect;
        assert!(rel < 0.05, "sim {} vs {expect}", fast.avg_sojourn);
    }

    #[test]
    fn md1_number_via_littles_law() {
        let lambda = 0.7;
        let res = simulate_mg1(lambda, ServiceKind::Deterministic, 1.0, 400_000, 20_000, 10);
        let expect = meshbound_queueing::single::md1_mean_number(lambda);
        let rel = (res.avg_number - expect).abs() / expect;
        assert!(rel < 0.05, "sim N {} vs {expect}", res.avg_number);
    }
}
