//! Remaining-distance combinatorics (Definitions 11 and 13, §4.4, §4.6).
//!
//! For a packet queued at edge `e`, the *expected remaining distance* `d_e`
//! is the expected number of services it still needs (including the one at
//! `e`), with the expectation taken over the conditional destination
//! distribution of packets crossing `e`. Under greedy routing with uniform
//! destinations this conditional distribution is uniform over the nodes the
//! packet can still be headed to, which makes `d_e` a short sum.
//!
//! The module computes, exactly:
//!
//! * `d_e` per edge, and `d̄ = max_e d_e = n − 1/2` (Definition 11; attained
//!   by a packet at `(1,1)` headed right);
//! * the saturated-edge set (crossing index `n/2` for even `n`, indices
//!   `(n±1)/2` for odd `n`) drawn in the paper's Figure 2;
//! * `s_e` and `s̄ = max_e s_e` (Definition 13): `3/2` for even `n`,
//!   `2 + (n−1)/(n+1)` for odd `n`;
//! * the maximum number of saturated edges on any greedy path (2 even,
//!   4 odd);
//! * light-load closed forms for Table II's ratio `r = E[R]/E[N]` and Table
//!   III's `r_s`.

use meshbound_topology::{layering, Direction, EdgeId, Mesh2D, NodeId, Topology};

/// Expected remaining distance `d_e` for a packet queued at edge `e`
/// (including the service at `e`), under greedy routing with uniform
/// destinations.
///
/// # Panics
///
/// Panics if the mesh is not square.
#[must_use]
pub fn edge_remaining_distance(mesh: &Mesh2D, e: EdgeId) -> f64 {
    let n = mesh.side();
    let ((r1, c1), (r2, c2)) = mesh.edge_coords(e);
    match mesh.direction(e) {
        Direction::Right => {
            // Destination column uniform over c2..n−1, row uniform.
            horiz_mean(c1, c2, n) + vert_mean_all(r1, n)
        }
        Direction::Left => horiz_mean(c1, c2, n) + vert_mean_all(r1, n),
        Direction::Down => {
            // Column phase: destination is (row > r1, same column).
            let _ = c2;
            (r2..n).map(|rd| (rd - r1) as f64).sum::<f64>() / (n - r2) as f64
        }
        Direction::Up => (0..=r2).map(|rd| (r1 - rd) as f64).sum::<f64>() / (r2 + 1) as f64,
    }
}

/// Mean horizontal remaining hops for a row edge from column `c1` to `c2`:
/// destination columns are uniform over the far side of the crossing.
fn horiz_mean(c1: usize, c2: usize, n: usize) -> f64 {
    if c2 > c1 {
        // Columns c2..n−1, displacement col − c1.
        (c2..n).map(|cd| (cd - c1) as f64).sum::<f64>() / (n - c2) as f64
    } else {
        (0..=c2).map(|cd| (c1 - cd) as f64).sum::<f64>() / (c2 + 1) as f64
    }
}

/// Mean vertical hops from row `r` to a uniform destination row.
fn vert_mean_all(r: usize, n: usize) -> f64 {
    (0..n).map(|rd| rd.abs_diff(r) as f64).sum::<f64>() / n as f64
}

/// Maximum expected remaining distance `d̄` over all edges (Definition 11).
#[must_use]
pub fn max_expected_remaining_distance(mesh: &Mesh2D) -> f64 {
    mesh.edges()
        .map(|e| edge_remaining_distance(mesh, e))
        .fold(0.0, f64::max)
}

/// Closed form for `d̄` on the `n × n` array: `n − 1/2` (a packet at `(1,1)`
/// headed right: `n/2` horizontal plus `(n−1)/2` vertical).
#[must_use]
pub fn dbar_closed(n: usize) -> f64 {
    n as f64 - 0.5
}

/// Maximum route length `d = 2(n−1)` (corner to opposite corner), the
/// constant of Theorem 10.
#[must_use]
pub fn max_distance(n: usize) -> usize {
    2 * (n - 1)
}

/// The saturated crossing-index classes (1-based): `{n/2}` for even `n`,
/// `{(n−1)/2, (n+1)/2}` for odd `n`. These are the classes maximizing
/// `i(n−i)`, i.e. the edges whose utilization equals the network load.
#[must_use]
pub fn saturated_classes(n: usize) -> Vec<usize> {
    if n.is_multiple_of(2) {
        vec![n / 2]
    } else {
        vec![(n - 1) / 2, n.div_ceil(2)]
    }
}

/// All saturated edges of the mesh (Figure 2).
#[must_use]
pub fn saturated_edges(mesh: &Mesh2D) -> Vec<EdgeId> {
    let classes = saturated_classes(mesh.side());
    mesh.edges()
        .filter(|&e| classes.contains(&mesh.crossing_index(e)))
        .collect()
}

/// Number of saturated edges remaining on the greedy route from `cur` to
/// `dst`, **including** the edge currently being crossed. `O(1)` per call;
/// used by the simulator to maintain `R_s(t)` for Table III.
#[must_use]
pub fn remaining_saturated_count(mesh: &Mesh2D, cur: NodeId, dst: NodeId) -> usize {
    let n = mesh.side();
    let classes = saturated_classes(n);
    let (r, c) = mesh.coords(cur);
    let (rd, cd) = mesh.coords(dst);
    let mut count = 0;
    // Horizontal crossings: moving right from c to cd crosses indices
    // c+1..=cd (1-based); moving left crosses n−c..=n−1−cd reversed — i.e.
    // the left edge from column x+1 to x has index n−1−x (0-based x).
    for &s in &classes {
        if cd > c {
            // Right edges crossed have indices c+1..=cd.
            if s > c && s <= cd {
                count += 1;
            }
        } else if cd < c {
            // Left edges from x+1→x for x in cd..c−1: indices n−1−x, i.e.
            // n−c ..= n−1−cd.
            if s >= n - c && s <= n - 1 - cd {
                count += 1;
            }
        }
        if rd > r {
            if s > r && s <= rd {
                count += 1;
            }
        } else if rd < r && s >= n - r && s <= n - 1 - rd {
            count += 1;
        }
    }
    count
}

/// Expected number of saturated services remaining for a packet queued at
/// `e` (Definition 13's `s_e`), by exact enumeration of the conditional
/// destination distribution.
#[must_use]
pub fn edge_remaining_saturated(mesh: &Mesh2D, e: EdgeId) -> f64 {
    let n = mesh.side();
    let ((r1, c1), (r2, c2)) = mesh.edge_coords(e);
    let src = mesh.node(r1, c1);
    match mesh.direction(e) {
        Direction::Right => {
            let mut total = 0.0;
            let mut count = 0.0;
            for cd in c2..n {
                for rd in 0..n {
                    total += remaining_saturated_count(mesh, src, mesh.node(rd, cd)) as f64;
                    count += 1.0;
                }
            }
            total / count
        }
        Direction::Left => {
            let mut total = 0.0;
            let mut count = 0.0;
            for cd in 0..=c2 {
                for rd in 0..n {
                    total += remaining_saturated_count(mesh, src, mesh.node(rd, cd)) as f64;
                    count += 1.0;
                }
            }
            total / count
        }
        Direction::Down => {
            let mut total = 0.0;
            for rd in r2..n {
                total += remaining_saturated_count(mesh, src, mesh.node(rd, c1)) as f64;
            }
            total / (n - r2) as f64
        }
        Direction::Up => {
            let mut total = 0.0;
            for rd in 0..=r2 {
                total += remaining_saturated_count(mesh, src, mesh.node(rd, c1)) as f64;
            }
            total / (r2 + 1) as f64
        }
    }
}

/// Maximum expected remaining saturated distance `s̄` (Definition 13), by
/// enumeration over saturated edges (the maximum is always attained at a
/// saturated edge, since `s_e` counts the service at `e` only when `e` is
/// saturated).
#[must_use]
pub fn max_expected_remaining_saturated(mesh: &Mesh2D) -> f64 {
    mesh.edges()
        .map(|e| edge_remaining_saturated(mesh, e))
        .fold(0.0, f64::max)
}

/// Closed form for `s̄`: `3/2` for even `n`, `2 + (n−1)/(n+1)` for odd `n`
/// (which tends to 3 as `n → ∞`, as the paper notes).
#[must_use]
pub fn sbar_closed(n: usize) -> f64 {
    if n.is_multiple_of(2) {
        1.5
    } else {
        2.0 + (n as f64 - 1.0) / (n as f64 + 1.0)
    }
}

/// Maximum number of saturated edges on any single greedy route: 2 for even
/// `n`, 4 for odd `n` (§4.6 / Figure 2).
#[must_use]
pub fn max_saturated_on_path(mesh: &Mesh2D) -> usize {
    let n = mesh.side();
    let mut best = 0;
    for s in mesh.nodes() {
        for d in mesh.nodes() {
            best = best.max(remaining_saturated_count(mesh, s, d));
        }
    }
    debug_assert!(best <= if n.is_multiple_of(2) { 2 } else { 4 });
    best
}

/// Light-load limit of Table II's ratio `r = E[R]/E[N]`:
/// `(E[D²] + E[D]) / (2E[D])` with `D` the Manhattan distance of a uniform
/// pair. (At vanishing load, each packet's sojourn contributes `D(D+1)/2`
/// remaining-hop-time and `D` packet-time.)
#[must_use]
pub fn light_load_r(n: usize) -> f64 {
    let nf = n as f64;
    let e_axis = (nf * nf - 1.0) / (3.0 * nf); // E|Δ| per axis
    let e_axis2 = (nf * nf - 1.0) / 6.0; // E[Δ²] per axis
    let ed = 2.0 * e_axis;
    let ed2 = 2.0 * e_axis2 + 2.0 * e_axis * e_axis;
    (ed2 + ed) / (2.0 * ed)
}

/// Light-load limit of Table III's ratio `r_s = E[R_s]/E[N]`: the mean over
/// uniform pairs of the sum of (1-based) positions of saturated hops on the
/// greedy route, divided by the mean distance. Computed by exact
/// enumeration.
#[must_use]
pub fn light_load_rs(mesh: &Mesh2D) -> f64 {
    let n = mesh.side();
    let classes = saturated_classes(n);
    let mut pos_sum = 0.0;
    let mut dist_sum = 0.0;
    for s in mesh.nodes() {
        for d in mesh.nodes() {
            let path = layering::greedy_path(mesh, mesh.coords(s), mesh.coords(d));
            dist_sum += path.len() as f64;
            for (k, &e) in path.iter().enumerate() {
                if classes.contains(&mesh.crossing_index(e)) {
                    pos_sum += (k + 1) as f64;
                }
            }
        }
    }
    pos_sum / dist_sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshbound_routing::{GreedyXY, Router};

    #[test]
    fn dbar_matches_closed_form() {
        for n in [3usize, 4, 5, 8, 9] {
            let mesh = Mesh2D::square(n);
            let dbar = max_expected_remaining_distance(&mesh);
            assert!(
                (dbar - dbar_closed(n)).abs() < 1e-9,
                "n={n}: {dbar} vs {}",
                dbar_closed(n)
            );
        }
    }

    #[test]
    fn dbar_attained_at_corner_heading_right() {
        let n = 7;
        let mesh = Mesh2D::square(n);
        let corner_edge = mesh.right_edge(0, 0);
        let de = edge_remaining_distance(&mesh, corner_edge);
        assert!((de - dbar_closed(n)).abs() < 1e-9);
    }

    #[test]
    fn edge_remaining_distance_matches_route_enumeration() {
        // Cross-check d_e against brute-force averaging of actual greedy
        // route tails over the conditional destination set.
        let n = 5;
        let mesh = Mesh2D::square(n);
        for e in mesh.edges() {
            let ((r1, c1), (r2, c2)) = mesh.edge_coords(e);
            let src = mesh.node(r1, c1);
            let mut total = 0.0;
            let mut count = 0.0;
            for d in mesh.nodes() {
                let (rd, cd) = mesh.coords(d);
                // Destination compatible with crossing e?
                let compatible = match mesh.direction(e) {
                    Direction::Right => cd >= c2,
                    Direction::Left => cd <= c2,
                    Direction::Down => cd == c1 && rd >= r2,
                    Direction::Up => cd == c1 && rd <= r2,
                };
                if compatible {
                    total += GreedyXY.remaining_hops(&mesh, src, d, ()) as f64;
                    count += 1.0;
                }
            }
            let expect = total / count;
            let got = edge_remaining_distance(&mesh, e);
            assert!((got - expect).abs() < 1e-9, "edge {e}: {got} vs {expect}");
        }
    }

    #[test]
    fn saturated_class_counts() {
        assert_eq!(saturated_classes(6), vec![3]);
        assert_eq!(saturated_classes(5), vec![2, 3]);
        // Even n: 4n saturated edges; odd n: 8n.
        let even = Mesh2D::square(6);
        assert_eq!(saturated_edges(&even).len(), 24);
        let odd = Mesh2D::square(5);
        assert_eq!(saturated_edges(&odd).len(), 40);
    }

    #[test]
    fn saturated_classes_maximize_rate() {
        for n in [4usize, 5, 6, 9] {
            let classes = saturated_classes(n);
            let max_prod = classes[0] * (n - classes[0]);
            for i in 1..n {
                assert!(i * (n - i) <= max_prod);
                if classes.contains(&i) {
                    assert_eq!(i * (n - i), max_prod);
                }
            }
        }
    }

    #[test]
    fn remaining_saturated_count_matches_path_scan() {
        for n in [4usize, 5] {
            let mesh = Mesh2D::square(n);
            let classes = saturated_classes(n);
            for s in mesh.nodes() {
                for d in mesh.nodes() {
                    let path = layering::greedy_path(&mesh, mesh.coords(s), mesh.coords(d));
                    let scan = path
                        .iter()
                        .filter(|&&e| classes.contains(&mesh.crossing_index(e)))
                        .count();
                    let fast = remaining_saturated_count(&mesh, s, d);
                    assert_eq!(fast, scan, "n={n}, {s}→{d}");
                }
            }
        }
    }

    #[test]
    fn max_saturated_on_path_parity() {
        assert_eq!(max_saturated_on_path(&Mesh2D::square(4)), 2);
        assert_eq!(max_saturated_on_path(&Mesh2D::square(6)), 2);
        assert_eq!(max_saturated_on_path(&Mesh2D::square(5)), 4);
        assert_eq!(max_saturated_on_path(&Mesh2D::square(7)), 4);
    }

    #[test]
    fn sbar_matches_closed_form() {
        for n in [4usize, 6, 8, 5, 7, 9] {
            let mesh = Mesh2D::square(n);
            let sbar = max_expected_remaining_saturated(&mesh);
            assert!(
                (sbar - sbar_closed(n)).abs() < 1e-9,
                "n={n}: {sbar} vs {}",
                sbar_closed(n)
            );
        }
    }

    #[test]
    fn sbar_odd_tends_to_three() {
        assert!(sbar_closed(101) > 2.97);
        assert!(sbar_closed(101) < 3.0);
    }

    #[test]
    fn light_load_r_matches_paper_low_rho_values() {
        // Table II at ρ = 0.2 is already close to the light-load limit.
        let cases = [(5usize, 2.568), (10, 4.665), (15, 6.755), (20, 8.841)];
        for (n, printed) in cases {
            let r0 = light_load_r(n);
            assert!(
                (r0 - printed).abs() / printed < 0.01,
                "n={n}: closed form {r0} vs printed {printed}"
            );
        }
    }

    #[test]
    fn r_ratio_below_paper_bound() {
        // §4.4: r/n̄₂ < 0.7 for large n.
        for n in [15usize, 20, 30] {
            let nbar2 = 2.0 * n as f64 / 3.0;
            assert!(light_load_r(n) / nbar2 < 0.7, "n={n}");
        }
    }

    #[test]
    fn light_load_rs_parity_pattern() {
        // Odd n has two saturated classes per axis → roughly double r_s.
        let rs5 = light_load_rs(&Mesh2D::square(5));
        let rs6 = light_load_rs(&Mesh2D::square(6));
        let rs7 = light_load_rs(&Mesh2D::square(7));
        assert!(rs5 > rs6, "odd above even: {rs5} vs {rs6}");
        assert!(rs7 > rs6);
    }

    #[test]
    fn light_load_r_matches_direct_enumeration() {
        // r₀ = E[D(D+1)/2]/E[D] by brute force.
        for n in [3usize, 5, 8] {
            let mesh = Mesh2D::square(n);
            let mut num = 0.0;
            let mut den = 0.0;
            for a in mesh.nodes() {
                for b in mesh.nodes() {
                    let d = mesh.manhattan(a, b) as f64;
                    num += d * (d + 1.0) / 2.0;
                    den += d;
                }
            }
            let direct = num / den;
            assert!(
                (light_load_r(n) - direct).abs() < 1e-9,
                "n={n}: {} vs {direct}",
                light_load_r(n)
            );
        }
    }
}
