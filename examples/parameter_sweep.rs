//! Parameter sweep in one command's worth of code: declare a grid over
//! topologies and loads, run every cell in parallel, and read the
//! machine-checkable report — the same engine behind
//! `repro sweep <spec> --out results.json`.
//!
//! ```text
//! cargo run --release --example parameter_sweep
//! ```

use meshbound::sweep::{run_sweep, Jobs};
use meshbound::SweepSpec;
use meshbound_repro::banner;

fn main() {
    banner("Declare the grid");
    // The grammar names axes; `|` separates axis values. This is a
    // 3 topologies × 3 loads = 9-cell grid with two replications per cell
    // and load-adaptive horizons (longer runs near saturation).
    let spec = SweepSpec::parse(
        "topo=mesh:5|mesh:8|torus:6 load=rho:0.2|rho:0.5|rho:0.8 \
         reps=2 seed=7 horizon=auto:800:6000",
    )
    .expect("spec parses");
    println!("grid: {} cells — {}", spec.num_cells(), spec.spec_string());

    banner("Run it in parallel");
    let report = run_sweep(&spec, Jobs::Parallel).expect("sweep runs");
    print!("{}", report.to_text());

    banner("Machine-readable verdicts");
    // Every cell pairs its simulation with the paper's bounds; the JSON
    // report is what CI archives and gates on.
    for cell in &report.cells {
        println!(
            "{:<12} delay {:7.3}  in [{:.3}, {}]  {}",
            cell.label,
            cell.delay_mean,
            cell.bounds.lower_best,
            if cell.bounds.upper.is_finite() {
                format!("{:.3}", cell.bounds.upper)
            } else {
                "open".to_string()
            },
            if cell.within_bounds { "ok" } else { "VIOLATED" },
        );
    }
    println!(
        "\nall_within_bounds = {} · speedup {:.2}x on {} workers",
        report.all_within_bounds, report.speedup, report.workers
    );
    println!(
        "JSON report: {} bytes (schema {})",
        report.to_json().len(),
        report.schema
    );
}
