//! The generic [`Topology`] interface.

use crate::ids::{EdgeId, NodeId};

/// A finite directed graph with densely indexed nodes and edges.
///
/// The trait is intentionally minimal: hot simulation loops use the concrete
/// topology types' inherent methods (which are `O(1)` and allocation-free),
/// while generic algorithms — path enumeration, traffic-rate solvers,
/// renderers — operate through this interface.
pub trait Topology {
    /// Number of nodes; node ids are `0..num_nodes`.
    fn num_nodes(&self) -> usize;

    /// Number of directed edges; edge ids are `0..num_edges`.
    fn num_edges(&self) -> usize;

    /// Source node of an edge.
    fn edge_source(&self, e: EdgeId) -> NodeId;

    /// Target node of an edge.
    fn edge_target(&self, e: EdgeId) -> NodeId;

    /// All edges leaving `v`, pushed into `out` (cleared first).
    ///
    /// Uses an out-parameter so enumeration loops can reuse one buffer.
    fn out_edges_into(&self, v: NodeId, out: &mut Vec<EdgeId>);

    /// Convenience wrapper around [`Topology::out_edges_into`] that allocates.
    fn out_edges(&self, v: NodeId) -> Vec<EdgeId> {
        let mut out = Vec::new();
        self.out_edges_into(v, &mut out);
        out
    }

    /// The edge from `from` to `to`, if one exists.
    fn find_edge(&self, from: NodeId, to: NodeId) -> Option<EdgeId> {
        let mut out = Vec::new();
        self.out_edges_into(from, &mut out);
        out.into_iter().find(|&e| self.edge_target(e) == to)
    }

    /// Human-readable description, e.g. `"array 8x8"`.
    fn label(&self) -> String;

    /// Iterator over all node ids.
    fn nodes(&self) -> NodeIter {
        NodeIter {
            next: 0,
            end: self.num_nodes() as u32,
        }
    }

    /// Iterator over all edge ids.
    fn edges(&self) -> EdgeIter {
        EdgeIter {
            next: 0,
            end: self.num_edges() as u32,
        }
    }
}

/// Iterator over node ids (see [`Topology::nodes`]).
#[derive(Debug, Clone)]
pub struct NodeIter {
    next: u32,
    end: u32,
}

impl Iterator for NodeIter {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if self.next < self.end {
            let id = NodeId(self.next);
            self.next += 1;
            Some(id)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = (self.end - self.next) as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for NodeIter {}

/// Iterator over edge ids (see [`Topology::edges`]).
#[derive(Debug, Clone)]
pub struct EdgeIter {
    next: u32,
    end: u32,
}

impl Iterator for EdgeIter {
    type Item = EdgeId;

    fn next(&mut self) -> Option<EdgeId> {
        if self.next < self.end {
            let id = EdgeId(self.next);
            self.next += 1;
            Some(id)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = (self.end - self.next) as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for EdgeIter {}
