//! Regenerates Table III (r_s at high load) and times a saturated-tracking
//! cell against an untracked one (the cost of the R_s instrumentation).

use criterion::{criterion_group, criterion_main, Criterion};
use meshbound::experiments::table3;
use meshbound::{Load, Scenario};

fn bench(c: &mut Criterion) {
    let scale = meshbound_bench::bench_scale();
    let rows = table3::run(&scale);
    println!("\n{}", table3::render(&rows));

    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    for track in [false, true] {
        group.bench_function(format!("cell_n5_rho0.9_track_{track}"), |b| {
            b.iter(|| {
                Scenario::mesh(5)
                    .load(Load::TableRho(0.9))
                    .horizon(3_000.0)
                    .warmup(600.0)
                    .seed(7)
                    .track_saturated(track)
                    .run()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
