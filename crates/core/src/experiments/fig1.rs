//! Figure 1: the Lemma 2 labelling that layers the array.
//!
//! Regenerates the figure as an ASCII mesh whose every directed edge is
//! annotated with its layer label, and programmatically verifies the
//! layering property — labels strictly increase along every greedy route —
//! which is the hypothesis Theorem 1 needs.

use meshbound_topology::layering::{all_greedy_paths, check_layered, lemma2_label};
use meshbound_topology::render::render_mesh;
use meshbound_topology::Mesh2D;
use serde::{Deserialize, Serialize};

/// Output of the Figure 1 reproduction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig1 {
    /// Array side used for the rendering (the paper draws n = 5).
    pub n: usize,
    /// ASCII rendering with per-edge labels.
    pub rendering: String,
    /// Whether the labelling layers every greedy route.
    pub layered: bool,
    /// Number of routes checked.
    pub routes_checked: usize,
}

/// Reproduces Figure 1 for an `n × n` array.
#[must_use]
pub fn run(n: usize) -> Fig1 {
    let mesh = Mesh2D::square(n);
    let rendering = render_mesh(&mesh, |e| Some(lemma2_label(&mesh, e).to_string()));
    let paths = all_greedy_paths(&mesh);
    let routes_checked = paths.len();
    let layered = check_layered(&paths, |e| lemma2_label(&mesh, e)).is_ok();
    Fig1 {
        n,
        rendering,
        layered,
        routes_checked,
    }
}

/// Renders the figure with its verification line.
#[must_use]
pub fn render(fig: &Fig1) -> String {
    format!(
        "Figure 1 — Lemma 2 layering labels, n = {} (edges: >right <left vdown ^up)\n\n{}\nlayering verified on {} greedy routes: {}\n",
        fig.n,
        fig.rendering,
        fig.routes_checked,
        if fig.layered { "OK" } else { "VIOLATED" }
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_is_layered_for_paper_size() {
        let fig = run(5);
        assert!(fig.layered);
        assert_eq!(fig.routes_checked, 25 * 24);
        assert!(fig.rendering.contains('>'));
    }

    #[test]
    fn labels_span_expected_range() {
        // Row labels 1..n−1, column labels n..2n−2.
        let fig = run(4);
        for lbl in 1..=6 {
            assert!(
                fig.rendering.contains(&lbl.to_string()),
                "missing label {lbl}"
            );
        }
    }

    #[test]
    fn render_mentions_verification() {
        let s = render(&run(3));
        assert!(s.contains("OK"));
    }
}
