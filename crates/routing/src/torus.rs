//! Greedy routing on the torus (§6).
//!
//! Packets move along the shorter wrap direction in each axis, column first.
//! The torus contains directed rings, so it cannot be layered and the
//! Theorem 1 upper bound does not apply; Theorem 10's lower bound still
//! holds (its proof does not need the Markov property).

use crate::policy::SplitRouting;
use crate::router::{ObliviousRouter, Router};
use meshbound_topology::{Direction, EdgeId, NodeId, Torus2D};
use rand::rngs::SmallRng;

/// Shortest-wrap greedy routing on a 2-D torus (ties broken toward
/// `Right`/`Down`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TorusGreedy;

impl TorusGreedy {
    fn step(topo: &Torus2D, cur: NodeId, dst: NodeId) -> Option<EdgeId> {
        let n = topo.side();
        let (r, c) = topo.coords(cur);
        let (rd, cd) = topo.coords(dst);
        let dc = Torus2D::wrap_delta(n, c, cd);
        if dc > 0 {
            return Some(topo.edge_in_direction(cur, Direction::Right));
        }
        if dc < 0 {
            return Some(topo.edge_in_direction(cur, Direction::Left));
        }
        let dr = Torus2D::wrap_delta(n, r, rd);
        if dr > 0 {
            return Some(topo.edge_in_direction(cur, Direction::Down));
        }
        if dr < 0 {
            return Some(topo.edge_in_direction(cur, Direction::Up));
        }
        None
    }
}

impl Router<Torus2D> for TorusGreedy {
    type State = ();

    #[inline]
    fn init_state(&self, _: &Torus2D, _: NodeId, _: NodeId, _: &mut SmallRng) {}

    #[inline]
    fn is_route_deterministic(&self) -> bool {
        true
    }

    #[inline]
    fn next_edge(&self, topo: &Torus2D, cur: NodeId, dst: NodeId, _: ()) -> Option<EdgeId> {
        Self::step(topo, cur, dst)
    }

    #[inline]
    fn remaining_hops(&self, topo: &Torus2D, cur: NodeId, dst: NodeId, _: ()) -> usize {
        topo.distance(cur, dst)
    }
}

impl SplitRouting<Torus2D> for TorusGreedy {
    fn splits(
        &self,
        topo: &Torus2D,
        _prev: Option<EdgeId>,
        here: NodeId,
        dst: NodeId,
    ) -> Vec<(EdgeId, f64)> {
        Self::step(topo, here, dst)
            .map(|e| vec![(e, 1.0)])
            .unwrap_or_default()
    }
}

impl ObliviousRouter<Torus2D> for TorusGreedy {
    fn paths(&self, topo: &Torus2D, src: NodeId, dst: NodeId) -> Vec<(f64, Vec<EdgeId>)> {
        vec![(1.0, self.route(topo, src, dst, ()))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshbound_topology::Topology;
    use proptest::prelude::*;

    #[test]
    fn wraps_around_short_side() {
        let t = Torus2D::new(5);
        // (0,0) → (0,4): one Left hop via wraparound.
        let route = TorusGreedy.route(&t, t.node(0, 0), t.node(0, 4), ());
        assert_eq!(route.len(), 1);
        assert_eq!(t.direction(route[0]), Direction::Left);
    }

    #[test]
    fn column_phase_before_row_phase() {
        let t = Torus2D::new(6);
        let route = TorusGreedy.route(&t, t.node(0, 0), t.node(2, 2), ());
        assert_eq!(route.len(), 4);
        assert!(t.direction(route[0]).is_row());
        assert!(t.direction(route[1]).is_row());
        assert!(!t.direction(route[2]).is_row());
    }

    proptest! {
        #[test]
        fn prop_route_length_is_torus_distance(n in 3usize..8, a in 0u32..64, b in 0u32..64) {
            let t = Torus2D::new(n);
            let a = NodeId(a % (n * n) as u32);
            let b = NodeId(b % (n * n) as u32);
            let route = TorusGreedy.route(&t, a, b, ());
            prop_assert_eq!(route.len(), t.distance(a, b));
            let mut cur = a;
            for &e in &route {
                prop_assert_eq!(t.edge_source(e), cur);
                cur = t.edge_target(e);
            }
            prop_assert_eq!(cur, b);
        }
    }
}
