//! Figure 2: saturated edges in even and odd arrays.
//!
//! Regenerates the paper's side-by-side example (an even and an odd array
//! with their saturated edges marked) and verifies the combinatorial facts
//! §4.6 reads off the figure: a packet crosses at most 2 saturated edges
//! when `n` is even and at most 4 when `n` is odd, and `s̄ = 3/2` (even) or
//! `2 + (n−1)/(n+1)` (odd).

use meshbound_queueing::remaining::{
    max_expected_remaining_saturated, max_saturated_on_path, saturated_edges, sbar_closed,
};
use meshbound_topology::render::render_marked;
use meshbound_topology::Mesh2D;
use serde::{Deserialize, Serialize};

/// Output of the Figure 2 reproduction for one parity.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2Panel {
    /// Array side.
    pub n: usize,
    /// ASCII rendering with saturated edges starred.
    pub rendering: String,
    /// Number of saturated edges.
    pub saturated_count: usize,
    /// Maximum saturated edges on any greedy route.
    pub max_on_path: usize,
    /// `s̄` measured by enumeration.
    pub sbar_enumerated: f64,
    /// `s̄` closed form.
    pub sbar_closed: f64,
}

/// Reproduces one panel of Figure 2.
#[must_use]
pub fn run_panel(n: usize) -> Fig2Panel {
    let mesh = Mesh2D::square(n);
    let sat = saturated_edges(&mesh);
    Fig2Panel {
        n,
        rendering: render_marked(&mesh, &sat),
        saturated_count: sat.len(),
        max_on_path: max_saturated_on_path(&mesh),
        sbar_enumerated: max_expected_remaining_saturated(&mesh),
        sbar_closed: sbar_closed(n),
    }
}

/// Reproduces the full figure: one even and one odd panel (the paper uses
/// small examples; we default to 4 and 5).
#[must_use]
pub fn run(even_n: usize, odd_n: usize) -> (Fig2Panel, Fig2Panel) {
    assert!(even_n.is_multiple_of(2) && odd_n % 2 == 1);
    (run_panel(even_n), run_panel(odd_n))
}

/// Renders both panels with their verification lines.
#[must_use]
pub fn render(even: &Fig2Panel, odd: &Fig2Panel) -> String {
    let mut s = String::from("Figure 2 — saturated edges (*) in array networks\n");
    for p in [even, odd] {
        s.push_str(&format!(
            "\nn = {} ({}):\n{}\nsaturated edges: {}   max on one route: {}   s̄ = {:.4} (closed form {:.4})\n",
            p.n,
            if p.n % 2 == 0 { "even" } else { "odd" },
            p.rendering,
            p.saturated_count,
            p.max_on_path,
            p.sbar_enumerated,
            p.sbar_closed,
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_panels_verify() {
        let (even, odd) = run(4, 5);
        assert_eq!(even.max_on_path, 2);
        assert_eq!(odd.max_on_path, 4);
        assert_eq!(even.saturated_count, 4 * 4);
        assert_eq!(odd.saturated_count, 8 * 5);
        assert!((even.sbar_enumerated - 1.5).abs() < 1e-9);
        assert!((odd.sbar_enumerated - (2.0 + 4.0 / 6.0)).abs() < 1e-9);
    }

    #[test]
    fn rendering_stars_match_count() {
        let p = run_panel(4);
        assert_eq!(p.rendering.matches('*').count(), p.saturated_count);
    }

    #[test]
    #[should_panic(expected = "is_multiple_of")]
    fn run_requires_correct_parity() {
        let _ = run(5, 4);
    }
}
