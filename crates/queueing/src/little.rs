//! Little's law `N = λT` (reference \[10\] of the paper).

/// Mean delay from mean number in system and throughput: `T = N/λ`.
#[must_use]
pub fn delay_from_number(mean_number: f64, throughput: f64) -> f64 {
    mean_number / throughput
}

/// Mean number in system from mean delay and throughput: `N = λT`.
#[must_use]
pub fn number_from_delay(mean_delay: f64, throughput: f64) -> f64 {
    mean_delay * throughput
}

/// Total external arrival rate of the standard array model: `λ·n²`.
#[must_use]
pub fn mesh_total_arrival(n: usize, lambda: f64) -> f64 {
    lambda * (n * n) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let t = delay_from_number(12.0, 3.0);
        assert_eq!(t, 4.0);
        assert_eq!(number_from_delay(t, 3.0), 12.0);
    }

    #[test]
    fn mesh_arrival_rate() {
        assert_eq!(mesh_total_arrival(10, 0.05), 5.0);
    }
}
