//! One-stop analytic report for a given array size and load.

use meshbound_queueing::bounds::{estimate, lower, upper};
use meshbound_queueing::load::{mesh_stability_threshold, optimal_stability_threshold, Load};
use meshbound_queueing::remaining::{dbar_closed, light_load_r, sbar_closed};
use meshbound_topology::Mesh2D;
use serde::{Deserialize, Serialize};

/// Every closed-form quantity the paper derives for an `n × n` array at a
/// given load, gathered in one structure.
///
/// Use [`BoundsReport::compute`] to fill it and [`BoundsReport::to_text`]
/// for a human-readable summary. Simulated values are *not* included here —
/// see [`crate::experiments`] for the measurement harnesses.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BoundsReport {
    /// Array side.
    pub n: usize,
    /// Per-node Poisson arrival rate.
    pub lambda: f64,
    /// Load in Table I's convention (`λn/4`).
    pub table_rho: f64,
    /// Peak edge utilization (`max_e λ_e`).
    pub utilization: f64,
    /// Mean greedy distance `n̄ = (2/3)(n − 1/n)`.
    pub mean_distance: f64,
    /// Theorem 7 upper bound on the mean delay.
    pub upper: f64,
    /// §4.2 estimate, paper's printed form (Table I "Est.").
    pub est_paper: f64,
    /// §4.2 estimate, textbook M/D/1 form.
    pub est_md1: f64,
    /// Theorem 8 lower bound (any routing).
    pub lower_thm8_any: f64,
    /// Theorem 8 lower bound (oblivious routing).
    pub lower_thm8_oblivious: f64,
    /// Theorem 10 lower bound (copy network, `d = 2(n−1)`).
    pub lower_thm10: f64,
    /// Theorem 12 lower bound (Markovian, `d̄ = n − 1/2`).
    pub lower_thm12: f64,
    /// Theorem 14 heavy-traffic lower bound (saturated edges, `s̄`).
    pub lower_thm14: f64,
    /// Trivial bound `n̄`.
    pub lower_trivial: f64,
    /// Best lower bound (max of the above).
    pub lower_best: f64,
    /// Maximum expected remaining distance `d̄ = n − 1/2`.
    pub dbar: f64,
    /// Maximum expected remaining saturated distance `s̄`.
    pub sbar: f64,
    /// Light-load value of Table II's ratio `r`.
    pub light_load_r: f64,
    /// Stability threshold of the standard array (`4/n` or `4n/(n²−1)`).
    pub stability_lambda: f64,
    /// Stability threshold with optimal capacity allocation, `6/(n+1)`.
    pub optimal_stability_lambda: f64,
}

impl BoundsReport {
    /// Computes the full report for an `n × n` array at the given load.
    #[must_use]
    pub fn compute(n: usize, load: Load) -> Self {
        let lambda = load.lambda(n);
        let rho_util = load.utilization(n);
        Self {
            n,
            lambda,
            table_rho: lambda * n as f64 / 4.0,
            utilization: rho_util,
            mean_distance: Mesh2D::square(n).mean_distance(),
            upper: upper::upper_bound_delay(n, lambda),
            est_paper: estimate::estimate_paper(n, lambda),
            est_md1: estimate::estimate_md1(n, lambda),
            lower_thm8_any: lower::thm8_any_routing(n, rho_util),
            lower_thm8_oblivious: lower::thm8_oblivious(n, rho_util),
            lower_thm10: lower::thm10_lower(n, lambda),
            lower_thm12: lower::thm12_lower(n, lambda),
            lower_thm14: lower::thm14_lower(n, lambda),
            lower_trivial: lower::trivial_lower(n),
            lower_best: lower::best_lower_bound(n, lambda),
            dbar: dbar_closed(n),
            sbar: sbar_closed(n),
            light_load_r: light_load_r(n),
            stability_lambda: mesh_stability_threshold(n),
            optimal_stability_lambda: optimal_stability_threshold(n),
        }
    }

    /// Ratio of upper to best lower bound (the "gap" the paper tracks).
    #[must_use]
    pub fn gap(&self) -> f64 {
        self.upper / self.lower_best
    }

    /// Multi-line human-readable summary.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "array {0}x{0}: λ = {1:.5} (Table-ρ {2:.3}, peak utilization {3:.3})\n",
            self.n, self.lambda, self.table_rho, self.utilization
        ));
        s.push_str(&format!(
            "  mean distance n̄ = {:.4}   d̄ = {:.1}   s̄ = {:.4}\n",
            self.mean_distance, self.dbar, self.sbar
        ));
        s.push_str(&format!(
            "  upper bound (Thm 7)        T ≤ {:.4}\n",
            self.upper
        ));
        s.push_str(&format!(
            "  estimate (paper / M/D/1)   T ≈ {:.4} / {:.4}\n",
            self.est_paper, self.est_md1
        ));
        s.push_str(&format!(
            "  lower bounds: Thm8any {:.4}  Thm8obl {:.4}  Thm10 {:.4}  Thm12 {:.4}  Thm14 {:.4}  n̄ {:.4}\n",
            self.lower_thm8_any,
            self.lower_thm8_oblivious,
            self.lower_thm10,
            self.lower_thm12,
            self.lower_thm14,
            self.lower_trivial
        ));
        s.push_str(&format!(
            "  best lower {:.4}   gap upper/lower = {:.3}\n",
            self.lower_best,
            self.gap()
        ));
        s.push_str(&format!(
            "  stability: standard λ < {:.4}, optimal allocation λ < {:.4}\n",
            self.stability_lambda, self.optimal_stability_lambda
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_is_internally_consistent() {
        for n in [4usize, 5, 10, 15] {
            for rho in [0.2, 0.8, 0.95] {
                let r = BoundsReport::compute(n, Load::TableRho(rho));
                assert!(r.lower_best <= r.upper, "n={n}, ρ={rho}");
                assert!(r.est_paper <= r.est_md1);
                assert!(r.est_md1 <= r.upper + 1e-12);
                assert!(r.lower_best >= r.lower_trivial);
                assert!((r.table_rho - rho).abs() < 1e-12);
                assert!(r.gap() >= 1.0);
            }
        }
    }

    #[test]
    fn heavy_traffic_gap_bounded_for_even_n() {
        // Theorem 14's headline: the gap is ~3 for even n near capacity.
        let r = BoundsReport::compute(10, Load::TableRho(0.9999));
        assert!(r.gap() < 3.1, "gap {}", r.gap());
    }

    #[test]
    fn heavy_traffic_gap_bounded_for_odd_n() {
        let r = BoundsReport::compute(9, Load::Utilization(0.9999));
        assert!(r.gap() < 6.0, "gap {}", r.gap());
    }

    #[test]
    fn text_rendering_mentions_key_quantities() {
        let r = BoundsReport::compute(8, Load::TableRho(0.5));
        let text = r.to_text();
        assert!(text.contains("upper bound"));
        assert!(text.contains("Thm12"));
        assert!(text.contains("stability"));
    }
}
