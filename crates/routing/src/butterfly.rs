//! Unique-path routing on the butterfly (§4.5).

use crate::router::{ObliviousRouter, Router};
use meshbound_topology::{Butterfly, EdgeId, NodeId};
use rand::rngs::SmallRng;

/// Butterfly routing: at level `l` the packet takes the straight or cross
/// edge according to bit `l` of the destination output row. Every packet
/// entering at level 0 crosses exactly `d` edges, which is why Theorem 10's
/// lower bound (with `d` services per packet) is tight in form here.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ButterflyRouter;

impl Router<Butterfly> for ButterflyRouter {
    type State = ();

    #[inline]
    fn init_state(&self, _: &Butterfly, _: NodeId, _: NodeId, _: &mut SmallRng) {}

    #[inline]
    fn is_route_deterministic(&self) -> bool {
        true
    }

    #[inline]
    fn routes_to(&self, topo: &Butterfly, dst: NodeId) -> bool {
        topo.coords(dst).0 == topo.levels()
    }

    #[inline]
    fn next_edge(&self, topo: &Butterfly, cur: NodeId, dst: NodeId, _: ()) -> Option<EdgeId> {
        let (out_level, out_row) = topo.coords(dst);
        debug_assert_eq!(
            out_level,
            topo.levels(),
            "destination must be an output node"
        );
        topo.step_toward(cur, out_row)
    }

    #[inline]
    fn remaining_hops(&self, topo: &Butterfly, cur: NodeId, _: NodeId, _: ()) -> usize {
        topo.levels() - topo.coords(cur).0
    }
}

impl ObliviousRouter<Butterfly> for ButterflyRouter {
    fn paths(&self, topo: &Butterfly, src: NodeId, dst: NodeId) -> Vec<(f64, Vec<EdgeId>)> {
        vec![(1.0, self.route(topo, src, dst, ()))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshbound_topology::Topology;

    #[test]
    fn all_routes_have_length_d() {
        let b = Butterfly::new(3);
        for s in 0..b.rows() {
            for o in 0..b.rows() {
                let route = ButterflyRouter.route(&b, b.node(0, s), b.node(3, o), ());
                assert_eq!(route.len(), 3);
            }
        }
    }

    #[test]
    fn remaining_hops_counts_levels() {
        let b = Butterfly::new(4);
        let dst = b.node(4, 9);
        let mut cur = b.node(0, 3);
        let mut expected = 4;
        while let Some(e) = ButterflyRouter.next_edge(&b, cur, dst, ()) {
            assert_eq!(ButterflyRouter.remaining_hops(&b, cur, dst, ()), expected);
            cur = b.edge_target(e);
            expected -= 1;
        }
        assert_eq!(expected, 0);
        assert_eq!(b.coords(cur), (4, 9));
    }
}
