//! Shared helpers for the reproduction benchmarks and the `repro` binary.
//!
//! Each Criterion bench regenerates one table or figure of the paper at
//! [`meshbound::experiments::Scale::quick`] scale (so the benches both time
//! the harness and print the reproduced artifact), while `repro` runs the
//! publication-scale sweeps and writes the rendered tables to stdout.

use meshbound::experiments::Scale;

/// The scale used inside Criterion benches: fast enough to iterate, large
/// enough that the printed table shows the paper's qualitative shape.
#[must_use]
pub fn bench_scale() -> Scale {
    Scale::quick()
}

/// The publication scale used by `repro` subcommands.
#[must_use]
pub fn full_scale() -> Scale {
    Scale::full()
}
