//! Text rendering of meshes with per-edge annotations.
//!
//! Used to regenerate the paper's figures: Figure 1 (the Lemma 2 layering
//! labels) and Figure 2 (saturated edges in even/odd arrays) are drawn as
//! ASCII grids with one annotation per directed edge.

use crate::ids::EdgeId;
use crate::mesh::Mesh2D;

/// Renders an `n × n` (or rectangular) mesh with a short annotation per
/// directed edge.
///
/// Layout per node row: a line of nodes (`o`) with rightward annotations
/// (`>a`), a line of leftward annotations (`<b`), then — between node rows —
/// a line of downward (`va`) and upward (`^b`) annotations.
/// `annotate` may return `None` to leave an edge unlabelled (rendered as
/// `·`).
#[must_use]
pub fn render_mesh<F>(mesh: &Mesh2D, mut annotate: F) -> String
where
    F: FnMut(EdgeId) -> Option<String>,
{
    let rows = mesh.rows();
    let cols = mesh.cols();

    // Collect annotations first to size the cells.
    let mut right = vec![vec![String::new(); cols - 1]; rows];
    let mut left = vec![vec![String::new(); cols - 1]; rows];
    let mut down = vec![vec![String::new(); cols]; rows - 1];
    let mut up = vec![vec![String::new(); cols]; rows - 1];
    let mut w = 1usize;
    for r in 0..rows {
        for c in 0..cols - 1 {
            let a = annotate(mesh.right_edge(r, c)).unwrap_or_else(|| "·".into());
            let b = annotate(mesh.left_edge(r, c)).unwrap_or_else(|| "·".into());
            w = w.max(a.chars().count()).max(b.chars().count());
            right[r][c] = a;
            left[r][c] = b;
        }
    }
    for r in 0..rows - 1 {
        for c in 0..cols {
            let a = annotate(mesh.down_edge(r, c)).unwrap_or_else(|| "·".into());
            let b = annotate(mesh.up_edge(r, c)).unwrap_or_else(|| "·".into());
            w = w.max(a.chars().count()).max(b.chars().count());
            down[r][c] = a;
            up[r][c] = b;
        }
    }

    let pad = |s: &str| format!("{s:<w$}");
    let cell = 2 * w + 6; // width of one "o >xxx " horizontal segment
    let mut out = String::new();
    for r in 0..rows {
        // Node line with rightward labels.
        let mut l1 = String::new();
        let mut l2 = String::new();
        for c in 0..cols {
            l1.push('o');
            l2.push(' ');
            if c < cols - 1 {
                l1.push_str(&format!(" >{} ", pad(&right[r][c])));
                l2.push_str(&format!(" <{} ", pad(&left[r][c])));
                // Keep the two lines in step.
                while l1.chars().count() > l2.chars().count() {
                    l2.push(' ');
                }
            }
        }
        out.push_str(l1.trim_end());
        out.push('\n');
        out.push_str(l2.trim_end());
        out.push('\n');
        if r < rows - 1 {
            let mut l3 = String::new();
            for c in 0..cols {
                let seg = format!("v{} ^{}", pad(&down[r][c]), pad(&up[r][c]));
                l3.push_str(&seg);
                let used = seg.chars().count();
                if c < cols - 1 {
                    for _ in used..cell {
                        l3.push(' ');
                    }
                }
            }
            out.push_str(l3.trim_end());
            out.push('\n');
        }
    }
    out
}

/// Renders a mesh marking a subset of edges (e.g. the saturated edges of
/// Figure 2) with `*`; unmarked edges render as `·`.
#[must_use]
pub fn render_marked(mesh: &Mesh2D, marked: &[EdgeId]) -> String {
    let set: std::collections::HashSet<EdgeId> = marked.iter().copied().collect();
    render_mesh(mesh, |e| {
        if set.contains(&e) {
            Some("*".to_string())
        } else {
            Some("·".to_string())
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layering::lemma2_label;

    #[test]
    fn render_contains_all_labels() {
        let m = Mesh2D::square(3);
        let s = render_mesh(&m, |e| Some(lemma2_label(&m, e).to_string()));
        // Row labels 1..2 and column labels 3..4 must all appear.
        for lbl in ["<1", ">1", ">2", "<2", "v3", "v4", "^3", "^4"] {
            assert!(s.contains(lbl), "missing {lbl} in\n{s}");
        }
        // 3 node rows → 3*2 + 2 vertical lines.
        assert_eq!(s.trim_end().lines().count(), 8);
    }

    #[test]
    fn render_marked_counts_stars() {
        let m = Mesh2D::square(4);
        let marked: Vec<_> = [m.right_edge(0, 1), m.down_edge(1, 2)].to_vec();
        let s = render_marked(&m, &marked);
        assert_eq!(s.matches('*').count(), 2, "{s}");
    }

    #[test]
    fn render_rectangular_mesh() {
        let m = Mesh2D::rect(2, 3);
        let s = render_mesh(&m, |_| None);
        assert!(s.contains('·'));
        assert_eq!(s.trim_end().lines().count(), 2 * 2 + 1);
    }
}
