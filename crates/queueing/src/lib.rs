//! Queueing-theoretic analytics for greedy routing on array networks.
//!
//! This crate implements every closed-form quantity in Mitzenmacher's
//! *Bounds on the Greedy Routing Algorithm for Array Networks*:
//!
//! * single-queue formulas — M/M/1, M/D/1 and the Pollaczek–Khinchine
//!   M/G/1 mean-value formula ([`single`]);
//! * product-form (Jackson / processor-sharing) network quantities
//!   ([`jackson`]), which give the **upper bound** of Theorems 5 and 7;
//! * the M/D/1 independence **approximation** of §4.2 in both the paper's
//!   printed form and the textbook form ([`bounds::estimate`]);
//! * the **lower bounds**: Stamoulis–Tsitsiklis-style (Theorem 8), the
//!   copy-network bounds of Theorems 10 and 12, and the saturated-edge
//!   bound of Theorem 14 ([`bounds::lower`]);
//! * the remaining-distance combinatorics behind Tables II and III —
//!   `d̄ = n − 1/2`, `s̄ = 3/2` (even `n`) or `2 + (n−1)/(n+1)` (odd `n`),
//!   and the light-load closed form for `r = E[R]/E[N]` ([`remaining`]);
//! * hypercube and butterfly applications of §4.5
//!   ([`bounds::hypercube`], [`bounds::butterfly`]);
//! * the §5.1 optimal capacity allocation (Theorem 15) and the stability
//!   thresholds `4/n`, `4n/(n²−1)` and `6/(n+1)` ([`capacity`], [`load`]).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod bounds;
pub mod capacity;
pub mod jackson;
pub mod little;
pub mod load;
pub mod remaining;
pub mod single;

pub use bounds::estimate::{estimate_md1, estimate_paper};
pub use bounds::lower::{best_lower_bound, thm10_lower, thm12_lower, thm14_lower, thm8_oblivious};
pub use bounds::upper::{upper_bound_delay, upper_bound_from_rates};
pub use load::Load;
