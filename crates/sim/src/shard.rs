//! Conservative parallel discrete-event engine: one scenario sharded
//! across threads ([`EngineSpec::Sharded`](crate::EngineSpec::Sharded)).
//!
//! # Protocol
//!
//! The topology is partitioned into contiguous node blocks
//! ([`Partition::contiguous`]); each directed edge belongs to the shard of
//! its **source** node, so every enqueue a shard performs is on an edge it
//! owns. Each shard runs the same hot loop as the single-core engines on
//! its own calendar queue, its own RNG stream (`derive_rng(seed, shard)`)
//! and its own [`Observer`], so threads share nothing mutable.
//!
//! Time is divided into epochs of length Δ, the **conservative lookahead**:
//! the minimum service time over cut edges (edges whose source and target
//! live on different shards). A packet crossing shard boundaries must be
//! serviced by a cut edge, which takes at least Δ, so an event executed in
//! epoch `j` can only affect other shards at times `≥ (j+1)·Δ` — each shard
//! may therefore run epoch `j` to completion without hearing from its
//! peers. Because the lookahead must be known in advance, shards > 1
//! requires [`ServiceKind::Deterministic`] service times.
//!
//! Cross-shard transfers are *sent at service start*: when a cut edge
//! begins serving a packet at `t`, its completion time `t + 1/rate` is
//! already known, so the packet (destination, router state, generation
//! time, completion time) goes into the per-peer outbox immediately. At
//! each epoch boundary every shard sends one batch (possibly empty) to
//! every other shard over a bounded channel and then receives one from
//! every other shard — the exchange is the barrier. Received packets are
//! merged in `(time, sender, sequence)` order (a stable sort over
//! concatenated batches in fixed sender order) and scheduled as handoff
//! events, which route the packet onward from the cut edge's target node.
//!
//! # Determinism
//!
//! For a fixed `(seed, shard_count)` the result is **bit-identical across
//! reruns and thread schedules**: all cross-thread data flows through the
//! barrier exchange, whose merge order is deterministic, and everything
//! else is shard-local. With `shards = 1` there are no cut edges and the
//! single shard runs the calendar-queue hot loop verbatim, reproducing
//! [`EngineSpec::Calendar`](crate::EngineSpec::Calendar) bit for bit
//! (pinned in `tests/engine_equivalence.rs`). With `shards > 1` the RNG
//! streams decompose differently, so the single-core engines act as the
//! *statistical* oracle instead: delay, throughput and the conservation
//! ratios agree within replication noise.
//!
//! # Statistics merge
//!
//! Per-shard observers are merged in shard order after the join. Sums
//! (generated, completed, events), time integrals (`E[N]`, `E[R]`,
//! `E[R_s]` — the integral of a sum is the sum of integrals) and the
//! per-edge busy/service scatters are exact. Delay mean/variance merge via
//! [`Welford::merge`] (exact). Two quantities are approximations at
//! `shards > 1` and exact at `shards = 1`: `peak_n` reports the **sum of
//! per-shard peaks**, an upper bound on the true global peak (shards need
//! not peak simultaneously), and delay quantiles re-feed the per-shard
//! reservoir samples through a fresh reservoir, which is a uniform
//! subsample of a uniform subsample rather than of the raw stream.

use crate::engine::STREAMING_STATS_MAX_EDGES;
use crate::events::{CalendarQueue, EventQueue};
use crate::fault::{ttl_budget, DropCause, DropCounts, FaultPlan};
use crate::network::{
    q_pop, q_push, qtick, stall, EdgeState, EdgeThroughputStats, NetworkSim, Packet, QTrack,
    SimError, SimResult, NIL,
};
use crate::observer::Observer;
use crate::rng::{derive_rng, exp_sample, poisson_sample};
use crate::service::ServiceKind;
use crate::telemetry::{ProbeSample, Recorder};
use meshbound_routing::dest::DestSampler;
use meshbound_routing::{LocalView, RouteOutcome, Router};
use meshbound_stats::{Reservoir, Welford};
use meshbound_topology::{EdgeId, NodeId, Partition, Topology};
use rand::rngs::SmallRng;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::time::Instant;

/// Size of the delay-quantile reservoir (matches the single-core engines).
const RESERVOIR_CAPACITY: usize = 1 << 16;

/// Per-peer channel depth. One in-flight batch plus one being composed is
/// enough: the exchange is fully synchronous (every shard sends to every
/// peer, then receives from every peer, in fixed order each epoch), so no
/// sender can ever run more than one epoch ahead of a receiver.
const CHANNEL_DEPTH: usize = 2;

/// A packet in flight between shards: everything the receiving shard needs
/// to resume it at the cut edge's target node.
#[derive(Debug, Clone, Copy)]
struct Msg<S> {
    /// Service-completion time on the cut edge — the handoff time.
    time: f64,
    /// The cut edge's target node (where routing resumes).
    node: NodeId,
    dst: NodeId,
    gen_time: f64,
    state: S,
    /// Remaining misroute budget, carried across the shard boundary.
    ttl: u32,
}

type Batch<S> = Vec<Msg<S>>;

/// One shard's row of outgoing channels, indexed by destination shard
/// (`None` on the diagonal — a shard never messages itself).
type TxRow<S> = Vec<Option<SyncSender<Batch<S>>>>;

/// One shard's row of incoming channels, indexed by sender shard
/// (`None` on the diagonal).
type RxRow<S> = Vec<Option<Receiver<Batch<S>>>>;

/// Shard-local event kinds. The single-core `Ev` plus `Handoff` for
/// packets arriving from other shards. `Departure` carries the **global**
/// edge id (service rates and the saturated-edge set are indexed
/// globally); `Arrival` indexes the shard's own source list.
#[derive(Debug, Clone, Copy, PartialEq)]
enum SEv {
    /// Next external arrival at the shard-local source `idx`.
    Arrival(u32),
    /// Service completion at a (globally indexed) owned edge.
    Departure(u32),
    /// A packet handed over from another shard resumes at its slab slot.
    Handoff(u32),
    /// Slot boundary (slotted mode) for this shard's sources.
    Slot,
    /// Warmup boundary.
    Warmup,
    /// `N(t)` sampling tick.
    Sample,
    /// Liveness transition `k` of the run's fault plan. Every shard
    /// replays the full (global) timeline so the shared liveness mask
    /// agrees everywhere; only the owning shard flushes an edge's queue.
    Fault(u32),
    /// Telemetry probe tick. Every shard runs the identical tick
    /// schedule (same base interval, same decimation — decimation is a
    /// pure function of tick count), so per-shard recorders merge
    /// sample-by-sample after the join. Scheduled only when probes are
    /// configured; the handler reads shard state and mutates nothing.
    Probe,
}

/// What one shard thread returns: its observer, its event count, and its
/// queue-length integrals (closed at the horizon) when tracked.
struct ShardOut {
    obs: Observer,
    events: u64,
    queue_integrals: Option<Vec<f64>>,
    /// This shard's telemetry recorder, when probes are configured.
    recorder: Option<Recorder>,
}

/// A shard's mutable world. Everything in here is owned by exactly one
/// thread; the only data leaving it mid-run are the outbox batches.
struct Local<S> {
    rng: SmallRng,
    obs: Observer,
    /// Owned edges, indexed by the shard-local dense edge index.
    edges: Vec<EdgeState>,
    qtrack: Vec<QTrack>,
    packets: Vec<Packet<S>>,
    /// Resume node for packets delivered by `SEv::Handoff`, parallel to
    /// `packets`.
    hand_node: Vec<NodeId>,
    qnext: Vec<u32>,
    free: Vec<u32>,
    queue: CalendarQueue<SEv>,
    /// Per-peer outgoing packets, flushed at each epoch boundary.
    outboxes: Vec<Batch<S>>,
    /// Whether each owned (local-indexed) edge crosses into another shard.
    is_cut: Vec<bool>,
    /// For cut edges: the target node and the shard that owns it.
    cut_to: Vec<(NodeId, u32)>,
    /// Per-edge liveness (**global** indexing) under the run's fault
    /// plan; empty on healthy runs, keeping the hot loop on the exact
    /// pre-fault path.
    live: Vec<bool>,
}

/// [`LocalView`] over one shard's owned edges. Out-edges belong to their
/// source's shard, so every edge an adaptive router inspects at a node this
/// shard owns is in the shard's dense `edges` slab — `edge_local` maps the
/// global id down to it.
struct ShardView<'a> {
    edges: &'a [EdgeState],
    part: &'a Partition,
    /// Global liveness mask (empty = every edge live).
    live: &'a [bool],
}

impl LocalView for ShardView<'_> {
    #[inline]
    fn queue_len(&self, e: EdgeId) -> u32 {
        self.edges[self.part.edge_local(e)].qlen
    }

    #[inline]
    fn is_live(&self, e: EdgeId) -> bool {
        self.live.is_empty() || self.live[e.index()]
    }
}

impl<S: Copy> Local<S> {
    /// Allocates a packet slot from the free list (or grows the slab),
    /// mirroring the single-core allocator; `hand_node` grows in lockstep.
    fn alloc(&mut self, pk: Packet<S>) -> u32 {
        match self.free.pop() {
            Some(id) => {
                self.packets[id as usize] = pk;
                id
            }
            None => {
                self.packets.push(pk);
                self.hand_node.push(NodeId(0));
                (self.packets.len() - 1) as u32
            }
        }
    }

    /// Starts service on owned edge `le` (global id `ge`). If the edge is
    /// a cut edge, the packet's handoff is emitted to the target shard's
    /// outbox *now* — its completion time is already determined, and it
    /// is `≥` the next epoch boundary by the lookahead invariant.
    fn start_service<T, R, D>(&mut self, sim: &NetworkSim<T, R, D>, le: usize, ge: u32, now: f64)
    where
        T: Topology + Sync,
        R: Router<T, State = S> + Sync,
        D: DestSampler<T> + Sync,
    {
        let edge = &mut self.edges[le];
        debug_assert!(!edge.busy && edge.qlen > 0);
        edge.busy = true;
        edge.service_start = now;
        let dur = sim
            .cfg
            .service
            .sample(sim.service_rates[ge as usize], &mut self.rng);
        let done = now + dur;
        self.queue.schedule(done, SEv::Departure(ge));
        if self.is_cut[le] {
            let pid = self.edges[le].head;
            let pk = self.packets[pid as usize];
            let (node, to) = self.cut_to[le];
            self.outboxes[to as usize].push(Msg {
                time: done,
                node,
                dst: pk.dst,
                gen_time: pk.gen_time,
                state: pk.state,
                ttl: pk.ttl,
            });
        }
    }

    /// Appends `pid` to owned edge `le`'s FIFO and starts service if idle
    /// (the single-core `enqueue`, with local edge indexing).
    fn enqueue<T, R, D>(
        &mut self,
        sim: &NetworkSim<T, R, D>,
        le: usize,
        ge: u32,
        pid: u32,
        now: f64,
    ) where
        T: Topology + Sync,
        R: Router<T, State = S> + Sync,
        D: DestSampler<T> + Sync,
    {
        if sim.cfg.track_edge_queues {
            qtick(&mut self.qtrack[le], self.edges[le].qlen, now);
        }
        q_push(&mut self.edges[le], &mut self.qnext, pid);
        if !self.edges[le].busy {
            self.start_service(sim, le, ge, now);
        }
    }

    /// Drops the packet in slot `pid` at node `at` (the single-core drop
    /// accounting: unwind the integrals by the remaining work, tally the
    /// cause, recycle the slot).
    fn drop_packet<T, R, D>(
        &mut self,
        sim: &NetworkSim<T, R, D>,
        now: f64,
        at: NodeId,
        pid: u32,
        cause: DropCause,
    ) where
        T: Topology + Sync,
        R: Router<T, State = S> + Sync,
        D: DestSampler<T> + Sync,
    {
        let pk = self.packets[pid as usize];
        let remaining = sim.router.remaining_hops(&sim.topo, at, pk.dst, pk.state);
        let sat = if sim.track_saturated {
            sim.count_saturated_on_route(at, pk.dst, pk.state)
        } else {
            0
        };
        self.obs
            .packet_dropped(now, remaining as f64, sat as f64, pk.gen_time, cause);
        self.free.push(pid);
    }

    /// Generates one packet at `src` (the single-core `inject`, with the
    /// on-the-fly routing path — the sharded engine never uses route
    /// tables, so the RNG draw order matches the table-free engines).
    fn inject<T, R, D>(
        &mut self,
        sim: &NetworkSim<T, R, D>,
        part: &Partition,
        now: f64,
        src: NodeId,
    ) -> Result<(), SimError>
    where
        T: Topology + Sync,
        R: Router<T, State = S> + Sync,
        D: DestSampler<T> + Sync,
    {
        let dst = sim.dest.sample(&sim.topo, src, &mut self.rng);
        if src == dst {
            if sim.cfg.include_self_packets {
                self.obs.zero_distance_packet(now);
            }
            return Ok(());
        }
        self.obs.packet_generated(now);
        let state = sim.router.init_state(&sim.topo, src, dst, &mut self.rng);
        let hops = sim.router.route_len(&sim.topo, src, dst, state);
        let sat = if sim.track_saturated {
            sim.count_saturated_on_route(src, dst, state)
        } else {
            0
        };
        self.obs.packet_enters(now, hops, sat);
        let pid = self.alloc(Packet {
            dst,
            state,
            gen_time: now,
            ttl: ttl_budget(hops),
        });
        let view = ShardView {
            edges: &self.edges,
            part,
            live: &self.live,
        };
        let first = if self.live.is_empty() {
            match sim.router.next_hop(&sim.topo, src, dst, state, &view) {
                Some(e) => e,
                None => return Err(stall::<R>(src, dst)),
            }
        } else {
            // Fault-aware first hop: a walled-in source drops its fresh
            // packet instead of aborting the run.
            match sim.router.route_outcome(&sim.topo, src, dst, state, &view) {
                RouteOutcome::Forward(e) => {
                    self.packets[pid as usize].ttl -= 1;
                    e
                }
                outcome => {
                    let cause = if outcome == RouteOutcome::DeadEnd {
                        DropCause::DeadEnd
                    } else {
                        DropCause::LocalMinimum
                    };
                    self.drop_packet(sim, now, src, pid, cause);
                    return Ok(());
                }
            }
        };
        self.enqueue(sim, part.edge_local(first), first.index() as u32, pid, now);
        Ok(())
    }

    /// Moves a packet onward from `cur`: exit if delivered, otherwise
    /// enqueue on the next edge. The next edge is always shard-local —
    /// out-edges belong to their source's shard, and `cur` is on this
    /// shard whenever this is called.
    fn forward<T, R, D>(
        &mut self,
        sim: &NetworkSim<T, R, D>,
        part: &Partition,
        now: f64,
        cur: NodeId,
        pid: u32,
    ) -> Result<(), SimError>
    where
        T: Topology + Sync,
        R: Router<T, State = S> + Sync,
        D: DestSampler<T> + Sync,
    {
        let pk = self.packets[pid as usize];
        if cur == pk.dst {
            self.obs.packet_exits(now, pk.gen_time, true);
            self.free.push(pid);
            return Ok(());
        }
        let view = ShardView {
            edges: &self.edges,
            part,
            live: &self.live,
        };
        let next = if self.live.is_empty() {
            match sim.router.next_hop(&sim.topo, cur, pk.dst, pk.state, &view) {
                Some(e) => e,
                None => return Err(stall::<R>(cur, pk.dst)),
            }
        } else if pk.ttl == 0 {
            self.drop_packet(sim, now, cur, pid, DropCause::TtlExceeded);
            return Ok(());
        } else {
            match sim
                .router
                .route_outcome(&sim.topo, cur, pk.dst, pk.state, &view)
            {
                RouteOutcome::Forward(e) => {
                    self.packets[pid as usize].ttl -= 1;
                    e
                }
                outcome => {
                    let cause = if outcome == RouteOutcome::DeadEnd {
                        DropCause::DeadEnd
                    } else {
                        DropCause::LocalMinimum
                    };
                    self.drop_packet(sim, now, cur, pid, cause);
                    return Ok(());
                }
            }
        };
        self.enqueue(sim, part.edge_local(next), next.index() as u32, pid, now);
        Ok(())
    }
}

/// Entry point for [`EngineSpec::Sharded`](crate::EngineSpec::Sharded):
/// partitions the topology, spawns one thread per shard, and merges the
/// per-shard statistics into one [`SimResult`].
///
/// # Errors
///
/// [`SimError::UnsupportedConfig`] when `shards > 1` produces cut edges
/// under a non-deterministic service distribution (no finite lookahead
/// exists); shard-local [`SimError`]s are collected through the barrier
/// protocol rather than unwinding across worker threads.
///
/// # Panics
///
/// Panics only when a shard thread itself panics (the panic is
/// propagated).
pub(crate) fn run_sharded<T, R, D>(
    sim: NetworkSim<T, R, D>,
    wall: Instant,
    shards: usize,
) -> Result<SimResult, SimError>
where
    T: Topology + Sync,
    R: Router<T> + Sync,
    D: DestSampler<T> + Sync,
{
    let part = Partition::contiguous(&sim.topo, shards);
    let k = part.shards();
    if !part.cut_edges().is_empty() && sim.cfg.service != ServiceKind::Deterministic {
        return Err(SimError::UnsupportedConfig {
            reason: "the sharded engine requires deterministic service times when shards > 1: \
                     the conservative lookahead is the minimum cut-edge service time, which \
                     only exists when service times are bounded below"
                .into(),
        });
    }
    // Epoch `j` covers event times `[w_j, w_{j+1})` where the window ends
    // come from the fault-aware lookahead schedule; the final epoch is
    // unbounded and terminates on the horizon like the single-core loop.
    // All handoffs emitted during the final epoch would land past the
    // horizon (their send time is within Δ of it), so it needs no
    // exchange.
    let windows = if part.cut_edges().is_empty() {
        // No cross-shard traffic (shards = 1): one unbounded epoch, no
        // barriers, whatever the fault plan says.
        vec![f64::INFINITY]
    } else {
        window_ends(
            part.cut_edges(),
            &sim.service_rates,
            &sim.fault_plan,
            sim.cfg.horizon,
        )
    };

    // Shard-local source lists, preserving global order (and hence, for a
    // single shard, the exact single-core RNG priming order). The global
    // index rides along for positional per-source rate lookup.
    let mut source_lists: Vec<Vec<(u32, NodeId)>> = vec![Vec::new(); k];
    for (i, &src) in sim.sources.iter().enumerate() {
        source_lists[part.node_shard(src)].push((i as u32, src));
    }

    // The full k×k channel mesh. `txs[from][to]` / `rxs[to][from]`; the
    // diagonal stays `None`.
    let mut txs: Vec<TxRow<R::State>> = (0..k).map(|_| (0..k).map(|_| None).collect()).collect();
    let mut rxs: Vec<RxRow<R::State>> = (0..k).map(|_| (0..k).map(|_| None).collect()).collect();
    for from in 0..k {
        for to in 0..k {
            if from != to {
                let (tx, rx) = sync_channel(CHANNEL_DEPTH);
                txs[from][to] = Some(tx);
                rxs[to][from] = Some(rx);
            }
        }
    }

    let sim_ref = &sim;
    let part_ref = &part;
    let sources_ref = &source_lists;
    let windows_ref = &windows;
    let results: Vec<Result<ShardOut, Option<SimError>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = txs
            .into_iter()
            .zip(rxs)
            .enumerate()
            .map(|(me, (tx_row, rx_row))| {
                scope.spawn(move || {
                    shard_loop(
                        sim_ref,
                        part_ref,
                        me,
                        &sources_ref[me],
                        windows_ref,
                        &tx_row,
                        &rx_row,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                // A shard panicked; its channels dropped on unwind, so the
                // peers have already bailed out. Re-raise the panic.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });

    let mut outs: Vec<ShardOut> = Vec::with_capacity(k);
    let mut first_err: Option<SimError> = None;
    for r in results {
        match r {
            Ok(o) => outs.push(o),
            Err(Some(e)) => {
                first_err.get_or_insert(e);
            }
            // Peer-died sentinel: some other shard carries the real error.
            Err(None) => {}
        }
    }
    if let Some(e) = first_err {
        return Err(e);
    }
    assert_eq!(outs.len(), k, "a shard aborted without reporting an error");

    Ok(merge(&sim, &part, outs, wall))
}

/// The epoch cutoffs of the conservative window protocol, fault-aware.
///
/// Each window's lookahead Δ is the minimum service time over the cut
/// edges **live during that window** (a dead edge starts no service, so
/// it cannot emit a handoff), and windows never straddle a fault event —
/// liveness transitions land exactly on epoch boundaries, where every
/// shard recomputes the same Δ from the same plan. The final entry is
/// `∞`: the last epoch runs to the horizon without a barrier.
fn window_ends(cut: &[EdgeId], service_rates: &[f64], plan: &FaultPlan, horizon: f64) -> Vec<f64> {
    let cut_set: std::collections::HashSet<EdgeId> = cut.iter().copied().collect();
    let mut dead: std::collections::HashSet<EdgeId> = std::collections::HashSet::new();
    let mut ends = Vec::new();
    let mut start = 0.0f64;
    let mut idx = 0;
    loop {
        // Apply every transition at or before the window start; what's
        // left of the plan is strictly inside or past this window.
        while idx < plan.events.len() && plan.events[idx].time <= start {
            let fe = &plan.events[idx];
            if cut_set.contains(&fe.edge) {
                if fe.up {
                    dead.remove(&fe.edge);
                } else {
                    dead.insert(fe.edge);
                }
            }
            idx += 1;
        }
        let delta = cut
            .iter()
            .filter(|e| !dead.contains(e))
            .map(|e| 1.0 / service_rates[e.index()])
            .fold(f64::INFINITY, f64::min);
        let next_fault = plan.events.get(idx).map_or(f64::INFINITY, |fe| fe.time);
        let end = (start + delta).min(next_fault);
        if !end.is_finite() || end > horizon {
            ends.push(f64::INFINITY);
            return ends;
        }
        ends.push(end);
        start = end;
    }
}

/// One shard's run: the single-core hot loop windowed into epochs, with a
/// batch exchange at each epoch boundary. Returns `Err(None)` when a peer
/// disappears mid-run (its own error is reported from its thread) and
/// `Err(Some(_))` for this shard's own structural failures.
#[allow(clippy::too_many_arguments)]
fn shard_loop<T, R, D>(
    sim: &NetworkSim<T, R, D>,
    part: &Partition,
    me: usize,
    sources: &[(u32, NodeId)],
    windows: &[f64],
    tx_row: &[Option<SyncSender<Batch<R::State>>>],
    rx_row: &[Option<Receiver<Batch<R::State>>>],
) -> Result<ShardOut, Option<SimError>>
where
    T: Topology + Sync,
    R: Router<T> + Sync,
    D: DestSampler<T> + Sync,
{
    let cfg = &sim.cfg;
    let k = part.shards();
    let local_edges = part.shard_edge_count(me);

    let mut is_cut = vec![false; local_edges];
    let mut cut_to = vec![(NodeId(0), 0u32); local_edges];
    for &e in part.cut_edges() {
        if part.edge_shard(e) == me {
            let le = part.edge_local(e);
            let tgt = sim.topo.edge_target(e);
            is_cut[le] = true;
            cut_to[le] = (tgt, part.node_shard(tgt) as u32);
        }
    }

    let mut obs = Observer::new(local_edges, cfg.warmup);
    if cfg.delay_quantiles {
        obs.enable_delay_quantiles(RESERVOIR_CAPACITY, cfg.seed ^ 0x5EED);
    }
    let mut local = Local {
        rng: derive_rng(cfg.seed, me as u64),
        obs,
        edges: (0..local_edges).map(|_| EdgeState::default()).collect(),
        qtrack: if cfg.track_edge_queues {
            vec![QTrack::default(); local_edges]
        } else {
            Vec::new()
        },
        packets: Vec::with_capacity(1024),
        hand_node: Vec::with_capacity(1024),
        qnext: Vec::with_capacity(1024),
        free: Vec::new(),
        queue: CalendarQueue::for_simulation(4 * sources.len().max(1)),
        outboxes: (0..k).map(|_| Vec::new()).collect(),
        is_cut,
        cut_to,
        live: if sim.fault_plan.is_empty() {
            Vec::new()
        } else {
            vec![true; sim.topo.num_edges()]
        },
    };

    // Prime the event list exactly like the single-core loop, restricted
    // to this shard's sources.
    match cfg.slot {
        None => {
            for &(gi, _) in sources {
                let rate = sim.source_rate(gi as usize);
                if rate > 0.0 {
                    let dt = exp_sample(&mut local.rng, rate);
                    local.queue.schedule(dt, SEv::Arrival(gi));
                }
            }
        }
        Some(tau) => {
            assert!(tau > 0.0, "slot width must be positive");
            local.queue.schedule(tau, SEv::Slot);
        }
    }
    if cfg.warmup > 0.0 {
        local.queue.schedule(cfg.warmup, SEv::Warmup);
    }
    if let Some(dt) = cfg.sample_every {
        assert!(dt > 0.0);
        local.queue.schedule(dt, SEv::Sample);
    }
    for (fk, fe) in sim.fault_plan.events.iter().enumerate() {
        if fe.time <= cfg.horizon {
            local.queue.schedule(fe.time, SEv::Fault(fk as u32));
        }
    }
    // Probe priming comes last so `probes=None` leaves the schedule call
    // sequence exactly as a pre-telemetry build produced it.
    let mut recorder = cfg.probes.as_ref().map(|spec| {
        let rec = Recorder::for_shard(spec, cfg.horizon, me);
        local.queue.schedule(rec.base(), SEv::Probe);
        rec
    });

    // `Arrival` carries the *global* source index (so rates stay
    // positional); map it back to the packed list position only for
    // clarity in the prime above — the handler needs the node and rate.
    let node_of = |gi: u32| sim.sources[gi as usize];

    let mut events: u64 = 0;
    let mut cut_handoffs: u64 = 0;
    'run: for (wi, &cutoff) in windows.iter().enumerate() {
        let last = wi + 1 == windows.len();
        while let Some((t, ev)) = local.queue.next() {
            if t >= cutoff {
                // Not ours to run yet: push it back (it re-enters the
                // queue with a fresh sequence number, which is fine — any
                // same-time peer it could tie with is also past the
                // cutoff) and close the epoch.
                local.queue.schedule(t, ev);
                break;
            }
            if t > cfg.horizon {
                break 'run;
            }
            events += 1;
            let now = t;
            match ev {
                SEv::Warmup => {
                    local.obs.reset_at_warmup();
                    if cfg.track_edge_queues {
                        for (edge, tq) in local.edges.iter().zip(local.qtrack.iter_mut()) {
                            qtick(tq, edge.qlen, cfg.warmup);
                            tq.integral = 0.0;
                        }
                    }
                }
                SEv::Sample => {
                    local.obs.sample_n(now);
                    local
                        .queue
                        .schedule(now + cfg.sample_every.unwrap(), SEv::Sample);
                }
                SEv::Arrival(gi) => {
                    local.inject(sim, part, now, node_of(gi)).map_err(Some)?;
                    let dt = exp_sample(&mut local.rng, sim.source_rate(gi as usize));
                    local.queue.schedule(now + dt, SEv::Arrival(gi));
                }
                SEv::Slot => {
                    let tau = cfg.slot.unwrap();
                    for &(gi, src) in sources {
                        let mean = sim.source_rate(gi as usize) * tau;
                        let batch = poisson_sample(&mut local.rng, mean);
                        for _ in 0..batch {
                            local.inject(sim, part, now, src).map_err(Some)?;
                        }
                    }
                    local.queue.schedule(now + tau, SEv::Slot);
                }
                SEv::Departure(ge) => {
                    let ei = ge as usize;
                    let le = part.edge_local(EdgeId(ge));
                    if cfg.track_edge_queues {
                        qtick(&mut local.qtrack[le], local.edges[le].qlen, now);
                    }
                    let edge = &mut local.edges[le];
                    let pid = q_pop(edge, &local.qnext);
                    let duration = now - edge.service_start;
                    local.obs.service_done(now, le, duration, sim.sat_edge[ei]);
                    local.edges[le].busy = false;
                    if local.edges[le].qlen > 0 && (local.live.is_empty() || local.live[ei]) {
                        local.start_service(sim, le, ge, now);
                    }
                    if local.is_cut[le] {
                        // The packet was already emitted to the target
                        // shard at service start; its slot is free again.
                        local.free.push(pid);
                    } else {
                        let cur = sim.topo.edge_target(EdgeId(ge));
                        local.forward(sim, part, now, cur, pid).map_err(Some)?;
                    }
                }
                SEv::Handoff(pid) => {
                    cut_handoffs += 1;
                    let cur = local.hand_node[pid as usize];
                    local.forward(sim, part, now, cur, pid).map_err(Some)?;
                }
                SEv::Fault(fk) => {
                    let fe = sim.fault_plan.events[fk as usize];
                    let gi = fe.edge.index();
                    if fe.up {
                        local.live[gi] = true;
                        if part.edge_shard(fe.edge) == me {
                            let le = part.edge_local(fe.edge);
                            // Defensive restart, mirroring the single-core
                            // engine (the flush leaves at most the
                            // in-flight head on a dead edge).
                            if local.edges[le].qlen > 0 && !local.edges[le].busy {
                                local.start_service(sim, le, gi as u32, now);
                            }
                        }
                    } else {
                        local.live[gi] = false;
                        if part.edge_shard(fe.edge) == me {
                            let le = part.edge_local(fe.edge);
                            if cfg.track_edge_queues {
                                qtick(&mut local.qtrack[le], local.edges[le].qlen, now);
                            }
                            // The in-flight transmission (if any) finishes;
                            // everything waiting behind it drops here.
                            let edge = &mut local.edges[le];
                            let mut pid = if edge.busy {
                                let waiting = local.qnext[edge.head as usize];
                                local.qnext[edge.head as usize] = NIL;
                                edge.tail = edge.head;
                                edge.qlen = 1;
                                waiting
                            } else {
                                let waiting = edge.head;
                                edge.head = NIL;
                                edge.tail = NIL;
                                edge.qlen = 0;
                                waiting
                            };
                            let at = sim.topo.edge_source(fe.edge);
                            while pid != NIL {
                                let next_waiting = local.qnext[pid as usize];
                                local.drop_packet(sim, now, at, pid, DropCause::LinkDown);
                                pid = next_waiting;
                            }
                        }
                    }
                }
                SEv::Probe => {
                    let rec = recorder.as_mut().expect("probe event without recorder");
                    let spec = *rec.spec();
                    let mut sample = ProbeSample {
                        nsys: local.obs.n_sys.value(),
                        drops: local.obs.dropped.total() as f64,
                        delivered: local.obs.completed as f64,
                        // Engine events excluding probe ticks: this event
                        // is counted and `rec.ticks()` holds the prior
                        // ones, matching what a probes-off shard counts.
                        events: (events - rec.ticks() - 1) as f64,
                        cut: cut_handoffs as f64,
                        ..ProbeSample::default()
                    };
                    if spec.maxq || spec.shards {
                        let mut maxq = 0u32;
                        let mut qmass = 0u64;
                        for e in &local.edges {
                            maxq = maxq.max(e.qlen);
                            qmass += u64::from(e.qlen);
                        }
                        sample.maxq = f64::from(maxq);
                        sample.qmass = qmass as f64;
                    }
                    rec.record(now, &sample);
                    if me == 0 {
                        // One writer only: shard 0 speaks for the run (its
                        // event count, the shared clock).
                        crate::telemetry::emit_progress(now, cfg.horizon, sample.events as u64);
                    }
                    local.queue.schedule(now + rec.interval(), SEv::Probe);
                }
            }
        }
        if last {
            break;
        }

        // Barrier: flush every outbox, then drain every peer, in fixed
        // order. A closed channel means a peer died on its own error —
        // bail with the sentinel so the join loop reports theirs.
        for (to, tx) in tx_row.iter().enumerate() {
            if let Some(tx) = tx {
                let batch = std::mem::take(&mut local.outboxes[to]);
                if tx.send(batch).is_err() {
                    return Err(None);
                }
            }
        }
        let mut incoming: Batch<R::State> = Vec::new();
        for rx in rx_row.iter().flatten() {
            match rx.recv() {
                Ok(batch) => incoming.extend(batch),
                Err(_) => return Err(None),
            }
        }
        // Stable sort on time: ties keep (sender, emission) order, which
        // is identical on every rerun.
        incoming.sort_by(|a, b| a.time.partial_cmp(&b.time).expect("no NaN handoff times"));
        for m in incoming {
            let pid = local.alloc(Packet {
                dst: m.dst,
                state: m.state,
                gen_time: m.gen_time,
                ttl: m.ttl,
            });
            local.hand_node[pid as usize] = m.node;
            local.queue.schedule(m.time, SEv::Handoff(pid));
        }
    }

    let queue_integrals = cfg.track_edge_queues.then(|| {
        local
            .edges
            .iter()
            .zip(local.qtrack.iter_mut())
            .map(|(e, tq)| {
                qtick(tq, e.qlen, cfg.horizon);
                tq.integral
            })
            .collect()
    });
    // Probe ticks rode this shard's event list but are not engine work:
    // subtracting keeps the event count bit-identical to probes-off.
    if let Some(rec) = &recorder {
        events -= rec.ticks();
    }
    Ok(ShardOut {
        obs: local.obs,
        events,
        queue_integrals,
        recorder,
    })
}

/// Merges per-shard outputs into one [`SimResult`], using the exact
/// formulas of the single-core result assembly so that `shards = 1`
/// reproduces [`EngineSpec::Calendar`](crate::EngineSpec::Calendar) bit
/// for bit.
fn merge<T, R, D>(
    sim: &NetworkSim<T, R, D>,
    part: &Partition,
    mut outs: Vec<ShardOut>,
    wall: Instant,
) -> SimResult
where
    T: Topology + Sync,
    R: Router<T> + Sync,
    D: DestSampler<T> + Sync,
{
    let cfg = &sim.cfg;
    let measure_time = (cfg.horizon - cfg.warmup).max(f64::MIN_POSITIVE);

    // Per-shard telemetry recorders merge deterministically in shard
    // order: all shards ran the identical probe tick schedule, so shared
    // series combine sample-by-sample (sum/max) and per-shard series
    // concatenate.
    let recorders: Vec<Recorder> = outs.iter_mut().filter_map(|o| o.recorder.take()).collect();
    let telemetry = (!recorders.is_empty()).then(|| Recorder::merge(recorders).into_report());

    let mut delay = Welford::new();
    let mut n_integral = 0.0;
    let mut r_integral = 0.0;
    let mut rs_integral = 0.0;
    let mut final_n = 0.0;
    let mut peak_n = 0.0;
    let mut generated = 0u64;
    let mut completed = 0u64;
    let mut dropped = DropCounts::default();
    let mut events_processed = 0u64;
    for o in &outs {
        delay.merge(&o.obs.delay);
        n_integral += o.obs.n_sys.integral(cfg.horizon);
        r_integral += o.obs.r_total.integral(cfg.horizon);
        rs_integral += o.obs.rs_total.integral(cfg.horizon);
        final_n += o.obs.n_sys.value();
        peak_n += o.obs.n_sys.peak();
        generated += o.obs.generated;
        completed += o.obs.completed;
        dropped.merge(&o.obs.dropped);
        events_processed += o.events;
    }
    let time_avg_n = n_integral / measure_time;
    let time_avg_r = r_integral / measure_time;
    let time_avg_rs = rs_integral / measure_time;
    let throughput = completed as f64 / measure_time;

    // Scatter the shard-local per-edge tallies back to global indexing.
    let num_edges = sim.topo.num_edges();
    let mut edge_busy = vec![0.0f64; num_edges];
    let mut edge_services = vec![0u64; num_edges];
    for ei in 0..num_edges {
        let e = EdgeId(ei as u32);
        let o = &outs[part.edge_shard(e)];
        let le = part.edge_local(e);
        edge_busy[ei] = o.obs.edge_busy[le];
        edge_services[ei] = o.obs.edge_services[le];
    }
    let max_util = edge_busy.iter().cloned().fold(0.0f64, f64::max) / measure_time;

    // `N(t)` sampling ticks fire at identical times on every shard, and
    // the flight-recorder decimation is a pure function of the tick
    // count, so every shard retains the identical tick set and the
    // trajectories zip elementwise.
    let mut n_series = outs[0].obs.n_samples.clone();
    for o in &outs[1..] {
        n_series.combine_values(&o.obs.n_samples, |a, b| a + b);
    }
    let n_samples = n_series.into_samples();

    let quantiles = cfg.delay_quantiles.then(|| {
        let mut merged = Reservoir::new(RESERVOIR_CAPACITY, cfg.seed ^ 0x5EED);
        for o in &outs {
            if let Some(r) = &o.obs.delay_sample {
                for &x in r.samples() {
                    merged.push(x);
                }
            }
        }
        merged
    });

    let edge_mean_queue = cfg.track_edge_queues.then(|| {
        (0..num_edges)
            .map(|ei| {
                let e = EdgeId(ei as u32);
                let integrals = outs[part.edge_shard(e)]
                    .queue_integrals
                    .as_ref()
                    .expect("queue integrals tracked on every shard");
                integrals[part.edge_local(e)] / measure_time
            })
            .collect()
    });

    SimResult {
        avg_delay: delay.mean(),
        delay_std_err: delay.standard_error(),
        generated,
        completed,
        dropped,
        delivered_fraction: if generated > 0 {
            completed as f64 / generated as f64
        } else {
            0.0
        },
        time_avg_n,
        time_avg_r,
        time_avg_rs,
        r_ratio: if time_avg_n > 0.0 {
            time_avg_r / time_avg_n
        } else {
            0.0
        },
        rs_ratio: if time_avg_n > 0.0 {
            time_avg_rs / time_avg_n
        } else {
            0.0
        },
        little_delay: if throughput > 0.0 {
            time_avg_n / throughput
        } else {
            0.0
        },
        max_edge_utilization: max_util,
        edge_throughput: if num_edges <= STREAMING_STATS_MAX_EDGES {
            edge_services
                .iter()
                .map(|&c| c as f64 / measure_time)
                .collect()
        } else {
            Vec::new()
        },
        edge_throughput_stats: {
            let mut w = Welford::new();
            for &c in &edge_services {
                w.push(c as f64 / measure_time);
            }
            EdgeThroughputStats {
                edges: num_edges,
                mean: w.mean(),
                max: w.max(),
                std_dev: w.sample_variance().sqrt(),
            }
        },
        final_n,
        peak_n,
        measure_time,
        events_processed,
        events_per_sec: events_processed as f64 / wall.elapsed().as_secs_f64().max(1e-9),
        delay_p50: quantiles.as_ref().and_then(|r| r.quantile(0.5)),
        delay_p95: quantiles.as_ref().and_then(|r| r.quantile(0.95)),
        delay_p99: quantiles.as_ref().and_then(|r| r.quantile(0.99)),
        edge_mean_queue,
        n_samples,
        telemetry,
    }
}

#[cfg(test)]
mod tests {
    use crate::engine::EngineSpec;
    use crate::network::{NetConfig, NetworkSim, SimResult};
    use crate::service::ServiceKind;
    use meshbound_routing::dest::UniformDest;
    use meshbound_routing::GreedyXY;
    use meshbound_topology::Mesh2D;

    fn run(engine: EngineSpec) -> SimResult {
        let cfg = NetConfig {
            lambda: 0.15,
            horizon: 800.0,
            warmup: 80.0,
            seed: 9,
            delay_quantiles: true,
            track_edge_queues: true,
            sample_every: Some(40.0),
            engine,
            ..NetConfig::default()
        };
        NetworkSim::new(Mesh2D::square(5), GreedyXY, UniformDest, cfg).run()
    }

    fn assert_bits(a: &SimResult, b: &SimResult) {
        assert_eq!(a.avg_delay.to_bits(), b.avg_delay.to_bits());
        assert_eq!(a.delay_std_err.to_bits(), b.delay_std_err.to_bits());
        assert_eq!(a.time_avg_n.to_bits(), b.time_avg_n.to_bits());
        assert_eq!(a.time_avg_r.to_bits(), b.time_avg_r.to_bits());
        assert_eq!(a.final_n.to_bits(), b.final_n.to_bits());
        assert_eq!(a.peak_n.to_bits(), b.peak_n.to_bits());
        assert_eq!(a.generated, b.generated);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(a.delay_p50, b.delay_p50);
        assert_eq!(a.delay_p99, b.delay_p99);
        assert_eq!(a.edge_mean_queue, b.edge_mean_queue);
        assert_eq!(a.edge_throughput, b.edge_throughput);
        assert_eq!(a.n_samples, b.n_samples);
    }

    #[test]
    fn one_shard_reproduces_the_calendar_engine_bit_for_bit() {
        let calendar = run(EngineSpec::Calendar);
        let sharded = run(EngineSpec::Sharded { shards: 1 });
        assert_bits(&calendar, &sharded);
    }

    #[test]
    fn reruns_are_bit_identical_at_every_shard_count() {
        for shards in [2, 3, 4, 7] {
            let a = run(EngineSpec::Sharded { shards });
            let b = run(EngineSpec::Sharded { shards });
            assert_bits(&a, &b);
        }
    }

    #[test]
    fn sharded_runs_agree_statistically_with_the_oracle() {
        let oracle = run(EngineSpec::Calendar);
        let sharded = run(EngineSpec::Sharded { shards: 4 });
        // Different RNG decomposition ⇒ different sample path; physics
        // must still match within loose Monte-Carlo noise.
        let rel = (sharded.avg_delay - oracle.avg_delay).abs() / oracle.avg_delay;
        assert!(rel < 0.10, "delay off by {rel:.3}");
        assert!(sharded.completed > 0);
        assert!(sharded.completed <= sharded.generated);
        // Conservation: every serviced hop is someone's remaining work.
        assert!(sharded.r_ratio > 0.9 && sharded.r_ratio < oracle.r_ratio * 1.2);
    }

    #[test]
    #[should_panic(expected = "deterministic service times")]
    fn exponential_service_is_rejected_when_shards_cut_edges() {
        let cfg = NetConfig {
            service: ServiceKind::Exponential,
            engine: EngineSpec::Sharded { shards: 2 },
            ..NetConfig::default()
        };
        let _ = NetworkSim::new(Mesh2D::square(4), GreedyXY, UniformDest, cfg).run();
    }

    #[test]
    fn shard_count_beyond_node_count_is_clamped_and_deterministic() {
        let a = run(EngineSpec::Sharded { shards: 64 });
        let b = run(EngineSpec::Sharded { shards: 64 });
        assert_bits(&a, &b);
        assert!(a.completed > 0);
    }

    fn run_faulted(engine: EngineSpec) -> SimResult {
        use crate::fault::{FaultPlan, FaultSpec};
        let cfg = NetConfig {
            lambda: 0.15,
            horizon: 800.0,
            warmup: 80.0,
            seed: 9,
            engine,
            ..NetConfig::default()
        };
        let topo = Mesh2D::square(5);
        let spec = FaultSpec::links(0.2).at(100.0);
        let plan = FaultPlan::materialize(&spec, cfg.seed, &topo);
        NetworkSim::new(topo, GreedyXY, UniformDest, cfg)
            .with_fault_plan(plan)
            .run()
    }

    #[test]
    fn faulted_sharded_runs_are_bit_identical_and_drop_packets() {
        for shards in [1, 2, 3] {
            let a = run_faulted(EngineSpec::Sharded { shards });
            let b = run_faulted(EngineSpec::Sharded { shards });
            assert_eq!(a.avg_delay.to_bits(), b.avg_delay.to_bits());
            assert_eq!(a.generated, b.generated);
            assert_eq!(a.completed, b.completed);
            assert_eq!(a.dropped, b.dropped);
            assert_eq!(a.events_processed, b.events_processed);
            assert!(a.dropped.total() > 0, "{shards} shards saw no drops");
            assert!(a.delivered_fraction < 1.0);
            assert!(a.completed > 0);
        }
    }

    #[test]
    fn faulted_one_shard_matches_the_calendar_engine_bit_for_bit() {
        let calendar = run_faulted(EngineSpec::Calendar);
        let sharded = run_faulted(EngineSpec::Sharded { shards: 1 });
        assert_eq!(calendar.avg_delay.to_bits(), sharded.avg_delay.to_bits());
        assert_eq!(calendar.generated, sharded.generated);
        assert_eq!(calendar.completed, sharded.completed);
        assert_eq!(calendar.dropped, sharded.dropped);
    }

    #[test]
    fn faulted_sharded_runs_agree_statistically_with_the_oracle() {
        let oracle = run_faulted(EngineSpec::Calendar);
        let sharded = run_faulted(EngineSpec::Sharded { shards: 2 });
        assert!(sharded.dropped.total() > 0);
        let rel = (sharded.delivered_fraction - oracle.delivered_fraction).abs()
            / oracle.delivered_fraction;
        assert!(rel < 0.10, "delivered fraction off by {rel:.3}");
    }
}
