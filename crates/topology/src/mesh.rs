//! The two-dimensional array network (the paper's main topology).

use crate::ids::{EdgeId, NodeId};
use crate::traits::Topology;
use serde::{Deserialize, Serialize};

/// Direction of a mesh edge.
///
/// In the paper's coordinates, node `(1, 1)` is the upper-left corner, rows
/// grow downward and columns grow rightward; `Right`/`Left` edges are *row*
/// edges (used in the first, column-correcting phase of greedy routing) and
/// `Down`/`Up` edges are *column* edges (used in the second phase).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Toward larger column index.
    Right,
    /// Toward smaller column index.
    Left,
    /// Toward larger row index.
    Down,
    /// Toward smaller row index.
    Up,
}

impl Direction {
    /// All four directions, in the crate's canonical edge-layout order.
    pub const ALL: [Direction; 4] = [
        Direction::Right,
        Direction::Left,
        Direction::Down,
        Direction::Up,
    ];

    /// Whether this is a row (horizontal) edge direction.
    #[must_use]
    pub fn is_row(self) -> bool {
        matches!(self, Direction::Right | Direction::Left)
    }
}

/// An `m × n` array of nodes connected by directed edges to the four
/// neighbours in the same row and column.
///
/// Rows and columns are **0-based** internally; the paper's 1-based `(i, j)`
/// coordinates map to `(i−1, j−1)`. Edge ids are laid out contiguously by
/// direction (`Right`, `Left`, `Down`, `Up`), so per-direction slices of any
/// per-edge array are contiguous.
///
/// # Examples
///
/// ```
/// use meshbound_topology::{Mesh2D, Topology};
/// let mesh = Mesh2D::square(4);
/// assert_eq!(mesh.num_nodes(), 16);
/// assert_eq!(mesh.num_edges(), 4 * 4 * 3); // 4n(n−1)
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mesh2D {
    rows: u32,
    cols: u32,
}

impl Mesh2D {
    /// Creates a square `n × n` array.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn square(n: usize) -> Self {
        Self::rect(n, n)
    }

    /// Creates a rectangular `rows × cols` array.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is smaller than 2.
    #[must_use]
    pub fn rect(rows: usize, cols: usize) -> Self {
        assert!(rows >= 2 && cols >= 2, "mesh needs at least 2x2 nodes");
        Self {
            rows: rows as u32,
            cols: cols as u32,
        }
    }

    /// Number of rows.
    #[inline]
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows as usize
    }

    /// Number of columns.
    #[inline]
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols as usize
    }

    /// The side length of a square mesh.
    ///
    /// # Panics
    ///
    /// Panics if the mesh is not square.
    #[inline]
    #[must_use]
    pub fn side(&self) -> usize {
        assert_eq!(self.rows, self.cols, "mesh is not square");
        self.cols as usize
    }

    /// Whether the mesh is square.
    #[must_use]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Node id for 0-based coordinates `(row, col)`.
    ///
    /// # Panics
    ///
    /// Debug-panics if out of range.
    #[inline]
    #[must_use]
    pub fn node(&self, row: usize, col: usize) -> NodeId {
        debug_assert!(row < self.rows(), "row {row} out of range");
        debug_assert!(col < self.cols(), "col {col} out of range");
        NodeId((row as u32) * self.cols + col as u32)
    }

    /// 0-based `(row, col)` coordinates of a node.
    #[inline]
    #[must_use]
    pub fn coords(&self, v: NodeId) -> (usize, usize) {
        let c = self.cols as usize;
        (v.index() / c, v.index() % c)
    }

    fn right_count(&self) -> u32 {
        self.rows * (self.cols - 1)
    }

    fn down_count(&self) -> u32 {
        (self.rows - 1) * self.cols
    }

    /// The edge `(row, col) → (row, col+1)`.
    #[inline]
    #[must_use]
    pub fn right_edge(&self, row: usize, col: usize) -> EdgeId {
        debug_assert!(col + 1 < self.cols());
        EdgeId((row as u32) * (self.cols - 1) + col as u32)
    }

    /// The edge `(row, col+1) → (row, col)`.
    #[inline]
    #[must_use]
    pub fn left_edge(&self, row: usize, col: usize) -> EdgeId {
        debug_assert!(col + 1 < self.cols());
        EdgeId(self.right_count() + (row as u32) * (self.cols - 1) + col as u32)
    }

    /// The edge `(row, col) → (row+1, col)`.
    #[inline]
    #[must_use]
    pub fn down_edge(&self, row: usize, col: usize) -> EdgeId {
        debug_assert!(row + 1 < self.rows());
        EdgeId(2 * self.right_count() + (row as u32) * self.cols + col as u32)
    }

    /// The edge `(row+1, col) → (row, col)`.
    #[inline]
    #[must_use]
    pub fn up_edge(&self, row: usize, col: usize) -> EdgeId {
        debug_assert!(row + 1 < self.rows());
        EdgeId(2 * self.right_count() + self.down_count() + (row as u32) * self.cols + col as u32)
    }

    /// The edge leaving `(row, col)` in direction `dir`, if it exists.
    #[inline]
    #[must_use]
    pub fn edge_in_direction(&self, row: usize, col: usize, dir: Direction) -> Option<EdgeId> {
        match dir {
            Direction::Right => (col + 1 < self.cols()).then(|| self.right_edge(row, col)),
            Direction::Left => (col > 0).then(|| self.left_edge(row, col - 1)),
            Direction::Down => (row + 1 < self.rows()).then(|| self.down_edge(row, col)),
            Direction::Up => (row > 0).then(|| self.up_edge(row - 1, col)),
        }
    }

    /// Direction of an edge.
    #[inline]
    #[must_use]
    pub fn direction(&self, e: EdgeId) -> Direction {
        let rc = self.right_count();
        let dc = self.down_count();
        let i = e.0;
        if i < rc {
            Direction::Right
        } else if i < 2 * rc {
            Direction::Left
        } else if i < 2 * rc + dc {
            Direction::Down
        } else {
            debug_assert!(i < 2 * rc + 2 * dc, "edge id out of range");
            Direction::Up
        }
    }

    /// Source and target coordinates `((r1, c1), (r2, c2))` of an edge.
    #[must_use]
    pub fn edge_coords(&self, e: EdgeId) -> ((usize, usize), (usize, usize)) {
        let rc = self.right_count();
        let dc = self.down_count();
        let i = e.0;
        let w = (self.cols - 1) as usize;
        if i < rc {
            let (r, c) = ((i as usize) / w, (i as usize) % w);
            ((r, c), (r, c + 1))
        } else if i < 2 * rc {
            let k = (i - rc) as usize;
            let (r, c) = (k / w, k % w);
            ((r, c + 1), (r, c))
        } else if i < 2 * rc + dc {
            let k = (i - 2 * rc) as usize;
            let (r, c) = (k / self.cols(), k % self.cols());
            ((r, c), (r + 1, c))
        } else {
            debug_assert!(i < 2 * rc + 2 * dc, "edge id out of range");
            let k = (i - 2 * rc - dc) as usize;
            let (r, c) = (k / self.cols(), k % self.cols());
            ((r + 1, c), (r, c))
        }
    }

    /// The 1-based *crossing index* of an edge.
    ///
    /// For a row edge this is the number of columns strictly on the source
    /// side of the cut the edge crosses; for a column edge, the analogous row
    /// count. Under greedy routing with uniform destinations, an edge with
    /// crossing index `i` on an `n × n` array carries arrival rate
    /// `(λ/n)·i(n−i)` (Theorem 6), so the index is the natural "rate class"
    /// of the edge.
    #[must_use]
    pub fn crossing_index(&self, e: EdgeId) -> usize {
        let ((r1, c1), (r2, c2)) = self.edge_coords(e);
        match self.direction(e) {
            // (r, c) → (r, c+1): index = c+1 columns behind the cut.
            Direction::Right => c1 + 1,
            // (r, c+1) → (r, c): cut has cols−(c+1) columns behind it.
            Direction::Left => self.cols() - (c2 + 1),
            Direction::Down => r1 + 1,
            Direction::Up => {
                let _ = (r2, c2);
                self.rows() - (r1 - 1) - 1
            }
        }
    }

    /// Manhattan distance between two nodes (the number of edges greedy
    /// routing crosses between them).
    #[inline]
    #[must_use]
    pub fn manhattan(&self, a: NodeId, b: NodeId) -> usize {
        let (ra, ca) = self.coords(a);
        let (rb, cb) = self.coords(b);
        ra.abs_diff(rb) + ca.abs_diff(cb)
    }

    /// Mean greedy-route length `n̄ = (2/3)(n − 1/n)` over uniform
    /// source/destination pairs (self-pairs included), for square meshes.
    ///
    /// # Panics
    ///
    /// Panics if the mesh is not square.
    #[must_use]
    pub fn mean_distance(&self) -> f64 {
        let n = self.side() as f64;
        (2.0 / 3.0) * (n - 1.0 / n)
    }

    /// Mean greedy-route length excluding self-pairs, `n̄₂ = 2n/3` for square
    /// meshes.
    ///
    /// # Panics
    ///
    /// Panics if the mesh is not square.
    #[must_use]
    pub fn mean_distance_excl_self(&self) -> f64 {
        let n = self.side() as f64;
        self.mean_distance() * n * n / (n * n - 1.0)
    }
}

impl Topology for Mesh2D {
    fn num_nodes(&self) -> usize {
        (self.rows * self.cols) as usize
    }

    fn num_edges(&self) -> usize {
        (2 * self.right_count() + 2 * self.down_count()) as usize
    }

    fn edge_source(&self, e: EdgeId) -> NodeId {
        let ((r, c), _) = self.edge_coords(e);
        self.node(r, c)
    }

    fn edge_target(&self, e: EdgeId) -> NodeId {
        let (_, (r, c)) = self.edge_coords(e);
        self.node(r, c)
    }

    fn out_edges_into(&self, v: NodeId, out: &mut Vec<EdgeId>) {
        out.clear();
        let (r, c) = self.coords(v);
        for dir in Direction::ALL {
            if let Some(e) = self.edge_in_direction(r, c, dir) {
                out.push(e);
            }
        }
    }

    fn label(&self) -> String {
        format!("array {}x{}", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn edge_count_is_4n_n_minus_1() {
        for n in 2..=8 {
            let m = Mesh2D::square(n);
            assert_eq!(m.num_edges(), 4 * n * (n - 1));
            assert_eq!(m.num_nodes(), n * n);
        }
    }

    #[test]
    fn rectangular_edge_count() {
        let m = Mesh2D::rect(3, 5);
        assert_eq!(m.num_edges(), 2 * 3 * 4 + 2 * 2 * 5);
    }

    #[test]
    fn node_coords_roundtrip() {
        let m = Mesh2D::rect(4, 7);
        for r in 0..4 {
            for c in 0..7 {
                assert_eq!(m.coords(m.node(r, c)), (r, c));
            }
        }
    }

    #[test]
    fn edge_ids_dense_and_consistent() {
        let m = Mesh2D::square(5);
        let mut seen = vec![false; m.num_edges()];
        for e in m.edges() {
            assert!(!seen[e.index()], "duplicate edge id");
            seen[e.index()] = true;
            let ((r1, c1), (r2, c2)) = m.edge_coords(e);
            assert_eq!(m.edge_source(e), m.node(r1, c1));
            assert_eq!(m.edge_target(e), m.node(r2, c2));
            assert_eq!(m.manhattan(m.edge_source(e), m.edge_target(e)), 1);
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn directions_match_coords() {
        let m = Mesh2D::square(4);
        for e in m.edges() {
            let ((r1, c1), (r2, c2)) = m.edge_coords(e);
            let dir = m.direction(e);
            match dir {
                Direction::Right => assert!(r1 == r2 && c2 == c1 + 1),
                Direction::Left => assert!(r1 == r2 && c1 == c2 + 1),
                Direction::Down => assert!(c1 == c2 && r2 == r1 + 1),
                Direction::Up => assert!(c1 == c2 && r1 == r2 + 1),
            }
        }
    }

    #[test]
    fn edge_in_direction_inverts_edge_coords() {
        let m = Mesh2D::rect(3, 4);
        for e in m.edges() {
            let ((r, c), _) = m.edge_coords(e);
            let dir = m.direction(e);
            assert_eq!(m.edge_in_direction(r, c, dir), Some(e));
        }
    }

    #[test]
    fn border_has_no_outward_edges() {
        let m = Mesh2D::square(3);
        assert_eq!(m.edge_in_direction(0, 0, Direction::Up), None);
        assert_eq!(m.edge_in_direction(0, 0, Direction::Left), None);
        assert_eq!(m.edge_in_direction(2, 2, Direction::Down), None);
        assert_eq!(m.edge_in_direction(2, 2, Direction::Right), None);
    }

    #[test]
    fn corner_has_two_out_edges() {
        let m = Mesh2D::square(3);
        assert_eq!(m.out_edges(m.node(0, 0)).len(), 2);
        assert_eq!(m.out_edges(m.node(1, 1)).len(), 4);
        assert_eq!(m.out_edges(m.node(0, 1)).len(), 3);
    }

    #[test]
    fn crossing_index_symmetric_pairs() {
        // On a 5-wide mesh, right edge c=0 has index 1 and left edge into
        // c=0 (i.e. from col 1 to col 0) has index n−1 = 4.
        let m = Mesh2D::square(5);
        assert_eq!(m.crossing_index(m.right_edge(0, 0)), 1);
        assert_eq!(m.crossing_index(m.left_edge(0, 0)), 4);
        assert_eq!(m.crossing_index(m.right_edge(2, 3)), 4);
        assert_eq!(m.crossing_index(m.left_edge(2, 3)), 1);
        assert_eq!(m.crossing_index(m.down_edge(1, 0)), 2);
        assert_eq!(m.crossing_index(m.up_edge(1, 0)), 3);
    }

    #[test]
    fn crossing_index_range_and_counts() {
        // Every index class i in 1..n should contain exactly 4n edges
        // (Theorem 6's 4n edges of rate (λ/n)i(n−i)).
        let n = 6;
        let m = Mesh2D::square(n);
        let mut counts = vec![0usize; n];
        for e in m.edges() {
            let i = m.crossing_index(e);
            assert!((1..n).contains(&i));
            counts[i] += 1;
        }
        #[allow(clippy::needless_range_loop)]
        for i in 1..n {
            assert_eq!(counts[i], 4 * n, "class {i}");
        }
    }

    #[test]
    fn mean_distance_formulas() {
        let m = Mesh2D::square(5);
        assert!((m.mean_distance() - 3.2).abs() < 1e-12);
        assert!((m.mean_distance_excl_self() - 10.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn mean_distance_matches_enumeration() {
        for n in [2usize, 3, 4, 7] {
            let m = Mesh2D::square(n);
            let mut total = 0usize;
            for a in m.nodes() {
                for b in m.nodes() {
                    total += m.manhattan(a, b);
                }
            }
            let avg = total as f64 / ((n * n) as f64).powi(2);
            assert!(
                (avg - m.mean_distance()).abs() < 1e-12,
                "n={n}: {avg} vs {}",
                m.mean_distance()
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least 2x2")]
    fn tiny_mesh_rejected() {
        let _ = Mesh2D::square(1);
    }

    proptest! {
        #[test]
        fn prop_find_edge_agrees_with_direction(n in 2usize..7, r in 0usize..6, c in 0usize..6) {
            let m = Mesh2D::square(n);
            let r = r % n;
            let c = c % n;
            let v = m.node(r, c);
            for dir in Direction::ALL {
                if let Some(e) = m.edge_in_direction(r, c, dir) {
                    let tgt = m.edge_target(e);
                    prop_assert_eq!(m.find_edge(v, tgt), Some(e));
                }
            }
        }
    }
}
